// Interactive SQL shell over the Fabric: demonstrates the constructive
// planner (§III-B). Two demo tables are preloaded; type SQL, get the
// answer plus the plan (which backend the planner constructed and the
// per-path cost estimates). `EXPLAIN <query>` plans without executing.
//
// The `wide` table has a materialized columnar copy (legacy baseline);
// `events` exists only in row format, as a Relational Fabric deployment
// would keep it.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/random.h"
#include "core/relational_fabric.h"

namespace {

void LoadDemoTables(relfab::Fabric* fabric) {
  using namespace relfab;
  Random rng(123);

  {
    auto schema = layout::Schema::Create({
        {"id", layout::ColumnType::kInt64, 0},
        {"a", layout::ColumnType::kInt32, 0},
        {"b", layout::ColumnType::kInt32, 0},
        {"c", layout::ColumnType::kInt32, 0},
        {"d", layout::ColumnType::kInt32, 0},
        {"e", layout::ColumnType::kInt32, 0},
        {"f", layout::ColumnType::kInt32, 0},
        {"g", layout::ColumnType::kInt32, 0},
        {"h", layout::ColumnType::kInt32, 0},
        {"pad", layout::ColumnType::kChar, 20},
    });
    auto* table = fabric->CreateTable("wide", std::move(*schema)).value();
    layout::RowBuilder row(&table->schema());
    for (int64_t i = 0; i < 100000; ++i) {
      row.Reset();
      row.AddInt64(i);
      for (int c = 0; c < 8; ++c) {
        row.AddInt32(static_cast<int32_t>(rng.Uniform(1000)));
      }
      row.AddChar("padding-padding");
      table->AppendRow(row.Finish());
    }
    (void)fabric->MaterializeColumnarCopy("wide");
  }
  {
    auto schema = layout::Schema::Create({
        {"ts", layout::ColumnType::kInt64, 0},
        {"user_id", layout::ColumnType::kInt64, 0},
        {"kind", layout::ColumnType::kInt32, 0},
        {"amount", layout::ColumnType::kInt32, 0},
        {"region", layout::ColumnType::kChar, 4},
    });
    auto* table = fabric->CreateTable("events", std::move(*schema)).value();
    layout::RowBuilder row(&table->schema());
    const char* regions[] = {"EU", "US", "AP", "SA"};
    for (int64_t i = 0; i < 100000; ++i) {
      row.Reset();
      row.AddInt64(i)
          .AddInt64(static_cast<int64_t>(rng.Uniform(5000)))
          .AddInt32(static_cast<int32_t>(rng.Uniform(8)))
          .AddInt32(static_cast<int32_t>(rng.Uniform(10000)))
          .AddChar(regions[rng.Uniform(4)]);
      table->AppendRow(row.Finish());
    }
  }
}

void PrintResult(const relfab::Fabric::SqlResult& r) {
  std::printf("plan: %s\n", r.plan.explanation.c_str());
  const relfab::engine::QueryResult& q = r.result;
  std::printf("rows: scanned=%llu matched=%llu  cycles=%llu\n",
              static_cast<unsigned long long>(q.rows_scanned),
              static_cast<unsigned long long>(q.rows_matched),
              static_cast<unsigned long long>(q.sim_cycles));
  if (!q.groups.empty()) {
    for (const auto& [key, aggs] : q.groups) {
      std::printf("  group[");
      for (uint32_t i = 0; i < key.size; ++i) {
        // Render small char keys as text, others as numbers.
        const int64_t v = key.values[i];
        if (v > 0 && v < (1ll << 32) && (v & 0xff) >= 'A') {
          char buf[9] = {};
          std::memcpy(buf, &v, 8);
          std::printf("%s%s", i ? "," : "", buf);
        } else {
          std::printf("%s%lld", i ? "," : "", static_cast<long long>(v));
        }
      }
      std::printf("]:");
      for (double a : aggs) std::printf(" %.4f", a);
      std::printf("\n");
    }
  } else if (!q.aggregates.empty()) {
    std::printf("  result:");
    for (double a : q.aggregates) std::printf(" %.4f", a);
    std::printf("\n");
  } else {
    std::printf("  projection checksum: %.4f\n", q.projection_checksum);
  }
}

}  // namespace

int main(int argc, char** argv) {
  relfab::Fabric fabric;
  LoadDemoTables(&fabric);
  std::printf(
      "relational-fabric SQL shell — tables: wide (with columnar copy), "
      "events (row base only)\n"
      "example: SELECT region, SUM(amount) FROM events WHERE kind < 3 "
      "GROUP BY region\n"
      "prefix with EXPLAIN to plan only; quit with \\q or EOF\n\n");

  // Non-interactive mode: statements passed as arguments.
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::printf("> %s\n", argv[i]);
      auto result = fabric.ExecuteSql(argv[i]);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      PrintResult(*result);
    }
    return 0;
  }

  std::string line;
  while (std::printf("fabric> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q" || line == "quit" || line == "exit") break;
    const bool explain_only = line.rfind("EXPLAIN", 0) == 0 ||
                              line.rfind("explain", 0) == 0;
    if (explain_only) {
      auto plan = fabric.ExplainSql(line.substr(7));
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      } else {
        std::printf("plan: %s\n", plan->explanation.c_str());
      }
      continue;
    }
    fabric.memory().ResetState();
    auto result = fabric.ExecuteSql(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
  }
  return 0;
}
