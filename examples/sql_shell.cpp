// Interactive SQL shell over the Fabric: demonstrates the constructive
// planner (§III-B). Three demo tables are preloaded; type SQL, get the
// answer plus the plan (which backend the planner constructed and the
// per-path cost estimates). `EXPLAIN <query>` plans without executing;
// `EXPLAIN ANALYZE <query>` executes with per-operator attribution of
// rows and simulator meters (for the sharded table that includes
// per-shard meters and pruning counts). Shell commands: `\metrics`
// prints the stack-wide metrics registry (including "shard.*" and
// "faults.*" series), `\top` the live workload-telemetry view
// (windowed throughput/latency/degradations plus latency digests),
// `\qlog` the recent structured query log (`\qlog <file>` exports it
// as JSONL), `\flight <file>` dumps the flight-recorder ring,
// `\trace on|off` toggles span tracing, and `\trace <file>` writes the
// collected Chrome trace JSON (Perfetto).
//
// The `wide` table has a materialized columnar copy (legacy baseline);
// `events` exists only in row format, as a Relational Fabric deployment
// would keep it; `readings` is range-sharded on `ts` (4 shards), so
// WHERE clauses on `ts` prune shards and the survivors scan in
// parallel.

#include <cctype>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/random.h"
#include "core/relational_fabric.h"

namespace {

void LoadDemoTables(relfab::Fabric* fabric) {
  using namespace relfab;
  Random rng(123);

  {
    auto schema = layout::Schema::Create({
        {"id", layout::ColumnType::kInt64, 0},
        {"a", layout::ColumnType::kInt32, 0},
        {"b", layout::ColumnType::kInt32, 0},
        {"c", layout::ColumnType::kInt32, 0},
        {"d", layout::ColumnType::kInt32, 0},
        {"e", layout::ColumnType::kInt32, 0},
        {"f", layout::ColumnType::kInt32, 0},
        {"g", layout::ColumnType::kInt32, 0},
        {"h", layout::ColumnType::kInt32, 0},
        {"pad", layout::ColumnType::kChar, 20},
    });
    auto* table = fabric->CreateTable("wide", std::move(*schema)).value();
    layout::RowBuilder row(&table->schema());
    for (int64_t i = 0; i < 100000; ++i) {
      row.Reset();
      row.AddInt64(i);
      for (int c = 0; c < 8; ++c) {
        row.AddInt32(static_cast<int32_t>(rng.Uniform(1000)));
      }
      row.AddChar("padding-padding");
      table->AppendRow(row.Finish());
    }
    (void)fabric->MaterializeColumnarCopy("wide");
  }
  {
    auto schema = layout::Schema::Create({
        {"ts", layout::ColumnType::kInt64, 0},
        {"user_id", layout::ColumnType::kInt64, 0},
        {"kind", layout::ColumnType::kInt32, 0},
        {"amount", layout::ColumnType::kInt32, 0},
        {"region", layout::ColumnType::kChar, 4},
    });
    auto* table = fabric->CreateTable("events", std::move(*schema)).value();
    layout::RowBuilder row(&table->schema());
    const char* regions[] = {"EU", "US", "AP", "SA"};
    for (int64_t i = 0; i < 100000; ++i) {
      row.Reset();
      row.AddInt64(i)
          .AddInt64(static_cast<int64_t>(rng.Uniform(5000)))
          .AddInt32(static_cast<int32_t>(rng.Uniform(8)))
          .AddInt32(static_cast<int32_t>(rng.Uniform(10000)))
          .AddChar(regions[rng.Uniform(4)]);
      table->AppendRow(row.Finish());
    }
  }
  {
    // Range-sharded on ts: 4 shards with splits at 25k/50k/75k. Queries
    // with a WHERE range on ts prune shards; the rest fan out.
    auto schema = layout::Schema::Create({
        {"ts", layout::ColumnType::kInt64, 0},
        {"sensor", layout::ColumnType::kInt32, 0},
        {"temp", layout::ColumnType::kInt32, 0},
        {"hum", layout::ColumnType::kInt32, 0},
    });
    auto* table =
        fabric
            ->CreateShardedTable(
                "readings", std::move(*schema), "ts",
                {.splits = {25000, 50000, 75000}, .replicas = 2})
            .value();
    layout::RowBuilder row(&table->schema());
    for (int64_t i = 0; i < 100000; ++i) {
      row.Reset();
      row.AddInt64(i)
          .AddInt32(static_cast<int32_t>(rng.Uniform(64)))
          .AddInt32(static_cast<int32_t>(rng.Uniform(500)))
          .AddInt32(static_cast<int32_t>(rng.Uniform(100)));
      table->Append(row.Finish());
    }
  }
}

void PrintResult(const relfab::query::Plan& plan,
                 const relfab::engine::QueryResult& q) {
  std::printf("plan: %s\n", plan.explanation.c_str());
  std::printf("rows: scanned=%llu matched=%llu  cycles=%llu\n",
              static_cast<unsigned long long>(q.rows_scanned),
              static_cast<unsigned long long>(q.rows_matched),
              static_cast<unsigned long long>(q.sim_cycles));
  if (!q.groups.empty()) {
    for (const auto& [key, aggs] : q.groups) {
      std::printf("  group[");
      for (uint32_t i = 0; i < key.size; ++i) {
        // Render small char keys as text, others as numbers.
        const int64_t v = key.values[i];
        if (v > 0 && v < (1ll << 32) && (v & 0xff) >= 'A') {
          char buf[9] = {};
          std::memcpy(buf, &v, 8);
          std::printf("%s%s", i ? "," : "", buf);
        } else {
          std::printf("%s%lld", i ? "," : "", static_cast<long long>(v));
        }
      }
      std::printf("]:");
      for (double a : aggs) std::printf(" %.4f", a);
      std::printf("\n");
    }
  } else if (!q.aggregates.empty()) {
    std::printf("  result:");
    for (double a : q.aggregates) std::printf(" %.4f", a);
    std::printf("\n");
  } else {
    std::printf("  projection checksum: %.4f\n", q.projection_checksum);
  }
}

/// Case-insensitive keyword prefix match; on success sets `rest` to the
/// remainder after the prefix.
bool ConsumePrefix(const std::string& line, const char* prefix,
                   std::string* rest) {
  size_t i = 0;
  while (prefix[i] != '\0') {
    if (i >= line.size() ||
        std::toupper(static_cast<unsigned char>(line[i])) != prefix[i]) {
      return false;
    }
    ++i;
  }
  *rest = line.substr(i);
  return true;
}

/// Executes one SQL statement (EXPLAIN [ANALYZE] or plain) and prints
/// the outcome. Shared by the argv and interactive modes.
void RunStatement(relfab::Fabric& fabric, const std::string& line) {
  std::string rest;
  if (ConsumePrefix(line, "EXPLAIN ANALYZE", &rest)) {
    fabric.memory().ResetState();
    auto analyzed = fabric.ExecuteSql(rest, {.analyze = true});
    if (!analyzed.ok()) {
      std::printf("error: %s\n", analyzed.status().ToString().c_str());
      return;
    }
    std::printf("plan: %s\n", analyzed->plan.explanation.c_str());
    std::printf("%s", analyzed->profile.ToTable().c_str());
    return;
  }
  if (ConsumePrefix(line, "EXPLAIN", &rest)) {
    auto plan = fabric.ExplainSql(rest);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
    } else {
      std::printf("plan: %s\n", plan->explanation.c_str());
    }
    return;
  }
  fabric.memory().ResetState();
  auto result = fabric.ExecuteSql(line);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  PrintResult(result->plan, result->result);
}

/// Handles a `\command`; returns false for `\q`.
bool RunCommand(relfab::Fabric& fabric, const std::string& line) {
  if (line == "\\q") return false;
  if (line == "\\metrics") {
    std::printf("%s", fabric.CollectMetrics().ToTable().c_str());
    return true;
  }
  if (line == "\\top") {
    // Live workload view: headline counters, recent time-series windows
    // (throughput/cycles/degradations per window) and latency digests.
    std::printf("%s", fabric.telemetry()->ToTable().c_str());
    return true;
  }
  if (line == "\\qlog") {
    std::printf("%s", fabric.telemetry()->query_log().ToTable().c_str());
    return true;
  }
  std::string qlog_path;
  if (ConsumePrefix(line, "\\QLOG ", &qlog_path) && !qlog_path.empty()) {
    auto status = fabric.telemetry()->query_log().WriteJsonl(qlog_path);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    } else {
      std::printf("wrote %zu record(s) to %s (JSONL; summarize with "
                  "tools/analyze_query_log.py)\n",
                  fabric.telemetry()->query_log().size(), qlog_path.c_str());
    }
    return true;
  }
  std::string flight_path;
  if (ConsumePrefix(line, "\\FLIGHT ", &flight_path) && !flight_path.empty()) {
    auto status =
        fabric.telemetry()->flight_recorder().WriteJson(flight_path);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    } else {
      std::printf("wrote flight-recorder ring (%zu entries) to %s\n",
                  fabric.telemetry()->flight_recorder().size(),
                  flight_path.c_str());
    }
    return true;
  }
  if (line == "\\cluster") {
    std::printf("%s", fabric.DescribeCluster().c_str());
    return true;
  }
  if (line == "\\trace on") {
    fabric.EnableTracing(true);
    std::printf("tracing on — run queries, then \\trace <file>\n");
    return true;
  }
  if (line == "\\trace off") {
    fabric.EnableTracing(false);
    return true;
  }
  std::string path;
  if (ConsumePrefix(line, "\\TRACE ", &path) && !path.empty()) {
    auto status = fabric.tracer().WriteJson(path);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    } else {
      std::printf("wrote %zu span(s) to %s (load in Perfetto or "
                  "chrome://tracing)\n",
                  fabric.tracer().events().size(), path.c_str());
    }
    return true;
  }
  std::printf("unknown command; available: \\metrics, \\top, \\qlog, "
              "\\qlog <file>, \\flight <file>, \\cluster, \\trace on|off, "
              "\\trace <file>, \\q\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  relfab::Fabric fabric;
  if (!fabric.env_faults_status().ok()) {
    // Malformed $RELFAB_FAULTS: the fabric comes up unarmed and usable;
    // tell the operator why their chaos plan didn't take.
    std::cout << "warning: " << fabric.env_faults_status().ToString()
              << " (fault injection disarmed)\n";
  }
  // The shell is a telemetry showcase: every statement feeds the
  // time-series/digests/query-log/flight-recorder behind \top and
  // \qlog. (Embedding users leave telemetry off — the zero-overhead
  // default.)
  relfab::obs::TelemetryConfig telemetry_config;
  telemetry_config.session = "shell";
  fabric.EnableTelemetry(std::move(telemetry_config));
  LoadDemoTables(&fabric);
  // Demo cluster: 3 simulated nodes behind the default network model.
  // Queries over "readings" run as distributed fan-outs (ship=rows|aggs
  // visible in EXPLAIN); \cluster shows the placement and health.
  {
    auto status = fabric.ConfigureCluster({.nodes = 3});
    if (!status.ok()) {
      std::printf("warning: %s\n", status.ToString().c_str());
    }
  }
  std::printf(
      "relational-fabric SQL shell — tables: wide (with columnar copy), "
      "events (row base only), readings (sharded on ts, 3-node cluster)\n"
      "example: SELECT region, SUM(amount) FROM events WHERE kind < 3 "
      "GROUP BY region\n"
      "sharded: SELECT AVG(temp) FROM readings WHERE ts >= 25000 AND "
      "ts < 50000\n"
      "prefix with EXPLAIN to plan only, EXPLAIN ANALYZE for per-operator "
      "meters\n"
      "commands: \\metrics, \\top (workload view), \\qlog [file], "
      "\\flight <file>, \\cluster (placement + health), \\trace on|off, "
      "\\trace <file>; quit with \\q or EOF\n\n");

  // Non-interactive mode: statements (or \commands) passed as arguments.
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::printf("> %s\n", argv[i]);
      const std::string line(argv[i]);
      if (!line.empty() && line[0] == '\\') {
        if (!RunCommand(fabric, line)) break;
      } else {
        RunStatement(fabric, line);
      }
    }
    return 0;
  }

  std::string line;
  while (std::printf("fabric> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    if (line[0] == '\\') {
      if (!RunCommand(fabric, line)) break;
      continue;
    }
    RunStatement(fabric, line);
  }
  return 0;
}
