// Compression and Relational Fabric (paper §III-D): encodes columns with
// the four codec families, reports compression ratios, and shows why
// dictionary/delta/Huffman are fabric-compatible (O(1)-ish positional
// decode) while RLE is not (positional decode needs a run search).

#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "compress/delta.h"
#include "compress/dictionary.h"
#include "compress/huffman.h"
#include "compress/rle.h"

int main() {
  using namespace relfab;
  using namespace relfab::compress;

  constexpr size_t kValues = 200000;
  Random rng(2023);

  struct Column {
    const char* name;
    std::vector<int64_t> values;
  };
  std::vector<Column> columns(3);
  columns[0].name = "status (16 distinct codes)";
  columns[1].name = "order_id (mostly ascending)";
  columns[2].name = "flag (long runs)";
  int64_t order = 1000000;
  int64_t flag = 0;
  for (size_t i = 0; i < kValues; ++i) {
    columns[0].values.push_back(static_cast<int64_t>(rng.Uniform(16)));
    order += static_cast<int64_t>(rng.Uniform(5));
    columns[1].values.push_back(order);
    if (rng.Bernoulli(0.001)) flag = static_cast<int64_t>(rng.Uniform(4));
    columns[2].values.push_back(flag);
  }

  std::printf("%-30s %-11s %12s %8s %10s %9s\n", "column", "codec",
              "encoded", "ratio", "scatter?", "c/value");
  for (const Column& col : columns) {
    const uint64_t raw_bytes = col.values.size() * 8;
    std::unique_ptr<ColumnCodec> codecs[] = {
        std::make_unique<DictionaryCodec>(),
        std::make_unique<DeltaCodec>(),
        std::make_unique<HuffmanCodec>(),
        std::make_unique<RleCodec>(),
    };
    for (auto& codec : codecs) {
      const Status status = codec->Encode(col.values);
      if (!status.ok()) {
        std::fprintf(stderr, "encode failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      // Verify positional decode on a sample before reporting.
      for (size_t i = 0; i < col.values.size(); i += 7919) {
        if (codec->ValueAt(i) != col.values[i]) {
          std::fprintf(stderr, "BUG: %s mis-decodes position %zu\n",
                       CodecKindToString(codec->kind()).data(), i);
          return 1;
        }
      }
      std::printf("%-30s %-11s %10llu B %7.1fx %10s %9.1f\n", col.name,
                  CodecKindToString(codec->kind()).data(),
                  static_cast<unsigned long long>(codec->encoded_bytes()),
                  static_cast<double>(raw_bytes) /
                      static_cast<double>(codec->encoded_bytes()),
                  codec->scatter_accessible() ? "yes" : "NO",
                  codec->decode_cost_per_value());
    }
    std::printf("\n");
  }

  std::printf(
      "scatter? = can the fabric decode an arbitrary row position without\n"
      "touching unrelated values (required for on-the-fly projection of\n"
      "compressed row data, paper §III-D). RLE fails this: its positional\n"
      "decode cost grows with the run directory, so it cannot back\n"
      "ephemeral columns out of the box.\n");
  return 0;
}
