// HTAP on a single layout (paper §III-C): transactional writers update a
// versioned row table with snapshot isolation while analytical readers
// scan arbitrary column groups of the *same* base data through the
// fabric, with timestamp visibility evaluated in hardware. No second
// copy, no layout conversion, fully fresh data.

#include <cstdio>
#include <cstring>

#include "common/random.h"
#include "core/relational_fabric.h"

namespace {

constexpr int64_t kAccounts = 1000;
constexpr int kTransferRounds = 200;

}  // namespace

int main() {
  using namespace relfab;

  Fabric fabric;
  auto schema = layout::Schema::Create({
      {"account_id", layout::ColumnType::kInt64, 0},
      {"balance", layout::ColumnType::kInt64, 0},
      {"branch", layout::ColumnType::kInt32, 0},
      {"touches", layout::ColumnType::kInt32, 0},
  });
  auto* accounts =
      fabric.CreateVersionedTable("accounts", *schema, /*key=*/0).value();
  auto* tm = fabric.GetTransactionManager("accounts").value();

  // OLTP: seed accounts. Like any MVCC application, an aborted commit
  // (a conflict — or an injected fault when $RELFAB_FAULTS arms
  // mvcc.commit) is handled by rerunning the transaction.
  layout::RowBuilder row(&accounts->user_schema());
  for (int64_t id = 0; id < kAccounts; ++id) {
    bool committed = false;
    for (int attempt = 0; attempt < 100 && !committed; ++attempt) {
      mvcc::Transaction txn = tm->Begin();
      row.Reset();
      row.AddInt64(id).AddInt64(1000).AddInt32(static_cast<int32_t>(id % 16))
          .AddInt32(0);
      if (!tm->Insert(&txn, row.Finish()).ok()) {
        std::fprintf(stderr, "seeding failed\n");
        return 1;
      }
      committed = tm->Commit(&txn).ok();
    }
    if (!committed) {
      std::fprintf(stderr, "seeding failed\n");
      return 1;
    }
  }

  // OLAP helper: total balance at a snapshot, computed through an
  // ephemeral column group {balance} with the MVCC filter in hardware.
  // Injected fabric faults can kill the view configuration or truncate
  // the chunk stream (view.status()); the reader retries rather than
  // trusting a partial scan.
  const auto total_at = [&](uint64_t read_ts) -> long long {
    for (int attempt = 0; attempt < 100; ++attempt) {
      relmem::Geometry g;
      g.columns = {1};
      g.visibility = accounts->SnapshotFilter(read_ts);
      auto view = fabric.ConfigureView("accounts", g);
      if (!view.ok()) continue;
      long long total = 0;
      for (relmem::EphemeralView::Cursor cur(&*view); cur.Valid();
           cur.Advance()) {
        total += cur.GetInt(0);
      }
      if (view->status().ok()) return total;
    }
    std::fprintf(stderr, "snapshot scan never completed\n");
    return -1;
  };

  const uint64_t seeded_ts = tm->current_ts();
  std::printf("seeded %lld accounts, total balance %lld at ts %llu\n",
              static_cast<long long>(kAccounts), total_at(seeded_ts),
              static_cast<unsigned long long>(seeded_ts));

  // Mixed workload: random transfers (OLTP) with analytics interleaved.
  Random rng(7);
  uint64_t conflicts = 0;
  for (int round = 0; round < kTransferRounds; ++round) {
    const int64_t from = static_cast<int64_t>(rng.Uniform(kAccounts));
    const int64_t to = static_cast<int64_t>(rng.Uniform(kAccounts));
    if (from == to) continue;
    mvcc::Transaction txn = tm->Begin();
    auto from_row = tm->Read(txn, from);
    auto to_row = tm->Read(txn, to);
    if (!from_row.ok() || !to_row.ok()) continue;
    auto balance_of = [](const std::vector<uint8_t>& r) {
      int64_t b;
      std::memcpy(&b, r.data() + 8, 8);
      return b;
    };
    const int64_t amount = static_cast<int64_t>(rng.Uniform(100));
    row.Reset();
    row.AddInt64(from).AddInt64(balance_of(*from_row) - amount)
        .AddInt32(static_cast<int32_t>(from % 16))
        .AddInt32(round);
    (void)tm->Update(&txn, from, row.Finish());
    row.Reset();
    row.AddInt64(to).AddInt64(balance_of(*to_row) + amount)
        .AddInt32(static_cast<int32_t>(to % 16))
        .AddInt32(round);
    (void)tm->Update(&txn, to, row.Finish());
    if (tm->Commit(&txn).IsAborted()) ++conflicts;

    // A concurrent "open" transaction started before this commit must
    // keep seeing a consistent (conserved) total — verified every 50th
    // round through the hardware snapshot filter.
    if (round % 50 == 0) {
      const long long now = total_at(tm->current_ts());
      std::printf("round %3d: total=%lld (invariant %s), versions=%llu\n",
                  round, now,
                  now == 1000 * kAccounts ? "holds" : "VIOLATED",
                  static_cast<unsigned long long>(accounts->num_versions()));
    }
  }

  std::printf("\ncommits=%llu aborts=%llu (write-write conflicts)\n",
              static_cast<unsigned long long>(tm->commits()),
              static_cast<unsigned long long>(conflicts));

  // Contention demo: two concurrent transactions race on account 0 —
  // snapshot isolation lets the first committer win and aborts the other.
  {
    mvcc::Transaction t1 = tm->Begin();
    mvcc::Transaction t2 = tm->Begin();
    auto bal = tm->Read(t1, 0);
    int64_t balance = 0;
    std::memcpy(&balance, bal->data() + 8, 8);
    row.Reset();
    row.AddInt64(0).AddInt64(balance).AddInt32(0).AddInt32(-1);
    (void)tm->Update(&t1, 0, row.Finish());
    row.Reset();
    row.AddInt64(0).AddInt64(balance).AddInt32(0).AddInt32(-2);
    (void)tm->Update(&t2, 0, row.Finish());
    const Status first = tm->Commit(&t1);
    const Status second = tm->Commit(&t2);
    std::printf("contended commit: t1=%s, t2=%s (first committer wins)\n",
                first.ToString().c_str(), second.ToString().c_str());
  }

  // Time travel: the seeded snapshot still reads exactly as it was.
  std::printf("time travel to ts %llu: total=%lld\n",
              static_cast<unsigned long long>(seeded_ts),
              total_at(seeded_ts));

  // And the final state conserves money.
  const long long final_total = total_at(tm->current_ts());
  std::printf("final total=%lld -> %s\n", final_total,
              final_total == 1000 * kAccounts ? "conserved" : "BUG");
  return final_total == 1000 * kAccounts ? 0 : 1;
}
