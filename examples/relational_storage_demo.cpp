// Relational Storage (paper §IV-D): the fabric inside a computational
// SSD. Compares shipping whole row-oriented pages to the host against
// near-storage projection/selection with on-the-fly decompression —
// only the packed relevant data crosses the external interface.

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/random.h"
#include "compress/dictionary.h"
#include "layout/schema.h"
#include "relstorage/rs_engine.h"

int main() {
  using namespace relfab;
  using namespace relfab::relstorage;

  // A 16-column row table on flash.
  constexpr uint64_t kRows = 500000;
  layout::Schema schema =
      layout::Schema::Uniform(16, layout::ColumnType::kInt32);
  std::vector<uint8_t> data(kRows * schema.row_bytes());
  Random rng(9);
  for (uint64_t r = 0; r < kRows; ++r) {
    for (uint32_t c = 0; c < 16; ++c) {
      const int32_t v = static_cast<int32_t>(rng.Uniform(256));
      std::memcpy(data.data() + r * schema.row_bytes() + c * 4, &v, 4);
    }
  }
  StorageTable table(schema, std::move(data), kRows, 4096);
  SsdModel ssd;
  RsEngine rs(&ssd);

  std::printf("table: %llu rows x 64 B = %llu flash pages\n\n",
              static_cast<unsigned long long>(kRows),
              static_cast<unsigned long long>(table.TotalPages()));

  const auto report = [](const char* name, const ScanResult& r) {
    std::printf("%-26s %10.0f cycles  sensed=%6llu pages  shipped=%6llu "
                "pages  rows_out=%llu\n",
                name, r.cycles,
                static_cast<unsigned long long>(r.pages_sensed),
                static_cast<unsigned long long>(r.pages_shipped),
                static_cast<unsigned long long>(r.rows_out));
  };

  // Projection of 2 of 16 columns.
  relmem::Geometry projection;
  projection.columns = {0, 8};
  report("host scan (project 2/16)", *rs.HostScan(table, projection));
  report("RS scan   (project 2/16)",
         *rs.NearStorageScan(table, projection));

  // Projection + selection (~6% qualify).
  relmem::Geometry filtered = projection;
  filtered.predicates.push_back(
      relmem::HwPredicate::Int(3, relmem::CompareOp::kLt, 16));
  std::printf("\n");
  report("host scan (+ selection)", *rs.HostScan(table, filtered));
  report("RS scan   (+ selection)", *rs.NearStorageScan(table, filtered));

  // Compressed column: dictionary codes (256 symbols -> 1 B/value)
  // decoded on the fly inside the device.
  (void)table.CompressColumn(0, std::make_unique<compress::DictionaryCodec>());
  (void)table.CompressColumn(8, std::make_unique<compress::DictionaryCodec>());
  std::printf("\nafter dictionary-compressing columns 0 and 8 "
              "(%llu pages on flash):\n",
              static_cast<unsigned long long>(table.TotalPages()));
  report("host scan (compressed)", *rs.HostScan(table, filtered));
  report("RS scan   (compressed)", *rs.NearStorageScan(table, filtered));

  std::printf(
      "\nRS senses the same row-oriented pages with full internal channel\n"
      "parallelism but ships only the packed, decoded column group of the\n"
      "qualifying rows over the external interface.\n");
  return 0;
}
