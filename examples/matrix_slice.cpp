// Matrix/tensor slicing through Relational Fabric (paper §VII, open
// question Q1): a row-major matrix is a relational table whose columns
// are the matrix columns, so ephemeral variables deliver dense column
// slices — and vectorized operations on them — without a transpose and
// without strided cache pollution.

#include <cstdio>

#include "common/random.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"
#include "tensor/matrix.h"

int main() {
  using namespace relfab;

  sim::MemorySystem memory;
  constexpr uint64_t kRows = 100000;
  constexpr uint32_t kCols = 64;  // 512 B per matrix row
  auto matrix = tensor::Matrix::Create(0, kCols, &memory);
  if (!matrix.ok()) return 1;
  Random rng(31);
  std::vector<double> row(kCols);
  for (uint64_t r = 0; r < kRows; ++r) {
    for (uint32_t c = 0; c < kCols; ++c) row[c] = rng.NextDouble();
    matrix->AppendRow(row.data());
  }
  relmem::RmEngine rm(&memory);

  std::printf("row-major matrix: %llu x %u doubles (%.1f MiB)\n",
              static_cast<unsigned long long>(kRows), kCols,
              kRows * kCols * 8.0 / (1 << 20));

  // Column sum: strided CPU walk vs fabric slice.
  memory.ResetState();
  const double direct = matrix->SumColumnDirect(20);
  const uint64_t direct_cycles = memory.ElapsedCycles();
  memory.ResetState();
  const double fabric = *matrix->SumColumnFabric(&rm, 20);
  const uint64_t fabric_cycles = memory.ElapsedCycles();
  std::printf(
      "sum(col 20): strided CPU %.4f in %llu cycles | fabric slice %.4f "
      "in %llu cycles (%.2fx)\n",
      direct, static_cast<unsigned long long>(direct_cycles), fabric,
      static_cast<unsigned long long>(fabric_cycles),
      static_cast<double>(direct_cycles) /
          static_cast<double>(fabric_cycles));

  // Vectorized op on a two-column slice: dot product.
  memory.ResetState();
  const double dot = *matrix->DotColumnsFabric(&rm, 3, 40);
  std::printf("dot(col 3, col 40) via one 2-column ephemeral slice: %.4f "
              "in %llu cycles\n",
              dot, static_cast<unsigned long long>(memory.ElapsedCycles()));

  // Arbitrary sub-matrix: columns {1, 7, 42}, rows [1000, 2000).
  auto slice = matrix->Slice(&rm, {1, 7, 42}, 1000, 2000);
  if (!slice.ok()) return 1;
  double checksum = 0;
  for (relmem::EphemeralView::Cursor cur(&*slice); cur.Valid();
       cur.Advance()) {
    checksum += cur.GetDouble(0) + cur.GetDouble(1) + cur.GetDouble(2);
  }
  std::printf("3-column x 1000-row sub-matrix checksum: %.4f\n", checksum);
  return 0;
}
