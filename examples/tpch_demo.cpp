// TPC-H demo: generates a lineitem table, runs Q1 and Q6 through all
// three access paths (ROW volcano / COL vectorized / RM ephemeral), and
// prints the answers plus the simulated cycle counts — a miniature of
// the paper's Figure 7 with visible query output.

#include <cstdio>
#include <string>

#include "engine/rm_exec.h"
#include "engine/vector_engine.h"
#include "engine/volcano.h"
#include "layout/column_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  using namespace relfab;

  const uint64_t rows = argc > 1 ? std::stoull(argv[1]) : 200000;
  sim::MemorySystem memory;
  std::printf("generating %llu lineitem rows...\n",
              static_cast<unsigned long long>(rows));
  layout::RowTable lineitem = tpch::GenerateLineitem(rows, 42, &memory);
  layout::ColumnTable columns(lineitem, &memory);
  relmem::RmEngine rm(&memory);

  struct NamedQuery {
    const char* name;
    engine::QuerySpec spec;
  };
  const NamedQuery queries[] = {{"Q1", tpch::MakeQ1Spec()},
                                {"Q6", tpch::MakeQ6Spec()}};

  for (const NamedQuery& q : queries) {
    std::printf("\n--- TPC-H %s ---\n", q.name);
    engine::QueryResult reference;
    for (const char* backend : {"ROW", "COL", "RM"}) {
      memory.ResetState();
      StatusOr<engine::QueryResult> result = Status::Internal("unset");
      if (backend[0] == 'R' && backend[1] == 'O') {
        engine::VolcanoEngine eng(&lineitem);
        result = eng.Execute(q.spec);
      } else if (backend[0] == 'C') {
        engine::VectorEngine eng(&columns);
        result = eng.Execute(q.spec);
      } else {
        engine::RmExecEngine eng(&lineitem, &rm);
        result = eng.Execute(q.spec);
      }
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", backend,
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("%-4s %12llu cycles  (matched %llu of %llu rows)\n",
                  backend,
                  static_cast<unsigned long long>(result->sim_cycles),
                  static_cast<unsigned long long>(result->rows_matched),
                  static_cast<unsigned long long>(result->rows_scanned));
      if (backend[0] == 'R' && backend[1] == 'O') {
        reference = *result;
      } else if (!reference.SameAnswer(*result)) {
        std::fprintf(stderr, "!! %s answer differs from ROW\n", backend);
        return 1;
      }
    }
    // Print the (ROW-computed) answer.
    if (!reference.groups.empty()) {
      std::printf("%-6s %-6s %14s %18s %18s %10s\n", "rf", "ls", "sum_qty",
                  "sum_price(cents)", "sum_disc_price", "count");
      for (const auto& [key, aggs] : reference.groups) {
        const char rf = static_cast<char>(key.values[0] & 0xff);
        const char ls = static_cast<char>(key.values[1] & 0xff);
        std::printf("%-6c %-6c %14.0f %18.0f %18.0f %10.0f\n", rf, ls,
                    aggs[0], aggs[1], aggs[2], aggs[7]);
      }
    } else {
      std::printf("revenue (cents): %.2f\n", reference.aggregates[0]);
    }
  }
  return 0;
}
