// Quickstart: the paper's Figure 3 made executable.
//
// A row-oriented table of wide rows is queried through an *ephemeral
// variable*: a dense alias of the column group {key, num_fld1, num_fld4}
// that never exists in memory. The fabric gathers, packs and streams it;
// the CPU loop below looks exactly like the paper's:
//
//   for (...) if (cg[i].key > 10) sum += cg[i].num_fld1 * cg[i].num_fld4;

#include <cstdio>

#include "core/relational_fabric.h"

int main() {
  using namespace relfab;

  Fabric fabric;

  // The full relational table (paper Fig. 3, `struct row`).
  auto schema = layout::Schema::Create({
      {"key", layout::ColumnType::kInt64, 0},
      {"text_fld1", layout::ColumnType::kChar, 12},
      {"text_fld2", layout::ColumnType::kChar, 16},
      {"num_fld1", layout::ColumnType::kInt64, 0},
      {"num_fld2", layout::ColumnType::kInt64, 0},
      {"num_fld3", layout::ColumnType::kInt64, 0},
      {"num_fld4", layout::ColumnType::kInt64, 0},
  });
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto table_or = fabric.CreateTable("the_table", std::move(*schema));
  if (!table_or.ok()) return 1;
  layout::RowTable* table = *table_or;

  layout::RowBuilder row(&table->schema());
  for (int64_t i = 0; i < 100000; ++i) {
    row.Reset();
    row.AddInt64(i % 1000)
        .AddChar("irrelevant")
        .AddChar("also irrelevant")
        .AddInt64(i % 7)
        .AddInt64(i)
        .AddInt64(-i)
        .AddInt64(i % 11);
    table->AppendRow(row.Finish());
  }
  std::printf("base table: %llu rows x %u B (row-oriented, single copy)\n",
              static_cast<unsigned long long>(table->num_rows()),
              table->row_bytes());

  // Configure the ephemeral variable's geometry (Fig. 3, line 25).
  auto geometry = relmem::Geometry::Project(
      table->schema(), {"key", "num_fld1", "num_fld4"});
  auto view = fabric.ConfigureView("the_table", *geometry);
  if (!view.ok()) {
    std::fprintf(stderr, "configure: %s\n", view.status().ToString().c_str());
    return 1;
  }

  // Execute the query using the ephemeral variable (Fig. 3, line 28).
  fabric.memory().ResetTiming();
  long long sum = 0;
  for (relmem::EphemeralView::Cursor cg(&*view); cg.Valid(); cg.Advance()) {
    if (cg.GetInt(0) > 10) {
      sum += cg.GetInt(1) * cg.GetInt(2);
    }
  }
  const auto rm_cycles = fabric.memory().ElapsedCycles();
  const auto rm_stats = fabric.memory().stats();
  std::printf("SELECT SUM(num_fld1*num_fld4) WHERE key > 10  ->  %lld\n",
              sum);
  std::printf("ephemeral-variable scan: %llu simulated cycles\n",
              static_cast<unsigned long long>(rm_cycles));
  std::printf("  DRAM lines gathered by the fabric: %llu\n",
              static_cast<unsigned long long>(rm_stats.dram_lines_gather));
  std::printf("  demand lines from DRAM seen by the CPU: %llu\n",
              static_cast<unsigned long long>(rm_stats.dram_lines_demand));

  // The same query through the legacy row path, for contrast.
  fabric.memory().ResetState();
  engine::QuerySpec spec;
  const int32_t product = spec.exprs.Mul(
      spec.exprs.Column(3), spec.exprs.Column(6));
  spec.aggregates.push_back({engine::AggFunc::kSum, product});
  spec.predicates.push_back(
      engine::Predicate::Int(0, relmem::CompareOp::kGt, 10));
  engine::VolcanoEngine legacy(table);
  auto row_result = legacy.Execute(spec);
  std::printf("legacy row-store scan:   %llu simulated cycles (%.2fx)\n",
              static_cast<unsigned long long>(row_result->sim_cycles),
              static_cast<double>(row_result->sim_cycles) /
                  static_cast<double>(rm_cycles));
  return 0;
}
