#ifndef RELFAB_RELSTORAGE_SSD_MODEL_H_
#define RELFAB_RELSTORAGE_SSD_MODEL_H_

#include <cstdint>

#include "common/statusor.h"
#include "faults/injector.h"
#include "faults/retry.h"

namespace relfab::relstorage {

/// Timing parameters of the simulated computational SSD (an
/// OpenSSD/SmartSSD-class device, paper §IV-D). All latencies in host
/// CPU cycles (1.5 GHz). Key property: aggregate internal flash
/// bandwidth (channels x dies) exceeds the external host interface, so
/// logic placed inside the device can afford to read more than it ships.
struct SsdParams {
  uint32_t channels = 8;
  uint32_t page_bytes = 4096;
  /// Flash page sense latency (charged once per batch; subsequent pages
  /// pipeline behind it).
  double page_read_cycles = 45000.0;
  /// Per-page occupancy of one channel (internal flash transfer).
  double internal_transfer_cycles = 1500.0;
  /// Per-page occupancy of the external host interface.
  double external_transfer_cycles = 6000.0;
  /// In-storage processing cost per value (projection/filter/decode run
  /// on the device's embedded logic).
  double storage_logic_cycles_per_value = 3.0;
  /// Host CPU cost per value when processing on the host instead.
  double host_cpu_cycles_per_value = 3.0;
};

/// Cycle accounting for one SSD. Internal reads spread across channels;
/// external shipping serializes on the host interface.
class SsdModel {
 public:
  explicit SsdModel(const SsdParams& params = SsdParams{})
      : params_(params) {}

  /// Cycles to read `pages` pages into the device (channel-parallel,
  /// pipelined behind one sense latency).
  double ReadInternal(uint64_t pages) {
    pages_read_ += pages;
    if (pages == 0) return 0;
    const double waves = static_cast<double>(
        (pages + params_.channels - 1) / params_.channels);
    return params_.page_read_cycles +
           waves * params_.internal_transfer_cycles;
  }

  /// Cycles to ship `pages` pages over the external interface.
  double ShipToHost(uint64_t pages) {
    pages_shipped_ += pages;
    return static_cast<double>(pages) * params_.external_transfer_cycles;
  }

  // --- failable variants ---
  // One injection opportunity per batch (a real device retries per
  // command, not per page). On a retryable fault the penalty/backoff
  // cycles join the returned batch cycles; once retries are exhausted
  // the mapped Status ("ssd.read" / "ssd.ship" rules) surfaces and the
  // attempts' cycles are lost with the batch (the caller abandons the
  // scan and degrades).

  /// ReadInternal with "ssd.read" fault injection.
  StatusOr<double> ReadInternalChecked(uint64_t pages) {
    double cycles = ReadInternal(pages);
    RELFAB_RETURN_IF_ERROR(faults::InjectAndRetry(
        injector_, read_site_, retry_,
        [&cycles](double c) { cycles += c; }, "flash page batch read"));
    return cycles;
  }

  /// ShipToHost with "ssd.ship" fault injection.
  StatusOr<double> ShipToHostChecked(uint64_t pages) {
    double cycles = ShipToHost(pages);
    RELFAB_RETURN_IF_ERROR(faults::InjectAndRetry(
        injector_, ship_site_, retry_,
        [&cycles](double c) { cycles += c; }, "host interface transfer"));
    return cycles;
  }

  /// Arms "ssd.read" / "ssd.ship" injection; null disarms.
  void set_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
    read_site_ = injector == nullptr ? faults::FaultInjector::kNoSite
                                     : injector->Site("ssd.read");
    ship_site_ = injector == nullptr ? faults::FaultInjector::kNoSite
                                     : injector->Site("ssd.ship");
  }
  void set_retry_policy(const faults::RetryPolicy& policy) {
    retry_ = policy;
  }

  const SsdParams& params() const { return params_; }
  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_shipped() const { return pages_shipped_; }
  void ResetStats() {
    pages_read_ = 0;
    pages_shipped_ = 0;
  }

 private:
  SsdParams params_;
  uint64_t pages_read_ = 0;
  uint64_t pages_shipped_ = 0;
  faults::FaultInjector* injector_ = nullptr;
  faults::RetryPolicy retry_;
  int read_site_ = faults::FaultInjector::kNoSite;
  int ship_site_ = faults::FaultInjector::kNoSite;
};

}  // namespace relfab::relstorage

#endif  // RELFAB_RELSTORAGE_SSD_MODEL_H_
