#ifndef RELFAB_RELSTORAGE_RS_ENGINE_H_
#define RELFAB_RELSTORAGE_RS_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "faults/health.h"
#include "faults/injector.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "relmem/geometry.h"
#include "relstorage/ssd_model.h"
#include "relstorage/storage_table.h"

namespace relfab::relstorage {

/// Result of scanning a storage table: packed output rows (projected
/// columns of qualifying rows, decoded to plain fixed-width values) plus
/// the storage-domain timing.
struct ScanResult {
  double cycles = 0;            // end-to-end elapsed (SSD + interface + CPU)
  uint64_t rows_out = 0;
  uint64_t pages_sensed = 0;    // flash pages read inside the device
  uint64_t pages_shipped = 0;   // pages crossing the host interface
  std::vector<uint8_t> data;    // packed output rows
  uint32_t out_row_bytes = 0;
};

/// Relational Storage (paper §IV-D): Relational Fabric inside a
/// computational SSD. The device senses the row-oriented pages with its
/// full internal channel parallelism, evaluates projection/selection —
/// decompressing scatter-accessible codecs on the fly — and ships only
/// the packed relevant data over the (slower) external interface.
///
/// HostScan is the baseline: ship every page to the host and let the CPU
/// project/filter/decode.
class RsEngine {
 public:
  explicit RsEngine(SsdModel* ssd) : ssd_(ssd) {
    // relfab-lint: allow(data-check) wiring-time null check: a programming error, never data-dependent
    RELFAB_CHECK(ssd != nullptr);
  }

  /// Near-storage scan: projection, selection and decompression execute
  /// in the device; only packed results cross the interface.
  StatusOr<ScanResult> NearStorageScan(const StorageTable& table,
                                       const relmem::Geometry& geometry);

  /// Host-side baseline: the whole table crosses the interface; the host
  /// CPU does the projection/selection/decode work.
  StatusOr<ScanResult> HostScan(const StorageTable& table,
                                const relmem::Geometry& geometry);

  /// Near-storage scan with graceful degradation: when the device path
  /// dies on a fabric fault (SSD read/ship after exhausting its retries),
  /// the scan transparently re-runs as a HostScan — the answer is
  /// identical, only pages shipped and cycles change. Non-fabric errors
  /// (bad geometry) surface unchanged.
  StatusOr<ScanResult> Scan(const StorageTable& table,
                            const relmem::Geometry& geometry);

  SsdModel* ssd() const { return ssd_; }

  uint64_t near_scans() const { return near_scans_; }
  uint64_t host_scans() const { return host_scans_; }
  uint64_t fallbacks() const { return fallbacks_; }

  /// Attaches a tracer; each scan emits a complete event ("rs.near_scan" /
  /// "rs.host_scan") whose duration is the scan's storage-domain cycles.
  /// The events land on a dedicated "storage (RS)" track with their own
  /// monotonic storage clock, so the device pipeline renders as its own
  /// timeline instead of being flattened onto the CPU one. Null detaches.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    track_ = tracer == nullptr ? 0 : tracer->RegisterTrack("storage (RS)");
  }

  /// Arms "ssd.read" / "ssd.ship" injection on the underlying SsdModel
  /// and fallback accounting here. Null disarms.
  void set_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
    ssd_->set_fault_injector(injector);
  }

  /// Attaches a health registry: Scan() then draws the "rs.kill" fault
  /// once per scan (component "rs"), degrades to the host path while the
  /// device is dead, and reports near-scan outcomes to the circuit
  /// breaker. Null detaches (the zero-overhead default).
  void set_health(faults::HealthRegistry* health) { health_ = health; }

  /// Publishes cumulative scan counters under "rs.*". Pages are split by
  /// scan kind because the near/host page ratio *is* the paper's
  /// data-movement argument for computational storage.
  void ExportTo(obs::Registry* registry) const {
    registry->counter("rs.near_scans")->Set(near_scans_);
    registry->counter("rs.host_scans")->Set(host_scans_);
    registry->counter("rs.near.pages_sensed")->Set(near_pages_sensed_);
    registry->counter("rs.near.pages_shipped")->Set(near_pages_shipped_);
    registry->counter("rs.host.pages_shipped")->Set(host_pages_shipped_);
    registry->counter("rs.rows_out")->Set(rows_out_);
    registry->counter("rs.fallbacks")->Set(fallbacks_);
  }

 private:
  /// Rejects geometries the device logic cannot project (char columns
  /// would need host-side string handling): kInvalidArgument instead of
  /// a process abort deep inside the scan loop.
  static Status ValidateScanTypes(const StorageTable& table,
                                  const relmem::Geometry& geometry);

  /// Shared functional part: evaluates the geometry and packs output
  /// rows; returns per-value decode cost incurred for compressed columns.
  static void RunScan(const StorageTable& table,
                      const relmem::Geometry& geometry, ScanResult* result,
                      double* decode_cost_total, uint64_t* values_touched);

  /// HostScan body. `faultable` selects the injected SSD read/ship path
  /// (standalone baseline scans) or the plain one (the last-resort
  /// fallback inside Scan(), which must terminate even when every
  /// injected site fires at p=1).
  StatusOr<ScanResult> HostScanImpl(const StorageTable& table,
                                    const relmem::Geometry& geometry,
                                    bool faultable);

  /// Emits one storage-domain complete event on the storage track and
  /// advances the storage clock (no-op without a tracer).
  void EmitScanEvent(const char* name, const ScanResult& result);

  SsdModel* ssd_;
  obs::Tracer* tracer_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
  faults::HealthRegistry* health_ = nullptr;
  uint32_t track_ = 0;
  double storage_now_ = 0;  // monotonic storage-domain clock (cycles)
  uint64_t near_scans_ = 0;
  uint64_t host_scans_ = 0;
  uint64_t near_pages_sensed_ = 0;
  uint64_t near_pages_shipped_ = 0;
  uint64_t host_pages_shipped_ = 0;
  uint64_t rows_out_ = 0;
  uint64_t fallbacks_ = 0;
};

}  // namespace relfab::relstorage

#endif  // RELFAB_RELSTORAGE_RS_ENGINE_H_
