#include "relstorage/rs_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace relfab::relstorage {

namespace {

bool EvalPredicate(const StorageTable& table, const relmem::HwPredicate& p,
                   uint64_t row) {
  const double v = table.GetDouble(row, p.column);
  switch (p.op) {
    case relmem::CompareOp::kLt:
      return v < p.double_operand;
    case relmem::CompareOp::kLe:
      return v <= p.double_operand;
    case relmem::CompareOp::kGt:
      return v > p.double_operand;
    case relmem::CompareOp::kGe:
      return v >= p.double_operand;
    case relmem::CompareOp::kEq:
      return v == p.double_operand;
    case relmem::CompareOp::kNe:
      return v != p.double_operand;
  }
  return false;
}

}  // namespace

void RsEngine::EmitScanEvent(const char* name, const ScanResult& result) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  obs::Tracer::Event event;
  event.name = name;
  event.category = "relstorage";
  // The SSD runs in its own clock domain; scans render back-to-back on
  // the dedicated storage track, each anchored at the engine's own
  // monotonic storage clock rather than mapped onto the CPU timeline.
  event.start_cycles = static_cast<uint64_t>(storage_now_);
  event.duration_cycles = static_cast<uint64_t>(result.cycles);
  event.depth = 0;  // the storage track has no CPU-span nesting
  event.track = track_;
  event.args.emplace_back("rows_out", std::to_string(result.rows_out));
  event.args.emplace_back("pages_sensed",
                          std::to_string(result.pages_sensed));
  event.args.emplace_back("pages_shipped",
                          std::to_string(result.pages_shipped));
  tracer_->Emit(std::move(event));
  storage_now_ += result.cycles;
}

Status RsEngine::ValidateScanTypes(const StorageTable& table,
                                   const relmem::Geometry& geometry) {
  const layout::Schema& schema = table.schema();
  for (uint32_t c : geometry.columns) {
    if (schema.type(c) == layout::ColumnType::kChar) {
      return Status::InvalidArgument(
          "char projection through RS not supported (column " +
          std::to_string(c) + ")");
    }
  }
  return Status::Ok();
}

void RsEngine::RunScan(const StorageTable& table,
                       const relmem::Geometry& geometry, ScanResult* result,
                       double* decode_cost_total, uint64_t* values_touched) {
  const layout::Schema& schema = table.schema();
  const std::vector<uint32_t> source = geometry.SourceColumns(schema);
  result->out_row_bytes = geometry.OutputRowBytes(schema);
  const uint64_t end =
      std::min<uint64_t>(geometry.end_row, table.num_rows());
  result->data.reserve((end - geometry.begin_row) * result->out_row_bytes /
                       4);
  *decode_cost_total = 0;
  *values_touched = 0;

  double decode_per_row = 0;
  for (uint32_t c : source) {
    if (table.IsCompressed(c)) {
      decode_per_row += table.codec(c)->decode_cost_per_value();
    }
  }

  for (uint64_t row = geometry.begin_row; row < end; ++row) {
    *values_touched += source.size();
    *decode_cost_total += decode_per_row;
    bool pass = true;
    for (const relmem::HwPredicate& p : geometry.predicates) {
      if (!EvalPredicate(table, p, row)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ++result->rows_out;
    for (uint32_t c : geometry.columns) {
      // Output carries decoded fixed-width values.
      switch (schema.type(c)) {
        case layout::ColumnType::kInt32:
        case layout::ColumnType::kDate: {
          const int32_t v = static_cast<int32_t>(table.GetInt(row, c));
          const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
          result->data.insert(result->data.end(), p, p + 4);
          break;
        }
        case layout::ColumnType::kInt64: {
          const int64_t v = table.GetInt(row, c);
          const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
          result->data.insert(result->data.end(), p, p + 8);
          break;
        }
        case layout::ColumnType::kDouble: {
          const double v = table.GetDouble(row, c);
          const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
          result->data.insert(result->data.end(), p, p + 8);
          break;
        }
        case layout::ColumnType::kChar:
          // relfab-lint: allow(data-check) ValidateScanTypes rejects char projections with Status before this path runs
          RELFAB_CHECK(false) << "char projection through RS not supported";
      }
    }
  }
}

StatusOr<ScanResult> RsEngine::NearStorageScan(
    const StorageTable& table, const relmem::Geometry& geometry) {
  RELFAB_RETURN_IF_ERROR(geometry.Validate(table.schema()));
  RELFAB_RETURN_IF_ERROR(ValidateScanTypes(table, geometry));
  ScanResult result;
  double decode_cost = 0;
  uint64_t values = 0;
  RunScan(table, geometry, &result, &decode_cost, &values);

  const SsdParams& p = ssd_->params();
  result.pages_sensed = table.PagesFor(geometry.SourceColumns(table.schema()));
  RELFAB_ASSIGN_OR_RETURN(const double read_cycles,
                          ssd_->ReadInternalChecked(result.pages_sensed));
  const double logic_cycles =
      static_cast<double>(values) * p.storage_logic_cycles_per_value +
      decode_cost;
  result.pages_shipped = static_cast<uint64_t>(
      std::ceil(static_cast<double>(result.rows_out) * result.out_row_bytes /
                p.page_bytes));
  RELFAB_ASSIGN_OR_RETURN(const double ship_cycles,
                          ssd_->ShipToHostChecked(result.pages_shipped));
  // Sense, in-storage processing and shipping form a pipeline.
  result.cycles = std::max({read_cycles, logic_cycles, ship_cycles});
  ++near_scans_;
  near_pages_sensed_ += result.pages_sensed;
  near_pages_shipped_ += result.pages_shipped;
  rows_out_ += result.rows_out;
  EmitScanEvent("rs.near_scan", result);
  return result;
}

StatusOr<ScanResult> RsEngine::HostScan(const StorageTable& table,
                                        const relmem::Geometry& geometry) {
  return HostScanImpl(table, geometry, /*faultable=*/true);
}

StatusOr<ScanResult> RsEngine::HostScanImpl(const StorageTable& table,
                                            const relmem::Geometry& geometry,
                                            bool faultable) {
  RELFAB_RETURN_IF_ERROR(geometry.Validate(table.schema()));
  RELFAB_RETURN_IF_ERROR(ValidateScanTypes(table, geometry));
  ScanResult result;
  double decode_cost = 0;
  uint64_t values = 0;
  RunScan(table, geometry, &result, &decode_cost, &values);

  const SsdParams& p = ssd_->params();
  result.pages_sensed = table.TotalPages();
  result.pages_shipped = table.TotalPages();
  double read_cycles, ship_cycles;
  if (faultable) {
    RELFAB_ASSIGN_OR_RETURN(read_cycles,
                            ssd_->ReadInternalChecked(result.pages_sensed));
    RELFAB_ASSIGN_OR_RETURN(ship_cycles,
                            ssd_->ShipToHostChecked(result.pages_shipped));
  } else {
    // Last-resort path: plain conservative reads outside the injected
    // fault model, so degradation terminates (like the query engine's
    // Volcano fallback, whose DRAM path can stall but never error).
    read_cycles = ssd_->ReadInternal(result.pages_sensed);
    ship_cycles = ssd_->ShipToHost(result.pages_shipped);
  }
  // The host decodes and filters in software as pages arrive.
  const double cpu_cycles =
      static_cast<double>(values) * p.host_cpu_cycles_per_value + decode_cost;
  result.cycles = std::max({read_cycles, ship_cycles, cpu_cycles});
  ++host_scans_;
  host_pages_shipped_ += result.pages_shipped;
  rows_out_ += result.rows_out;
  EmitScanEvent("rs.host_scan", result);
  return result;
}

StatusOr<ScanResult> RsEngine::Scan(const StorageTable& table,
                                    const relmem::Geometry& geometry) {
  if (health_ != nullptr) {
    // One kill opportunity per serving attempt: once the device dies it
    // stays dead for the session and every scan degrades to the host
    // path (answers identical, data movement and cycles change).
    const uint64_t now = static_cast<uint64_t>(storage_now_);
    if (!health_->alive("rs") || health_->DrawKill("rs.kill", "rs", now)) {
      ++fallbacks_;
      if (injector_ != nullptr) injector_->NoteFallback("rs.near_scan");
      return HostScanImpl(table, geometry, /*faultable=*/false);
    }
  }
  StatusOr<ScanResult> near = NearStorageScan(table, geometry);
  if (health_ != nullptr) {
    if (near.ok()) {
      health_->ReportSuccess("rs");
    } else if (faults::IsFabricFault(near.status())) {
      health_->ReportFailure("rs", near.status().ToString(),
                             static_cast<uint64_t>(storage_now_));
    }
  }
  if (near.ok() || !faults::IsFabricFault(near.status())) return near;
  // The device path died after exhausting its retries. Degrade to the
  // host baseline: ship everything and process on the CPU. The answer is
  // identical; only the data movement and cycles change.
  ++fallbacks_;
  if (injector_ != nullptr) injector_->NoteFallback("rs.near_scan");
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::Tracer::Event event;
    event.name = "rs.fallback";
    event.category = "relstorage";
    event.start_cycles = static_cast<uint64_t>(storage_now_);
    event.track = track_;
    event.args.emplace_back("cause", near.status().ToString());
    tracer_->Emit(std::move(event));
  }
  return HostScanImpl(table, geometry, /*faultable=*/false);
}

}  // namespace relfab::relstorage
