#include "relstorage/storage_table.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace relfab::relstorage {

StorageTable::StorageTable(layout::Schema schema,
                           std::vector<uint8_t> row_data, uint64_t num_rows,
                           uint32_t page_bytes)
    : schema_(std::move(schema)),
      row_data_(std::move(row_data)),
      num_rows_(num_rows),
      page_bytes_(page_bytes),
      codecs_(schema_.num_columns()) {
  // relfab-lint: allow(data-check) Create() already rejected bad sizes with Status; the private ctor re-asserts the validated invariant
  RELFAB_CHECK(page_bytes_ > 0);
  // relfab-lint: allow(data-check) same validated-by-Create invariant as above
  RELFAB_CHECK_GE(row_data_.size(), num_rows_ * schema_.row_bytes());
}

StatusOr<StorageTable> StorageTable::Create(layout::Schema schema,
                                            std::vector<uint8_t> row_data,
                                            uint64_t num_rows,
                                            uint32_t page_bytes) {
  if (page_bytes == 0) {
    return Status::InvalidArgument("page_bytes must be positive");
  }
  if (row_data.size() < num_rows * schema.row_bytes()) {
    return Status::InvalidArgument(
        "row data holds " + std::to_string(row_data.size()) +
        " bytes, need " + std::to_string(num_rows * schema.row_bytes()) +
        " for " + std::to_string(num_rows) + " rows");
  }
  return StorageTable(std::move(schema), std::move(row_data), num_rows,
                      page_bytes);
}

double StorageTable::EffectiveRowBytes() const {
  double bytes = 0;
  for (uint32_t c = 0; c < schema_.num_columns(); ++c) {
    if (codecs_[c] != nullptr && num_rows_ > 0) {
      bytes += static_cast<double>(codecs_[c]->encoded_bytes()) /
               static_cast<double>(num_rows_);
    } else {
      bytes += schema_.width(c);
    }
  }
  return bytes;
}

uint64_t StorageTable::TotalPages() const {
  const double total_bytes =
      EffectiveRowBytes() * static_cast<double>(num_rows_);
  return static_cast<uint64_t>(std::ceil(total_bytes / page_bytes_));
}

uint64_t StorageTable::PagesFor(const std::vector<uint32_t>&) const {
  // Row-oriented flash layout: every page interleaves all columns, so an
  // in-storage scan of any column subset senses every page of the table.
  // (Saving sense traffic would require a columnar flash layout — the
  // duplication Relational Fabric is designed to avoid.)
  return TotalPages();
}

Status StorageTable::CompressColumn(
    uint32_t col, std::unique_ptr<compress::ColumnCodec> codec) {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column out of range");
  }
  if (!layout::IsIntegerType(schema_.type(col))) {
    return Status::InvalidArgument(
        "only integer columns support compression here");
  }
  std::vector<int64_t> values(num_rows_);
  for (uint64_t r = 0; r < num_rows_; ++r) {
    const uint8_t* p = FieldPtr(r, col);
    if (schema_.width(col) == 4) {
      int32_t v;
      std::memcpy(&v, p, 4);
      values[r] = v;
    } else {
      std::memcpy(&values[r], p, 8);
    }
  }
  RELFAB_RETURN_IF_ERROR(codec->Encode(values));
  codecs_[col] = std::move(codec);
  return Status::Ok();
}

int64_t StorageTable::GetInt(uint64_t row, uint32_t col) const {
  RELFAB_DCHECK(row < num_rows_);
  if (codecs_[col] != nullptr) return codecs_[col]->ValueAt(row);
  const uint8_t* p = FieldPtr(row, col);
  switch (schema_.type(col)) {
    case layout::ColumnType::kInt32:
    case layout::ColumnType::kDate: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case layout::ColumnType::kInt64: {
      int64_t v;
      std::memcpy(&v, p, 8);
      return v;
    }
    default:
      // relfab-lint: allow(data-check) column types are validated by ValidateScanTypes before execution; reaching here is a caller bug
      RELFAB_CHECK(false) << "GetInt on non-integer column";
      return 0;
  }
}

double StorageTable::GetDouble(uint64_t row, uint32_t col) const {
  if (schema_.type(col) == layout::ColumnType::kDouble) {
    RELFAB_DCHECK(codecs_[col] == nullptr);
    double v;
    std::memcpy(&v, FieldPtr(row, col), 8);
    return v;
  }
  return static_cast<double>(GetInt(row, col));
}

}  // namespace relfab::relstorage
