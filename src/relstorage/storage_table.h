#ifndef RELFAB_RELSTORAGE_STORAGE_TABLE_H_
#define RELFAB_RELSTORAGE_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/statusor.h"
#include "compress/codec.h"
#include "layout/schema.h"

namespace relfab::relstorage {

/// A row-oriented table resident on the simulated SSD: packed rows laid
/// out across flash pages, optionally with per-column compression
/// (scatter-accessible codecs replace a column's bytes inside the row
/// with bit-packed codes conceptually; here the codec owns the column
/// and the page count reflects the saved bytes).
class StorageTable {
 public:
  /// Builds an uncompressed storage table from packed row data. The
  /// dimensions are programmer invariants here (CHECK-aborts on
  /// mismatch); use Create for untrusted input.
  StorageTable(layout::Schema schema, std::vector<uint8_t> row_data,
               uint64_t num_rows, uint32_t page_bytes);

  /// Validating factory: rejects page_bytes == 0 and row data smaller
  /// than num_rows * row_bytes with kInvalidArgument instead of
  /// aborting — for dimensions that arrive from outside the program
  /// (files, wire formats, user configuration).
  static StatusOr<StorageTable> Create(layout::Schema schema,
                                       std::vector<uint8_t> row_data,
                                       uint64_t num_rows,
                                       uint32_t page_bytes);

  const layout::Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  uint32_t page_bytes() const { return page_bytes_; }

  /// Pages occupied by the (possibly compressed) table.
  uint64_t TotalPages() const;

  /// Pages that contain any byte of the given source columns — what the
  /// in-storage scan must sense. For row layouts every page holds every
  /// column, so this equals TotalPages() unless compression shrank the
  /// footprint.
  uint64_t PagesFor(const std::vector<uint32_t>& columns) const;

  /// Replaces an integer column's storage with `codec` (encodes current
  /// values). The logical value of the column is unchanged.
  Status CompressColumn(uint32_t col,
                        std::unique_ptr<compress::ColumnCodec> codec);

  bool IsCompressed(uint32_t col) const {
    return codecs_[col] != nullptr;
  }
  const compress::ColumnCodec* codec(uint32_t col) const {
    return codecs_[col].get();
  }

  /// Logical int64 value (decoding through the codec if compressed).
  int64_t GetInt(uint64_t row, uint32_t col) const;
  double GetDouble(uint64_t row, uint32_t col) const;

  /// Bytes one row contributes on flash (compressed columns count their
  /// average encoded width).
  double EffectiveRowBytes() const;

 private:
  const uint8_t* FieldPtr(uint64_t row, uint32_t col) const {
    return row_data_.data() + row * schema_.row_bytes() +
           schema_.offset(col);
  }

  layout::Schema schema_;
  std::vector<uint8_t> row_data_;
  uint64_t num_rows_;
  uint32_t page_bytes_;
  std::vector<std::unique_ptr<compress::ColumnCodec>> codecs_;
};

}  // namespace relfab::relstorage

#endif  // RELFAB_RELSTORAGE_STORAGE_TABLE_H_
