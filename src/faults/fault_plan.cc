#include "faults/fault_plan.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace relfab::faults {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits `s` on `sep`, trimming each piece; empty pieces are dropped so
/// trailing separators ("a;b;") parse cleanly.
std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const size_t pos = s.find(sep);
    const std::string_view piece =
        Trim(pos == std::string_view::npos ? s : s.substr(0, pos));
    if (!piece.empty()) out.push_back(piece);
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

StatusOr<double> ParseDouble(std::string_view token, std::string_view what) {
  const std::string buf(token);  // strtod needs a NUL terminator
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty() || errno == ERANGE ||
      !std::isfinite(v)) {
    return Status::InvalidArgument("fault spec: bad " + std::string(what) +
                                   " value '" + buf + "'");
  }
  return v;
}

StatusOr<uint64_t> ParseU64(std::string_view token, std::string_view what) {
  const std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 0);
  if (end != buf.c_str() + buf.size() || buf.empty() || errno == ERANGE) {
    return Status::InvalidArgument("fault spec: bad " + std::string(what) +
                                   " value '" + buf + "'");
  }
  return static_cast<uint64_t>(v);
}

StatusOr<FaultKind> ParseKind(std::string_view token) {
  if (token == "stall") return FaultKind::kStall;
  if (token == "timeout") return FaultKind::kTimeout;
  if (token == "corruption") return FaultKind::kCorruption;
  if (token == "unavailable") return FaultKind::kUnavailable;
  if (token == "conflict") return FaultKind::kConflict;
  if (token == "kill") return FaultKind::kKill;
  return Status::InvalidArgument("fault spec: unknown kind '" +
                                 std::string(token) + "'");
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall: return "stall";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kCorruption: return "corruption";
    case FaultKind::kUnavailable: return "unavailable";
    case FaultKind::kConflict: return "conflict";
    case FaultKind::kKill: return "kill";
  }
  return "?";
}

StatusCode FaultKindCode(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall: return StatusCode::kIoError;  // if forced
    case FaultKind::kTimeout: return StatusCode::kIoError;
    case FaultKind::kCorruption: return StatusCode::kCorruption;
    case FaultKind::kUnavailable: return StatusCode::kResourceExhausted;
    case FaultKind::kConflict: return StatusCode::kAborted;
    case FaultKind::kKill: return StatusCode::kUnavailable;
  }
  return StatusCode::kInternal;
}

bool IsFabricFault(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
    case StatusCode::kResourceExhausted:
    // A dead component is the extreme fabric fault: the work can still
    // complete on the host path / a live replica, it just never retries.
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

const std::vector<SiteInfo>& KnownSites() {
  // Default penalties are rough simulated-cycle costs of the physical
  // recovery action at each layer (re-issuing a gather descriptor, an
  // ECC correct-and-scrub, a flash read retry, ...), same order of
  // magnitude as the neighbouring CostModel/SsdModel parameters.
  static const std::vector<SiteInfo> kSites = {
      {"rm.config", FaultKind::kUnavailable, 5000,
       "fabric rejects the ephemeral-view descriptor"},
      {"rm.stall", FaultKind::kStall, 2000,
       "transformer pipeline bubble while producing a chunk"},
      {"rm.gather", FaultKind::kTimeout, 4000,
       "bank-parallel gather misses its deadline"},
      {"dram.ecc", FaultKind::kStall, 600,
       "correctable DRAM ECC event (per cache line touched)"},
      {"ssd.read", FaultKind::kTimeout, 45000,
       "internal flash page read fails and is re-issued"},
      {"ssd.ship", FaultKind::kTimeout, 6000,
       "host interface transfer fails and is re-issued"},
      {"mvcc.commit", FaultKind::kTimeout, 2500,
       "commit machinery hiccup (visibility-bit publish retry)"},
      // Kill sites: permanent component death, drawn by the
      // HealthRegistry (one opportunity per serving attempt) instead of
      // the per-operation injector. No penalty cycles — the cost of a
      // death is the failover / degradation it forces.
      {"shard.kill", FaultKind::kKill, 0,
       "a shard replica dies permanently (failover to the next replica)"},
      {"rm.kill", FaultKind::kKill, 0,
       "the RM transformer dies permanently (planner avoids it)"},
      {"rs.kill", FaultKind::kKill, 0,
       "the computational-SSD engine dies permanently (host scans only)"},
      {"node.kill", FaultKind::kKill, 0,
       "a simulated cluster node dies permanently (its replicas fail over "
       "to other nodes)"},
  };
  return kSites;
}

const SiteInfo* FindSite(std::string_view name) {
  for (const SiteInfo& site : KnownSites()) {
    if (name == site.name) return &site;
  }
  return nullptr;
}

bool IsKillSite(std::string_view name) {
  constexpr std::string_view kSuffix = ".kill";
  return name.size() > kSuffix.size() &&
         name.substr(name.size() - kSuffix.size()) == kSuffix;
}

StatusOr<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  for (std::string_view entry : Split(spec, ';')) {
    const size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      // Only the global 'seed=N' pseudo-entry may omit the site prefix.
      const size_t eq = entry.find('=');
      if (eq != std::string_view::npos && Trim(entry.substr(0, eq)) == "seed") {
        RELFAB_ASSIGN_OR_RETURN(plan.seed,
                                ParseU64(Trim(entry.substr(eq + 1)), "seed"));
        continue;
      }
      return Status::InvalidArgument(
          "fault spec: entry '" + std::string(entry) +
          "' is not 'site:params' or 'seed=N'");
    }
    const std::string_view site_name = Trim(entry.substr(0, colon));
    const SiteInfo* info = FindSite(site_name);
    if (info == nullptr) {
      return Status::InvalidArgument("fault spec: unknown site '" +
                                     std::string(site_name) + "'");
    }
    if (plan.Find(site_name) != nullptr) {
      return Status::InvalidArgument("fault spec: duplicate site '" +
                                     std::string(site_name) + "'");
    }
    FaultRule rule;
    rule.site = std::string(site_name);
    rule.kind = info->default_kind;
    rule.penalty_cycles = info->default_penalty_cycles;
    for (std::string_view param : Split(entry.substr(colon + 1), ',')) {
      const size_t eq = param.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument("fault spec: parameter '" +
                                       std::string(param) +
                                       "' is not 'key=value'");
      }
      const std::string_view key = Trim(param.substr(0, eq));
      const std::string_view value = Trim(param.substr(eq + 1));
      if (key == "p") {
        RELFAB_ASSIGN_OR_RETURN(rule.probability,
                                ParseDouble(value, "probability"));
        if (rule.probability < 0.0 || rule.probability > 1.0) {
          return Status::InvalidArgument(
              "fault spec: probability " + std::string(value) +
              " for site '" + rule.site + "' is outside [0, 1]");
        }
      } else if (key == "kind") {
        RELFAB_ASSIGN_OR_RETURN(rule.kind, ParseKind(value));
      } else if (key == "cycles") {
        RELFAB_ASSIGN_OR_RETURN(rule.penalty_cycles,
                                ParseDouble(value, "cycles"));
        if (rule.penalty_cycles < 0.0) {
          return Status::InvalidArgument(
              "fault spec: negative penalty cycles for site '" + rule.site +
              "'");
        }
      } else {
        return Status::InvalidArgument("fault spec: unknown parameter '" +
                                       std::string(key) + "' for site '" +
                                       rule.site + "'");
      }
    }
    if (IsKillSite(rule.site) != (rule.kind == FaultKind::kKill)) {
      return Status::InvalidArgument(
          rule.kind == FaultKind::kKill
              ? "fault spec: kind=kill is only valid at the .kill sites, "
                "not '" + rule.site + "'"
              : "fault spec: site '" + rule.site +
                    "' is a kill site and only accepts kind=kill");
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

StatusOr<FaultPlan> FaultPlan::FromEnv() {
  const char* spec = std::getenv(kEnvVar);
  FaultPlan plan;
  if (spec != nullptr && *spec != '\0') {
    RELFAB_ASSIGN_OR_RETURN(plan, Parse(spec));
  }
  if (const char* seed = std::getenv(kSeedEnvVar);
      seed != nullptr && *seed != '\0') {
    RELFAB_ASSIGN_OR_RETURN(plan.seed, ParseU64(seed, "seed"));
  }
  return plan;
}

const FaultRule* FaultPlan::Find(std::string_view site) const {
  for (const FaultRule& rule : rules) {
    if (rule.site == site) return &rule;
  }
  return nullptr;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (const FaultRule& rule : rules) {
    out << ";" << rule.site << ":p=" << rule.probability
        << ",kind=" << FaultKindName(rule.kind)
        << ",cycles=" << rule.penalty_cycles;
  }
  return out.str();
}

}  // namespace relfab::faults
