#include "faults/retry.h"

#include <algorithm>

namespace relfab::faults {

double RetryPolicy::BackoffFor(uint32_t retry_index) const {
  double backoff = initial_backoff_cycles;
  for (uint32_t i = 0; i < retry_index; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_cycles) return max_backoff_cycles;
  }
  return std::min(backoff, max_backoff_cycles);
}

Status InjectAndRetry(FaultInjector* injector, int site,
                      const RetryPolicy& policy,
                      const std::function<void(double)>& charge,
                      std::string_view what, obs::Tracer* tracer) {
  if (injector == nullptr || site < 0) return Status::Ok();
  const FaultRule& rule = injector->rule(site);
  for (uint32_t attempt = 1;; ++attempt) {
    if (!injector->ShouldInject(site)) return Status::Ok();
    charge(rule.penalty_cycles);
    if (rule.kind == FaultKind::kStall) return Status::Ok();
    if (rule.kind == FaultKind::kConflict) {
      return injector->MakeError(site, what);
    }
    const double backoff = policy.BackoffFor(attempt - 1);
    if (attempt >= policy.max_attempts ||
        !injector->ConsumeRetryBudget(site, backoff, policy.budget_cycles)) {
      injector->NoteExhausted(site);
      return injector->MakeError(site, what);
    }
    {
      obs::Span span(tracer, "faults.retry", "faults");
      span.AddArg("site", rule.site);
      span.AddArg("attempt", static_cast<uint64_t>(attempt));
      span.AddArg("backoff_cycles", static_cast<uint64_t>(backoff));
      charge(backoff);
    }
    injector->NoteRetry(site);
  }
}

}  // namespace relfab::faults
