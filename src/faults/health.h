#ifndef RELFAB_FAULTS_HEALTH_H_
#define RELFAB_FAULTS_HEALTH_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "faults/fault_plan.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"

namespace relfab::faults {

/// Availability state of one failure-domain component. HEALTHY and
/// DEGRADED are recoverable; DEAD is permanent for the session.
enum class HealthState : uint8_t { kHealthy, kDegraded, kDead };

std::string_view HealthStateName(HealthState state);

/// Session-wide component health: the failure-domain layer's single
/// source of truth for "is this component usable". Components are named
/// strings — "rm", "rs", "<table>.shard<i>.r<j>" — created lazily on
/// first touch in the HEALTHY state.
///
/// Two event sources drive the state machine:
///
///  1. Kill draws (permanent death). ArmKills captures the plan's
///     ".kill" rules; each component then owns a private PRNG stream
///     seeded from (plan seed, site name, component name), and every
///     serving attempt is one Bernoulli(p) opportunity. Once a draw
///     fires the component is DEAD for the rest of the session. Because
///     a component's stream advances only on its own draws — and all
///     draws happen in single-threaded coordinator code — the death
///     schedule is an exact function of (plan, workload): bit-identical
///     across host thread counts, simulator modes and replays.
///
///  2. Circuit-breaker reports (DEGRADED and back).
///     kDegradeAfterFailures consecutive ReportFailure calls, or a
///     single ReportExhausted (retry budget spent), trip HEALTHY ->
///     DEGRADED; kRecoverAfterSuccesses consecutive ReportSuccess calls
///     recover DEGRADED -> HEALTHY. DEAD is absorbing.
///
/// Everything here is cycle-domain bookkeeping on the host: transitions
/// are recorded with the simulated cycle the caller passes in, exported
/// as "health.*" gauges, and mirrored as flight-recorder markers.
/// Single-threaded by contract, like the rest of the per-session
/// telemetry: all calls happen in statement-scope coordinator code
/// (planner, executor, scheduler pre-fan-out / post-join), never inside
/// shard worker tasks.
class HealthRegistry {
 public:
  /// Consecutive ReportFailure calls that trip HEALTHY -> DEGRADED.
  static constexpr int kDegradeAfterFailures = 3;
  /// Consecutive ReportSuccess calls that recover DEGRADED -> HEALTHY.
  static constexpr int kRecoverAfterSuccesses = 2;

  /// One permanent death, in draw order (the replayable schedule).
  struct DeathRecord {
    std::string component;
    std::string site;    // ".kill" site, or "" for MarkDead
    std::string cause;
    uint64_t cycles = 0;  // simulated cycle of the fatal event
    uint64_t draw = 0;    // the component's draw count when it died
  };

  /// Captures the plan's ".kill" rules and seed, and RESETS all health
  /// state — arming is a session boundary, so a re-armed registry
  /// replays the same death schedule from scratch. A plan without kill
  /// rules leaves the registry disarmed (draws never fire) but the
  /// circuit breaker still tracks DEGRADED.
  void ArmKills(const FaultPlan& plan);

  bool armed() const { return !kill_rules_.empty(); }

  /// One kill opportunity for `component` against the `site` rule
  /// (e.g. "shard.kill"). Draws the component's private stream; true
  /// means the component just died (recorded + marker emitted). False
  /// when the site is unarmed or the component is already DEAD.
  bool DrawKill(std::string_view site, const std::string& component,
                uint64_t now_cycles);

  /// kHealthy for components never seen.
  HealthState state(const std::string& component) const;
  bool alive(const std::string& component) const {
    return state(component) != HealthState::kDead;
  }

  /// Administrative death (no draw): e.g. tests, or a component whose
  /// own machinery proved it unusable.
  void MarkDead(const std::string& component, const std::string& cause,
                uint64_t now_cycles);

  void ReportSuccess(const std::string& component);
  void ReportFailure(const std::string& component, const std::string& cause,
                     uint64_t now_cycles);
  /// Retry-budget exhaustion trips DEGRADED immediately.
  void ReportExhausted(const std::string& component, const std::string& cause,
                       uint64_t now_cycles);

  /// Deaths in draw order — the schedule chaos tests replay exactly.
  const std::vector<DeathRecord>& deaths() const { return deaths_; }
  uint64_t draws() const { return draws_; }
  uint64_t transitions() const { return transitions_; }
  size_t CountInState(HealthState state) const;

  /// Canonical one-line state summary ("rm=dead readings.shard0.r0=dead
  /// ..."), components in name order. Tests compare these strings for
  /// health-state bit-identity across thread counts and sim modes.
  std::string ToString() const;

  /// State-transition markers land here ("health" category). Null
  /// detaches.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Exports "health.{healthy,degraded,dead,draws,deaths,transitions}"
  /// gauges plus per-component "health.<component>.state" (0 healthy,
  /// 1 degraded, 2 dead).
  void ExportTo(obs::Registry* registry) const;

 private:
  struct Component {
    HealthState state = HealthState::kHealthy;
    Random rng{1};
    bool rng_seeded = false;
    uint64_t draws = 0;
    int consecutive_failures = 0;
    int consecutive_successes = 0;
  };

  Component& Touch(const std::string& component);
  void Transition(const std::string& component, Component* c,
                  HealthState next, const std::string& cause,
                  uint64_t now_cycles);

  uint64_t seed_ = 0;
  std::vector<FaultRule> kill_rules_;  // the plan's ".kill" rules only
  /// Ordered map: export/ToString order is name order, never insertion
  /// or hash order, so summaries are scheduling-invariant.
  std::map<std::string, Component> components_;
  std::vector<DeathRecord> deaths_;
  uint64_t draws_ = 0;
  uint64_t transitions_ = 0;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace relfab::faults

#endif  // RELFAB_FAULTS_HEALTH_H_
