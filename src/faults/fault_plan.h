#ifndef RELFAB_FAULTS_FAULT_PLAN_H_
#define RELFAB_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace relfab::faults {

/// What an injected fault does to the victim operation. The paper's
/// fabric is real hardware on the data path (FPGA transformer, DRAM
/// banks, computational SSD), so the taxonomy mirrors the physical
/// failure modes of each layer rather than generic software errors.
enum class FaultKind : uint8_t {
  /// Transient pipeline hiccup: the operation completes after paying the
  /// penalty cycles. Never surfaces as a Status error.
  kStall,
  /// The component did not answer within its deadline -> kIoError.
  kTimeout,
  /// The component answered with bad data that failed verification and
  /// must be refetched -> kCorruption.
  kCorruption,
  /// The component refused the request (busy, offline, out of internal
  /// resources) -> kResourceExhausted.
  kUnavailable,
  /// Transactional conflict (MVCC first-committer-wins loser) ->
  /// kAborted. Not retried by the machinery: the transaction itself must
  /// restart, so the error surfaces after a single injection.
  kConflict,
  /// Permanent component death -> kUnavailable. Once fired the component
  /// stays dead for the rest of the session (recorded in the
  /// HealthRegistry); retries never help, failover or degradation is the
  /// only recovery. Valid only at the ".kill" sites, which are drawn by
  /// the HealthRegistry rather than the per-operation FaultInjector.
  kKill,
};

std::string_view FaultKindName(FaultKind kind);

/// Status code an injected fault of `kind` surfaces as once retries are
/// exhausted (kStall never surfaces; it maps to kIoError if forced).
StatusCode FaultKindCode(FaultKind kind);

/// True for errors that mean "the fabric / accelerator path failed" and
/// the work can instead be completed on the plain host path (graceful
/// degradation). Programmer errors (kInvalidArgument...) and
/// transactional aborts (kAborted) are NOT fabric faults: the former are
/// bugs and the latter must be handled by restarting the transaction.
bool IsFabricFault(const Status& status);

/// One armed injection site.
struct FaultRule {
  std::string site;            // e.g. "rm.gather" (see KnownSites())
  double probability = 1.0;    // chance per injection opportunity
  FaultKind kind = FaultKind::kTimeout;
  double penalty_cycles = 0;   // simulated cycles charged per injection
};

/// A known injection site with its default fault shape. Sites are fixed
/// at compile time so a typo in a spec string is a parse error rather
/// than a silently dead rule.
struct SiteInfo {
  const char* name;
  FaultKind default_kind;
  double default_penalty_cycles;
  const char* description;
};

/// All injection sites wired into the stack.
const std::vector<SiteInfo>& KnownSites();
const SiteInfo* FindSite(std::string_view name);

/// True for the ".kill" sites (permanent component death). Kill rules
/// are executed by the HealthRegistry, not the per-operation injector.
bool IsKillSite(std::string_view name);

/// Parsed, validated fault configuration. Grammar (whitespace around
/// tokens is ignored):
///
///   plan    := entry (';' entry)*
///   entry   := site ':' param (',' param)*   |   'seed=' uint64
///   param   := 'p=' float | 'kind=' kindname | 'cycles=' float
///
/// e.g.  RELFAB_FAULTS="rm.stall:p=0.01;dram.ecc:p=1e-6;ssd.read:p=0.001,kind=timeout"
///
/// `p` defaults to 1.0 (always fire — useful for deterministic tests),
/// `kind` and `cycles` default per site (KnownSites()). Unknown sites,
/// probabilities outside [0, 1], unknown kinds, negative or non-finite
/// cycles, and duplicate sites are kInvalidArgument. The `kill` kind is
/// tied to the ".kill" sites (shard.kill / rm.kill / rs.kill): a kill
/// kind on a transient site, or a transient kind on a kill site, is
/// also kInvalidArgument — permanent death and per-operation retry are
/// different machineries and must not be mixed silently.
struct FaultPlan {
  /// Seed for the per-site deterministic PRNG streams. Two runs with the
  /// same plan (spec + seed) inject exactly the same faults.
  uint64_t seed = 0xfab51c5u;
  std::vector<FaultRule> rules;

  static constexpr const char* kEnvVar = "RELFAB_FAULTS";
  static constexpr const char* kSeedEnvVar = "RELFAB_FAULTS_SEED";

  static StatusOr<FaultPlan> Parse(std::string_view spec);

  /// Builds the plan from $RELFAB_FAULTS (empty/unset -> unarmed plan)
  /// and $RELFAB_FAULTS_SEED (overrides any seed= entry in the spec).
  static StatusOr<FaultPlan> FromEnv();

  bool armed() const { return !rules.empty(); }
  const FaultRule* Find(std::string_view site) const;

  /// Canonical spec string (parseable by Parse).
  std::string ToString() const;
};

}  // namespace relfab::faults

#endif  // RELFAB_FAULTS_FAULT_PLAN_H_
