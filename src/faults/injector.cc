#include "faults/injector.h"

#include <cmath>

#include "common/logging.h"

namespace relfab::faults {
namespace {

/// FNV-1a, so a site's stream depends on its name, not its rule index —
/// adding a site to a plan does not shift the faults other sites see.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// "Never" gap for p = 0 sites: large enough that no simulated run
/// reaches it, small enough that countdown arithmetic cannot overflow.
constexpr uint64_t kInfiniteGap = uint64_t{1} << 62;

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  sites_.resize(plan_.rules.size());
  ResetStreams();
}

StatusOr<std::unique_ptr<FaultInjector>> FaultInjector::FromEnv() {
  StatusOr<FaultPlan> plan = FaultPlan::FromEnv();
  if (!plan.ok()) {
    return Status(plan.status().code(), "$" + std::string(FaultPlan::kEnvVar) +
                                            ": " + plan.status().message());
  }
  if (!plan->armed()) return std::unique_ptr<FaultInjector>();
  return std::make_unique<FaultInjector>(*std::move(plan));
}

uint64_t FaultInjector::SiteSeed(const std::string& site) const {
  // seed-dependent and site-dependent; never 0 (xorshift fixed point).
  const uint64_t mixed = plan_.seed ^ Fnv1a(site);
  return mixed == 0 ? 0x9e3779b97f4a7c15ull : mixed;
}

int FaultInjector::Site(std::string_view site) const {
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    if (plan_.rules[i].site == site) return static_cast<int>(i);
  }
  return kNoSite;
}

bool FaultInjector::ShouldInject(int handle) {
  if (handle < 0) return false;
  SiteState& state = sites_[handle];
  ++state.checks;
  if (!state.rng.Bernoulli(plan_.rules[handle].probability)) return false;
  ++state.injected;
  return true;
}

uint64_t FaultInjector::NextGap(int handle) {
  if (handle < 0) return kInfiniteGap;
  SiteState& state = sites_[handle];
  const double p = plan_.rules[handle].probability;
  if (p <= 0.0) return kInfiniteGap;
  if (p >= 1.0) return 0;
  // Geometric(p): number of failures before the first success of a
  // Bernoulli(p) sequence. Inverse-CDF on one uniform draw.
  const double u = state.rng.NextDouble();  // [0, 1)
  const double gap = std::floor(std::log1p(-u) / std::log1p(-p));
  if (!(gap < static_cast<double>(kInfiniteGap))) return kInfiniteGap;
  return static_cast<uint64_t>(gap);
}

Status FaultInjector::MakeError(int handle, std::string_view detail) const {
  RELFAB_CHECK(handle >= 0) << "MakeError on unarmed site";
  const FaultRule& rule = plan_.rules[handle];
  std::string msg = "injected " + std::string(FaultKindName(rule.kind)) +
                    " at " + rule.site;
  if (!detail.empty()) msg += ": " + std::string(detail);
  return Status(FaultKindCode(rule.kind), std::move(msg));
}

void FaultInjector::NoteChecks(int handle, uint64_t n) {
  if (handle >= 0) sites_[handle].checks += n;
}

void FaultInjector::NoteInjected(int handle) {
  if (handle >= 0) ++sites_[handle].injected;
}

void FaultInjector::NoteRetry(int handle) {
  if (handle >= 0) ++sites_[handle].retries;
}

void FaultInjector::NoteExhausted(int handle) {
  if (handle >= 0) ++sites_[handle].exhausted;
}

void FaultInjector::NoteFallback(std::string_view from) {
  ++total_fallbacks_;
  for (auto& [name, count] : fallbacks_) {
    if (name == from) {
      ++count;
      return;
    }
  }
  fallbacks_.emplace_back(std::string(from), 1);
}

bool FaultInjector::ConsumeRetryBudget(int handle, double backoff_cycles,
                                       double budget_cycles) {
  if (handle < 0) return true;
  SiteState& state = sites_[handle];
  if (state.backoff_spent + backoff_cycles > budget_cycles) return false;
  state.backoff_spent += backoff_cycles;
  return true;
}

uint64_t FaultInjector::checks(int handle) const {
  return handle < 0 ? 0 : sites_[handle].checks;
}
uint64_t FaultInjector::injected(int handle) const {
  return handle < 0 ? 0 : sites_[handle].injected;
}
uint64_t FaultInjector::retries(int handle) const {
  return handle < 0 ? 0 : sites_[handle].retries;
}
uint64_t FaultInjector::exhausted(int handle) const {
  return handle < 0 ? 0 : sites_[handle].exhausted;
}

uint64_t FaultInjector::total_checks() const {
  uint64_t n = 0;
  for (const SiteState& s : sites_) n += s.checks;
  return n;
}
uint64_t FaultInjector::total_injected() const {
  uint64_t n = 0;
  for (const SiteState& s : sites_) n += s.injected;
  return n;
}
uint64_t FaultInjector::total_retries() const {
  uint64_t n = 0;
  for (const SiteState& s : sites_) n += s.retries;
  return n;
}
uint64_t FaultInjector::total_exhausted() const {
  uint64_t n = 0;
  for (const SiteState& s : sites_) n += s.exhausted;
  return n;
}
uint64_t FaultInjector::total_fallbacks() const { return total_fallbacks_; }

void FaultInjector::ResetStreams() {
  for (size_t i = 0; i < sites_.size(); ++i) {
    // relfab-lint: allow(ambient-random) the one sanctioned derived-seeding path: per-site streams seeded from (plan seed, site name) only — see docs/static-analysis.md
    sites_[i].rng = Random(SiteSeed(plan_.rules[i].site));
    sites_[i].backoff_spent = 0;
  }
}

void FaultInjector::ResetCounters() {
  for (SiteState& s : sites_) {
    s.checks = s.injected = s.retries = s.exhausted = 0;
  }
  fallbacks_.clear();
  total_fallbacks_ = 0;
}

void FaultInjector::ExportTo(obs::Registry* registry) const {
  registry->Set("faults.armed", plan_.armed() ? 1 : 0);
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const std::string prefix = "faults." + plan_.rules[i].site;
    registry->counter(prefix + ".checks")->Set(sites_[i].checks);
    registry->counter(prefix + ".injected")->Set(sites_[i].injected);
    registry->counter(prefix + ".retries")->Set(sites_[i].retries);
    registry->counter(prefix + ".exhausted")->Set(sites_[i].exhausted);
  }
  for (const auto& [from, count] : fallbacks_) {
    registry->counter("faults.fallbacks." + from)->Set(count);
  }
  registry->counter("faults.fallbacks.total")->Set(total_fallbacks_);
}

}  // namespace relfab::faults
