#ifndef RELFAB_FAULTS_INJECTOR_H_
#define RELFAB_FAULTS_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "faults/fault_plan.h"
#include "obs/registry.h"

namespace relfab::faults {

/// Executes a FaultPlan deterministically. Each armed site gets its own
/// PRNG stream seeded from (plan seed, site name), so the fault sequence
/// a component sees depends only on how many injection opportunities
/// *that component* has hit — never on what other components did in
/// between. That order-independence is what makes chaos runs replayable
/// and bench sweeps thread-count-invariant (with ResetStreams() between
/// cells).
///
/// Components hold a raw pointer (null = unarmed, zero overhead) and
/// resolve their site names to integer handles once at wiring time;
/// the per-opportunity check is then one pointer test plus one PRNG
/// draw. Counters are exported under "faults.*".
class FaultInjector {
 public:
  /// Handle value for a site the plan does not arm.
  static constexpr int kNoSite = -1;

  explicit FaultInjector(FaultPlan plan);

  /// Convenience for mains/benches: builds an injector from
  /// $RELFAB_FAULTS, nullptr when unset/empty-plan. A malformed spec is
  /// an operator error surfaced as kInvalidArgument — callers print the
  /// parse message and decide whether to continue unarmed or exit; the
  /// process never aborts on operator-typed input.
  static StatusOr<std::unique_ptr<FaultInjector>> FromEnv();

  const FaultPlan& plan() const { return plan_; }

  /// Resolves a site name to a handle; kNoSite when the plan does not
  /// arm it (all per-handle entry points accept kNoSite as a no-op).
  int Site(std::string_view site) const;
  const FaultRule& rule(int handle) const { return plan_.rules[handle]; }

  /// One injection opportunity: draws the site's Bernoulli(p) and counts
  /// the check (and the injection, when it fires).
  bool ShouldInject(int handle);

  /// Number of further opportunities until the site's next fault, drawn
  /// from the geometric distribution matching per-opportunity Bernoulli
  /// draws. Lets ultra-hot paths (per-DRAM-line ECC) run a countdown
  /// instead of a PRNG draw per event. p = 0 returns a practically
  /// infinite gap; p = 1 returns 0 (next opportunity fires). Counts
  /// nothing — countdown users report via NoteChecks/NoteInjected when
  /// events actually occur.
  uint64_t NextGap(int handle);

  /// Accounting entry points for countdown-based sites (ShouldInject
  /// counts its own checks/injections).
  void NoteChecks(int handle, uint64_t n);
  void NoteInjected(int handle);

  /// The Status an injected fault at this site surfaces as.
  Status MakeError(int handle, std::string_view detail) const;

  // --- accounting (all no-ops on kNoSite) ---
  void NoteRetry(int handle);
  void NoteExhausted(int handle);
  /// Records a component-level degradation to the host path, keyed by
  /// the site/path that gave up (e.g. "hybrid.select", "query.rm").
  void NoteFallback(std::string_view from);

  /// Deducts `backoff_cycles` from the site's retry budget; false when
  /// the budget (cumulative across the injector's lifetime) would be
  /// exceeded — the caller must stop retrying.
  bool ConsumeRetryBudget(int handle, double backoff_cycles,
                          double budget_cycles);

  uint64_t checks(int handle) const;
  uint64_t injected(int handle) const;
  uint64_t retries(int handle) const;
  uint64_t exhausted(int handle) const;
  uint64_t total_checks() const;
  uint64_t total_injected() const;
  uint64_t total_retries() const;
  uint64_t total_exhausted() const;
  uint64_t total_fallbacks() const;

  /// Re-seeds every site stream and clears retry budgets (counters are
  /// kept). Benches call this per cell so results do not depend on which
  /// worker ran the previous cells.
  void ResetStreams();

  /// Zeroes all counters (streams are kept).
  void ResetCounters();

  /// Exports "faults.armed", per-site "faults.<site>.{checks,injected,
  /// retries,exhausted}" and "faults.fallbacks.{<from>,total}".
  void ExportTo(obs::Registry* registry) const;

 private:
  struct SiteState {
    Random rng{1};
    uint64_t checks = 0;
    uint64_t injected = 0;
    uint64_t retries = 0;
    uint64_t exhausted = 0;
    double backoff_spent = 0;
  };

  uint64_t SiteSeed(const std::string& site) const;

  FaultPlan plan_;
  std::vector<SiteState> sites_;  // parallel to plan_.rules
  std::vector<std::pair<std::string, uint64_t>> fallbacks_;
  uint64_t total_fallbacks_ = 0;
};

}  // namespace relfab::faults

#endif  // RELFAB_FAULTS_INJECTOR_H_
