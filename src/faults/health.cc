#include "faults/health.h"

#include <sstream>

namespace relfab::faults {
namespace {

/// FNV-1a (same constants as the injector's site-stream seeding): a
/// component's stream depends on names only, never on arming order.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kDead: return "dead";
  }
  return "?";
}

void HealthRegistry::ArmKills(const FaultPlan& plan) {
  seed_ = plan.seed;
  kill_rules_.clear();
  for (const FaultRule& rule : plan.rules) {
    if (rule.kind == FaultKind::kKill) kill_rules_.push_back(rule);
  }
  // Arming is a session boundary: the same plan replays the same death
  // schedule from a clean slate.
  components_.clear();
  deaths_.clear();
  draws_ = 0;
  transitions_ = 0;
}

HealthRegistry::Component& HealthRegistry::Touch(
    const std::string& component) {
  return components_[component];
}

HealthState HealthRegistry::state(const std::string& component) const {
  const auto it = components_.find(component);
  return it == components_.end() ? HealthState::kHealthy : it->second.state;
}

void HealthRegistry::Transition(const std::string& component, Component* c,
                                HealthState next, const std::string& cause,
                                uint64_t now_cycles) {
  if (c->state == next) return;
  ++transitions_;
  if (recorder_ != nullptr) {
    recorder_->Log("health",
                   component + ": " + std::string(HealthStateName(c->state)) +
                       " -> " + std::string(HealthStateName(next)) +
                       (cause.empty() ? "" : " (" + cause + ")"),
                   now_cycles);
  }
  c->state = next;
}

bool HealthRegistry::DrawKill(std::string_view site,
                              const std::string& component,
                              uint64_t now_cycles) {
  const FaultRule* rule = nullptr;
  for (const FaultRule& r : kill_rules_) {
    if (r.site == site) {
      rule = &r;
      break;
    }
  }
  if (rule == nullptr) return false;
  Component& c = Touch(component);
  if (c.state == HealthState::kDead) return false;
  if (!c.rng_seeded) {
    // Derived seeding only: (plan seed, site name, component name) —
    // the same sanctioned scheme as FaultInjector::ResetStreams.
    uint64_t mixed = seed_ ^ Fnv1a(site) ^ (Fnv1a(component) * 0x9e3779b97f4a7c15ull);
    if (mixed == 0) mixed = 0x9e3779b97f4a7c15ull;
    // relfab-lint: allow(ambient-random) derived seeding from (plan seed, site, component) only — scheduling-invariant kill streams, see docs/robustness.md
    c.rng = Random(mixed);
    c.rng_seeded = true;
  }
  ++draws_;
  ++c.draws;
  if (!c.rng.Bernoulli(rule->probability)) return false;
  DeathRecord death;
  death.component = component;
  death.site = std::string(site);
  death.cause = "injected kill at " + std::string(site);
  death.cycles = now_cycles;
  death.draw = c.draws;
  deaths_.push_back(death);
  Transition(component, &c, HealthState::kDead, death.cause, now_cycles);
  return true;
}

void HealthRegistry::MarkDead(const std::string& component,
                              const std::string& cause,
                              uint64_t now_cycles) {
  Component& c = Touch(component);
  if (c.state == HealthState::kDead) return;
  DeathRecord death;
  death.component = component;
  death.cause = cause;
  death.cycles = now_cycles;
  death.draw = c.draws;
  deaths_.push_back(death);
  Transition(component, &c, HealthState::kDead, cause, now_cycles);
}

void HealthRegistry::ReportSuccess(const std::string& component) {
  Component& c = Touch(component);
  if (c.state == HealthState::kDead) return;
  c.consecutive_failures = 0;
  if (c.state == HealthState::kDegraded) {
    if (++c.consecutive_successes >= kRecoverAfterSuccesses) {
      Transition(component, &c, HealthState::kHealthy,
                 "circuit breaker recovered", 0);
      c.consecutive_successes = 0;
    }
  }
}

void HealthRegistry::ReportFailure(const std::string& component,
                                   const std::string& cause,
                                   uint64_t now_cycles) {
  Component& c = Touch(component);
  if (c.state == HealthState::kDead) return;
  c.consecutive_successes = 0;
  if (++c.consecutive_failures >= kDegradeAfterFailures &&
      c.state == HealthState::kHealthy) {
    Transition(component, &c, HealthState::kDegraded,
               "circuit breaker: " + std::to_string(c.consecutive_failures) +
                   " consecutive failures (" + cause + ")",
               now_cycles);
  }
}

void HealthRegistry::ReportExhausted(const std::string& component,
                                     const std::string& cause,
                                     uint64_t now_cycles) {
  Component& c = Touch(component);
  if (c.state == HealthState::kDead) return;
  c.consecutive_successes = 0;
  ++c.consecutive_failures;
  if (c.state == HealthState::kHealthy) {
    Transition(component, &c, HealthState::kDegraded,
               "retry budget exhausted (" + cause + ")", now_cycles);
  }
}

size_t HealthRegistry::CountInState(HealthState state) const {
  size_t n = 0;
  for (const auto& [name, c] : components_) {
    if (c.state == state) ++n;
  }
  return n;
}

std::string HealthRegistry::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, c] : components_) {
    if (!first) os << " ";
    first = false;
    os << name << "=" << HealthStateName(c.state);
  }
  if (first) os << "(no components tracked)";
  return os.str();
}

void HealthRegistry::ExportTo(obs::Registry* registry) const {
  registry->gauge("health.armed")->Set(armed() ? 1 : 0);
  registry->gauge("health.healthy")
      ->Set(static_cast<double>(CountInState(HealthState::kHealthy)));
  registry->gauge("health.degraded")
      ->Set(static_cast<double>(CountInState(HealthState::kDegraded)));
  registry->gauge("health.dead")
      ->Set(static_cast<double>(CountInState(HealthState::kDead)));
  registry->counter("health.draws")->Set(draws_);
  registry->counter("health.deaths")->Set(deaths_.size());
  registry->counter("health.transitions")->Set(transitions_);
  for (const auto& [name, c] : components_) {
    registry->gauge("health." + name + ".state")
        ->Set(static_cast<double>(static_cast<int>(c.state)));
  }
}

}  // namespace relfab::faults
