#ifndef RELFAB_FAULTS_RETRY_H_
#define RELFAB_FAULTS_RETRY_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/status.h"
#include "faults/injector.h"
#include "obs/trace.h"

namespace relfab::faults {

/// Retry discipline measured in *simulated* cycles: attempts are spaced
/// by capped exponential backoff, and each site has a cumulative backoff
/// budget so a persistently failing component cannot consume unbounded
/// simulated time before the caller degrades to the host path.
struct RetryPolicy {
  uint32_t max_attempts = 4;            // total tries (1 + retries)
  double initial_backoff_cycles = 2048;
  double backoff_multiplier = 2.0;
  double max_backoff_cycles = 1 << 16;
  double budget_cycles = 1 << 20;       // per-site, injector lifetime

  /// Backoff charged before retry number `retry_index` (0-based).
  double BackoffFor(uint32_t retry_index) const;
};

/// The standard injection-point protocol, wrapped around a simulated
/// operation that has already been charged: draws the site's fault; on a
/// fault charges the penalty via `charge` (the caller decides which
/// clock/accumulator the cycles land on) and, for retryable kinds,
/// charges backoff and redraws up to the policy's attempt/budget limits.
///
/// Returns Ok when no fault fires, the fault is a pure stall, or a retry
/// eventually clears it; otherwise the site's mapped error. kConflict
/// faults surface immediately (transactions restart, machinery does not
/// retry them). With a null injector or unarmed site: Ok, zero cost.
///
/// Every retry emits a "faults.retry" span (site/attempt/backoff args)
/// when `tracer` is enabled, so attempts render on the caller's
/// timeline.
Status InjectAndRetry(FaultInjector* injector, int site,
                      const RetryPolicy& policy,
                      const std::function<void(double)>& charge,
                      std::string_view what, obs::Tracer* tracer = nullptr);

}  // namespace relfab::faults

#endif  // RELFAB_FAULTS_RETRY_H_
