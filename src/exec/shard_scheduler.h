#ifndef RELFAB_EXEC_SHARD_SCHEDULER_H_
#define RELFAB_EXEC_SHARD_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "exec/exec_context.h"
#include "exec/options.h"
#include "net/network_model.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "shard/sharded_table.h"
#include "sim/memory_system.h"
#include "sim/params.h"

namespace relfab::exec {

class NodeGroup;

/// Parallel shard fan-out: runs one scan per surviving shard on a pool
/// of host worker threads and merges the partial results shard-major.
///
/// Determinism contract (the property shard_exec_test pins): answers
/// AND simulated cycles are bit-identical at any host thread count.
/// Three mechanisms deliver it:
///
///  1. Worker-private sim rigs (bench_util.h's PerWorker pattern): each
///     host worker owns a private MemorySystem + RmEngine, so shard
///     scans never share simulator state.
///  2. MemorySystem::ResetAddressSpace() at the head of every shard
///     task: the rig is returned to the cold, freshly-booted state —
///     including the simulated allocator — so a shard's cycles are a
///     pure function of (sim params, shard data, query), independent of
///     which rig ran it or what that rig ran before.
///  3. Shard-major merge: partials are combined in shard-id order after
///     all tasks joined, never in completion order.
///
/// Cycle semantics: the surviving shards are dealt shard-major onto P
/// *simulated* workers (P = QueryOptions::max_threads, or one per shard
/// when <= 0); each simulated worker's time is the sum of its shards'
/// cycles; the fan-out costs max-over-workers (they run in parallel)
/// plus the host-side merge of the partials. Host threads only change
/// wall time.
///
/// Per-shard fault isolation: each shard task gets a private
/// FaultInjector seeded from (plan seed, shard id), so a fault hits the
/// same shard regardless of scheduling. A fabric fault inside one shard
/// degrades only that shard to the Volcano path (PR 3's fallback); the
/// failed attempt's cycles stay on that shard's clock and the query
/// still answers.
///
/// Failure domains (docs/robustness.md): before fan-out the scheduler
/// selects, per shard, the lowest-index live replica — consulting
/// ctx.health for liveness and drawing one "shard.kill" opportunity per
/// selection attempt — and charges CostModel::shard_failover_cycles per
/// dead replica skipped. A shard with no live replica fails the query
/// with kUnavailable (or is skipped with QueryResult::partial under
/// QueryOptions::allow_partial). All health access happens in the
/// single-threaded pre-fan-out / post-join sections, so death schedules
/// and failovers are bit-identical at any host thread count. With
/// QueryOptions::deadline_cycles set, shards whose simulated completion
/// lands past the deadline are cancelled and the query fails with
/// kDeadlineExceeded, EXPLAIN ANALYZE profile intact.
///
/// Distributed mode (docs/scaling.md "Distributed fabric"): after
/// ConfigureCluster the anonymous simulated workers become *named
/// simulated nodes*, each with its own NodeGroup rig. Shards run on the
/// node hosting their serving replica (net::Topology placement); a node's
/// shards run sequentially on its clock and nodes run in parallel, so the
/// fan-out width is the node count. Each shard's partial crosses the
/// simulated network priced by net::NetworkModel — ship=rows sends the
/// matching rows' referenced columns, ship=aggs sends merged partial
/// aggregates; both compute the identical partial spec, so the mode is a
/// timing alias and answers never change. The coordinator ingests
/// transfers serially (shard-major) and pays wire + deserialize + merge
/// cycles on top of the slowest node. Node death ("node.kill") fails a
/// replica over exactly like replica death; one host worker drives one
/// node, preserving bit-identical answers AND cycles at any host thread
/// count.
class ShardScheduler {
 public:
  // Both out of line: Rig is incomplete here.
  explicit ShardScheduler(sim::SimParams sim_params, int host_threads = 0);
  ~ShardScheduler();

  ShardScheduler(const ShardScheduler&) = delete;
  ShardScheduler& operator=(const ShardScheduler&) = delete;

  /// One shard-fanout execution request (built by query::Executor from a
  /// sharded plan). All pointers are non-owning.
  struct Request {
    const shard::ShardedTable* table = nullptr;
    /// Catalog name of the table — the failure-domain component names
    /// ("<table>.shard<i>.r<j>") are derived from it.
    std::string table_name;
    const engine::QuerySpec* spec = nullptr;
    /// Per-shard scan path; sharded plans support kRow and
    /// kRelationalMemory.
    Backend backend = Backend::kRow;
    /// Surviving shards after planner pruning, ascending.
    const std::vector<uint32_t>* shard_ids = nullptr;
    /// Per-shard ship modes, parallel to shard_ids (planner's
    /// rows-vs-aggs choice). Null or short = kAggs. Only consulted in
    /// distributed mode.
    const std::vector<net::ShipMode>* ship = nullptr;
    engine::CostModel cost;
  };

  /// Runs the fan-out and merges. Uses ctx.options.max_threads for the
  /// simulated width, ctx.injector's plan for per-shard fault streams,
  /// ctx.profile for EXPLAIN ANALYZE per-shard meters and ctx.tracer
  /// for the "query.shard_fanout" span.
  StatusOr<engine::QueryResult> Execute(const Request& req,
                                        const ExecContext& ctx);

  /// Host worker pool size; <= 0 picks hardware concurrency. Affects
  /// wall time only — never answers or cycles (tests pin this).
  void set_host_threads(int n) { host_threads_ = n; }
  int host_threads() const { return host_threads_; }

  /// Switches the scheduler into distributed mode: builds one NodeGroup
  /// rig per node of `topology` and routes every subsequent fan-out
  /// through the node/network path. A disabled topology returns to the
  /// single-host path. Reconfiguring rebuilds the rigs cold.
  void ConfigureCluster(const net::Topology& topology);
  const net::Topology& topology() const { return topology_; }

  /// The per-node simulation rigs; nullptr outside distributed mode.
  NodeGroup* node_group() { return nodes_.get(); }

  // --- lifetime counters (across all Execute calls) ---
  uint64_t queries() const { return queries_; }
  uint64_t shards_scanned() const { return shards_scanned_; }
  uint64_t shards_pruned() const { return shards_pruned_; }
  uint64_t shards_degraded() const { return shards_degraded_; }
  uint64_t shard_faults_injected() const { return faults_injected_; }
  /// Dead replicas skipped during replica selection (lifetime sum).
  uint64_t shards_failed_over() const { return shards_failed_over_; }
  /// Shards skipped (allow_partial) or failed for lack of a live replica.
  uint64_t shards_unavailable() const { return shards_unavailable_; }
  /// Shards cancelled by a cycle-domain deadline.
  uint64_t shards_cancelled() const { return shards_cancelled_; }

  // --- network counters (distributed mode; zero single-host) ---
  /// Payload bytes shipped node → coordinator (lifetime sum).
  uint64_t net_bytes() const { return net_bytes_; }
  uint64_t net_messages() const { return net_messages_; }
  /// Shards whose partial shipped as materialized rows / as partial
  /// aggregates.
  uint64_t shards_ship_rows() const { return shards_ship_rows_; }
  uint64_t shards_ship_aggs() const { return shards_ship_aggs_; }

  /// Exports "shard.*" counters and the per-shard cycle distribution
  /// ("shard.cycles"); in distributed mode also "net.*" counters
  /// including per-node "net.node<k>.bytes". Idempotent (Set/assign,
  /// not Inc/Merge).
  void ExportTo(obs::Registry* registry) const;

 private:
  /// One worker-private simulation rig, reused across tasks and Execute
  /// calls; every task calls ResetAddressSpace() before touching it.
  struct Rig;
  /// Outcome of one shard scan, filled by its worker, read post-join.
  struct ShardRun;

  Rig& RigForSlot(int slot);
  /// One shard scan on an explicit rig (worker-private or per-node).
  void RunShardTask(const Request& req, const engine::QuerySpec& partial_spec,
                    const ExecContext& ctx, uint32_t shard_id,
                    sim::MemorySystem* memory, relmem::RmEngine* rm,
                    ShardRun* out);

  /// The node/network fan-out path (topology_ enabled).
  StatusOr<engine::QueryResult> ExecuteDistributed(const Request& req,
                                                   const ExecContext& ctx);

  sim::SimParams sim_params_;
  int host_threads_ = 0;
  net::Topology topology_;
  std::unique_ptr<NodeGroup> nodes_;

  Mutex rig_mu_;
  /// The slot vector is guarded; each built Rig itself is worker-private
  /// (one slot per host worker, see RigForSlot).
  std::vector<std::unique_ptr<Rig>> rigs_ RELFAB_GUARDED_BY(rig_mu_);

  // Updated single-threaded after the pool joins.
  uint64_t queries_ = 0;
  uint64_t shards_scanned_ = 0;
  uint64_t shards_pruned_ = 0;
  uint64_t shards_degraded_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t shards_failed_over_ = 0;
  uint64_t shards_unavailable_ = 0;
  uint64_t shards_cancelled_ = 0;
  uint64_t net_bytes_ = 0;
  uint64_t net_messages_ = 0;
  uint64_t net_rows_shipped_ = 0;
  uint64_t net_agg_values_shipped_ = 0;
  uint64_t shards_ship_rows_ = 0;
  uint64_t shards_ship_aggs_ = 0;
  /// Lifetime payload bytes per node (index = node id).
  std::vector<uint64_t> node_bytes_;
  obs::Histogram shard_cycles_;
};

}  // namespace relfab::exec

#endif  // RELFAB_EXEC_SHARD_SCHEDULER_H_
