#include "exec/shard_scheduler.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "engine/rm_exec.h"
#include "engine/volcano.h"
#include "exec/node_group.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::exec {

struct ShardScheduler::Rig {
  explicit Rig(const sim::SimParams& params) : memory(params), rm(&memory) {}

  sim::MemorySystem memory;
  relmem::RmEngine rm;
};

ShardScheduler::ShardScheduler(sim::SimParams sim_params, int host_threads)
    : sim_params_(sim_params), host_threads_(host_threads) {}

ShardScheduler::~ShardScheduler() = default;

struct ShardScheduler::ShardRun {
  Status status = Status::Ok();
  engine::QueryResult result;
  uint64_t cycles = 0;
  uint64_t shard_rows = 0;
  bool degraded = false;
  std::string cause;
  obs::MeterSample sample;
  uint64_t injected = 0;
  uint64_t retries = 0;
  uint64_t exhausted = 0;
  // --- failure-domain outcome, filled in single-threaded code ---
  /// False when the shard had no live replica and was skipped
  /// (allow_partial) — the fields above are then never written.
  bool serving = true;
  /// Replica index that served the scan (replicas are timing aliases, so
  /// this changes cycles/bookkeeping only, never the answer).
  int replica = 0;
  /// Dead replicas skipped before `replica` answered.
  uint32_t failovers = 0;
  /// True when a cycle-domain deadline cancelled this shard post-join.
  bool cancelled = false;
  // --- distributed-mode outcome (single-threaded pre/post sections) ---
  /// Node hosting the serving replica.
  uint32_t node = 0;
  /// Wire format of this shard's partial (planner's choice).
  net::ShipMode ship = net::ShipMode::kAggs;
  /// The priced node → coordinator transfer.
  net::Transfer transfer;
};

namespace {

/// The per-shard decomposition of the query's aggregates into
/// merge-closed partials. COUNT/SUM/MIN/MAX are closed under their own
/// merge (sum/sum/min/max of per-shard finals); AVG is not, so it is
/// rewritten to a per-shard SUM plus one hidden per-shard COUNT and
/// reassembled as merged_sum / merged_count after the fan-out.
struct PartialPlan {
  engine::QuerySpec spec;            // aggregates replaced by partials
  std::vector<engine::AggFunc> slot_func;  // merge rule per partial slot
  std::vector<int> value_slot;       // original aggregate -> partial slot
  int count_slot = -1;               // hidden COUNT slot, -1 if unused
};

PartialPlan MakePartialPlan(const engine::QuerySpec& spec) {
  PartialPlan pp;
  pp.spec = spec;
  pp.spec.aggregates.clear();
  for (const engine::AggSpec& agg : spec.aggregates) {
    engine::AggSpec partial = agg;
    if (agg.func == engine::AggFunc::kAvg) {
      partial.func = engine::AggFunc::kSum;
    }
    pp.value_slot.push_back(static_cast<int>(pp.spec.aggregates.size()));
    pp.slot_func.push_back(partial.func);
    pp.spec.aggregates.push_back(partial);
  }
  for (const engine::AggSpec& agg : spec.aggregates) {
    if (agg.func == engine::AggFunc::kAvg) {
      pp.count_slot = static_cast<int>(pp.spec.aggregates.size());
      pp.slot_func.push_back(engine::AggFunc::kCount);
      pp.spec.aggregates.push_back(
          engine::AggSpec{engine::AggFunc::kCount, -1});
      break;  // one shared denominator serves every AVG
    }
  }
  return pp;
}

/// Merges one partial slot value into the accumulator.
void CombineSlot(engine::AggFunc func, bool first, double v, double* acc) {
  switch (func) {
    case engine::AggFunc::kCount:
    case engine::AggFunc::kSum:
      *acc += v;
      return;
    case engine::AggFunc::kMin:
      if (first || v < *acc) *acc = v;
      return;
    case engine::AggFunc::kMax:
      if (first || v > *acc) *acc = v;
      return;
    case engine::AggFunc::kAvg:
      break;  // rewritten away by MakePartialPlan
  }
  RELFAB_CHECK(false) << "AVG survived partial decomposition";
}

/// Maps merged partial slots back to the original aggregate list.
std::vector<double> FinalizeSlots(const engine::QuerySpec& original,
                                  const PartialPlan& pp,
                                  const std::vector<double>& slots) {
  std::vector<double> out;
  out.reserve(original.aggregates.size());
  for (size_t i = 0; i < original.aggregates.size(); ++i) {
    const double v = slots[static_cast<size_t>(pp.value_slot[i])];
    if (original.aggregates[i].func == engine::AggFunc::kAvg) {
      const double cnt = slots[static_cast<size_t>(pp.count_slot)];
      out.push_back(cnt > 0 ? v / cnt : 0);
    } else {
      out.push_back(v);
    }
  }
  return out;
}

/// Per-shard fault plan: same rules, seed mixed with the shard id so
/// every shard draws an independent — but scheduling-invariant — fault
/// stream. The same shard faults at the same points no matter which
/// worker runs it or how many host threads exist.
faults::FaultPlan PlanForShard(const faults::FaultPlan& base,
                               uint32_t shard_id) {
  faults::FaultPlan plan = base;
  uint64_t h = base.seed ^ (0x9e3779b97f4a7c15ull * (shard_id + 1));
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  plan.seed = h;
  return plan;
}

/// Failure-domain component name of replica j of shard i.
std::string ReplicaName(const std::string& table, uint32_t shard,
                        uint32_t replica) {
  return table + ".shard" + std::to_string(shard) + ".r" +
         std::to_string(replica);
}

}  // namespace

ShardScheduler::Rig& ShardScheduler::RigForSlot(int slot) {
  MutexLock lock(&rig_mu_);
  if (static_cast<size_t>(slot) >= rigs_.size()) {
    rigs_.resize(static_cast<size_t>(slot) + 1);
  }
  if (!rigs_[static_cast<size_t>(slot)]) {
    rigs_[static_cast<size_t>(slot)] = std::make_unique<Rig>(sim_params_);
  }
  return *rigs_[static_cast<size_t>(slot)];
}

void ShardScheduler::RunShardTask(const Request& req,
                                  const engine::QuerySpec& partial_spec,
                                  const ExecContext& ctx, uint32_t shard_id,
                                  sim::MemorySystem* memory,
                                  relmem::RmEngine* rm, ShardRun* out) {
  memory->ResetAddressSpace();

  // Private per-shard injector: armed only when the stack is armed.
  std::unique_ptr<faults::FaultInjector> local;
  if (ctx.injector != nullptr && ctx.injector->plan().armed()) {
    local = std::make_unique<faults::FaultInjector>(
        PlanForShard(ctx.injector->plan(), shard_id));
  }
  memory->set_fault_injector(local.get());
  rm->set_fault_injector(local.get());

  const layout::RowTable& shard = req.table->shard(shard_id);
  out->shard_rows = shard.num_rows();
  layout::RowTable alias = layout::RowTable::TimingAlias(shard, memory);

  StatusOr<engine::QueryResult> result =
      Status::Internal("shard backend not run");
  switch (req.backend) {
    case Backend::kRow: {
      engine::VolcanoEngine eng(&alias, req.cost);
      result = eng.Execute(partial_spec);
      break;
    }
    case Backend::kRelationalMemory: {
      engine::RmExecEngine eng(&alias, rm, req.cost);
      result = eng.Execute(partial_spec);
      if (!result.ok() && faults::IsFabricFault(result.status())) {
        // PR 3's degradation, scoped to this shard: the fabric path died
        // after its retries, so only this shard re-runs on the host row
        // engine. The failed attempt's cycles stay on this shard's
        // clock; every other shard is untouched.
        out->degraded = true;
        out->cause = result.status().ToString();
        engine::VolcanoEngine host(&alias, req.cost);
        result = host.Execute(partial_spec);
      }
      break;
    }
    default:
      result = Status::InvalidArgument(
          "sharded plans execute on ROW or RM, got backend " +
          std::string(BackendToString(req.backend)));
      break;
  }

  if (local != nullptr) {
    out->injected = local->total_injected();
    out->retries = local->total_retries();
    out->exhausted = local->total_exhausted();
  }
  memory->set_fault_injector(nullptr);
  rm->set_fault_injector(nullptr);

  if (!result.ok()) {
    out->status = result.status();
    return;
  }
  out->result = std::move(*result);
  out->cycles = memory->ElapsedCycles();
  out->sample = memory->Sample();
}

void ShardScheduler::ConfigureCluster(const net::Topology& topology) {
  topology_ = topology;
  nodes_ = topology_.enabled()
               ? std::make_unique<NodeGroup>(sim_params_, topology_.nodes())
               : nullptr;
  if (node_bytes_.size() < topology_.nodes()) {
    node_bytes_.resize(topology_.nodes(), 0);
  }
}

StatusOr<engine::QueryResult> ShardScheduler::Execute(const Request& req,
                                                      const ExecContext& ctx) {
  RELFAB_CHECK(req.table != nullptr && req.spec != nullptr &&
               req.shard_ids != nullptr);
  if (topology_.enabled()) return ExecuteDistributed(req, ctx);
  const std::vector<uint32_t>& ids = *req.shard_ids;
  const uint32_t total = req.table->num_shards();
  const uint32_t replicas = req.table->num_replicas();
  const uint64_t now = ctx.tracer != nullptr ? ctx.tracer->Now() : 0;
  ++queries_;

  obs::Span span(ctx.tracer, "query.shard_fanout", "query");
  span.AddArg("backend", std::string(BackendToString(req.backend)));
  span.AddArg("shards_scanned", ids.size());
  span.AddArg("shards_total", total);

  const PartialPlan pp = MakePartialPlan(*req.spec);
  std::vector<ShardRun> runs(ids.size());

  // --- pre-fan-out, single-threaded: pick each shard's serving replica.
  // Lowest-index live replica wins; one "shard.kill" opportunity per
  // selection attempt, so replica j is never drawn until replicas
  // 0..j-1 are dead. Because selection runs before the pool and walks
  // shards in shard-major order, the death schedule is a pure function
  // of (plan, workload) — bit-identical at any host thread count.
  std::vector<size_t> serving;  // indices into ids/runs
  serving.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    int picked = -1;
    uint32_t failovers = 0;
    for (uint32_t j = 0; j < replicas; ++j) {
      const std::string name = ReplicaName(req.table_name, ids[i], j);
      if (ctx.health != nullptr) {
        if (!ctx.health->alive(name)) {
          ++failovers;
          continue;
        }
        if (ctx.health->DrawKill("shard.kill", name, now)) {
          ++failovers;
          continue;
        }
      }
      picked = static_cast<int>(j);
      break;
    }
    runs[i].failovers = failovers;
    if (picked < 0) {
      runs[i].serving = false;
      ++shards_unavailable_;
      if (ctx.recorder != nullptr) {
        ctx.recorder->Log("shard",
                          "shard " + std::to_string(ids[i]) + " of '" +
                              req.table_name + "' unavailable: all " +
                              std::to_string(replicas) + " replica(s) dead",
                          now);
      }
      if (!ctx.options.allow_partial) {
        return Status::Unavailable(
            "shard " + std::to_string(ids[i]) + " of '" + req.table_name +
            "' has no live replica (" + std::to_string(replicas) +
            " replica(s) dead); set allow_partial to answer from the "
            "survivors");
      }
      continue;
    }
    runs[i].replica = picked;
    serving.push_back(i);
  }

  // --- fan out: host pool pulls serving-shard tasks from a cursor ---
  int host = host_threads_ > 0
                 ? host_threads_
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (host < 1) host = 1;
  if (static_cast<size_t>(host) > serving.size()) {
    host = static_cast<int>(serving.size());
  }
  std::atomic<size_t> next{0};
  auto worker = [&](int slot) {
    Rig& rig = RigForSlot(slot);
    for (;;) {
      const size_t pick = next.fetch_add(1);
      if (pick >= serving.size()) break;
      const size_t i = serving[pick];
      RunShardTask(req, pp.spec, ctx, ids[i], &rig.memory, &rig.rm, &runs[i]);
    }
  };
  if (host <= 1) {
    // Caller's thread: single-shard queries and --threads 1 runs see no
    // thread machinery at all (sanitizer- and debugger-friendly).
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(host));
    for (int t = 0; t < host; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }

  // --- post-join, single-threaded, shard-major from here on ---
  for (const size_t i : serving) {
    if (!runs[i].status.ok()) return runs[i].status;
  }

  // Failover surcharge on the shard's own clock: detecting a dead
  // replica (missed heartbeat) and re-dispatching is paid before the
  // surviving replica's scan starts.
  for (const size_t i : serving) {
    runs[i].cycles += static_cast<uint64_t>(
        static_cast<double>(runs[i].failovers) *
        req.cost.shard_failover_cycles);
    shards_failed_over_ += runs[i].failovers;
  }

  // --- cycle model: shard-major deal onto simulated workers ---
  // Each simulated worker's clock is the sum of its shards' cycles; a
  // shard "completes" at its worker's clock after its scan. With a
  // deadline armed, shards completing past it are cancelled — evaluated
  // on the simulated clock, so expiry is scheduling-invariant.
  size_t sim_workers = ctx.options.max_threads > 0
                           ? static_cast<size_t>(ctx.options.max_threads)
                           : serving.size();
  sim_workers =
      std::max<size_t>(1, std::min(sim_workers, std::max<size_t>(
                                                    1, serving.size())));
  std::vector<uint64_t> worker_cycles(sim_workers, 0);
  const uint64_t deadline = ctx.options.deadline_cycles;
  size_t cancelled_count = 0;
  for (size_t k = 0; k < serving.size(); ++k) {
    ShardRun& run = runs[serving[k]];
    uint64_t& clock = worker_cycles[k % sim_workers];
    clock += run.cycles;
    if (deadline > 0 && clock > deadline) {
      run.cancelled = true;
      ++cancelled_count;
    }
  }
  uint64_t parallel_cycles = 0;
  for (uint64_t c : worker_cycles) {
    parallel_cycles = std::max(parallel_cycles, c);
  }
  shards_cancelled_ += cancelled_count;

  // --- circuit-breaker reports, shard order (cancelled shards report
  // nothing: they neither succeeded nor failed) ---
  if (ctx.health != nullptr) {
    for (const size_t i : serving) {
      const ShardRun& run = runs[i];
      if (run.cancelled) continue;
      const std::string name =
          ReplicaName(req.table_name, ids[i], static_cast<uint32_t>(run.replica));
      if (run.degraded) {
        if (run.exhausted > 0) {
          ctx.health->ReportExhausted(name, run.cause, now);
        } else {
          ctx.health->ReportFailure(name, run.cause, now);
        }
      } else {
        ctx.health->ReportSuccess(name);
      }
    }
  }

  // --- meters + degradation bookkeeping (shard order, completed only) ---
  shards_scanned_ += serving.size();
  shards_pruned_ += total - ids.size();
  std::string degraded_note;
  for (const size_t i : serving) {
    const ShardRun& run = runs[i];
    if (run.cancelled) continue;
    shard_cycles_.Observe(static_cast<double>(run.cycles));
    if (ctx.digests != nullptr) {
      // Shard-order observation in single-threaded post-join code: the
      // digest contents are independent of the host worker count.
      ctx.digests->Observe("shard.cycles", static_cast<double>(run.cycles));
      ctx.digests->Observe("shard." + std::to_string(ids[i]) + ".cycles",
                           static_cast<double>(run.cycles));
    }
    faults_injected_ += run.injected;
    if (run.degraded) {
      ++shards_degraded_;
      if (ctx.injector != nullptr) {
        ctx.injector->NoteFallback(
            "shard." + std::string(BackendToString(req.backend)));
      }
      if (ctx.recorder != nullptr) {
        ctx.recorder->Log(
            "shard",
            "shard " + std::to_string(ids[i]) + " degraded: " + run.cause,
            now);
      }
      if (degraded_note.empty()) {
        std::ostringstream os;
        os << "shard " << ids[i] << ": " << run.cause
           << "; shard re-run on ROW backend (" << (serving.size() - 1)
           << " other shard(s) unaffected)";
        degraded_note = os.str();
      }
    }
  }

  // --- profile ops, one per surviving shard (both exits share this) ---
  const auto fill_profile_ops = [&]() {
    obs::QueryProfile* prof = ctx.profile;
    prof->shards_total = total;
    prof->shards_scanned = static_cast<uint32_t>(serving.size());
    prof->shards_pruned = total - static_cast<uint32_t>(ids.size());
    prof->shards_unavailable =
        static_cast<uint32_t>(ids.size() - serving.size());
    prof->shards_cancelled = static_cast<uint32_t>(cancelled_count);
    for (size_t i = 0; i < runs.size(); ++i) {
      const ShardRun& run = runs[i];
      obs::OpStats op;
      std::ostringstream name;
      name << "Shard[" << ids[i] << "] ";
      if (!run.serving) {
        name << "(dead, skipped)";
        op.name = name.str();
        op.rows_in = req.table->shard(ids[i]).num_rows();
        prof->ops.push_back(std::move(op));
        continue;
      }
      prof->shards_failed_over += run.failovers;
      name << BackendToString(req.backend);
      if (run.degraded) name << "->ROW";
      if (run.replica > 0) {
        name << " replica=" << run.replica << " (failover)";
      }
      if (run.cancelled) name << " (cancelled)";
      op.name = name.str();
      op.rows_in = run.shard_rows;
      op.rows_out = run.result.rows_matched;
      op.cpu_cycles = run.sample.cpu_cycles;
      op.dram_lines_demand = run.sample.dram_lines_demand;
      op.dram_lines_gather = run.sample.dram_lines_gather;
      op.fabric_reads = run.sample.fabric_reads;
      op.l1_misses = run.sample.l1_misses;
      op.l2_misses = run.sample.l2_misses;
      prof->ops.push_back(std::move(op));
    }
    if (!degraded_note.empty()) prof->fallback = degraded_note;
  };

  if (cancelled_count > 0) {
    // Deadline expiry: the merge never runs; the profile survives with
    // per-shard ops intact and the total clamped to the deadline.
    if (ctx.recorder != nullptr) {
      ctx.recorder->Log("shard",
                        "deadline of " + std::to_string(deadline) +
                            " cycles exceeded: " +
                            std::to_string(cancelled_count) + " of " +
                            std::to_string(serving.size()) +
                            " shard(s) cancelled",
                        now);
    }
    if (ctx.profile != nullptr) {
      fill_profile_ops();
      ctx.profile->total_cycles = static_cast<double>(deadline);
    }
    return Status::DeadlineExceeded(
        "query exceeded deadline of " + std::to_string(deadline) +
        " cycles: " + std::to_string(cancelled_count) + " of " +
        std::to_string(serving.size()) + " shard(s) cancelled");
  }

  // --- merge, shard-major over the serving shards ---
  const size_t slots = pp.spec.aggregates.size();
  engine::QueryResult merged;
  std::vector<double> flat(slots, 0);
  std::vector<bool> flat_any(slots, false);
  std::map<engine::GroupKey, std::vector<double>> groups;
  uint64_t merge_units = serving.size() * slots;

  for (const size_t i : serving) {
    const engine::QueryResult& r = runs[i].result;
    merged.rows_scanned += r.rows_scanned;
    merged.rows_matched += r.rows_matched;
    merged.projection_checksum += r.projection_checksum;
    if (r.rows_matched > 0 && req.spec->group_by.empty()) {
      for (size_t j = 0; j < slots; ++j) {
        CombineSlot(pp.slot_func[j], !flat_any[j], r.aggregates[j],
                    &flat[j]);
        flat_any[j] = true;
      }
    }
    merge_units += r.groups.size() * slots;
    for (const auto& [key, vals] : r.groups) {
      auto [it, inserted] = groups.emplace(key, vals);
      if (!inserted) {
        for (size_t j = 0; j < slots; ++j) {
          CombineSlot(pp.slot_func[j], false, vals[j], &it->second[j]);
        }
      }
    }
  }

  if (!req.spec->aggregates.empty() && req.spec->group_by.empty()) {
    merged.aggregates = FinalizeSlots(*req.spec, pp, flat);
  }
  merged.groups.reserve(groups.size());
  for (const auto& [key, vals] : groups) {
    merged.groups.emplace_back(key, FinalizeSlots(*req.spec, pp, vals));
  }
  merged.partial = serving.size() < ids.size();

  const double merge_cycles =
      static_cast<double>(serving.size()) * req.cost.shard_merge_task_cycles +
      static_cast<double>(merge_units) * req.cost.agg_update_cycles;
  merged.sim_cycles = parallel_cycles + static_cast<uint64_t>(merge_cycles);

  if (ctx.profile != nullptr) {
    fill_profile_ops();
    obs::QueryProfile* prof = ctx.profile;
    obs::OpStats merge_op;
    std::ostringstream name;
    name << "Merge[workers=" << sim_workers << "]";
    merge_op.name = name.str();
    merge_op.rows_in = merged.rows_matched;
    merge_op.rows_out =
        merged.groups.empty() ? merged.rows_matched : merged.groups.size();
    merge_op.cpu_cycles = merge_cycles;
    prof->ops.push_back(std::move(merge_op));
    prof->total_cycles = static_cast<double>(merged.sim_cycles);
  }

  span.AddArg("rows_matched", merged.rows_matched);
  span.AddArg("sim_workers", sim_workers);
  return merged;
}

StatusOr<engine::QueryResult> ShardScheduler::ExecuteDistributed(
    const Request& req, const ExecContext& ctx) {
  const std::vector<uint32_t>& ids = *req.shard_ids;
  const uint32_t total = req.table->num_shards();
  const uint32_t replicas = req.table->num_replicas();
  const net::Placement placement = req.table->placement();
  const uint64_t now = ctx.tracer != nullptr ? ctx.tracer->Now() : 0;
  ++queries_;

  obs::Span span(ctx.tracer, "query.shard_fanout", "query");
  span.AddArg("backend", std::string(BackendToString(req.backend)));
  span.AddArg("shards_scanned", ids.size());
  span.AddArg("shards_total", total);
  span.AddArg("nodes", topology_.nodes());

  const PartialPlan pp = MakePartialPlan(*req.spec);
  std::vector<ShardRun> runs(ids.size());

  // --- pre-fan-out, single-threaded: route each shard to the node of
  // its serving replica. Replica j of shard i lives on the node the
  // placement maps it to; the replica serves only if both the node and
  // the replica itself are alive, with one "node.kill" draw on the node
  // and one "shard.kill" draw on the replica per selection attempt. A
  // dead node therefore fails all its replicas over to other nodes in
  // one shard-major deterministic sweep.
  std::vector<size_t> serving;  // indices into ids/runs
  serving.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    int picked = -1;
    uint32_t failovers = 0;
    for (uint32_t j = 0; j < replicas; ++j) {
      const uint32_t node = topology_.NodeFor(ids[i], j, total, placement);
      const std::string node_name = net::Topology::NodeName(node);
      const std::string name = ReplicaName(req.table_name, ids[i], j);
      if (ctx.health != nullptr) {
        if (!ctx.health->alive(node_name)) {
          ++failovers;
          continue;
        }
        if (ctx.health->DrawKill("node.kill", node_name, now)) {
          ++failovers;
          continue;
        }
        if (!ctx.health->alive(name)) {
          ++failovers;
          continue;
        }
        if (ctx.health->DrawKill("shard.kill", name, now)) {
          ++failovers;
          continue;
        }
      }
      picked = static_cast<int>(j);
      runs[i].node = node;
      break;
    }
    runs[i].failovers = failovers;
    if (picked < 0) {
      runs[i].serving = false;
      ++shards_unavailable_;
      if (ctx.recorder != nullptr) {
        ctx.recorder->Log("shard",
                          "shard " + std::to_string(ids[i]) + " of '" +
                              req.table_name + "' unavailable: all " +
                              std::to_string(replicas) +
                              " replica(s) dead or on dead nodes",
                          now);
      }
      if (!ctx.options.allow_partial) {
        return Status::Unavailable(
            "shard " + std::to_string(ids[i]) + " of '" + req.table_name +
            "' has no live replica (" + std::to_string(replicas) +
            " replica(s) dead or on dead nodes); set allow_partial to "
            "answer from the survivors");
      }
      continue;
    }
    runs[i].replica = picked;
    runs[i].ship = req.ship != nullptr && i < req.ship->size()
                       ? (*req.ship)[i]
                       : net::ShipMode::kAggs;
    serving.push_back(i);
  }

  // --- fan out: shards grouped by serving node, one host task per node.
  // A node's shards run sequentially on that node's own rig in shard
  // order, so exactly one host worker ever touches a node rig during
  // the fan-out — cycles are bit-identical at any host thread count.
  std::map<uint32_t, std::vector<size_t>> by_node;
  for (const size_t i : serving) by_node[runs[i].node].push_back(i);
  std::vector<std::pair<uint32_t, const std::vector<size_t>*>> node_tasks;
  node_tasks.reserve(by_node.size());
  for (const auto& [node, list] : by_node) {
    node_tasks.emplace_back(node, &list);
  }

  int host = host_threads_ > 0
                 ? host_threads_
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (host < 1) host = 1;
  if (static_cast<size_t>(host) > node_tasks.size()) {
    host = static_cast<int>(node_tasks.size());
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t pick = next.fetch_add(1);
      if (pick >= node_tasks.size()) break;
      NodeGroup::NodeRig& rig = nodes_->rig(node_tasks[pick].first);
      for (const size_t i : *node_tasks[pick].second) {
        RunShardTask(req, pp.spec, ctx, ids[i], &rig.memory, &rig.rm,
                     &runs[i]);
      }
    }
  };
  if (host <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(host));
    for (int t = 0; t < host; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // --- post-join, single-threaded, shard-major from here on ---
  for (const size_t i : serving) {
    if (!runs[i].status.ok()) return runs[i].status;
  }

  // Failover surcharge (dead replicas and dead nodes alike: detection
  // is a missed heartbeat either way).
  for (const size_t i : serving) {
    runs[i].cycles += static_cast<uint64_t>(
        static_cast<double>(runs[i].failovers) *
        req.cost.shard_failover_cycles);
    shards_failed_over_ += runs[i].failovers;
  }

  // --- node-side serialization: price each shard's transfer and charge
  // the pack cost to the producing node's clock. Both ship modes carry
  // the identical partial result; only the wire format differs.
  const layout::Schema& schema = req.table->schema();
  uint32_t row_bytes = 0;
  for (uint32_t c : req.spec->ReferencedColumns(schema)) {
    row_bytes += schema.width(c);
  }
  const uint32_t key_bytes =
      static_cast<uint32_t>(req.spec->group_by.size()) * 8;
  const size_t slots = pp.spec.aggregates.size();
  const net::NetworkModel netm(topology_.network(),
                               req.cost.net_serialize_row_cycles,
                               req.cost.net_serialize_agg_cycles);
  for (const size_t i : serving) {
    ShardRun& run = runs[i];
    const engine::QueryResult& r = run.result;
    if (run.ship == net::ShipMode::kRows) {
      run.transfer = netm.ShipRows(r.rows_matched, row_bytes);
    } else {
      const uint64_t groups = req.spec->group_by.empty()
                                  ? (slots > 0 && r.rows_matched > 0 ? 1 : 0)
                                  : r.groups.size();
      run.transfer = netm.ShipAggs(groups, key_bytes, slots);
    }
    run.cycles += static_cast<uint64_t>(run.transfer.serialize_cycles);
  }

  // --- cycle model: each node's clock is the sum of its shards' scan +
  // serialize cycles (they run sequentially where the data lives); the
  // fan-out costs max-over-nodes. Deadlines are evaluated on the node
  // clocks, shard-major, exactly like the single-host simulated workers.
  std::vector<uint64_t> node_clock(topology_.nodes(), 0);
  const uint64_t deadline = ctx.options.deadline_cycles;
  size_t cancelled_count = 0;
  for (const size_t i : serving) {
    uint64_t& clock = node_clock[runs[i].node];
    clock += runs[i].cycles;
    if (deadline > 0 && clock > deadline) {
      runs[i].cancelled = true;
      ++cancelled_count;
    }
  }
  uint64_t parallel_cycles = 0;
  for (uint64_t c : node_clock) {
    parallel_cycles = std::max(parallel_cycles, c);
  }
  shards_cancelled_ += cancelled_count;

  // --- circuit-breaker reports, shard order (cancelled shards report
  // nothing: they neither succeeded nor failed) ---
  if (ctx.health != nullptr) {
    for (const size_t i : serving) {
      const ShardRun& run = runs[i];
      if (run.cancelled) continue;
      const std::string name = ReplicaName(
          req.table_name, ids[i], static_cast<uint32_t>(run.replica));
      if (run.degraded) {
        if (run.exhausted > 0) {
          ctx.health->ReportExhausted(name, run.cause, now);
        } else {
          ctx.health->ReportFailure(name, run.cause, now);
        }
      } else {
        ctx.health->ReportSuccess(name);
      }
    }
  }

  // --- meters + degradation + network bookkeeping (shard order,
  // completed only) ---
  shards_scanned_ += serving.size();
  shards_pruned_ += total - ids.size();
  uint64_t query_net_bytes = 0;
  uint64_t query_net_messages = 0;
  uint32_t query_ship_rows = 0;
  uint32_t query_ship_aggs = 0;
  std::map<uint32_t, uint64_t> query_node_bytes;
  std::string degraded_note;
  for (const size_t i : serving) {
    const ShardRun& run = runs[i];
    if (run.cancelled) continue;
    shard_cycles_.Observe(static_cast<double>(run.cycles));
    if (ctx.digests != nullptr) {
      // Shard-order observation in single-threaded post-join code: the
      // digest contents are independent of the host worker count.
      ctx.digests->Observe("shard.cycles", static_cast<double>(run.cycles));
      ctx.digests->Observe("shard." + std::to_string(ids[i]) + ".cycles",
                           static_cast<double>(run.cycles));
      ctx.digests->Observe("net.shard.bytes",
                           static_cast<double>(run.transfer.payload_bytes));
    }
    net_bytes_ += run.transfer.payload_bytes;
    net_messages_ += run.transfer.messages;
    query_net_bytes += run.transfer.payload_bytes;
    query_net_messages += run.transfer.messages;
    query_node_bytes[run.node] += run.transfer.payload_bytes;
    if (run.node < node_bytes_.size()) {
      node_bytes_[run.node] += run.transfer.payload_bytes;
    }
    if (run.ship == net::ShipMode::kRows) {
      ++shards_ship_rows_;
      ++query_ship_rows;
      net_rows_shipped_ += run.result.rows_matched;
    } else {
      ++shards_ship_aggs_;
      ++query_ship_aggs;
      net_agg_values_shipped_ +=
          (req.spec->group_by.empty()
               ? (slots > 0 && run.result.rows_matched > 0 ? 1 : 0)
               : run.result.groups.size()) *
          slots;
    }
    faults_injected_ += run.injected;
    if (run.degraded) {
      ++shards_degraded_;
      if (ctx.injector != nullptr) {
        ctx.injector->NoteFallback(
            "shard." + std::string(BackendToString(req.backend)));
      }
      if (ctx.recorder != nullptr) {
        ctx.recorder->Log(
            "shard",
            "shard " + std::to_string(ids[i]) + " degraded: " + run.cause,
            now);
      }
      if (degraded_note.empty()) {
        std::ostringstream os;
        os << "shard " << ids[i] << ": " << run.cause
           << "; shard re-run on ROW backend (" << (serving.size() - 1)
           << " other shard(s) unaffected)";
        degraded_note = os.str();
      }
    }
  }
  if (ctx.digests != nullptr) {
    // Node-ascending per-node traffic observations (map order).
    for (const auto& [node, bytes] : query_node_bytes) {
      ctx.digests->Observe("net." + net::Topology::NodeName(node) + ".bytes",
                           static_cast<double>(bytes));
    }
  }

  // --- profile ops, one per surviving shard (both exits share this) ---
  const auto fill_profile_ops = [&]() {
    obs::QueryProfile* prof = ctx.profile;
    prof->shards_total = total;
    prof->shards_scanned = static_cast<uint32_t>(serving.size());
    prof->shards_pruned = total - static_cast<uint32_t>(ids.size());
    prof->shards_unavailable =
        static_cast<uint32_t>(ids.size() - serving.size());
    prof->shards_cancelled = static_cast<uint32_t>(cancelled_count);
    prof->nodes = topology_.nodes();
    prof->net_bytes = query_net_bytes;
    prof->net_messages = query_net_messages;
    prof->shards_ship_rows = query_ship_rows;
    prof->shards_ship_aggs = query_ship_aggs;
    for (size_t i = 0; i < runs.size(); ++i) {
      const ShardRun& run = runs[i];
      obs::OpStats op;
      std::ostringstream name;
      name << "Shard[" << ids[i] << "] ";
      if (!run.serving) {
        name << "(dead, skipped)";
        op.name = name.str();
        op.rows_in = req.table->shard(ids[i]).num_rows();
        prof->ops.push_back(std::move(op));
        continue;
      }
      prof->shards_failed_over += run.failovers;
      name << BackendToString(req.backend);
      if (run.degraded) name << "->ROW";
      name << " node=" << run.node
           << " ship=" << net::ShipModeToString(run.ship);
      if (run.replica > 0) {
        name << " replica=" << run.replica << " (failover)";
      }
      if (run.cancelled) name << " (cancelled)";
      op.name = name.str();
      op.rows_in = run.shard_rows;
      op.rows_out = run.result.rows_matched;
      op.cpu_cycles = run.sample.cpu_cycles;
      op.dram_lines_demand = run.sample.dram_lines_demand;
      op.dram_lines_gather = run.sample.dram_lines_gather;
      op.fabric_reads = run.sample.fabric_reads;
      op.l1_misses = run.sample.l1_misses;
      op.l2_misses = run.sample.l2_misses;
      prof->ops.push_back(std::move(op));
    }
    if (!degraded_note.empty()) prof->fallback = degraded_note;
  };

  if (cancelled_count > 0) {
    // Deadline expiry: the merge never runs; the profile survives with
    // per-shard ops intact and the total clamped to the deadline.
    if (ctx.recorder != nullptr) {
      ctx.recorder->Log("shard",
                        "deadline of " + std::to_string(deadline) +
                            " cycles exceeded: " +
                            std::to_string(cancelled_count) + " of " +
                            std::to_string(serving.size()) +
                            " shard(s) cancelled",
                        now);
    }
    if (ctx.profile != nullptr) {
      fill_profile_ops();
      ctx.profile->total_cycles = static_cast<double>(deadline);
    }
    return Status::DeadlineExceeded(
        "query exceeded deadline of " + std::to_string(deadline) +
        " cycles: " + std::to_string(cancelled_count) + " of " +
        std::to_string(serving.size()) + " shard(s) cancelled");
  }

  // --- merge, shard-major over the serving shards. The value merge is
  // identical to the single-host path (ship modes are timing aliases);
  // what differs is the coordinator's clock, charged below. ---
  engine::QueryResult merged;
  std::vector<double> flat(slots, 0);
  std::vector<bool> flat_any(slots, false);
  std::map<engine::GroupKey, std::vector<double>> groups;

  for (const size_t i : serving) {
    const engine::QueryResult& r = runs[i].result;
    merged.rows_scanned += r.rows_scanned;
    merged.rows_matched += r.rows_matched;
    merged.projection_checksum += r.projection_checksum;
    if (r.rows_matched > 0 && req.spec->group_by.empty()) {
      for (size_t j = 0; j < slots; ++j) {
        CombineSlot(pp.slot_func[j], !flat_any[j], r.aggregates[j],
                    &flat[j]);
        flat_any[j] = true;
      }
    }
    for (const auto& [key, vals] : r.groups) {
      auto [it, inserted] = groups.emplace(key, vals);
      if (!inserted) {
        for (size_t j = 0; j < slots; ++j) {
          CombineSlot(pp.slot_func[j], false, vals[j], &it->second[j]);
        }
      }
    }
  }

  if (!req.spec->aggregates.empty() && req.spec->group_by.empty()) {
    merged.aggregates = FinalizeSlots(*req.spec, pp, flat);
  }
  merged.groups.reserve(groups.size());
  for (const auto& [key, vals] : groups) {
    merged.groups.emplace_back(key, FinalizeSlots(*req.spec, pp, vals));
  }
  merged.partial = serving.size() < ids.size();

  // --- coordinator ingest, serial and shard-major: per shard, the wire
  // occupancy of its transfer plus the handoff, then the per-unit
  // deserialize + merge work — rows replay every shipped row into the
  // partial aggregates; aggs merge per shipped value.
  double coordinator_cycles = 0;
  for (const size_t i : serving) {
    const ShardRun& run = runs[i];
    const engine::QueryResult& r = run.result;
    coordinator_cycles +=
        run.transfer.wire_cycles + req.cost.shard_merge_task_cycles;
    if (run.ship == net::ShipMode::kRows) {
      coordinator_cycles +=
          static_cast<double>(r.rows_matched) *
          (req.cost.net_serialize_row_cycles +
           static_cast<double>(slots) * req.cost.agg_update_cycles);
    } else {
      const uint64_t values =
          (req.spec->group_by.empty()
               ? (slots > 0 && r.rows_matched > 0 ? 1 : 0)
               : r.groups.size()) *
          slots;
      coordinator_cycles +=
          static_cast<double>(values) *
          (req.cost.net_serialize_agg_cycles + req.cost.agg_update_cycles);
    }
  }
  merged.sim_cycles =
      parallel_cycles + static_cast<uint64_t>(coordinator_cycles);

  if (ctx.profile != nullptr) {
    fill_profile_ops();
    obs::QueryProfile* prof = ctx.profile;
    obs::OpStats merge_op;
    std::ostringstream name;
    name << "NetMerge[nodes=" << topology_.nodes() << "]";
    merge_op.name = name.str();
    merge_op.rows_in = merged.rows_matched;
    merge_op.rows_out =
        merged.groups.empty() ? merged.rows_matched : merged.groups.size();
    merge_op.cpu_cycles = coordinator_cycles;
    prof->ops.push_back(std::move(merge_op));
    prof->total_cycles = static_cast<double>(merged.sim_cycles);
  }

  span.AddArg("rows_matched", merged.rows_matched);
  span.AddArg("net_bytes", query_net_bytes);
  return merged;
}

void ShardScheduler::ExportTo(obs::Registry* registry) const {
  registry->counter("shard.queries")->Set(queries_);
  registry->counter("shard.scanned")->Set(shards_scanned_);
  registry->counter("shard.pruned")->Set(shards_pruned_);
  registry->counter("shard.degraded")->Set(shards_degraded_);
  registry->counter("shard.faults.injected")->Set(faults_injected_);
  registry->counter("shard.failed_over")->Set(shards_failed_over_);
  registry->counter("shard.unavailable")->Set(shards_unavailable_);
  registry->counter("shard.cancelled")->Set(shards_cancelled_);
  *registry->histogram("shard.cycles") = shard_cycles_;
  if (topology_.enabled()) {
    registry->counter("net.bytes")->Set(net_bytes_);
    registry->counter("net.messages")->Set(net_messages_);
    registry->counter("net.rows_shipped")->Set(net_rows_shipped_);
    registry->counter("net.agg_values_shipped")->Set(net_agg_values_shipped_);
    registry->counter("net.ship.rows")->Set(shards_ship_rows_);
    registry->counter("net.ship.aggs")->Set(shards_ship_aggs_);
    for (size_t k = 0; k < node_bytes_.size(); ++k) {
      registry
          ->counter("net." +
                    net::Topology::NodeName(static_cast<uint32_t>(k)) +
                    ".bytes")
          ->Set(node_bytes_[k]);
    }
  }
}

}  // namespace relfab::exec
