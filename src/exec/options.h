#ifndef RELFAB_EXEC_OPTIONS_H_
#define RELFAB_EXEC_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/statusor.h"
#include "net/network_model.h"

namespace relfab::exec {

/// Access path a query runs on. Lives in exec (not query) so the
/// execution layer — including the shard scheduler — can name backends
/// without depending on the planner; relfab::query aliases it back.
enum class Backend : uint8_t {
  kRow,               // volcano over the row base data
  kColumn,            // vectorized over a materialized columnar copy
  kRelationalMemory,  // vectorized over an ephemeral column group
  kIndex,             // B+-tree point lookup, then fetch from row data
  kHybrid,            // ephemeral predicate stream + base-row fetch
};

inline std::string_view BackendToString(Backend backend) {
  switch (backend) {
    case Backend::kRow:
      return "ROW";
    case Backend::kColumn:
      return "COL";
    case Backend::kRelationalMemory:
      return "RM";
    case Backend::kIndex:
      return "INDEX";
    case Backend::kHybrid:
      return "HYBRID";
  }
  return "?";
}

inline StatusOr<Backend> BackendFromString(std::string_view name) {
  if (name == "ROW") return Backend::kRow;
  if (name == "COL") return Backend::kColumn;
  if (name == "RM") return Backend::kRelationalMemory;
  if (name == "INDEX") return Backend::kIndex;
  if (name == "HYBRID") return Backend::kHybrid;
  return Status::InvalidArgument("unknown backend '" + std::string(name) +
                                 "' (ROW, COL, RM, INDEX, HYBRID)");
}

/// Per-statement knobs, threaded from the API surface down to the
/// executor through ExecContext. Defaults are the zero-cost path:
/// no profiling, planner-chosen backend, one simulated worker per
/// surviving shard.
struct QueryOptions {
  /// EXPLAIN ANALYZE: attribute simulator meters to operators and fill
  /// the context's QueryProfile.
  bool analyze = false;

  /// Overrides the planner's backend choice. The planner still validates
  /// feasibility (e.g. COL needs a materialized copy); an infeasible
  /// override is an InvalidArgument at plan time. Sharded tables accept
  /// ROW and RM.
  std::optional<Backend> forced_backend = std::nullopt;

  /// Overrides the planner's per-shard ship-mode choice (rows vs partial
  /// aggregates) when a cluster is configured; both modes compute the
  /// identical partials on the node, so this changes cycles and wire
  /// bytes, never the answer. InvalidArgument on an unsharded plan or
  /// without a configured cluster.
  std::optional<net::ShipMode> forced_ship = std::nullopt;

  /// Width of the simulated shard fan-out: surviving shards are assigned
  /// shard-major to this many simulated workers, and the fan-out's
  /// elapsed cycles are the busiest worker plus the merge. <= 0 means
  /// one simulated worker per surviving shard (maximum parallelism).
  /// This is a *simulated* knob: host threading never changes answers or
  /// cycles. With a cluster configured the fan-out width is the node
  /// count (shards run where their data lives) and this knob is unused.
  int max_threads = 0;

  /// Availability over completeness: when a shard has no live replica
  /// (all killed), skip it and return the answer over the surviving
  /// shards with QueryResult::partial set, instead of failing the
  /// statement with kUnavailable. Default off — a partial aggregate is
  /// wrong unless the caller opted in.
  bool allow_partial = false;

  /// Cycle-domain deadline: > 0 makes the shard scheduler cancel shards
  /// whose (simulated) completion would land past this many cycles and
  /// fail the statement with kDeadlineExceeded, profile intact. The
  /// deadline is evaluated on the simulated clock, so expiry is
  /// bit-identical across host thread counts. 0 = no deadline.
  uint64_t deadline_cycles = 0;
};

}  // namespace relfab::exec

#endif  // RELFAB_EXEC_OPTIONS_H_
