#ifndef RELFAB_EXEC_NODE_GROUP_H_
#define RELFAB_EXEC_NODE_GROUP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relmem/rm_engine.h"
#include "relstorage/rs_engine.h"
#include "relstorage/ssd_model.h"
#include "sim/memory_system.h"
#include "sim/params.h"

namespace relfab::exec {

/// The per-node simulation stacks of a configured cluster: each
/// simulated node owns a full rig — MemorySystem, RmEngine (the node's
/// "smart NIC" transformer, Farview-style) and a relstorage engine —
/// built from the same SimParams, so a shard's scan cycles are a pure
/// function of (sim params, shard data, query) no matter which node
/// serves it. Rigs are built eagerly at ConfigureCluster time; during a
/// fan-out each node is driven by exactly one host worker, so the rigs
/// need no locking.
class NodeGroup {
 public:
  struct NodeRig {
    explicit NodeRig(const sim::SimParams& params)
        : memory(params), rm(&memory), ssd(), rs(&ssd) {}

    sim::MemorySystem memory;
    relmem::RmEngine rm;
    relstorage::SsdModel ssd;
    relstorage::RsEngine rs;
  };

  NodeGroup(const sim::SimParams& params, uint32_t nodes);

  uint32_t size() const { return static_cast<uint32_t>(rigs_.size()); }
  NodeRig& rig(uint32_t node) { return *rigs_[node]; }
  const std::string& name(uint32_t node) const { return names_[node]; }

 private:
  std::vector<std::unique_ptr<NodeRig>> rigs_;
  std::vector<std::string> names_;
};

}  // namespace relfab::exec

#endif  // RELFAB_EXEC_NODE_GROUP_H_
