#ifndef RELFAB_EXEC_EXEC_CONTEXT_H_
#define RELFAB_EXEC_EXEC_CONTEXT_H_

#include "exec/options.h"
#include "faults/health.h"
#include "faults/injector.h"
#include "obs/digest.h"
#include "obs/flight_recorder.h"
#include "obs/query_log.h"
#include "obs/query_profile.h"
#include "obs/trace.h"

namespace relfab::exec {

class ShardScheduler;

/// Everything one query execution needs beyond the plan, passed by value
/// through Executor::Execute. Replaces the old setter soup
/// (set_tracer / set_fault_injector) and the profile out-param: the
/// executor itself stays stateless wiring, and two concurrent callers
/// can run with different contexts against the same executor.
///
/// All pointers are optional (null = feature off) and non-owning; the
/// caller keeps them alive for the duration of the call.
struct ExecContext {
  /// Span tracing for the statement ("query.execute" etc.).
  obs::Tracer* tracer = nullptr;

  /// Fault-injection bookkeeping: fallbacks noted on degradation. The
  /// injection itself happens inside the components the injector was
  /// armed into (memory system, RM engine, ...).
  faults::FaultInjector* injector = nullptr;

  /// Non-null => EXPLAIN ANALYZE: per-operator meter attribution is
  /// collected into this profile.
  obs::QueryProfile* profile = nullptr;

  /// Executes shard-fanout plans; required when the plan's table is
  /// sharded, ignored otherwise.
  ShardScheduler* scheduler = nullptr;

  /// Latency digests (workload telemetry): the scheduler feeds per-shard
  /// scan cycles, the Fabric epilogue feeds per-backend statement
  /// cycles. Observations happen only in single-threaded post-join code,
  /// in shard order, so digests stay deterministic across host workers.
  obs::DigestSet* digests = nullptr;

  /// Structured query log: one record per statement, appended by the
  /// Fabric epilogue through this pointer.
  obs::QueryLog* query_log = nullptr;

  /// Flight recorder for incident capture: degradations and fault hits
  /// are logged here as they happen (the dump trigger lives in the
  /// telemetry epilogue).
  obs::FlightRecorder* recorder = nullptr;

  /// Failure-domain health: kill draws and circuit-breaker reports.
  /// Touched only from single-threaded coordinator code (executor
  /// dispatch, scheduler pre-fan-out / post-join) — never from shard
  /// worker tasks — so health state stays scheduling-invariant.
  faults::HealthRegistry* health = nullptr;

  /// Per-statement knobs (analyze / forced_backend / max_threads).
  QueryOptions options;
};

}  // namespace relfab::exec

#endif  // RELFAB_EXEC_EXEC_CONTEXT_H_
