#include "exec/node_group.h"

#include "net/topology.h"

namespace relfab::exec {

NodeGroup::NodeGroup(const sim::SimParams& params, uint32_t nodes) {
  rigs_.reserve(nodes);
  names_.reserve(nodes);
  for (uint32_t k = 0; k < nodes; ++k) {
    rigs_.push_back(std::make_unique<NodeRig>(params));
    names_.push_back(net::Topology::NodeName(k));
  }
}

}  // namespace relfab::exec
