#include "relmem/geometry.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace relfab::relmem {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

StatusOr<Geometry> Geometry::Project(const layout::Schema& schema,
                                     const std::vector<std::string>& names) {
  Geometry g;
  g.columns.reserve(names.size());
  for (const std::string& name : names) {
    RELFAB_ASSIGN_OR_RETURN(uint32_t idx, schema.IndexOf(name));
    g.columns.push_back(idx);
  }
  RELFAB_RETURN_IF_ERROR(g.Validate(schema));
  return g;
}

Geometry Geometry::FirstColumns(uint32_t k) {
  Geometry g;
  g.columns.resize(k);
  for (uint32_t i = 0; i < k; ++i) g.columns[i] = i;
  return g;
}

Status Geometry::Validate(const layout::Schema& schema) const {
  if (columns.empty()) {
    return Status::InvalidArgument("geometry must project at least one column");
  }
  // relfab-lint: allow(unordered-iteration) membership-only dedup set; never iterated, so no order can leak into cycles
  std::unordered_set<uint32_t> seen;
  for (uint32_t c : columns) {
    if (c >= schema.num_columns()) {
      return Status::OutOfRange("projected column " + std::to_string(c) +
                                " out of range");
    }
    if (!seen.insert(c).second) {
      return Status::InvalidArgument("column " + std::to_string(c) +
                                     " projected twice");
    }
  }
  for (const HwPredicate& p : predicates) {
    if (p.column >= schema.num_columns()) {
      return Status::OutOfRange("predicate column " +
                                std::to_string(p.column) + " out of range");
    }
    if (schema.type(p.column) == layout::ColumnType::kChar) {
      return Status::InvalidArgument(
          "hardware predicates support numeric columns only");
    }
  }
  if (visibility.enabled) {
    if (visibility.begin_ts_column >= schema.num_columns() ||
        visibility.end_ts_column >= schema.num_columns()) {
      return Status::OutOfRange("visibility timestamp column out of range");
    }
  }
  if (begin_row > end_row) {
    return Status::InvalidArgument("begin_row > end_row");
  }
  return Status::Ok();
}

uint32_t Geometry::OutputRowBytes(const layout::Schema& schema) const {
  uint32_t bytes = 0;
  for (uint32_t c : columns) bytes += schema.width(c);
  return bytes;
}

std::vector<uint32_t> Geometry::SourceColumns(
    const layout::Schema& schema) const {
  std::vector<uint32_t> src = columns;
  for (const HwPredicate& p : predicates) src.push_back(p.column);
  if (visibility.enabled) {
    src.push_back(visibility.begin_ts_column);
    src.push_back(visibility.end_ts_column);
  }
  std::sort(src.begin(), src.end(), [&schema](uint32_t a, uint32_t b) {
    return schema.offset(a) < schema.offset(b);
  });
  src.erase(std::unique(src.begin(), src.end()), src.end());
  return src;
}

std::string Geometry::ToString(const layout::Schema& schema) const {
  std::ostringstream os;
  os << "geometry{cols=[";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << ",";
    os << schema.column(columns[i]).name;
  }
  os << "]";
  for (const HwPredicate& p : predicates) {
    os << ", " << schema.column(p.column).name << CompareOpToString(p.op);
    if (schema.type(p.column) == layout::ColumnType::kDouble) {
      os << p.double_operand;
    } else {
      os << p.int_operand;
    }
  }
  if (visibility.enabled) os << ", snapshot@" << visibility.read_ts;
  os << "}";
  return os.str();
}

}  // namespace relfab::relmem
