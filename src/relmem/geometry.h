#ifndef RELFAB_RELMEM_GEOMETRY_H_
#define RELFAB_RELMEM_GEOMETRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "layout/schema.h"

namespace relfab::relmem {

/// Comparison operator of a hardware-pushed predicate (§IV-B of the paper
/// proposes pushing selection into the fabric).
enum class CompareOp : uint8_t {
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
};

std::string_view CompareOpToString(CompareOp op);

/// One conjunct of a hardware predicate: `column <op> literal`. Literals
/// are carried as both int64 and double; the column type selects which
/// is used.
struct HwPredicate {
  uint32_t column = 0;
  CompareOp op = CompareOp::kLt;
  int64_t int_operand = 0;
  double double_operand = 0;

  static HwPredicate Int(uint32_t column, CompareOp op, int64_t operand) {
    return HwPredicate{column, op, operand,
                       static_cast<double>(operand)};
  }
  static HwPredicate Double(uint32_t column, CompareOp op, double operand) {
    return HwPredicate{column, op, static_cast<int64_t>(operand), operand};
  }
};

/// Snapshot visibility filter for MVCC (§III-C): the fabric compares the
/// per-row begin/end timestamps against `read_ts` and ships only versions
/// valid at the snapshot. Timestamp columns live inside the row like any
/// other attribute.
struct VisibilityFilter {
  bool enabled = false;
  uint32_t begin_ts_column = 0;
  uint32_t end_ts_column = 0;
  uint64_t read_ts = 0;
};

/// A *data geometry* (the paper's term): an arbitrary subset of a
/// relational table — any group of columns, over a row range, optionally
/// filtered by hardware predicates and/or an MVCC snapshot. Configuring
/// an ephemeral variable means handing one of these to the fabric.
struct Geometry {
  /// Projected columns, in output order. Must be non-empty and unique.
  std::vector<uint32_t> columns;
  /// Row range [begin_row, end_row); end_row is clamped to the table.
  uint64_t begin_row = 0;
  uint64_t end_row = ~0ull;
  /// Conjunctive predicates evaluated in the fabric (empty = ship all
  /// rows). Predicate columns need not be projected.
  std::vector<HwPredicate> predicates;
  /// MVCC snapshot filter.
  VisibilityFilter visibility;

  /// Geometry projecting the named columns of `schema`.
  static StatusOr<Geometry> Project(const layout::Schema& schema,
                                    const std::vector<std::string>& names);
  /// Geometry projecting columns [0, k) — the shape of the paper's
  /// projectivity sweeps.
  static Geometry FirstColumns(uint32_t k);

  /// Checks column indices / duplicates against a schema.
  Status Validate(const layout::Schema& schema) const;

  /// Packed width of one output row (sum of projected column widths).
  uint32_t OutputRowBytes(const layout::Schema& schema) const;

  /// All columns the fabric must *read* per row: projected + predicate +
  /// timestamp columns, deduplicated, sorted by schema offset.
  std::vector<uint32_t> SourceColumns(const layout::Schema& schema) const;

  std::string ToString(const layout::Schema& schema) const;
};

}  // namespace relfab::relmem

#endif  // RELFAB_RELMEM_GEOMETRY_H_
