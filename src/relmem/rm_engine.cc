#include "relmem/rm_engine.h"

#include <algorithm>
#include <cstring>

namespace relfab::relmem {

namespace {

/// Evaluates one hardware predicate conjunct against a row. Comparison
/// semantics deliberately match the software engines (double compare;
/// exact for all integer values below 2^53) so that pushing a predicate
/// into the fabric never changes the query's answer.
bool EvalPredicate(const layout::RowTable& table, const HwPredicate& p,
                   uint64_t row) {
  const double v = table.GetDouble(row, p.column);
  switch (p.op) {
    case CompareOp::kLt:
      return v < p.double_operand;
    case CompareOp::kLe:
      return v <= p.double_operand;
    case CompareOp::kGt:
      return v > p.double_operand;
    case CompareOp::kGe:
      return v >= p.double_operand;
    case CompareOp::kEq:
      return v == p.double_operand;
    case CompareOp::kNe:
      return v != p.double_operand;
  }
  return false;
}

/// Accumulates a gather loop's deduplicated line stream into maximal
/// consecutive runs and charges each run through
/// MemorySystem::GatherRun instead of per-line GatherLine calls.
///
/// Exactness: the per-run charge `len * transfer + misses * (miss_lat /
/// parallelism)` re-associates the reference loop's additions into
/// `cycles_`, which starts at zero and only ever accumulates dyadic
/// rationals (6.0 and miss_lat/parallelism, a power-of-two division of
/// an integer) — every partial sum is exactly representable, so any
/// association order yields the same bits. GatherRun replays the DRAM
/// row-buffer state and channel/gather counters in closed form. Only
/// used when the fast path is on; the per-line loop remains the
/// reference the equivalence tests compare against.
class GatherBatcher {
 public:
  GatherBatcher(sim::MemorySystem* memory, const sim::SimParams& params)
      : memory_(memory),
        transfer_(params.line_transfer_cycles),
        miss_per_line_(params.dram_row_miss_cycles /
                       params.fabric_gather_parallelism) {}

  /// Adds one (already deduplicated) line to the pending run.
  void Add(uint64_t line) {
    if (run_len_ > 0 && line == run_start_ + run_len_) {
      ++run_len_;
      return;
    }
    Flush();
    run_start_ = line;
    run_len_ = 1;
  }

  /// Charges the pending run; must be called before reading cycles().
  void Flush() {
    if (run_len_ == 0) return;
    const uint64_t misses = memory_->GatherRun(run_start_ << 6, run_len_);
    cycles_ += transfer_ * static_cast<double>(run_len_) +
               miss_per_line_ * static_cast<double>(misses);
    run_len_ = 0;
  }

  double cycles() const { return cycles_; }

 private:
  sim::MemorySystem* memory_;
  double transfer_;
  double miss_per_line_;
  uint64_t run_start_ = 0;
  uint64_t run_len_ = 0;
  double cycles_ = 0;
};

}  // namespace

bool RmEngine::RowQualifies(const layout::RowTable& table, const Geometry& g,
                            uint64_t row) {
  if (g.visibility.enabled) {
    const uint64_t begin_ts = static_cast<uint64_t>(
        table.GetInt(row, g.visibility.begin_ts_column));
    const uint64_t end_ts =
        static_cast<uint64_t>(table.GetInt(row, g.visibility.end_ts_column));
    if (begin_ts > g.visibility.read_ts) return false;
    if (end_ts != 0 && end_ts <= g.visibility.read_ts) return false;
  }
  for (const HwPredicate& p : g.predicates) {
    if (!EvalPredicate(table, p, row)) return false;
  }
  return true;
}

StatusOr<EphemeralView> RmEngine::Configure(const layout::RowTable& table,
                                            Geometry geometry) {
  RELFAB_RETURN_IF_ERROR(geometry.Validate(table.schema()));
  geometry.end_row = std::min(geometry.end_row, table.num_rows());
  geometry.begin_row = std::min(geometry.begin_row, geometry.end_row);
  // Descriptor programming can find the fabric unavailable; the retry
  // stalls the core (it is the CPU that waits on the config interface).
  RELFAB_RETURN_IF_ERROR(faults::InjectAndRetry(
      injector_, config_site_, retry_,
      [this](double cycles) { memory_->Stall(cycles); },
      "ephemeral-view descriptor programming", tracer_));
  memory_->CpuWork(params_.fabric_configure_cycles);
  ++num_configures_;
  return EphemeralView(&table, this, std::move(geometry));
}

StatusOr<RmEngine::FabricAggResult> RmEngine::AggregateInFabric(
    const layout::RowTable& table, Geometry geometry,
    const std::vector<FabricAgg>& aggs) {
  RELFAB_RETURN_IF_ERROR(geometry.Validate(table.schema()));
  if (aggs.empty()) {
    return Status::InvalidArgument("no reductions requested");
  }
  for (const FabricAgg& agg : aggs) {
    if (agg.op == FabricAggOp::kCount) continue;
    if (std::find(geometry.columns.begin(), geometry.columns.end(),
                  agg.column) == geometry.columns.end()) {
      return Status::InvalidArgument(
          "reduction column must be part of the geometry");
    }
    if (table.schema().type(agg.column) == layout::ColumnType::kChar) {
      return Status::InvalidArgument("cannot reduce a char column");
    }
  }
  geometry.end_row = std::min(geometry.end_row, table.num_rows());
  geometry.begin_row = std::min(geometry.begin_row, geometry.end_row);
  RELFAB_RETURN_IF_ERROR(faults::InjectAndRetry(
      injector_, config_site_, retry_,
      [this](double cycles) { memory_->Stall(cycles); },
      "in-fabric aggregation descriptor", tracer_));
  memory_->CpuWork(params_.fabric_configure_cycles);
  ++num_configures_;

  obs::Span span(tracer_, "rm.aggregate", "relmem");
  // The whole aggregation is one fabric operation: draw its stall and
  // gather faults up front (before any bandwidth is spent), charging
  // penalties/backoff as pipeline stalls.
  {
    const auto charge = [this](double cycles) { memory_->Stall(cycles); };
    Status st = faults::InjectAndRetry(injector_, stall_site_, retry_, charge,
                                       "in-fabric aggregation", tracer_);
    if (st.ok()) {
      st = faults::InjectAndRetry(injector_, gather_site_, retry_, charge,
                                  "in-fabric aggregation gather", tracer_);
    }
    if (!st.ok()) {
      span.AddArg("fault", st.ToString());
      return st;
    }
  }
  const layout::Schema& schema = table.schema();
  const std::vector<uint32_t> source = geometry.SourceColumns(schema);
  FabricAggResult result;
  result.values.assign(aggs.size(), 0.0);
  std::vector<bool> first(aggs.size(), true);

  double gather_cycles = 0;
  uint64_t last_line = ~0ull;
  const bool batched = memory_->fast_path();
  GatherBatcher batcher(memory_, params_);
  for (uint64_t row = geometry.begin_row; row < geometry.end_row; ++row) {
    ++result.rows_scanned;
    for (uint32_t c : source) {
      const uint64_t addr = table.FieldAddress(row, c);
      const uint64_t first_line = addr >> 6;
      const uint64_t last_needed = (addr + schema.width(c) - 1) >> 6;
      for (uint64_t line = first_line; line <= last_needed; ++line) {
        if (line == last_line) continue;
        if (batched) {
          batcher.Add(line);
        } else {
          bool row_hit = false;
          const double lat = memory_->GatherLine(line << 6, &row_hit);
          gather_cycles += params_.line_transfer_cycles;
          if (!row_hit) {
            gather_cycles += lat / params_.fabric_gather_parallelism;
          }
        }
        last_line = line;
      }
    }
    if (!RowQualifies(table, geometry, row)) continue;
    ++result.rows_matched;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const FabricAgg& agg = aggs[a];
      switch (agg.op) {
        case FabricAggOp::kCount:
          result.values[a] += 1;
          break;
        case FabricAggOp::kSum:
          result.values[a] += table.GetDouble(row, agg.column);
          break;
        case FabricAggOp::kMin: {
          const double v = table.GetDouble(row, agg.column);
          result.values[a] = first[a] ? v : std::min(result.values[a], v);
          first[a] = false;
          break;
        }
        case FabricAggOp::kMax: {
          const double v = table.GetDouble(row, agg.column);
          result.values[a] = first[a] ? v : std::max(result.values[a], v);
          first[a] = false;
          break;
        }
      }
    }
  }

  if (batched) {
    batcher.Flush();
    gather_cycles = batcher.cycles();
  }
  // Pipeline: gather vs row parse vs the (trivially pipelined) reduce.
  const double parse_cycles =
      static_cast<double>(result.rows_scanned) /
      params_.fabric_rows_per_cycle * params_.fabric_clock_ratio;
  memory_->Stall(std::max(gather_cycles, parse_cycles));
  // The CPU reads back one result line.
  memory_->CpuWork(params_.fabric_read_cycles);
  return result;
}

RmEngine::ChunkResult RmEngine::ProduceChunk(
    const layout::RowTable& table, const Geometry& g,
    const std::vector<uint32_t>& source_columns, uint64_t input_row,
    uint64_t end_row, uint64_t max_out_rows, uint8_t* out,
    uint32_t out_row_bytes) {
  const layout::Schema& schema = table.schema();
  obs::Span span(tracer_, "rm.gather.chunk", "relmem");
  ChunkResult result;
  result.next_input_row = input_row;
  // Faults fire at the head of the chunk, before any line is gathered:
  // on failure the caller resumes at exactly `input_row`, and the
  // penalty/backoff cycles ride in producer_cycles like any other
  // pipeline time.
  if (injector_ != nullptr) {
    const auto charge = [&result](double cycles) {
      result.producer_cycles += cycles;
    };
    result.status = faults::InjectAndRetry(
        injector_, stall_site_, retry_, charge, "chunk production", tracer_);
    if (result.status.ok()) {
      result.status = faults::InjectAndRetry(injector_, gather_site_, retry_,
                                             charge, "bank-parallel gather",
                                             tracer_);
    }
    if (!result.status.ok()) {
      span.AddArg("fault", result.status.ToString());
      return result;
    }
  }
  double gather_cycles = 0;
  double parse_rows = 0;
  uint64_t last_line = ~0ull;
  uint64_t row = input_row;
  const bool batched = memory_->fast_path();
  GatherBatcher batcher(memory_, params_);

  for (; row < end_row && result.out_rows < max_out_rows; ++row) {
    parse_rows += 1;
    // Stage 1: gather every line containing a needed source field.
    // Field addresses are non-decreasing within a row and across rows, so
    // one running line suffices to deduplicate shared lines.
    for (uint32_t c : source_columns) {
      const uint64_t addr = table.FieldAddress(row, c);
      const uint64_t first = addr >> 6;
      const uint64_t last = (addr + schema.width(c) - 1) >> 6;
      for (uint64_t line = first; line <= last; ++line) {
        if (line == last_line) continue;
        if (batched) {
          batcher.Add(line);
        } else {
          bool row_hit = false;
          const double lat = memory_->GatherLine(line << 6, &row_hit);
          // An open-row access streams at channel rate; a row open
          // exposes its latency divided across the concurrently driven
          // banks.
          gather_cycles += params_.line_transfer_cycles;
          if (!row_hit) {
            gather_cycles += lat / params_.fabric_gather_parallelism;
          }
        }
        last_line = line;
      }
    }
    // Stage 2: filter (predicates + snapshot visibility) in the fabric.
    if (!RowQualifies(table, g, row)) continue;
    // Stage 3: pack the projected fields densely.
    uint8_t* dst = out + result.out_rows * out_row_bytes;
    const uint8_t* src = table.RowData(row);
    for (uint32_t c : g.columns) {
      std::memcpy(dst, src + schema.offset(c), schema.width(c));
      dst += schema.width(c);
    }
    ++result.out_rows;
  }

  if (batched) {
    batcher.Flush();
    gather_cycles = batcher.cycles();
  }
  result.next_input_row = row;
  ++chunks_produced_;
  rows_parsed_ += row - input_row;
  rows_packed_ += result.out_rows;
  span.AddArg("rows_in", row - input_row);
  span.AddArg("rows_out", result.out_rows);
  const double out_lines =
      static_cast<double>(result.out_rows * out_row_bytes + 63) / 64.0;
  const double parse_cycles = parse_rows / params_.fabric_rows_per_cycle *
                              params_.fabric_clock_ratio;
  const double pack_cycles = out_lines * params_.fabric_pack_cycles_per_line *
                             params_.fabric_clock_ratio;
  // The three stages are pipelined: the chunk takes as long as the
  // slowest stage. Injected-fault penalties (already in producer_cycles)
  // are serial head-of-chunk time, so they add on top.
  result.producer_cycles +=
      std::max(gather_cycles, std::max(parse_cycles, pack_cycles));
  return result;
}

}  // namespace relfab::relmem
