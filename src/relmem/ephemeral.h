#ifndef RELFAB_RELMEM_EPHEMERAL_H_
#define RELFAB_RELMEM_EPHEMERAL_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "layout/row_table.h"
#include "layout/schema.h"
#include "relmem/geometry.h"
#include "sim/memory_system.h"

namespace relfab::relmem {

class RmEngine;

/// An *ephemeral variable* (paper §II, Fig. 3): a dense, non-materialized
/// alias of an arbitrary column group of a row-oriented table. The CPU
/// iterates it as if the packed column group existed contiguously in
/// memory; underneath, the fabric gathers the scattered source fields
/// with bank-parallel DRAM reads, packs them into the 2 MB fill buffer,
/// and streams them out. Production overlaps consumption (double
/// buffering); the cursor charges a stall whenever the consumer outruns
/// the producer, plus a fixed re-arm cost per buffer refill.
///
/// The source table and the RmEngine must outlive the view. One cursor
/// may be active at a time; constructing a cursor restarts the stream.
class EphemeralView {
 public:
  EphemeralView(const EphemeralView&) = delete;
  EphemeralView& operator=(const EphemeralView&) = delete;
  EphemeralView(EphemeralView&&) = default;
  EphemeralView& operator=(EphemeralView&&) = default;

  const Geometry& geometry() const { return geometry_; }
  const layout::Schema& source_schema() const { return table_->schema(); }

  /// Packed bytes of one output row.
  uint32_t out_row_bytes() const { return out_row_bytes_; }
  /// Number of fields per output row.
  uint32_t num_fields() const {
    return static_cast<uint32_t>(geometry_.columns.size());
  }
  /// Source-schema type of output field `f`.
  layout::ColumnType field_type(uint32_t f) const {
    return table_->schema().type(geometry_.columns[f]);
  }
  uint32_t field_width(uint32_t f) const {
    return table_->schema().width(geometry_.columns[f]);
  }
  /// Source-schema name of output field `f`.
  const std::string& field_name(uint32_t f) const {
    return table_->schema().column(geometry_.columns[f]).name;
  }

  /// True when the fabric filters rows (predicates or MVCC snapshot), in
  /// which case the output cardinality is only known after scanning.
  bool has_pushdown() const {
    return !geometry_.predicates.empty() || geometry_.visibility.enabled;
  }

  /// Output rows for a pushdown-free view (== source rows in range).
  uint64_t num_rows() const {
    // relfab-lint: allow(data-check) API-contract violation by the caller (documented precondition), not input data
    RELFAB_CHECK(!has_pushdown())
        << "num_rows() is undefined for filtered views; scan with a Cursor";
    return end_row_ - begin_row_;
  }

  /// Forward cursor over the view's output rows.
  class Cursor {
   public:
    /// Restarts the view's stream and positions on the first output row.
    explicit Cursor(EphemeralView* view) : view_(view), reader_(nullptr) {
      view_->RestartStream();
      reader_ = sim::SequentialReader(view_->memory());
    }

    bool Valid() const { return local_row_ < view_->chunk_rows_; }

    void Advance() {
      RELFAB_DCHECK(Valid());
      ++local_row_;
      ++global_row_;
      if (local_row_ == view_->chunk_rows_) {
        view_->LoadNextChunk();
        local_row_ = 0;
        reader_.Reset();
      }
    }

    /// Index of the current output row (across chunks).
    uint64_t row_index() const { return global_row_; }

    int64_t GetInt(uint32_t field) {
      const uint8_t* p = FieldPtr(field);
      switch (view_->field_type(field)) {
        case layout::ColumnType::kInt32:
        case layout::ColumnType::kDate: {
          int32_t v;
          std::memcpy(&v, p, 4);
          return v;
        }
        case layout::ColumnType::kInt64: {
          int64_t v;
          std::memcpy(&v, p, 8);
          return v;
        }
        default:
          // relfab-lint: allow(data-check) field types are validated by the planner before execution; reaching here is a caller bug
          RELFAB_CHECK(false) << "GetInt on non-integer field " << field;
          return 0;
      }
    }

    double GetDouble(uint32_t field) {
      if (view_->field_type(field) == layout::ColumnType::kDouble) {
        double v;
        std::memcpy(&v, FieldPtr(field), 8);
        return v;
      }
      return static_cast<double>(GetInt(field));
    }

    std::string_view GetChar(uint32_t field) {
      RELFAB_DCHECK(view_->field_type(field) == layout::ColumnType::kChar);
      return std::string_view(reinterpret_cast<const char*>(FieldPtr(field)),
                              view_->field_width(field));
    }

   private:
    const uint8_t* FieldPtr(uint32_t field) {
      RELFAB_DCHECK(Valid());
      const uint64_t offset =
          local_row_ * view_->out_row_bytes_ + view_->field_offsets_[field];
      reader_.Read(view_->chunk_sim_base_ + offset,
                   view_->field_width(field));
      return view_->chunk_data_.data() + offset;
    }

    EphemeralView* view_;
    sim::SequentialReader reader_;
    uint64_t local_row_ = 0;
    uint64_t global_row_ = 0;
  };

  sim::MemorySystem* memory() const { return table_->memory(); }

  /// Non-OK when the stream stopped on an injected fabric fault instead
  /// of end-of-input: the cursor went invalid early. Engines must check
  /// this after every scan loop; a fabric-fault status means the rows
  /// from input_row() onward were never produced and can be recovered on
  /// the host path.
  const Status& status() const { return status_; }

  /// First source row the stream has not consumed — on a faulted stream,
  /// the exact resume point for host-side continuation.
  uint64_t input_row() const { return input_cursor_; }

 private:
  friend class RmEngine;
  friend class Cursor;

  EphemeralView(const layout::RowTable* table, RmEngine* engine,
                Geometry geometry);

  /// Rewinds the input cursor and produces the first chunk.
  void RestartStream();

  /// Produces the next fill-buffer chunk; sets chunk_rows_ = 0 at end.
  void LoadNextChunk();

  const layout::RowTable* table_;
  RmEngine* engine_;
  Geometry geometry_;
  std::vector<uint32_t> field_offsets_;  // packed offsets in an output row
  std::vector<uint32_t> source_columns_;
  uint32_t out_row_bytes_ = 0;
  uint64_t begin_row_ = 0;
  uint64_t end_row_ = 0;

  // Chunked production state. chunk_sim_base_ advances monotonically
  // through fabric address space: the physical fill buffer is reused but
  // each refill presents logically fresh lines to the cache model.
  std::vector<uint8_t> chunk_data_;
  double refill_stall_per_chunk_ = 0;
  uint64_t chunk_capacity_rows_ = 0;
  uint64_t chunk_rows_ = 0;
  uint64_t chunk_sim_base_ = 0;
  uint64_t input_cursor_ = 0;
  double cpu_at_last_refill_ = 0;
  bool first_chunk_ = true;
  Status status_;  // non-OK: production died on an injected fault
};

}  // namespace relfab::relmem

#endif  // RELFAB_RELMEM_EPHEMERAL_H_
