#ifndef RELFAB_RELMEM_RM_ENGINE_H_
#define RELFAB_RELMEM_RM_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "faults/injector.h"
#include "faults/retry.h"
#include "layout/row_table.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "relmem/ephemeral.h"
#include "relmem/geometry.h"
#include "sim/memory_system.h"

namespace relfab::relmem {

/// Relational Memory: the in-memory instance of Relational Fabric
/// (paper §IV-A). Sits between the CPU and DRAM; given a geometry it
/// (1) issues bank-parallel DRAM requests for the scattered source
/// fields, (2) filters rows by hardware predicates / MVCC timestamps,
/// (3) packs qualifying rows' projected fields into dense cache lines in
/// the fill buffer, and (4) serves the CPU's demand reads from there.
///
/// Production cost per chunk is a three-stage pipeline, rate-limited by
/// its slowest stage: DRAM gather, row parsing (fabric clock), and output
/// packing. Gathers charge the shared DRAM channel, so fabric traffic and
/// CPU demand traffic contend for the same bandwidth.
class RmEngine {
 public:
  explicit RmEngine(sim::MemorySystem* memory)
      : memory_(memory), params_(memory->params()) {
    // relfab-lint: allow(data-check) wiring-time null check: a programming error, never data-dependent
    RELFAB_CHECK(memory != nullptr);
  }

  RmEngine(const RmEngine&) = delete;
  RmEngine& operator=(const RmEngine&) = delete;

  /// Configures an ephemeral variable for `geometry` over `table`
  /// (paper Fig. 3, line 25). Charges the descriptor-programming cost.
  /// The table and this engine must outlive the returned view.
  StatusOr<EphemeralView> Configure(const layout::RowTable& table,
                                    Geometry geometry);

  /// Result of producing one fill-buffer chunk. On a non-OK status no
  /// rows were produced and `next_input_row` equals the requested
  /// `input_row` (the fault fires before any gathering), so the caller
  /// can resume the remaining work — e.g. on the host path —
  /// exactly where the fabric gave up. `producer_cycles` still carries
  /// the simulated cost of the failed attempts and backoff.
  struct ChunkResult {
    uint64_t out_rows = 0;        // rows packed into the chunk
    uint64_t next_input_row = 0;  // where the next chunk resumes
    double producer_cycles = 0;   // fabric pipeline time (CPU cycles)
    Status status;                // non-OK: fabric fault, retries spent
  };

  /// Transforms source rows [input_row, end_row) into packed output rows
  /// until `max_out_rows` are produced or input is exhausted. Writes
  /// packed rows to `out` (functional data) and charges DRAM channel
  /// bandwidth for every gathered line. Used by EphemeralView; exposed
  /// for tests and ablations.
  ChunkResult ProduceChunk(const layout::RowTable& table, const Geometry& g,
                           const std::vector<uint32_t>& source_columns,
                           uint64_t input_row, uint64_t end_row,
                           uint64_t max_out_rows, uint8_t* out,
                           uint32_t out_row_bytes);

  /// True if `row` passes the geometry's hardware predicates and snapshot
  /// visibility check (functional semantics of the fabric's filter unit).
  static bool RowQualifies(const layout::RowTable& table, const Geometry& g,
                           uint64_t row);

  // --- aggregation pushdown (paper §IV-B) ---
  // "Pushing selection and aggregation in the hardware... the ephemeral
  // variables will contain only the required data or the aggregation
  // result, which will be passed through the memory hierarchy ensuring
  // minimal data movement."

  /// Aggregate op the fabric's reduction unit supports (simple column
  /// reductions; expressions stay on the CPU).
  enum class FabricAggOp : uint8_t { kSum, kMin, kMax, kCount };

  /// One requested reduction over a geometry column.
  struct FabricAgg {
    FabricAggOp op = FabricAggOp::kCount;
    /// Column to reduce (a member of the geometry's projection;
    /// ignored for kCount).
    uint32_t column = 0;
  };

  /// Result of an in-fabric aggregation: only this crosses the memory
  /// hierarchy (one cache line instead of the whole column group).
  struct FabricAggResult {
    std::vector<double> values;  // one per requested FabricAgg
    uint64_t rows_scanned = 0;
    uint64_t rows_matched = 0;   // after predicates/visibility
  };

  /// Evaluates the reductions entirely inside the fabric: gathers the
  /// source columns, filters by the geometry's predicates/visibility,
  /// reduces, and ships only the result. Charges the gather bandwidth
  /// and the fabric pipeline; the CPU pays a single buffer read.
  StatusOr<FabricAggResult> AggregateInFabric(
      const layout::RowTable& table, Geometry geometry,
      const std::vector<FabricAgg>& aggs);

  sim::MemorySystem* memory() const { return memory_; }
  uint64_t num_configures() const { return num_configures_; }
  uint64_t chunks_produced() const { return chunks_produced_; }
  uint64_t rows_parsed() const { return rows_parsed_; }
  uint64_t rows_packed() const { return rows_packed_; }

  /// Attaches a tracer; each produced chunk and in-fabric aggregation
  /// emits a span ("rm.gather.chunk" / "rm.aggregate"). Null detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Arms fault injection at the engine's sites ("rm.config",
  /// "rm.stall", "rm.gather"); null disarms. Handles resolve here so the
  /// production hot path pays one pointer test when unarmed.
  void set_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
    config_site_ = injector == nullptr ? faults::FaultInjector::kNoSite
                                       : injector->Site("rm.config");
    stall_site_ = injector == nullptr ? faults::FaultInjector::kNoSite
                                      : injector->Site("rm.stall");
    gather_site_ = injector == nullptr ? faults::FaultInjector::kNoSite
                                       : injector->Site("rm.gather");
  }
  void set_retry_policy(const faults::RetryPolicy& policy) {
    retry_ = policy;
  }
  faults::FaultInjector* fault_injector() const { return injector_; }

  /// Publishes the engine's production counters under "rm.*", plus a
  /// chunk-size histogram when chunks were produced.
  void ExportTo(obs::Registry* registry) const {
    registry->counter("rm.configures")->Set(num_configures_);
    registry->counter("rm.chunks_produced")->Set(chunks_produced_);
    registry->counter("rm.rows_parsed")->Set(rows_parsed_);
    registry->counter("rm.rows_packed")->Set(rows_packed_);
  }

 private:
  sim::MemorySystem* memory_;
  const sim::SimParams& params_;
  obs::Tracer* tracer_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
  faults::RetryPolicy retry_;
  int config_site_ = faults::FaultInjector::kNoSite;
  int stall_site_ = faults::FaultInjector::kNoSite;
  int gather_site_ = faults::FaultInjector::kNoSite;
  uint64_t num_configures_ = 0;
  uint64_t chunks_produced_ = 0;
  uint64_t rows_parsed_ = 0;   // source rows run through the filter stage
  uint64_t rows_packed_ = 0;   // qualifying rows packed into fill buffers
};

}  // namespace relfab::relmem

#endif  // RELFAB_RELMEM_RM_ENGINE_H_
