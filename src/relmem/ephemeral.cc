#include "relmem/ephemeral.h"

#include <algorithm>

#include "relmem/rm_engine.h"

namespace relfab::relmem {

EphemeralView::EphemeralView(const layout::RowTable* table, RmEngine* engine,
                             Geometry geometry)
    : table_(table), engine_(engine), geometry_(std::move(geometry)) {
  const layout::Schema& schema = table_->schema();
  uint32_t offset = 0;
  field_offsets_.reserve(geometry_.columns.size());
  for (uint32_t c : geometry_.columns) {
    field_offsets_.push_back(offset);
    offset += schema.width(c);
  }
  out_row_bytes_ = offset;
  source_columns_ = geometry_.SourceColumns(schema);
  begin_row_ = geometry_.begin_row;
  end_row_ = geometry_.end_row;

  // Production is modelled in strips much smaller than the fill buffer:
  // the fabric streams lines into one half of the buffer while the CPU
  // drains the other, so the consumer only ever waits for the producer's
  // *rate*, not for a whole buffer half. The fixed re-arm stall is paid
  // once per buffer-half of output, prorated per strip.
  const uint64_t half = memory()->params().fabric_buffer_bytes / 2;
  const uint64_t strip = std::min<uint64_t>(half, 64 * 1024);
  refill_stall_per_chunk_ = memory()->params().fabric_refill_stall_cycles *
                            static_cast<double>(strip) /
                            static_cast<double>(half);
  chunk_capacity_rows_ = std::max<uint64_t>(1, strip / out_row_bytes_);
  chunk_data_.resize(chunk_capacity_rows_ * out_row_bytes_);
}

void EphemeralView::RestartStream() {
  input_cursor_ = begin_row_;
  first_chunk_ = true;
  chunk_rows_ = 0;
  status_ = Status::Ok();
  LoadNextChunk();
}

void EphemeralView::LoadNextChunk() {
  sim::MemorySystem* mem = memory();
  if (input_cursor_ >= end_row_) {
    chunk_rows_ = 0;
    return;
  }
  const double consumed_window = mem->cpu_cycles() - cpu_at_last_refill_;
  RmEngine::ChunkResult r = engine_->ProduceChunk(
      *table_, geometry_, source_columns_, input_cursor_, end_row_,
      chunk_capacity_rows_, chunk_data_.data(), out_row_bytes_);
  if (!r.status.ok()) {
    // The fabric gave up on this chunk after exhausting its retries. The
    // attempts' simulated time is real even though no rows arrived; the
    // input cursor stays put (ProduceChunk faults before gathering), so
    // callers can resume at input_row() on the host path.
    mem->Stall(r.producer_cycles);
    status_ = std::move(r.status);
    chunk_rows_ = 0;
    return;
  }
  input_cursor_ = r.next_input_row;
  chunk_rows_ = r.out_rows;
  if (chunk_rows_ == 0 && input_cursor_ >= end_row_) {
    // Tail of the table was fully filtered out; still pay for the scan.
    mem->Stall(first_chunk_
                   ? r.producer_cycles
                   : std::max(0.0, r.producer_cycles - consumed_window));
    return;
  }
  // Fresh simulated lines for this refill: the physical buffer is reused
  // but its content changed, so the cache must re-fetch.
  chunk_sim_base_ = mem->Allocate(chunk_rows_ * out_row_bytes_,
                                  sim::MemClass::kFabricBuffer);
  // Double buffering: strip N+1 was produced while strip N was being
  // consumed; the CPU stalls only for the un-overlapped remainder. The
  // first strip has nothing to overlap with (pipeline fill).
  const double stall =
      first_chunk_ ? r.producer_cycles
                   : std::max(0.0, r.producer_cycles - consumed_window);
  mem->Stall(stall + refill_stall_per_chunk_);
  mem->NoteFabricRefill();
  cpu_at_last_refill_ = mem->cpu_cycles();
  first_chunk_ = false;
}

}  // namespace relfab::relmem
