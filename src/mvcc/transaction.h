#ifndef RELFAB_MVCC_TRANSACTION_H_
#define RELFAB_MVCC_TRANSACTION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "faults/injector.h"
#include "faults/retry.h"
#include "mvcc/versioned_table.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace relfab::mvcc {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// Handle to an in-flight transaction. Writes buffer locally until
/// Commit; reads see the snapshot taken at Begin (reads of a
/// transaction's own uncommitted writes go through ReadOwn*).
class Transaction {
 public:
  uint64_t id() const { return id_; }
  /// Snapshot timestamp: this transaction sees versions committed at or
  /// before read_ts.
  uint64_t read_ts() const { return read_ts_; }
  TxnState state() const { return state_; }
  size_t pending_writes() const { return ops_.size(); }

 private:
  friend class TransactionManager;

  enum class OpKind : uint8_t { kInsert, kUpdate, kDelete };
  struct Op {
    OpKind kind;
    int64_t key;
    std::vector<uint8_t> user_row;  // empty for kDelete
  };

  uint64_t id_ = 0;
  uint64_t read_ts_ = 0;
  TxnState state_ = TxnState::kActive;
  std::vector<Op> ops_;
  // relfab-lint: allow(unordered-iteration) point lookups only (find/insert by key); commit replays ops_ in vector order
  std::unordered_map<int64_t, size_t> op_by_key_;
};

/// Snapshot-isolation transaction manager over a VersionedTable
/// (paper §III-C): one source of truth in row format, versions selected
/// by timestamp, updates append new versions, and conflicting concurrent
/// writers abort (first committer wins).
///
/// The manager is single-threaded — transactions *interleave* logically
/// (Begin/Commit in any order) as in the paper's simulation setting, but
/// calls themselves must not race.
class TransactionManager {
 public:
  explicit TransactionManager(VersionedTable* table) : table_(table) {
    RELFAB_CHECK(table != nullptr);
  }

  /// Starts a transaction reading at the current timestamp.
  Transaction Begin() {
    Transaction txn;
    txn.id_ = ++next_txn_id_;
    txn.read_ts_ = clock_;
    return txn;
  }

  /// Buffers an insert. Fails fast if the key is visible in the snapshot
  /// or already inserted by this transaction.
  Status Insert(Transaction* txn, const uint8_t* user_row);

  /// Buffers an update of `key` (full-row replacement). The key must be
  /// visible in the snapshot or inserted by this transaction.
  Status Update(Transaction* txn, int64_t key, const uint8_t* user_row);

  /// Buffers a delete of `key`.
  Status Delete(Transaction* txn, int64_t key);

  /// Reads this transaction's own pending write of `key`, if any.
  /// Returns NotFound when the transaction has no pending write for it.
  StatusOr<std::vector<uint8_t>> ReadOwnWrite(const Transaction& txn,
                                              int64_t key) const;

  /// Snapshot point read: the user-row bytes of `key` as visible to the
  /// transaction (own writes take precedence).
  StatusOr<std::vector<uint8_t>> Read(const Transaction& txn,
                                      int64_t key) const;

  /// Validates (first-committer-wins) and applies the buffered writes at
  /// a fresh commit timestamp. On conflict returns Aborted and the
  /// transaction is rolled back.
  Status Commit(Transaction* txn);

  /// Drops all buffered writes.
  void Abort(Transaction* txn);

  uint64_t current_ts() const { return clock_; }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

  /// Attaches a tracer; each Commit emits an "mvcc.commit" span with the
  /// transaction id, op count and outcome. Null detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Arms "mvcc.commit" injection: Commit draws the site before
  /// validation. A kConflict rule aborts the transaction like a real
  /// write-write conflict (kAborted); retryable kinds stall the simulated
  /// clock per the retry policy and, when exhausted, abort the
  /// transaction with the mapped I/O-class Status. The commit clock only
  /// advances on successful commits, so a replayed fault plan yields the
  /// same version history. Null disarms.
  void set_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
    commit_site_ = injector == nullptr ? faults::FaultInjector::kNoSite
                                       : injector->Site("mvcc.commit");
  }
  void set_retry_policy(const faults::RetryPolicy& policy) {
    retry_ = policy;
  }

  /// Publishes transaction counters under "mvcc.*".
  void ExportTo(obs::Registry* registry) const {
    registry->counter("mvcc.begins")->Set(next_txn_id_);
    registry->counter("mvcc.commits")->Set(commits_);
    registry->counter("mvcc.aborts")->Set(aborts_);
    registry->counter("mvcc.clock")->Set(clock_);
  }

 private:
  int64_t KeyFromRow(const uint8_t* user_row) const {
    int64_t key = 0;
    std::memcpy(&key,
                user_row + table_->user_schema().offset(table_->key_column()),
                8);
    return key;
  }

  VersionedTable* table_;
  obs::Tracer* tracer_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
  faults::RetryPolicy retry_;
  int commit_site_ = faults::FaultInjector::kNoSite;
  uint64_t clock_ = 0;
  uint64_t next_txn_id_ = 0;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace relfab::mvcc

#endif  // RELFAB_MVCC_TRANSACTION_H_
