#include "mvcc/transaction.h"

#include <cstring>

#include "common/logging.h"

namespace relfab::mvcc {

namespace {

Status RequireActive(const Transaction& txn) {
  if (txn.state() != TxnState::kActive) {
    return Status::FailedPrecondition("transaction is not active");
  }
  return Status::Ok();
}

}  // namespace

Status TransactionManager::Insert(Transaction* txn, const uint8_t* user_row) {
  RELFAB_RETURN_IF_ERROR(RequireActive(*txn));
  const int64_t key = KeyFromRow(user_row);
  auto pending = txn->op_by_key_.find(key);
  if (pending != txn->op_by_key_.end()) {
    if (txn->ops_[pending->second].kind != Transaction::OpKind::kDelete) {
      return Status::AlreadyExists("key already written by this transaction");
    }
    // delete-then-insert becomes an update of the original version
    txn->ops_[pending->second] = {Transaction::OpKind::kUpdate, key,
                                  {user_row, user_row +
                                                 table_->user_schema()
                                                     .row_bytes()}};
    return Status::Ok();
  }
  if (table_->VisibleVersion(key, txn->read_ts_).ok()) {
    return Status::AlreadyExists("key visible in snapshot");
  }
  txn->op_by_key_[key] = txn->ops_.size();
  txn->ops_.push_back({Transaction::OpKind::kInsert, key,
                       {user_row,
                        user_row + table_->user_schema().row_bytes()}});
  return Status::Ok();
}

Status TransactionManager::Update(Transaction* txn, int64_t key,
                                  const uint8_t* user_row) {
  RELFAB_RETURN_IF_ERROR(RequireActive(*txn));
  if (KeyFromRow(user_row) != key) {
    return Status::InvalidArgument("row key does not match updated key");
  }
  auto pending = txn->op_by_key_.find(key);
  if (pending != txn->op_by_key_.end()) {
    Transaction::Op& op = txn->ops_[pending->second];
    if (op.kind == Transaction::OpKind::kDelete) {
      return Status::NotFound("key deleted by this transaction");
    }
    op.user_row.assign(user_row,
                       user_row + table_->user_schema().row_bytes());
    return Status::Ok();
  }
  if (!table_->VisibleVersion(key, txn->read_ts_).ok()) {
    return Status::NotFound("key not visible in snapshot");
  }
  txn->op_by_key_[key] = txn->ops_.size();
  txn->ops_.push_back({Transaction::OpKind::kUpdate, key,
                       {user_row,
                        user_row + table_->user_schema().row_bytes()}});
  return Status::Ok();
}

Status TransactionManager::Delete(Transaction* txn, int64_t key) {
  RELFAB_RETURN_IF_ERROR(RequireActive(*txn));
  auto pending = txn->op_by_key_.find(key);
  if (pending != txn->op_by_key_.end()) {
    Transaction::Op& op = txn->ops_[pending->second];
    if (op.kind == Transaction::OpKind::kDelete) {
      return Status::NotFound("key already deleted by this transaction");
    }
    if (op.kind == Transaction::OpKind::kInsert) {
      // Insert+delete cancel; keep a tombstone op that applies nothing
      // but still participates in conflict validation.
      op.kind = Transaction::OpKind::kDelete;
      op.user_row.clear();
      return Status::Ok();
    }
    op.kind = Transaction::OpKind::kDelete;
    op.user_row.clear();
    return Status::Ok();
  }
  if (!table_->VisibleVersion(key, txn->read_ts_).ok()) {
    return Status::NotFound("key not visible in snapshot");
  }
  txn->op_by_key_[key] = txn->ops_.size();
  txn->ops_.push_back({Transaction::OpKind::kDelete, key, {}});
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> TransactionManager::ReadOwnWrite(
    const Transaction& txn, int64_t key) const {
  auto pending = txn.op_by_key_.find(key);
  if (pending == txn.op_by_key_.end()) {
    return Status::NotFound("no pending write for key");
  }
  const Transaction::Op& op = txn.ops_[pending->second];
  if (op.kind == Transaction::OpKind::kDelete) {
    return Status::NotFound("key deleted by this transaction");
  }
  return op.user_row;
}

StatusOr<std::vector<uint8_t>> TransactionManager::Read(
    const Transaction& txn, int64_t key) const {
  auto own = ReadOwnWrite(txn, key);
  if (own.ok()) return own;
  if (txn.op_by_key_.count(key) > 0) {
    // Pending delete shadows the snapshot version.
    return Status::NotFound("key deleted by this transaction");
  }
  RELFAB_ASSIGN_OR_RETURN(uint64_t row,
                          table_->VisibleVersion(key, txn.read_ts()));
  const uint8_t* data = table_->rows().RowData(row);
  return std::vector<uint8_t>(data, data + table_->user_schema().row_bytes());
}

Status TransactionManager::Commit(Transaction* txn) {
  RELFAB_RETURN_IF_ERROR(RequireActive(*txn));
  obs::Span span(tracer_, "mvcc.commit", "mvcc");
  span.AddArg("txn", txn->id());
  span.AddArg("ops", static_cast<uint64_t>(txn->ops_.size()));
  if (injector_ != nullptr) {
    // Injected commit faults fire before validation: a kConflict rule
    // mimics losing the first-committer race; retryable kinds stall the
    // simulated clock and, once exhausted, kill the commit with an
    // I/O-class error. Either way the transaction rolls back and the
    // commit clock does not move, so replaying the same fault plan
    // reproduces the same version history bit for bit.
    Status st = faults::InjectAndRetry(
        injector_, commit_site_, retry_,
        [this](double cycles) { table_->rows().memory()->Stall(cycles); },
        "commit of txn " + std::to_string(txn->id()), tracer_);
    if (!st.ok()) {
      Abort(txn);
      ++aborts_;
      span.AddArg("outcome", "abort");
      span.AddArg("fault", st.ToString());
      return st;
    }
  }
  // Validation: first committer wins. A write-write conflict exists if
  // any written key received a newer committed write after our snapshot.
  for (const Transaction::Op& op : txn->ops_) {
    if (table_->NewestWriteTs(op.key) > txn->read_ts_) {
      Abort(txn);
      ++aborts_;
      span.AddArg("outcome", "abort");
      RELFAB_LOG(DEBUG) << "txn " << txn->id()
                        << " aborted: write-write conflict on key " << op.key;
      return Status::Aborted("write-write conflict on key " +
                             std::to_string(op.key));
    }
  }
  const uint64_t commit_ts = ++clock_;
  for (const Transaction::Op& op : txn->ops_) {
    switch (op.kind) {
      case Transaction::OpKind::kInsert:
        table_->AppendVersion(op.user_row.data(), commit_ts);
        break;
      case Transaction::OpKind::kUpdate: {
        auto old_row = table_->LatestVersion(op.key);
        if (old_row.ok()) table_->CloseVersion(*old_row, commit_ts);
        table_->AppendVersion(op.user_row.data(), commit_ts);
        break;
      }
      case Transaction::OpKind::kDelete: {
        auto old_row = table_->LatestVersion(op.key);
        if (old_row.ok()) table_->CloseVersion(*old_row, commit_ts);
        break;
      }
    }
  }
  txn->state_ = TxnState::kCommitted;
  ++commits_;
  span.AddArg("outcome", "commit");
  span.AddArg("commit_ts", commit_ts);
  return Status::Ok();
}

void TransactionManager::Abort(Transaction* txn) {
  txn->ops_.clear();
  txn->op_by_key_.clear();
  txn->state_ = TxnState::kAborted;
}

}  // namespace relfab::mvcc
