#ifndef RELFAB_MVCC_VERSIONED_TABLE_H_
#define RELFAB_MVCC_VERSIONED_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/statusor.h"
#include "layout/row_table.h"
#include "layout/schema.h"
#include "relmem/geometry.h"
#include "sim/memory_system.h"

namespace relfab::mvcc {

/// Timestamp value meaning "version still current" in the end-timestamp
/// field (paper §III-C: the second timestamp is set on deletion or
/// replacement).
inline constexpr uint64_t kOpenVersion = 0;

/// Multi-versioned row table following the paper's MVCC design: the base
/// data stays row-oriented and append-only; every row carries two hidden
/// timestamp columns. A version is visible at snapshot `ts` iff
/// `begin_ts <= ts && (end_ts == 0 || end_ts > ts)` — exactly the
/// comparison the Relational Fabric evaluates in hardware when shipping
/// column groups (relmem::VisibilityFilter).
///
/// The user schema must contain an int64 primary-key column; updates and
/// deletes address versions through it.
class VersionedTable {
 public:
  /// Creates a versioned table. `key_column` indexes the user schema and
  /// must be an int64 column.
  static StatusOr<VersionedTable> Create(const layout::Schema& user_schema,
                                         uint32_t key_column,
                                         sim::MemorySystem* memory,
                                         uint64_t capacity = 0);

  VersionedTable(VersionedTable&&) = default;
  VersionedTable& operator=(VersionedTable&&) = default;

  const layout::Schema& user_schema() const { return user_schema_; }
  /// Physical schema: user columns followed by __begin_ts / __end_ts.
  const layout::RowTable& rows() const { return *rows_; }
  uint32_t key_column() const { return key_column_; }
  uint32_t begin_ts_column() const { return begin_ts_column_; }
  uint32_t end_ts_column() const { return end_ts_column_; }
  uint64_t num_versions() const { return rows_->num_rows(); }

  /// Visibility filter for reading this table at snapshot `read_ts`
  /// (plug into a Geometry for hardware evaluation).
  relmem::VisibilityFilter SnapshotFilter(uint64_t read_ts) const {
    relmem::VisibilityFilter f;
    f.enabled = true;
    f.begin_ts_column = begin_ts_column_;
    f.end_ts_column = end_ts_column_;
    f.read_ts = read_ts;
    return f;
  }

  /// Appends a new version of `user_row` valid from `begin_ts`; returns
  /// the physical row index. Charges the simulated write.
  uint64_t AppendVersion(const uint8_t* user_row, uint64_t begin_ts);

  /// Marks version `row` dead as of `end_ts`. Charges the field write.
  void CloseVersion(uint64_t row, uint64_t end_ts);

  /// Physical row index of the version of `key` visible at `read_ts`, or
  /// NotFound. O(versions of that key).
  StatusOr<uint64_t> VisibleVersion(int64_t key, uint64_t read_ts) const;

  /// Latest committed version of `key` regardless of snapshot (NotFound
  /// if the key never existed or its newest version is a delete).
  StatusOr<uint64_t> LatestVersion(int64_t key) const;

  /// Begin timestamp of the newest version ever written for `key`
  /// (0 if none) — the write-conflict witness for snapshot isolation.
  uint64_t NewestWriteTs(int64_t key) const;

  /// True iff version `row` is visible at `read_ts` (software check; the
  /// hardware path is relmem::RmEngine::RowQualifies).
  bool Visible(uint64_t row, uint64_t read_ts) const;

  int64_t KeyOf(uint64_t row) const {
    return rows_->GetInt(row, key_column_);
  }

 private:
  VersionedTable(layout::Schema user_schema, layout::Schema full_schema,
                 uint32_t key_column, sim::MemorySystem* memory,
                 uint64_t capacity);

  layout::Schema user_schema_;
  uint32_t key_column_ = 0;
  uint32_t begin_ts_column_ = 0;
  uint32_t end_ts_column_ = 0;
  // unique_ptr keeps the RowTable address stable across moves (ephemeral
  // views hold pointers to it).
  std::unique_ptr<layout::RowTable> rows_;
  /// Version chain heads: key -> newest physical row of that key.
  // relfab-lint: allow(unordered-iteration) point lookups only; scans walk physical row order, never this map
  std::unordered_map<int64_t, uint64_t> newest_version_;
  /// Previous version links: row -> older row of the same key (or ~0).
  std::vector<uint64_t> prev_version_;
  std::vector<uint8_t> scratch_row_;
};

}  // namespace relfab::mvcc

#endif  // RELFAB_MVCC_VERSIONED_TABLE_H_
