#include "mvcc/versioned_table.h"

#include <cstring>
#include <utility>

namespace relfab::mvcc {

StatusOr<VersionedTable> VersionedTable::Create(
    const layout::Schema& user_schema, uint32_t key_column,
    sim::MemorySystem* memory, uint64_t capacity) {
  if (key_column >= user_schema.num_columns()) {
    return Status::OutOfRange("key column out of range");
  }
  if (user_schema.type(key_column) != layout::ColumnType::kInt64) {
    return Status::InvalidArgument("key column must be int64");
  }
  std::vector<layout::ColumnDef> cols;
  cols.reserve(user_schema.num_columns() + 2);
  for (uint32_t i = 0; i < user_schema.num_columns(); ++i) {
    cols.push_back(user_schema.column(i));
  }
  cols.push_back({"__begin_ts", layout::ColumnType::kInt64, 0});
  cols.push_back({"__end_ts", layout::ColumnType::kInt64, 0});
  RELFAB_ASSIGN_OR_RETURN(layout::Schema full_schema,
                          layout::Schema::Create(std::move(cols)));
  return VersionedTable(user_schema, std::move(full_schema), key_column,
                        memory, capacity);
}

VersionedTable::VersionedTable(layout::Schema user_schema,
                               layout::Schema full_schema,
                               uint32_t key_column, sim::MemorySystem* memory,
                               uint64_t capacity)
    : user_schema_(std::move(user_schema)),
      key_column_(key_column),
      begin_ts_column_(user_schema_.num_columns()),
      end_ts_column_(user_schema_.num_columns() + 1),
      rows_(std::make_unique<layout::RowTable>(std::move(full_schema), memory,
                                               capacity)),
      scratch_row_(rows_->row_bytes()) {}

uint64_t VersionedTable::AppendVersion(const uint8_t* user_row,
                                       uint64_t begin_ts) {
  const layout::Schema& full = rows_->schema();
  std::memcpy(scratch_row_.data(), user_row, user_schema_.row_bytes());
  const int64_t begin = static_cast<int64_t>(begin_ts);
  const int64_t end = static_cast<int64_t>(kOpenVersion);
  std::memcpy(scratch_row_.data() + full.offset(begin_ts_column_), &begin, 8);
  std::memcpy(scratch_row_.data() + full.offset(end_ts_column_), &end, 8);
  const uint64_t row = rows_->num_rows();
  rows_->AppendRow(scratch_row_.data());
  rows_->memory()->Write(rows_->RowAddress(row), rows_->row_bytes());

  const int64_t key = KeyOf(row);
  prev_version_.push_back(~0ull);
  auto it = newest_version_.find(key);
  if (it != newest_version_.end()) {
    prev_version_[row] = it->second;
    it->second = row;
  } else {
    newest_version_[key] = row;
  }
  return row;
}

void VersionedTable::CloseVersion(uint64_t row, uint64_t end_ts) {
  RELFAB_CHECK_LT(row, rows_->num_rows());
  const layout::Schema& full = rows_->schema();
  const int64_t end = static_cast<int64_t>(end_ts);
  std::memcpy(rows_->MutableRowData(row) + full.offset(end_ts_column_), &end,
              8);
  rows_->memory()->Write(rows_->FieldAddress(row, end_ts_column_), 8);
}

bool VersionedTable::Visible(uint64_t row, uint64_t read_ts) const {
  const uint64_t begin =
      static_cast<uint64_t>(rows_->GetInt(row, begin_ts_column_));
  const uint64_t end =
      static_cast<uint64_t>(rows_->GetInt(row, end_ts_column_));
  return begin <= read_ts && (end == kOpenVersion || end > read_ts);
}

StatusOr<uint64_t> VersionedTable::VisibleVersion(int64_t key,
                                                  uint64_t read_ts) const {
  auto it = newest_version_.find(key);
  if (it == newest_version_.end()) {
    return Status::NotFound("key not present");
  }
  for (uint64_t row = it->second; row != ~0ull; row = prev_version_[row]) {
    if (Visible(row, read_ts)) return row;
  }
  return Status::NotFound("no version visible at this snapshot");
}

StatusOr<uint64_t> VersionedTable::LatestVersion(int64_t key) const {
  auto it = newest_version_.find(key);
  if (it == newest_version_.end()) {
    return Status::NotFound("key not present");
  }
  const uint64_t row = it->second;
  const uint64_t end =
      static_cast<uint64_t>(rows_->GetInt(row, end_ts_column_));
  if (end != kOpenVersion) {
    return Status::NotFound("key deleted");
  }
  return row;
}

uint64_t VersionedTable::NewestWriteTs(int64_t key) const {
  auto it = newest_version_.find(key);
  if (it == newest_version_.end()) return 0;
  const uint64_t row = it->second;
  const uint64_t begin =
      static_cast<uint64_t>(rows_->GetInt(row, begin_ts_column_));
  const uint64_t end =
      static_cast<uint64_t>(rows_->GetInt(row, end_ts_column_));
  return end == kOpenVersion ? begin : end;
}

}  // namespace relfab::mvcc
