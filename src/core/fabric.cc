#include "core/fabric.h"

#include <sstream>
#include <utility>

namespace relfab {

Fabric::Fabric(sim::SimParams sim_params, engine::CostModel cost_model)
    : memory_(sim_params),
      rm_(&memory_),
      cost_model_(cost_model),
      parser_(&catalog_),
      planner_(&catalog_, sim_params, cost_model, &health_),
      executor_(&catalog_, &rm_, cost_model),
      scheduler_(sim_params) {
  tracer_.SetClock([this] { return memory_.ElapsedCycles(); });
  // Components hold the tracer permanently; tracer_.enabled() gates all
  // span work, so a disabled tracer costs one branch per span site.
  // (The executor takes its tracer per call through the ExecContext.)
  rm_.set_tracer(&tracer_);
  // $RELFAB_FAULTS arms chaos/fault injection for the whole stack. A
  // malformed spec is an operator error surfaced through
  // env_faults_status() — the fabric comes up unarmed and usable, and
  // shells/benches print the parse message instead of dying. Unset
  // leaves every component's injector pointer null (the zero-overhead
  // happy path).
  StatusOr<std::unique_ptr<faults::FaultInjector>> env_injector =
      faults::FaultInjector::FromEnv();
  if (!env_injector.ok()) {
    env_faults_status_ = env_injector.status();
  } else if (*env_injector != nullptr) {
    ArmFaults((*env_injector)->plan());
  }
}

void Fabric::ArmFaults(faults::FaultPlan plan) {
  // The health registry owns the plan's ".kill" rules (permanent
  // component death); arming resets all health state so a re-armed
  // session replays the same death schedule from scratch.
  health_.ArmKills(plan);
  injector_ =
      plan.armed() ? std::make_unique<faults::FaultInjector>(std::move(plan))
                   : nullptr;
  faults::FaultInjector* raw = injector_.get();
  memory_.set_fault_injector(raw);
  rm_.set_fault_injector(raw);
  // The executor and shard scheduler receive the injector per query
  // through the ExecContext; shard tasks derive private per-shard
  // injectors from its plan.
  for (auto& [name, mgr] : txn_managers_) mgr->set_fault_injector(raw);
}

StatusOr<layout::RowTable*> Fabric::CreateTable(const std::string& name,
                                                layout::Schema schema,
                                                uint64_t capacity) {
  if (tables_.count(name) > 0 || versioned_.count(name) > 0 ||
      sharded_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<layout::RowTable>(std::move(schema), &memory_,
                                                  capacity);
  layout::RowTable* raw = table.get();
  RELFAB_RETURN_IF_ERROR(catalog_.Register(name, {raw, nullptr}));
  tables_[name] = std::move(table);
  return raw;
}

StatusOr<layout::RowTable*> Fabric::AdoptTable(const std::string& name,
                                               layout::RowTable table) {
  if (table.memory() != &memory_) {
    return Status::InvalidArgument(
        "table was built against a different memory system");
  }
  if (tables_.count(name) > 0 || versioned_.count(name) > 0 ||
      sharded_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto owned = std::make_unique<layout::RowTable>(std::move(table));
  layout::RowTable* raw = owned.get();
  RELFAB_RETURN_IF_ERROR(catalog_.Register(name, {raw, nullptr}));
  tables_[name] = std::move(owned);
  return raw;
}

namespace {

/// Rebuilds a catalog with one entry replaced (Catalog has no in-place
/// update by design — registrations are otherwise immutable).
Status ReplaceCatalogEntry(query::Catalog* catalog, const std::string& name,
                           const query::TableEntry& replacement) {
  query::Catalog rebuilt;
  for (const std::string& existing : catalog->TableNames()) {
    auto entry = catalog->Lookup(existing);
    RELFAB_RETURN_IF_ERROR(rebuilt.Register(
        existing, existing == name ? replacement : *entry));
  }
  *catalog = std::move(rebuilt);
  return Status::Ok();
}

}  // namespace

Status Fabric::MaterializeColumnarCopy(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no plain table named '" + name + "'");
  }
  if (column_copies_.count(name) > 0) return Status::Ok();
  auto copy = std::make_unique<layout::ColumnTable>(*it->second, &memory_);
  RELFAB_ASSIGN_OR_RETURN(query::TableEntry entry, catalog_.Lookup(name));
  entry.columns = copy.get();
  RELFAB_RETURN_IF_ERROR(ReplaceCatalogEntry(&catalog_, name, entry));
  column_copies_[name] = std::move(copy);
  return Status::Ok();
}

Status Fabric::CreateIndex(const std::string& name,
                           const std::string& column_name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no plain table named '" + name + "'");
  }
  layout::RowTable* table = it->second.get();
  RELFAB_ASSIGN_OR_RETURN(uint32_t column,
                          table->schema().IndexOf(column_name));
  if (table->schema().type(column) != layout::ColumnType::kInt64) {
    return Status::InvalidArgument("index column must be int64");
  }
  if (indexes_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already has an index");
  }
  auto index = std::make_unique<index::BTreeIndex>(&memory_);
  for (uint64_t row = 0; row < table->num_rows(); ++row) {
    index->Insert(table->GetInt(row, column), row);
  }
  RELFAB_ASSIGN_OR_RETURN(query::TableEntry entry, catalog_.Lookup(name));
  entry.key_index = index.get();
  entry.key_index_column = column;
  RELFAB_RETURN_IF_ERROR(ReplaceCatalogEntry(&catalog_, name, entry));
  indexes_[name] = std::move(index);
  return Status::Ok();
}

Status Fabric::AnalyzeTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no plain table named '" + name + "'");
  }
  auto stats =
      std::make_unique<query::TableStats>(query::AnalyzeTable(*it->second));
  RELFAB_ASSIGN_OR_RETURN(query::TableEntry entry, catalog_.Lookup(name));
  entry.stats = stats.get();
  RELFAB_RETURN_IF_ERROR(ReplaceCatalogEntry(&catalog_, name, entry));
  stats_[name] = std::move(stats);
  return Status::Ok();
}

StatusOr<layout::RowTable*> Fabric::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

StatusOr<shard::ShardedTable*> Fabric::CreateShardedTable(
    const std::string& name, layout::Schema schema,
    const std::string& key_column_name, shard::ShardedTableOptions options) {
  if (tables_.count(name) > 0 || versioned_.count(name) > 0 ||
      sharded_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  RELFAB_ASSIGN_OR_RETURN(uint32_t key_column,
                          schema.IndexOf(key_column_name));
  RELFAB_ASSIGN_OR_RETURN(
      shard::ShardedTable table,
      shard::ShardedTable::Create(std::move(schema), key_column, &memory_,
                                  std::move(options)));
  auto owned = std::make_unique<shard::ShardedTable>(std::move(table));
  shard::ShardedTable* raw = owned.get();
  query::TableEntry entry;
  entry.sharded = raw;
  RELFAB_RETURN_IF_ERROR(catalog_.Register(name, entry));
  sharded_[name] = std::move(owned);
  return raw;
}

StatusOr<shard::ShardedTable*> Fabric::GetShardedTable(
    const std::string& name) {
  auto it = sharded_.find(name);
  if (it == sharded_.end()) {
    return Status::NotFound("no sharded table named '" + name + "'");
  }
  return it->second.get();
}

StatusOr<mvcc::VersionedTable*> Fabric::CreateVersionedTable(
    const std::string& name, const layout::Schema& user_schema,
    uint32_t key_column, uint64_t capacity) {
  if (tables_.count(name) > 0 || versioned_.count(name) > 0 ||
      sharded_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  RELFAB_ASSIGN_OR_RETURN(
      mvcc::VersionedTable table,
      mvcc::VersionedTable::Create(user_schema, key_column, &memory_,
                                   capacity));
  auto owned = std::make_unique<mvcc::VersionedTable>(std::move(table));
  mvcc::VersionedTable* raw = owned.get();
  RELFAB_RETURN_IF_ERROR(catalog_.Register(name, {&raw->rows(), nullptr}));
  versioned_[name] = std::move(owned);
  txn_managers_[name] = std::make_unique<mvcc::TransactionManager>(raw);
  txn_managers_[name]->set_tracer(&tracer_);
  txn_managers_[name]->set_fault_injector(injector_.get());
  return raw;
}

StatusOr<mvcc::VersionedTable*> Fabric::GetVersionedTable(
    const std::string& name) {
  auto it = versioned_.find(name);
  if (it == versioned_.end()) {
    return Status::NotFound("no versioned table named '" + name + "'");
  }
  return it->second.get();
}

StatusOr<mvcc::TransactionManager*> Fabric::GetTransactionManager(
    const std::string& name) {
  auto it = txn_managers_.find(name);
  if (it == txn_managers_.end()) {
    return Status::NotFound("no versioned table named '" + name + "'");
  }
  return it->second.get();
}

StatusOr<relmem::EphemeralView> Fabric::ConfigureView(
    const std::string& name, relmem::Geometry geometry) {
  RELFAB_ASSIGN_OR_RETURN(query::TableEntry entry, catalog_.Lookup(name));
  if (entry.rows == nullptr) {
    return Status::InvalidArgument(
        "table '" + name +
        "' is sharded; use ConfigureShardRange for ephemeral access");
  }
  return rm_.Configure(*entry.rows, std::move(geometry));
}

StatusOr<std::vector<relmem::EphemeralView>> Fabric::ConfigureShardRange(
    const std::string& name, const relmem::Geometry& geometry, int64_t lo,
    int64_t hi) {
  RELFAB_ASSIGN_OR_RETURN(shard::ShardedTable * table, GetShardedTable(name));
  return table->ConfigureRange(&rm_, geometry, lo, hi);
}

StatusOr<Fabric::SqlResult> Fabric::ExecuteSqlInternal(
    std::string_view sql, const QueryOptions& options) {
  RELFAB_ASSIGN_OR_RETURN(query::ParsedQuery parsed, parser_.Parse(sql));
  RELFAB_ASSIGN_OR_RETURN(query::Plan plan,
                          planner_.MakePlan(parsed, &options));
  SqlResult out;
  exec::ExecContext ctx;
  ctx.tracer = &tracer_;
  ctx.injector = injector_.get();
  ctx.profile = options.analyze ? &out.profile : nullptr;
  ctx.scheduler = &scheduler_;
  ctx.health = &health_;
  if (telemetry_ != nullptr) {
    ctx.digests = &telemetry_->digests();
    ctx.query_log = &telemetry_->query_log();
    ctx.recorder = &telemetry_->flight_recorder();
  }
  ctx.options = options;
  RELFAB_ASSIGN_OR_RETURN(out.result, executor_.Execute(plan, ctx));
  out.plan = std::move(plan);
  return out;
}

StatusOr<Fabric::SqlResult> Fabric::ExecuteSql(std::string_view sql,
                                               const QueryOptions& options) {
  if (telemetry_ == nullptr) return ExecuteSqlInternal(sql, options);

  // Snapshot the fault counters so the log record carries per-statement
  // deltas. Everything below is host-side bookkeeping on results the
  // simulation already produced — with telemetry enabled the simulated
  // cycle clocks advance exactly as they do with it disabled.
  const uint64_t injected_before =
      injector_ != nullptr ? injector_->total_injected() : 0;
  const uint64_t retries_before =
      injector_ != nullptr ? injector_->total_retries() : 0;
  const uint64_t fallbacks_before =
      injector_ != nullptr ? injector_->total_fallbacks() : 0;
  const uint64_t failovers_before = scheduler_.shards_failed_over();
  const uint64_t net_bytes_before = scheduler_.net_bytes();
  const uint64_t ship_rows_before = scheduler_.shards_ship_rows();
  const uint64_t ship_aggs_before = scheduler_.shards_ship_aggs();

  StatusOr<SqlResult> run = ExecuteSqlInternal(sql, options);

  obs::WorkloadTelemetry::Statement st;
  st.sql = std::string(sql);
  st.status_code = std::string(StatusCodeToString(
      run.ok() ? StatusCode::kOk : run.status().code()));
  st.shards_failed_over =
      static_cast<uint32_t>(scheduler_.shards_failed_over() - failovers_before);
  st.net_bytes = scheduler_.net_bytes() - net_bytes_before;
  st.shards_ship_rows =
      static_cast<uint32_t>(scheduler_.shards_ship_rows() - ship_rows_before);
  st.shards_ship_aggs =
      static_cast<uint32_t>(scheduler_.shards_ship_aggs() - ship_aggs_before);
  if (run.ok()) {
    st.table = run->plan.table;
    st.backend = std::string(exec::BackendToString(run->plan.backend));
    st.cycles = run->result.sim_cycles;
    st.rows_scanned = run->result.rows_scanned;
    st.rows_matched = run->result.rows_matched;
    if (run->plan.shards.enabled) {
      st.shards_total = run->plan.shards.shards_total;
      st.shards_scanned =
          static_cast<uint32_t>(run->plan.shards.shard_ids.size());
      st.shards_pruned = st.shards_total - st.shards_scanned;
    }
  } else {
    st.ok = false;
    st.error = run.status().ToString();
  }
  if (injector_ != nullptr) {
    st.faults_injected = injector_->total_injected() - injected_before;
    st.fault_retries = injector_->total_retries() - retries_before;
    st.fault_fallbacks = injector_->total_fallbacks() - fallbacks_before;
  }
  if (st.fault_fallbacks > 0) {
    st.degraded = true;
    st.degradation = "fabric fault fallback (x" +
                     std::to_string(st.fault_fallbacks) + ")";
  }
  telemetry_->RecordStatement(st);
  telemetry_->Sample(CollectMetrics());
  return run;
}

StatusOr<query::Plan> Fabric::ExplainSql(std::string_view sql,
                                         const QueryOptions& options) {
  RELFAB_ASSIGN_OR_RETURN(query::ParsedQuery parsed, parser_.Parse(sql));
  return planner_.MakePlan(parsed, &options);
}

Status Fabric::ConfigureCluster(const net::ClusterConfig& config) {
  RELFAB_ASSIGN_OR_RETURN(net::Topology topology,
                          net::Topology::Make(config));
  topology_ = topology;
  scheduler_.ConfigureCluster(topology_);
  planner_.set_topology(&topology_);
  return Status::Ok();
}

std::string Fabric::DescribeCluster() const {
  std::ostringstream os;
  if (!topology_.enabled()) {
    os << "no cluster configured (single-host mode); "
          "ConfigureCluster({.nodes = N}) enables the distributed fabric\n";
    return os.str();
  }
  const sim::NetworkParams& np = topology_.network();
  os << "=== cluster: " << topology_.nodes() << " node(s) ===\n"
     << "  network: link_latency=" << np.link_latency_cycles
     << " cycles, bandwidth=" << np.bytes_per_cycle
     << " B/cycle, mtu=" << np.mtu_bytes << " B, header="
     << np.message_header_bytes << " B\n";
  for (uint32_t k = 0; k < topology_.nodes(); ++k) {
    const std::string name = net::Topology::NodeName(k);
    os << "  " << name << ": "
       << (health_.alive(name) ? "alive" : "DEAD") << "\n";
  }
  for (const auto& [tname, table] : sharded_) {
    os << "  table '" << tname << "': " << table->num_shards()
       << " shard(s) x " << table->num_replicas() << " replica(s), "
       << net::PlacementToString(table->placement()) << " placement\n";
    for (uint32_t s = 0; s < table->num_shards(); ++s) {
      os << "    shard" << s << ":";
      for (uint32_t j = 0; j < table->num_replicas(); ++j) {
        const uint32_t node = topology_.NodeFor(
            s, j, table->num_shards(), table->placement());
        const std::string replica = tname + ".shard" + std::to_string(s) +
                                    ".r" + std::to_string(j);
        os << " r" << j << "@" << net::Topology::NodeName(node);
        if (!health_.alive(replica) ||
            !health_.alive(net::Topology::NodeName(node))) {
          os << "(DEAD)";
        }
      }
      os << "\n";
    }
  }
  return os.str();
}

obs::Registry& Fabric::CollectMetrics() {
  memory_.ExportTo(&registry_);
  rm_.ExportTo(&registry_);
  if (!txn_managers_.empty()) {
    // Sum across versioned tables: the registry describes the platform,
    // not one table (per-table series can be added when needed).
    uint64_t commits = 0, aborts = 0, clock = 0;
    for (const auto& [name, mgr] : txn_managers_) {
      commits += mgr->commits();
      aborts += mgr->aborts();
      clock += mgr->current_ts();
    }
    registry_.counter("mvcc.commits")->Set(commits);
    registry_.counter("mvcc.aborts")->Set(aborts);
    registry_.counter("mvcc.clock")->Set(clock);
  }
  scheduler_.ExportTo(&registry_);
  health_.ExportTo(&registry_);
  registry_.gauge("faults.armed")->Set(injector_ != nullptr ? 1 : 0);
  if (injector_ != nullptr) injector_->ExportTo(&registry_);
  if (telemetry_ != nullptr) telemetry_->ExportTo(&registry_);
  return registry_;
}

void Fabric::EnableTracing(bool enabled) { tracer_.set_enabled(enabled); }

obs::WorkloadTelemetry& Fabric::EnableTelemetry(obs::TelemetryConfig config) {
  if (config.tracked.empty()) {
    // Cumulative (scheduler/injector-lifetime) series whose window
    // deltas read as rates; per-statement sim.* counters reset between
    // statements and are better read from the query log instead.
    config.tracked = {"shard.scanned",     "shard.pruned",
                      "shard.degraded",    "shard.failed_over",
                      "health.dead",       "faults.fallbacks.total"};
  }
  telemetry_ = std::make_unique<obs::WorkloadTelemetry>(std::move(config));
  tracer_.set_flight_recorder(&telemetry_->flight_recorder());
  // Health transitions land in the flight recorder as "health" markers.
  health_.set_recorder(&telemetry_->flight_recorder());
  return *telemetry_;
}

void Fabric::DisableTelemetry() {
  tracer_.set_flight_recorder(nullptr);
  health_.set_recorder(nullptr);
  telemetry_.reset();
}

}  // namespace relfab
