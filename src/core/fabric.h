#ifndef RELFAB_CORE_FABRIC_H_
#define RELFAB_CORE_FABRIC_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "exec/exec_context.h"
#include "exec/options.h"
#include "exec/shard_scheduler.h"
#include "faults/fault_plan.h"
#include "faults/health.h"
#include "faults/injector.h"
#include "index/btree.h"
#include "layout/column_table.h"
#include "layout/row_table.h"
#include "mvcc/transaction.h"
#include "mvcc/versioned_table.h"
#include "net/topology.h"
#include "obs/query_profile.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "query/catalog.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/planner.h"
#include "relmem/rm_engine.h"
#include "shard/sharded_table.h"
#include "sim/memory_system.h"

namespace relfab {

/// The library façade: one simulated platform (memory hierarchy +
/// Relational Memory engine) with a catalog of tables and a SQL front
/// end. Typical use:
///
///   Fabric fabric;
///   auto* t = fabric.CreateTable("sensors", schema).value();
///   ... append rows ...
///   auto view = fabric.ConfigureView("sensors", geometry).value();
///   // or:
///   auto result = fabric.ExecuteSql(
///       "SELECT SUM(temp) FROM sensors WHERE site < 10").value();
///   // with per-statement knobs:
///   auto analyzed = fabric.ExecuteSql(sql, {.analyze = true}).value();
///
/// Plain tables hold a single row-oriented copy (the Relational Fabric
/// design point); MaterializeColumnarCopy adds the duplicated columnar
/// baseline so the planner may also choose COL. Versioned tables add
/// MVCC with snapshot isolation (paper §III-C). Sharded tables
/// (CreateShardedTable) are range-partitioned on an int64 key; the
/// planner prunes shards from WHERE-clause key ranges and the shard
/// scheduler scans the survivors in parallel.
class Fabric {
 public:
  /// Per-statement execution knobs (analyze / forced_backend /
  /// max_threads); see exec::QueryOptions.
  using QueryOptions = exec::QueryOptions;

  explicit Fabric(sim::SimParams sim_params = sim::SimParams::ZynqA53Defaults(),
                  engine::CostModel cost_model =
                      engine::CostModel::A53Defaults());

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::MemorySystem& memory() { return memory_; }
  relmem::RmEngine& rm() { return rm_; }
  const query::Catalog& catalog() const { return catalog_; }
  const engine::CostModel& cost_model() const { return cost_model_; }

  // --- tables ---

  /// Creates an empty row-oriented table registered under `name`.
  StatusOr<layout::RowTable*> CreateTable(const std::string& name,
                                          layout::Schema schema,
                                          uint64_t capacity = 0);

  /// Registers an existing table (e.g. from tpch::GenerateLineitem); the
  /// Fabric takes ownership.
  StatusOr<layout::RowTable*> AdoptTable(const std::string& name,
                                         layout::RowTable table);

  /// Materializes the duplicated columnar copy of `name` (the baseline a
  /// Relational Fabric deployment would not need).
  Status MaterializeColumnarCopy(const std::string& name);

  /// Builds a B+-tree over an int64 column of `name` for point queries
  /// (paper §III-A). The build cost is charged to the simulator. The
  /// index reflects the rows present at build time; rebuild after bulk
  /// appends.
  Status CreateIndex(const std::string& name,
                     const std::string& column_name);

  /// ANALYZE: collects histogram statistics for `name`, enabling
  /// selectivity-aware planning (including the HYBRID backend). Re-run
  /// after bulk appends; collection is an offline task and not charged.
  Status AnalyzeTable(const std::string& name);

  StatusOr<layout::RowTable*> GetTable(const std::string& name);

  // --- sharded tables ---

  /// Creates a range-sharded table on int64 column `key_column_name`,
  /// configured by `options` (designated-initializer friendly):
  ///
  ///   fabric.CreateShardedTable("m", schema, "k",
  ///                             {.splits = {1000, 2000}, .replicas = 2});
  ///
  /// options.splits (strictly increasing, n points => n+1 shards) set
  /// the ranges, shard i covering [splits[i-1], splits[i]) with open
  /// ends. Append rows via shard::ShardedTable::Append (routed by key).
  /// SQL over the table plans a shard fan-out: the planner prunes shards
  /// from the WHERE clause's key range and the shard scheduler runs one
  /// scan per survivor in parallel (QueryOptions::max_threads sets the
  /// simulated width). options.replicas (>= 1) sets the per-shard
  /// replication factor for the failure-domain layer: with R > 1 a
  /// killed replica fails over to the next live one (see
  /// docs/robustness.md). options.placement chooses how shards/replicas
  /// map onto nodes once a cluster is configured (ConfigureCluster).
  StatusOr<shard::ShardedTable*> CreateShardedTable(
      const std::string& name, layout::Schema schema,
      const std::string& key_column_name,
      shard::ShardedTableOptions options);

  StatusOr<shard::ShardedTable*> GetShardedTable(const std::string& name);

  // --- versioned (HTAP) tables ---

  /// Creates an MVCC table; writes go through its TransactionManager.
  StatusOr<mvcc::VersionedTable*> CreateVersionedTable(
      const std::string& name, const layout::Schema& user_schema,
      uint32_t key_column, uint64_t capacity = 0);

  StatusOr<mvcc::VersionedTable*> GetVersionedTable(const std::string& name);
  StatusOr<mvcc::TransactionManager*> GetTransactionManager(
      const std::string& name);

  // --- ephemeral access ---

  /// Configures an ephemeral view of arbitrary geometry over a table
  /// (works for plain and versioned tables; for the latter pass a
  /// snapshot filter inside the geometry, e.g. table->SnapshotFilter()).
  /// Sharded tables use ConfigureShardRange instead.
  StatusOr<relmem::EphemeralView> ConfigureView(const std::string& name,
                                                relmem::Geometry geometry);

  /// Ephemeral views over the shards of sharded table `name`
  /// intersecting key range [lo, hi] (shard-major; boundary shards get
  /// residual key predicates pushed into the fabric).
  StatusOr<std::vector<relmem::EphemeralView>> ConfigureShardRange(
      const std::string& name, const relmem::Geometry& geometry, int64_t lo,
      int64_t hi);

  // --- SQL ---

  struct SqlResult {
    query::Plan plan;
    engine::QueryResult result;
    /// Filled when QueryOptions::analyze was set (EXPLAIN ANALYZE);
    /// otherwise default-constructed.
    obs::QueryProfile profile;
  };

  /// Parses, plans (constructively — no layout search) and executes with
  /// per-statement `options`. The single SQL entry point: EXPLAIN
  /// ANALYZE is options.analyze, backend forcing is
  /// options.forced_backend, and the simulated shard fan-out width is
  /// options.max_threads.
  StatusOr<SqlResult> ExecuteSql(std::string_view sql,
                                 const QueryOptions& options);

  /// Default-options convenience.
  StatusOr<SqlResult> ExecuteSql(std::string_view sql) {
    return ExecuteSql(sql, QueryOptions{});
  }

  /// Plans without executing (EXPLAIN).
  StatusOr<query::Plan> ExplainSql(std::string_view sql,
                                   const QueryOptions& options = {});

  // --- cluster / distributed fabric ---

  /// Switches the fabric into distributed mode (docs/scaling.md
  /// "Distributed fabric"): `config.nodes` simulated nodes, each with
  /// its own memory-system/RM rig, connected by a network priced by
  /// `config.network`. Sharded-table fan-outs then run shards on the
  /// node hosting their serving replica and ship each shard's partial
  /// across the modeled network — as materialized rows or partial
  /// aggregates, whichever the planner prices cheaper (ship=rows|aggs
  /// in EXPLAIN). The one cluster entry point: topology, network
  /// parameters and node rigs are all configured here. Reconfiguring
  /// rebuilds the node rigs cold. Even a 1-node cluster keeps the
  /// distributed semantics — its shard partials still pay the modeled
  /// network. Structured kInvalidArgument on a malformed config.
  Status ConfigureCluster(const net::ClusterConfig& config);

  /// The active cluster topology; disabled (nodes() == 0) until
  /// ConfigureCluster succeeds.
  const net::Topology& topology() const { return topology_; }

  /// Human-readable cluster view (the shell's `\cluster`): topology
  /// summary, per sharded table the shard → node/replica placement, and
  /// each component's health state.
  std::string DescribeCluster() const;

  // --- observability ---

  /// The stack-wide metrics registry. CollectMetrics refreshes it from
  /// every component; callers may also add their own series.
  obs::Registry& registry() { return registry_; }

  /// Snapshots every component's counters into registry() and returns it:
  /// memory hierarchy ("sim.*"), RM engine ("rm.*"), each versioned
  /// table's transaction manager ("mvcc.*", summed across tables), the
  /// shard scheduler ("shard.*") and fault injection ("faults.*").
  obs::Registry& CollectMetrics();

  /// The span tracer, clocked by the simulated memory clock. Disabled by
  /// default; EnableTracing attaches it across the stack.
  obs::Tracer& tracer() { return tracer_; }

  /// Turns span collection on or off for the query executor, the RM
  /// engine and all transaction managers.
  void EnableTracing(bool enabled = true);

  // --- workload telemetry (relfab::obs v2) ---

  /// Creates (or replaces) the workload telemetry bundle: cycle-domain
  /// time-series, latency digests, structured query log and flight
  /// recorder, all fed from ExecuteSql. Attaches the flight recorder to
  /// the tracer so recent spans are captured even with full tracing
  /// off. With an empty config.tracked a default set of shard/fault
  /// series is sampled into the time-series.
  obs::WorkloadTelemetry& EnableTelemetry(obs::TelemetryConfig config = {});

  /// Destroys the bundle and detaches the flight recorder — the
  /// zero-overhead default: with telemetry off, answers and simulated
  /// cycles are bit-identical to a build without telemetry at all.
  void DisableTelemetry();

  /// The active bundle; nullptr when telemetry is disabled.
  obs::WorkloadTelemetry* telemetry() { return telemetry_.get(); }

  // --- fault injection ---

  /// Arms the given fault plan across the whole stack (DRAM ECC, RM
  /// descriptor/stall/gather, MVCC commit; RS arming is per-RsEngine —
  /// storage rigs own their SsdModel). An unarmed (empty) plan disarms.
  /// The constructor calls this automatically with $RELFAB_FAULTS, so
  /// most callers never touch it; tests use it to arm plans directly.
  /// Shard tasks derive private per-shard injectors from the armed plan.
  void ArmFaults(faults::FaultPlan plan);

  /// The active injector; nullptr when unarmed. Fault counters are
  /// folded into CollectMetrics() under "faults.*".
  faults::FaultInjector* fault_injector() { return injector_.get(); }

  /// Outcome of parsing $RELFAB_FAULTS at construction: ok when unset or
  /// well-formed, kInvalidArgument (with the parse message) when
  /// malformed — in which case the fabric runs unarmed and the caller
  /// decides whether to warn or exit. Never aborts the process.
  const Status& env_faults_status() const { return env_faults_status_; }

  /// Session-wide failure-domain health (kill draws, circuit breaker,
  /// replica liveness). Armed by ArmFaults from the plan's ".kill"
  /// rules; consulted by the planner and shard scheduler. Exported under
  /// "health.*" by CollectMetrics.
  faults::HealthRegistry& health() { return health_; }

  /// The shard fan-out scheduler (host thread pool + worker rigs).
  exec::ShardScheduler& shard_scheduler() { return scheduler_; }

 private:
  StatusOr<SqlResult> ExecuteSqlInternal(std::string_view sql,
                                         const QueryOptions& options);

  sim::MemorySystem memory_;
  relmem::RmEngine rm_;
  engine::CostModel cost_model_;
  query::Catalog catalog_;
  query::Parser parser_;
  query::Planner planner_;
  query::Executor executor_;
  exec::ShardScheduler scheduler_;
  net::Topology topology_;
  obs::Registry registry_;
  obs::Tracer tracer_;
  std::unique_ptr<obs::WorkloadTelemetry> telemetry_;
  std::unique_ptr<faults::FaultInjector> injector_;
  faults::HealthRegistry health_;
  Status env_faults_status_ = Status::Ok();
  std::map<std::string, std::unique_ptr<layout::RowTable>> tables_;
  std::map<std::string, std::unique_ptr<layout::ColumnTable>> column_copies_;
  std::map<std::string, std::unique_ptr<index::BTreeIndex>> indexes_;
  std::map<std::string, std::unique_ptr<query::TableStats>> stats_;
  std::map<std::string, std::unique_ptr<shard::ShardedTable>> sharded_;
  std::map<std::string, std::unique_ptr<mvcc::VersionedTable>> versioned_;
  std::map<std::string, std::unique_ptr<mvcc::TransactionManager>>
      txn_managers_;
};

}  // namespace relfab

#endif  // RELFAB_CORE_FABRIC_H_
