#ifndef RELFAB_CORE_FABRIC_H_
#define RELFAB_CORE_FABRIC_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "index/btree.h"
#include "layout/column_table.h"
#include "layout/row_table.h"
#include "mvcc/transaction.h"
#include "mvcc/versioned_table.h"
#include "obs/query_profile.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "query/catalog.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/planner.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab {

/// The library façade: one simulated platform (memory hierarchy +
/// Relational Memory engine) with a catalog of tables and a SQL front
/// end. Typical use:
///
///   Fabric fabric;
///   auto* t = fabric.CreateTable("sensors", schema).value();
///   ... append rows ...
///   auto view = fabric.ConfigureView("sensors", geometry).value();
///   // or:
///   auto result = fabric.ExecuteSql(
///       "SELECT SUM(temp) FROM sensors WHERE site < 10").value();
///
/// Plain tables hold a single row-oriented copy (the Relational Fabric
/// design point); MaterializeColumnarCopy adds the duplicated columnar
/// baseline so the planner may also choose COL. Versioned tables add
/// MVCC with snapshot isolation (paper §III-C).
class Fabric {
 public:
  explicit Fabric(sim::SimParams sim_params = sim::SimParams::ZynqA53Defaults(),
                  engine::CostModel cost_model =
                      engine::CostModel::A53Defaults());

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::MemorySystem& memory() { return memory_; }
  relmem::RmEngine& rm() { return rm_; }
  const query::Catalog& catalog() const { return catalog_; }
  const engine::CostModel& cost_model() const { return cost_model_; }

  // --- tables ---

  /// Creates an empty row-oriented table registered under `name`.
  StatusOr<layout::RowTable*> CreateTable(const std::string& name,
                                          layout::Schema schema,
                                          uint64_t capacity = 0);

  /// Registers an existing table (e.g. from tpch::GenerateLineitem); the
  /// Fabric takes ownership.
  StatusOr<layout::RowTable*> AdoptTable(const std::string& name,
                                         layout::RowTable table);

  /// Materializes the duplicated columnar copy of `name` (the baseline a
  /// Relational Fabric deployment would not need).
  Status MaterializeColumnarCopy(const std::string& name);

  /// Builds a B+-tree over an int64 column of `name` for point queries
  /// (paper §III-A). The build cost is charged to the simulator. The
  /// index reflects the rows present at build time; rebuild after bulk
  /// appends.
  Status CreateIndex(const std::string& name,
                     const std::string& column_name);

  /// ANALYZE: collects histogram statistics for `name`, enabling
  /// selectivity-aware planning (including the HYBRID backend). Re-run
  /// after bulk appends; collection is an offline task and not charged.
  Status AnalyzeTable(const std::string& name);

  StatusOr<layout::RowTable*> GetTable(const std::string& name);

  // --- versioned (HTAP) tables ---

  /// Creates an MVCC table; writes go through its TransactionManager.
  StatusOr<mvcc::VersionedTable*> CreateVersionedTable(
      const std::string& name, const layout::Schema& user_schema,
      uint32_t key_column, uint64_t capacity = 0);

  StatusOr<mvcc::VersionedTable*> GetVersionedTable(const std::string& name);
  StatusOr<mvcc::TransactionManager*> GetTransactionManager(
      const std::string& name);

  // --- ephemeral access ---

  /// Configures an ephemeral view of arbitrary geometry over a table
  /// (works for plain and versioned tables; for the latter pass a
  /// snapshot filter inside the geometry, e.g. table->SnapshotFilter()).
  StatusOr<relmem::EphemeralView> ConfigureView(const std::string& name,
                                                relmem::Geometry geometry);

  // --- SQL ---

  struct SqlResult {
    query::Plan plan;
    engine::QueryResult result;
  };

  /// Parses, plans (constructively — no layout search) and executes.
  StatusOr<SqlResult> ExecuteSql(std::string_view sql);

  /// Plans without executing (EXPLAIN).
  StatusOr<query::Plan> ExplainSql(std::string_view sql);

  struct AnalyzedSqlResult {
    query::Plan plan;
    engine::QueryResult result;
    obs::QueryProfile profile;
  };

  /// EXPLAIN ANALYZE: executes like ExecuteSql but with per-operator
  /// attribution of rows and simulator meters. The profile covers this
  /// statement only (profiling reads the meters differentially).
  StatusOr<AnalyzedSqlResult> ExecuteSqlAnalyzed(std::string_view sql);

  // --- observability ---

  /// The stack-wide metrics registry. CollectMetrics refreshes it from
  /// every component; callers may also add their own series.
  obs::Registry& registry() { return registry_; }

  /// Snapshots every component's counters into registry() and returns it:
  /// memory hierarchy ("sim.*"), RM engine ("rm.*") and each versioned
  /// table's transaction manager ("mvcc.*", summed across tables).
  obs::Registry& CollectMetrics();

  /// The span tracer, clocked by the simulated memory clock. Disabled by
  /// default; EnableTracing attaches it across the stack.
  obs::Tracer& tracer() { return tracer_; }

  /// Turns span collection on or off for the query executor, the RM
  /// engine and all transaction managers.
  void EnableTracing(bool enabled = true);

  // --- fault injection ---

  /// Arms the given fault plan across the whole stack (DRAM ECC, RM
  /// descriptor/stall/gather, MVCC commit; RS arming is per-RsEngine —
  /// storage rigs own their SsdModel). An unarmed (empty) plan disarms.
  /// The constructor calls this automatically with $RELFAB_FAULTS, so
  /// most callers never touch it; tests use it to arm plans directly.
  void ArmFaults(faults::FaultPlan plan);

  /// The active injector; nullptr when unarmed. Fault counters are
  /// folded into CollectMetrics() under "faults.*".
  faults::FaultInjector* fault_injector() { return injector_.get(); }

 private:
  sim::MemorySystem memory_;
  relmem::RmEngine rm_;
  engine::CostModel cost_model_;
  query::Catalog catalog_;
  query::Parser parser_;
  query::Planner planner_;
  query::Executor executor_;
  obs::Registry registry_;
  obs::Tracer tracer_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::map<std::string, std::unique_ptr<layout::RowTable>> tables_;
  std::map<std::string, std::unique_ptr<layout::ColumnTable>> column_copies_;
  std::map<std::string, std::unique_ptr<index::BTreeIndex>> indexes_;
  std::map<std::string, std::unique_ptr<query::TableStats>> stats_;
  std::map<std::string, std::unique_ptr<mvcc::VersionedTable>> versioned_;
  std::map<std::string, std::unique_ptr<mvcc::TransactionManager>>
      txn_managers_;
};

}  // namespace relfab

#endif  // RELFAB_CORE_FABRIC_H_
