#ifndef RELFAB_CORE_RELATIONAL_FABRIC_H_
#define RELFAB_CORE_RELATIONAL_FABRIC_H_

/// Umbrella header: the public API of the Relational Fabric library.
///
/// Layers (bottom-up):
///   sim/        calibrated memory-hierarchy simulator (caches, stream
///               prefetcher, DRAM banks, cycle accounting)
///   layout/     schemas, the row-oriented base data, columnar baseline
///   relmem/     Relational Memory: geometries, the near-data transform
///               engine, ephemeral variables
///   engine/     ROW (volcano), COL (vectorized) and RM execution engines
///   exec/       execution context, per-statement options, parallel
///               shard scheduler
///   mvcc/       versioned tables + snapshot-isolation transactions
///   compress/   dictionary / delta / Huffman / RLE column codecs
///   relstorage/ Relational Storage: computational-SSD instance
///   query/      SQL subset, catalog, constructive planner, executor
///   core/       the Fabric façade tying it all together

#include "common/status.h"         // IWYU pragma: export
#include "common/statusor.h"       // IWYU pragma: export
#include "compress/delta.h"        // IWYU pragma: export
#include "compress/dictionary.h"   // IWYU pragma: export
#include "compress/huffman.h"      // IWYU pragma: export
#include "compress/rle.h"          // IWYU pragma: export
#include "core/fabric.h"           // IWYU pragma: export
#include "engine/code_cache.h"     // IWYU pragma: export
#include "engine/hybrid.h"         // IWYU pragma: export
#include "engine/rm_exec.h"        // IWYU pragma: export
#include "engine/vector_engine.h"  // IWYU pragma: export
#include "engine/volcano.h"        // IWYU pragma: export
#include "exec/exec_context.h"     // IWYU pragma: export
#include "exec/options.h"          // IWYU pragma: export
#include "exec/shard_scheduler.h"  // IWYU pragma: export
#include "index/btree.h"           // IWYU pragma: export
#include "index/hash_index.h"      // IWYU pragma: export
#include "layout/column_table.h"   // IWYU pragma: export
#include "layout/row_table.h"      // IWYU pragma: export
#include "layout/schema.h"         // IWYU pragma: export
#include "mvcc/transaction.h"      // IWYU pragma: export
#include "relmem/ephemeral.h"      // IWYU pragma: export
#include "relmem/geometry.h"       // IWYU pragma: export
#include "relmem/rm_engine.h"      // IWYU pragma: export
#include "relstorage/rs_engine.h"  // IWYU pragma: export
#include "shard/sharded_table.h"   // IWYU pragma: export
#include "sim/memory_system.h"     // IWYU pragma: export
#include "tensor/matrix.h"         // IWYU pragma: export

#endif  // RELFAB_CORE_RELATIONAL_FABRIC_H_
