#ifndef RELFAB_SIM_CACHE_H_
#define RELFAB_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace relfab::sim {

/// Set-associative cache model with true-LRU replacement, tracked at
/// cache-line granularity. Tags are full line addresses, so aliasing
/// across the simulated address space cannot produce false hits.
///
/// The model tracks only presence (no dirty/writeback modelling): the
/// paper's experiments are read-dominated scans, and writeback traffic
/// for them is second-order.
class CacheModel {
 public:
  /// `sets` and `ways` must be > 0; `sets` must be a power of two.
  CacheModel(uint32_t sets, uint32_t ways)
      : sets_(sets),
        ways_(ways),
        set_mask_(sets - 1),
        tags_(static_cast<size_t>(sets) * ways, kInvalidTag),
        lru_(static_cast<size_t>(sets) * ways, 0) {
    RELFAB_CHECK(sets > 0 && (sets & (sets - 1)) == 0)
        << "cache sets must be a power of two, got " << sets;
    RELFAB_CHECK(ways > 0);
  }

  /// Looks up a line; on hit refreshes LRU and returns true. Does not
  /// allocate on miss (use Insert for that), so victim caches / bypass
  /// policies can be composed by the caller.
  bool Access(uint64_t line_addr) {
    const uint32_t set = SetOf(line_addr);
    uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line_addr) {
        Touch(set, w);
        return true;
      }
    }
    return false;
  }

  /// Debug helper: true if the line is present *and* carries the most
  /// recent LRU stamp of its set. Used to validate the precondition of
  /// MemorySystem::ReadL1Resident (skipping a Touch is only exact for a
  /// line that is already the MRU of its set).
  bool IsMruOfSet(uint64_t line_addr) const {
    const uint32_t set = SetOf(line_addr);
    const uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
    const uint32_t* lru = &lru_[static_cast<size_t>(set) * ways_];
    uint32_t newest = 0;
    bool found = false;
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == kInvalidTag) continue;
      if (!found || lru[w] > lru[newest]) newest = w;
      found = true;
    }
    return found && tags[newest] == line_addr;
  }

  /// True if the line is present; does not update LRU.
  bool Contains(uint64_t line_addr) const {
    const uint32_t set = SetOf(line_addr);
    const uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line_addr) return true;
    }
    return false;
  }

  /// Installs a line, evicting the LRU way of its set if needed.
  /// Inserting a line that is already present just refreshes its LRU.
  void Insert(uint64_t line_addr) {
    const uint32_t set = SetOf(line_addr);
    uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
    uint32_t* lru = &lru_[static_cast<size_t>(set) * ways_];
    uint32_t victim = 0;
    uint32_t oldest = lru[0];
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line_addr) {
        Touch(set, w);
        return;
      }
      if (lru[w] < oldest) {
        oldest = lru[w];
        victim = w;
      }
    }
    tags[victim] = line_addr;
    Touch(set, victim);
  }

  /// Bulk-installs `n` consecutive lines starting at `first_line`,
  /// reproducing exactly the state `n` successive Insert calls would
  /// leave — same tags, same LRU stamps, same final clock — in
  /// O(touched_sets * ways) instead of O(n * ways).
  ///
  /// Precondition: none of the lines is currently present (the fast
  /// path only uses this for lines above the cold watermark, which have
  /// never been inserted since the last Flush).
  ///
  /// Why this is exact: consecutive lines rotate round-robin over the
  /// sets, so the lines landing in one set form an arithmetic
  /// progression with stride `sets_`. Insert evicts the way with the
  /// strictly smallest LRU stamp (ties resolved to the lowest way
  /// index), and every newly inserted line is stamped ahead of all
  /// existing ways — so the k-th insert into a set lands in the k-th
  /// way of the set's pre-existing (stamp, way-index) ascending order,
  /// wrapping round-robin after `ways_` inserts. The final occupant of
  /// the j-th victim way is therefore the *last* line whose in-set
  /// index is congruent to j (mod ways_), stamped with the clock value
  /// it would have received in the sequential replay.
  void InsertRun(uint64_t first_line, uint64_t n) {
    RELFAB_DCHECK(n > 0);
    RELFAB_DCHECK(!Contains(first_line) && !Contains(first_line + n - 1))
        << "InsertRun precondition: lines must be absent";
    // The closed form costs O(touched_sets * ways^2) for the per-set
    // victim sort; the sequential replay costs O(n * ways). Bulk only
    // pays off once each set absorbs a couple of lines, so short runs
    // (and unusual geometries) replay sequentially — the results are
    // identical either way.
    if (ways_ > kMaxBulkWays ||
        n < static_cast<uint64_t>(sets_) * ways_ / 2) {
      for (uint64_t i = 0; i < n; ++i) Insert(first_line + i);
      return;
    }
    const uint64_t touched_sets = n < sets_ ? n : sets_;
    for (uint64_t i = 0; i < touched_sets; ++i) {
      const uint64_t line0 = first_line + i;  // first run line in this set
      const uint32_t set = SetOf(line0);
      const uint64_t k = 1 + (n - 1 - i) / sets_;  // run lines in this set
      uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
      uint32_t* lru = &lru_[static_cast<size_t>(set) * ways_];
      // Victim order: ways sorted ascending by (stamp, way index).
      uint32_t order[kMaxBulkWays];
      for (uint32_t w = 0; w < ways_; ++w) {
        uint32_t j = w;
        while (j > 0 && lru[w] < lru[order[j - 1]]) {
          order[j] = order[j - 1];
          --j;
        }
        order[j] = w;
      }
      const uint32_t fill = k < ways_ ? static_cast<uint32_t>(k) : ways_;
      for (uint32_t j = 0; j < fill; ++j) {
        // Largest in-set index < k congruent to j (mod ways_): the line
        // that ends up owning the j-th victim way.
        const uint64_t kj = (k - 1) - ((k - 1 - j) % ways_);
        const uint64_t line = line0 + kj * sets_;
        tags[order[j]] = line;
        lru[order[j]] =
            clock_ + static_cast<uint32_t>(line - first_line) + 1;
      }
    }
    clock_ += static_cast<uint32_t>(n);
  }

  /// Drops every cached line.
  void Flush() {
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(lru_.begin(), lru_.end(), 0u);
    clock_ = 0;
  }

  uint32_t sets() const { return sets_; }
  uint32_t ways() const { return ways_; }

 private:
  static constexpr uint64_t kInvalidTag = ~0ull;
  /// Stack bound for InsertRun's per-set victim ordering; geometries
  /// with more ways fall back to the sequential replay.
  static constexpr uint32_t kMaxBulkWays = 64;

  uint32_t SetOf(uint64_t line_addr) const {
    return static_cast<uint32_t>(line_addr) & set_mask_;
  }

  void Touch(uint32_t set, uint32_t way) {
    lru_[static_cast<size_t>(set) * ways_ + way] = ++clock_;
  }

  uint32_t sets_;
  uint32_t ways_;
  uint32_t set_mask_;
  uint32_t clock_ = 0;
  std::vector<uint64_t> tags_;
  std::vector<uint32_t> lru_;
};

}  // namespace relfab::sim

#endif  // RELFAB_SIM_CACHE_H_
