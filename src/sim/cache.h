#ifndef RELFAB_SIM_CACHE_H_
#define RELFAB_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace relfab::sim {

/// Set-associative cache model with true-LRU replacement, tracked at
/// cache-line granularity. Tags are full line addresses, so aliasing
/// across the simulated address space cannot produce false hits.
///
/// The model tracks only presence (no dirty/writeback modelling): the
/// paper's experiments are read-dominated scans, and writeback traffic
/// for them is second-order.
class CacheModel {
 public:
  /// `sets` and `ways` must be > 0; `sets` must be a power of two.
  CacheModel(uint32_t sets, uint32_t ways)
      : sets_(sets),
        ways_(ways),
        set_mask_(sets - 1),
        tags_(static_cast<size_t>(sets) * ways, kInvalidTag),
        lru_(static_cast<size_t>(sets) * ways, 0) {
    RELFAB_CHECK(sets > 0 && (sets & (sets - 1)) == 0)
        << "cache sets must be a power of two, got " << sets;
    RELFAB_CHECK(ways > 0);
  }

  /// Looks up a line; on hit refreshes LRU and returns true. Does not
  /// allocate on miss (use Insert for that), so victim caches / bypass
  /// policies can be composed by the caller.
  bool Access(uint64_t line_addr) {
    const uint32_t set = SetOf(line_addr);
    uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line_addr) {
        Touch(set, w);
        return true;
      }
    }
    return false;
  }

  /// True if the line is present; does not update LRU.
  bool Contains(uint64_t line_addr) const {
    const uint32_t set = SetOf(line_addr);
    const uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line_addr) return true;
    }
    return false;
  }

  /// Installs a line, evicting the LRU way of its set if needed.
  /// Inserting a line that is already present just refreshes its LRU.
  void Insert(uint64_t line_addr) {
    const uint32_t set = SetOf(line_addr);
    uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
    uint32_t* lru = &lru_[static_cast<size_t>(set) * ways_];
    uint32_t victim = 0;
    uint32_t oldest = lru[0];
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line_addr) {
        Touch(set, w);
        return;
      }
      if (lru[w] < oldest) {
        oldest = lru[w];
        victim = w;
      }
    }
    tags[victim] = line_addr;
    Touch(set, victim);
  }

  /// Drops every cached line.
  void Flush() {
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(lru_.begin(), lru_.end(), 0u);
    clock_ = 0;
  }

  uint32_t sets() const { return sets_; }
  uint32_t ways() const { return ways_; }

 private:
  static constexpr uint64_t kInvalidTag = ~0ull;

  uint32_t SetOf(uint64_t line_addr) const {
    return static_cast<uint32_t>(line_addr) & set_mask_;
  }

  void Touch(uint32_t set, uint32_t way) {
    lru_[static_cast<size_t>(set) * ways_ + way] = ++clock_;
  }

  uint32_t sets_;
  uint32_t ways_;
  uint32_t set_mask_;
  uint32_t clock_ = 0;
  std::vector<uint64_t> tags_;
  std::vector<uint32_t> lru_;
};

}  // namespace relfab::sim

#endif  // RELFAB_SIM_CACHE_H_
