#include "sim/stats.h"

#include <sstream>

#include "common/format.h"

namespace relfab::sim {

std::string MemStats::ToString() const {
  std::ostringstream os;
  os << "L1: " << FormatCount(l1_hits) << " hits / " << FormatCount(l1_misses)
     << " misses (" << FormatDouble(l1_hit_rate() * 100, 1) << "% hit)\n"
     << "L2: " << FormatCount(l2_hits) << " hits / " << FormatCount(l2_misses)
     << " misses (" << FormatDouble(l2_hit_rate() * 100, 1) << "% hit)\n"
     << "prefetch: " << FormatCount(prefetch_covered) << " covered / "
     << FormatCount(prefetch_uncovered) << " uncovered ("
     << FormatDouble(prefetch_coverage() * 100, 1) << "% coverage)\n"
     << "DRAM rows: " << FormatCount(dram_row_hits) << " hits / "
     << FormatCount(dram_row_misses) << " misses\n"
     << "DRAM traffic: demand " << FormatBytes(dram_lines_demand * 64)
     << ", gather " << FormatBytes(dram_lines_gather * 64) << "\n"
     << "fabric: " << FormatCount(fabric_reads) << " buffer reads, "
     << FormatCount(fabric_refills) << " refills\n";
  return os.str();
}

MemStats& MemStats::operator+=(const MemStats& o) {
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  fabric_reads += o.fabric_reads;
  prefetch_covered += o.prefetch_covered;
  prefetch_uncovered += o.prefetch_uncovered;
  dram_row_hits += o.dram_row_hits;
  dram_row_misses += o.dram_row_misses;
  dram_lines_demand += o.dram_lines_demand;
  dram_lines_gather += o.dram_lines_gather;
  fabric_refills += o.fabric_refills;
  return *this;
}

}  // namespace relfab::sim
