#ifndef RELFAB_SIM_PREFETCHER_H_
#define RELFAB_SIM_PREFETCHER_H_

#include <cstdint>
#include <vector>

#include "sim/params.h"

namespace relfab::sim {

/// Hardware stream prefetcher model with a fixed number of tracked
/// ascending streams (the Cortex-A53 tracks a small fixed set; the paper
/// attributes the column engine's degradation beyond four concurrent
/// column cursors to exactly this).
///
/// Behaviour: each demand L2 miss is matched against the stream table.
/// A miss that lands within `prefetch_match_window` lines ahead of a
/// tracked stream advances it; once a stream has made
/// `prefetch_train_steps` consecutive steps its subsequent accesses are
/// reported as *covered* (prefetch arrived in time). A miss matching no
/// stream steals the least-recently-used entry, which is what destroys
/// coverage when more streams are live than table entries.
class StreamPrefetcher {
 public:
  explicit StreamPrefetcher(const SimParams& params)
      : capacity_(params.prefetch_streams),
        train_steps_(params.prefetch_train_steps),
        window_(params.prefetch_match_window),
        streams_(params.prefetch_streams) {}

  /// Reports a demand miss for `line_addr`; returns true if a trained
  /// stream covered it (the prefetched line was in flight or resident).
  bool OnDemandMiss(uint64_t line_addr) {
    ++tick_;
    // Match against live streams.
    for (Stream& s : streams_) {
      if (!s.valid) continue;
      if (line_addr >= s.next_line && line_addr < s.next_line + window_) {
        s.next_line = line_addr + 1;
        s.last_use = tick_;
        if (s.confidence < train_steps_) {
          ++s.confidence;
          return false;  // still training
        }
        return true;
      }
    }
    // No match: allocate, replacing the LRU entry.
    Stream* victim = &streams_[0];
    for (Stream& s : streams_) {
      if (!s.valid) {
        victim = &s;
        break;
      }
      if (s.last_use < victim->last_use) victim = &s;
    }
    ++allocations_;
    if (victim->valid) ++steals_;
    victim->valid = true;
    victim->next_line = line_addr + 1;
    victim->confidence = 0;
    victim->last_use = tick_;
    return false;
  }

  /// Bulk equivalent of `n` OnDemandMiss calls for the consecutive lines
  /// [first, first+n): succeeds — advancing the matching stream and the
  /// use clock exactly as the per-line replay would — only when every
  /// one of those misses is *provably* covered by the same fully trained
  /// stream. Returns false (leaving all state untouched) when that can't
  /// be proven cheaply; the caller then falls back to per-line replay.
  ///
  /// Conditions checked, and why each is required for exactness:
  ///  * the first matching stream `s` (same first-match scan order as
  ///    OnDemandMiss) contains `first` in its window — after advancing,
  ///    `s.next_line` equals each subsequent line exactly, so `s` keeps
  ///    matching every line of the run;
  ///  * `s.confidence == train_steps` — already trained, so every line
  ///    reports covered and confidence stays saturated;
  ///  * no *earlier* stream's window intersects [first, first+n) — an
  ///    earlier stream would preempt the match mid-run and diverge.
  ///    Later streams are never consulted because `s` matches first.
  bool TryAdvanceRun(uint64_t first, uint64_t n) {
    for (size_t i = 0; i < streams_.size(); ++i) {
      Stream& s = streams_[i];
      if (!s.valid) continue;
      if (first >= s.next_line && first < s.next_line + window_) {
        if (s.confidence < train_steps_) return false;
        for (size_t j = 0; j < i; ++j) {
          const Stream& e = streams_[j];
          if (e.valid && e.next_line < first + n &&
              first < e.next_line + window_) {
            return false;
          }
        }
        tick_ += n;
        s.next_line = first + n;
        s.last_use = tick_;
        return true;
      }
    }
    return false;
  }

  /// Forgets all streams (e.g. between queries).
  void Reset() {
    for (Stream& s : streams_) s = Stream{};
    tick_ = 0;
    allocations_ = 0;
    steals_ = 0;
  }

  uint32_t capacity() const { return capacity_; }
  /// Stream-table allocations since Reset (new streams started).
  uint64_t allocations() const { return allocations_; }
  /// Allocations that evicted a live stream — the thrash signature when
  /// more concurrent cursors are live than table entries.
  uint64_t steals() const { return steals_; }

 private:
  struct Stream {
    bool valid = false;
    uint64_t next_line = 0;
    uint32_t confidence = 0;
    uint64_t last_use = 0;
  };

  uint32_t capacity_;
  uint32_t train_steps_;
  uint32_t window_;
  uint64_t tick_ = 0;
  uint64_t allocations_ = 0;
  uint64_t steals_ = 0;
  std::vector<Stream> streams_;
};

}  // namespace relfab::sim

#endif  // RELFAB_SIM_PREFETCHER_H_
