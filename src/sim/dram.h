#ifndef RELFAB_SIM_DRAM_H_
#define RELFAB_SIM_DRAM_H_

#include <cstdint>
#include <vector>

#include "sim/params.h"

namespace relfab::sim {

/// DRAM bank/row-buffer model. Addresses map to banks by row interleaving
/// (consecutive 2 KB rows rotate across banks), each bank keeps one open
/// row; an access to the open row is a row-buffer hit, otherwise a
/// precharge+activate (row miss) is charged.
///
/// Both the CPU demand path and the RM gather engine share this state, so
/// fabric gathers warm/disturb the same row buffers the CPU sees.
class DramModel {
 public:
  explicit DramModel(const SimParams& params)
      : row_bytes_(params.dram_row_bytes),
        hit_cycles_(params.dram_row_hit_cycles),
        miss_cycles_(params.dram_row_miss_cycles),
        open_rows_(params.dram_banks, kNoRow) {}

  /// Charges one line access at byte address `addr`; returns the latency
  /// and records whether it was a row hit.
  double Access(uint64_t addr, bool* row_hit_out = nullptr) {
    const uint64_t row = addr / row_bytes_;
    const uint32_t bank = static_cast<uint32_t>(row % open_rows_.size());
    const bool hit = open_rows_[bank] == row;
    open_rows_[bank] = row;
    if (hit) ++row_hits_;
    else ++row_misses_;
    if (row_hit_out != nullptr) *row_hit_out = hit;
    return hit ? hit_cycles_ : miss_cycles_;
  }

  /// Bulk equivalent of `n` sequential line accesses starting at `addr`
  /// with stride `line_bytes`; returns the number of row misses and
  /// leaves hit/miss counters and open-row state exactly as the
  /// per-line replay would.
  ///
  /// Closed form: the run touches rows row_first..row_last. Only the
  /// first touch of each row can miss; within the first min(rows, banks)
  /// rows the outcome depends on the pre-run open row of that bank, and
  /// every later row necessarily misses because its bank's open row was
  /// set to `row - banks` earlier in the same run. The final open row of
  /// each touched bank is its largest touched row, i.e. one of the last
  /// min(rows, banks) rows (consecutive rows occupy distinct banks).
  double AccessRun(uint64_t addr, uint64_t n, uint64_t line_bytes,
                   uint64_t* misses_out) {
    if (row_bytes_ % line_bytes != 0) {  // lines could straddle rows
      uint64_t misses = 0;
      double lat = 0;
      for (uint64_t i = 0; i < n; ++i) {
        bool hit = false;
        lat += Access(addr + i * line_bytes, &hit);
        if (!hit) ++misses;
      }
      if (misses_out != nullptr) *misses_out = misses;
      return lat;
    }
    const uint64_t row_first = addr / row_bytes_;
    const uint64_t row_last = (addr + (n - 1) * line_bytes) / row_bytes_;
    const uint64_t banks = open_rows_.size();
    const uint64_t rows_touched = row_last - row_first + 1;
    const uint64_t probe = rows_touched < banks ? rows_touched : banks;
    uint64_t misses = 0;
    for (uint64_t r = row_first; r < row_first + probe; ++r) {
      if (open_rows_[r % banks] != r) ++misses;
    }
    misses += rows_touched - probe;
    for (uint64_t b = 0; b < probe; ++b) {
      const uint64_t r = row_last - b;
      open_rows_[r % banks] = r;
    }
    row_misses_ += misses;
    row_hits_ += n - misses;
    if (misses_out != nullptr) *misses_out = misses;
    return miss_cycles_ * static_cast<double>(misses) +
           hit_cycles_ * static_cast<double>(n - misses);
  }

  /// Closes all row buffers (e.g. after a long idle period).
  void Reset() {
    std::fill(open_rows_.begin(), open_rows_.end(), kNoRow);
    row_hits_ = 0;
    row_misses_ = 0;
  }

  uint32_t banks() const {
    return static_cast<uint32_t>(open_rows_.size());
  }
  uint64_t row_hits() const { return row_hits_; }
  uint64_t row_misses() const { return row_misses_; }

 private:
  static constexpr uint64_t kNoRow = ~0ull;

  uint64_t row_bytes_;
  double hit_cycles_;
  double miss_cycles_;
  uint64_t row_hits_ = 0;
  uint64_t row_misses_ = 0;
  std::vector<uint64_t> open_rows_;
};

}  // namespace relfab::sim

#endif  // RELFAB_SIM_DRAM_H_
