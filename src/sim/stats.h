#ifndef RELFAB_SIM_STATS_H_
#define RELFAB_SIM_STATS_H_

#include <cstdint>
#include <string>

namespace relfab::sim {

/// Event counters for one simulation run. Cycle totals live on
/// MemorySystem; these are the underlying hit/miss/traffic events.
struct MemStats {
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_hits = 0;
  uint64_t l2_misses = 0;
  uint64_t fabric_reads = 0;        // demand lines served by the RM buffer
  uint64_t prefetch_covered = 0;    // demand misses hidden by the prefetcher
  uint64_t prefetch_uncovered = 0;  // demand misses exposed to DRAM latency
  uint64_t dram_row_hits = 0;
  uint64_t dram_row_misses = 0;
  uint64_t dram_lines_demand = 0;   // lines moved for CPU demand misses
  uint64_t dram_lines_gather = 0;   // lines moved by the RM gather engine
  uint64_t fabric_refills = 0;      // fill-buffer wrap-arounds

  uint64_t dram_lines_total() const {
    return dram_lines_demand + dram_lines_gather;
  }
  uint64_t dram_bytes_total() const { return dram_lines_total() * 64; }

  double l1_hit_rate() const {
    uint64_t total = l1_hits + l1_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(l1_hits) /
                            static_cast<double>(total);
  }

  double l2_hit_rate() const {
    uint64_t total = l2_hits + l2_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(l2_hits) /
                            static_cast<double>(total);
  }

  /// Fraction of DRAM-bound demand misses the prefetcher hid.
  double prefetch_coverage() const {
    uint64_t total = prefetch_covered + prefetch_uncovered;
    return total == 0 ? 0.0
                      : static_cast<double>(prefetch_covered) /
                            static_cast<double>(total);
  }

  /// Multi-line human-readable dump.
  std::string ToString() const;

  MemStats& operator+=(const MemStats& o);
};

}  // namespace relfab::sim

#endif  // RELFAB_SIM_STATS_H_
