#ifndef RELFAB_SIM_PARAMS_H_
#define RELFAB_SIM_PARAMS_H_

#include <cstddef>
#include <cstdint>

namespace relfab::sim {

/// Memory class of an allocation. kDram is the normal off-chip path (cache
/// hierarchy + DRAM banks + channel bandwidth); kFabricBuffer models the
/// Relational Memory fill buffer that lives in the programmable logic —
/// reads from it bypass the DRAM channel because the fabric already paid
/// for the source-data movement when it produced the buffer.
enum class MemClass : uint8_t {
  kDram = 0,
  kFabricBuffer = 1,
};

/// Cycle-domain NIC/link model for the distributed fabric (src/net):
/// simulated nodes exchange shard partials over point-to-point links
/// priced per message (latency) and per byte (bandwidth). All costs are
/// CPU cycles at the SimParams clock; the per-row/per-aggregate
/// serialization CPU costs live in engine::CostModel. Defaults model a
/// 10 GbE-class NIC seen from a 1.5 GHz core: ~2 us one-way latency and
/// ~0.8 B per CPU cycle of usable bandwidth.
struct NetworkParams {
  /// One-way latency per message (NIC traversal + switch hop).
  double link_latency_cycles = 3000.0;
  /// Usable link bandwidth in payload bytes per CPU cycle.
  double bytes_per_cycle = 0.8;
  /// Payload bytes per message; larger transfers fragment.
  uint32_t mtu_bytes = 4096;
  /// Per-message framing overhead (headers, checksums) charged to the
  /// bandwidth term on top of the payload.
  uint32_t message_header_bytes = 48;
};

/// Calibration constants for the simulated platform. Defaults model the
/// paper's target (Xilinx Zynq UltraScale+; 4x Cortex-A53 @1.5 GHz with
/// 32 KB L1 / 1 MB shared L2, DDR4 behind 8 banks, RM fabric @100 MHz with
/// a 2 MB fill buffer). All latencies are in CPU cycles at 1.5 GHz.
///
/// These constants are the calibration surface for the paper's figures:
/// tests assert the resulting *shapes* (crossovers, orderings), not the
/// constants themselves.
struct SimParams {
  // --- geometry ---
  uint32_t cache_line_bytes = 64;
  uint32_t l1_bytes = 32 * 1024;
  uint32_t l1_ways = 4;
  uint32_t l2_bytes = 1024 * 1024;
  uint32_t l2_ways = 16;

  // --- latencies (CPU cycles) ---
  double l1_hit_cycles = 2.0;
  double l2_hit_cycles = 14.0;
  /// Raw DRAM access latency when the target bank row buffer is open/closed.
  double dram_row_hit_cycles = 110.0;
  double dram_row_miss_cycles = 165.0;
  /// Channel occupancy per 64 B line moved from DRAM (bandwidth term).
  double line_transfer_cycles = 6.0;
  /// Cost of a demand miss whose line was covered by a hardware prefetch
  /// (the line is already in, or about to land in, L2).
  double prefetch_covered_cycles = 10.0;
  /// Average number of overlapping outstanding demand misses the in-order
  /// core sustains (limited MLP on the A53); exposed miss latency is
  /// raw latency / mlp.
  double cpu_mlp = 2.0;

  // --- DRAM organization ---
  uint32_t dram_banks = 8;
  uint32_t dram_row_bytes = 2048;

  // --- prefetcher ---
  /// Number of concurrently tracked sequential streams. The Cortex-A53
  /// data prefetcher tracks a small fixed number; the paper observes the
  /// column engine degrading beyond four parallel column cursors.
  uint32_t prefetch_streams = 4;
  /// A stream must make this many sequential line steps before its
  /// prefetches start covering demand misses.
  uint32_t prefetch_train_steps = 2;
  /// Window (in lines) within which a miss still matches a stream.
  uint32_t prefetch_match_window = 4;

  // --- Relational Memory fabric ---
  /// CPU-side latency of a demand miss served by the RM fill buffer.
  double fabric_read_cycles = 12.0;
  /// Fabric-to-CPU clock ratio (1.5 GHz / 100 MHz).
  double fabric_clock_ratio = 15.0;
  /// Fabric cycles to pack one output cache line (pipelined datapath).
  double fabric_pack_cycles_per_line = 1.0;
  /// Source rows the fabric's row parser processes per fabric cycle; the
  /// 100 MHz datapath walks row descriptors at this rate, which is the
  /// production floor for narrow outputs.
  double fabric_rows_per_cycle = 1.25;
  /// Number of DRAM banks the RM gather engine drives concurrently.
  uint32_t fabric_gather_parallelism = 8;
  /// Size of the on-fabric data memory (double-buffered fill buffer).
  uint64_t fabric_buffer_bytes = 2 * 1024 * 1024;
  /// One-time stall when the fill buffer wraps and must be re-armed
  /// (descriptor reload + first-line refill latency).
  double fabric_refill_stall_cycles = 1500.0;
  /// One-time cost of configuring an ephemeral variable (writing the
  /// geometry descriptor registers over AXI).
  double fabric_configure_cycles = 800.0;

  // --- distributed fabric (src/net) ---
  /// Link model between simulated nodes. Only consulted when a cluster
  /// is configured (Fabric::ConfigureCluster); the single-host fan-out
  /// never charges network cycles.
  NetworkParams network;

  /// Baseline parameters of the paper's evaluation platform.
  static SimParams ZynqA53Defaults() { return SimParams{}; }

  /// Relational Memory Controller (paper §IV-C): the transformer moves
  /// from external programmable logic into the memory controller itself.
  /// It runs at the controller clock (vs. 100 MHz fabric), has first-
  /// party access to the DIMMs (all banks, faster buffer reads), and is
  /// configured through an ISA extension instead of AXI register writes.
  static SimParams RelationalMemoryControllerDefaults() {
    SimParams p;
    p.fabric_clock_ratio = 2.5;        // ~600 MHz controller domain
    p.fabric_read_cycles = 8.0;        // buffer adjacent to the controller
    p.fabric_gather_parallelism = 16;  // full bank/bank-group visibility
    p.fabric_configure_cycles = 60.0;  // one ISA instruction, no AXI hop
    p.fabric_refill_stall_cycles = 300.0;
    return p;
  }

  uint32_t l1_sets() const {
    return l1_bytes / (cache_line_bytes * l1_ways);
  }
  uint32_t l2_sets() const {
    return l2_bytes / (cache_line_bytes * l2_ways);
  }
};

}  // namespace relfab::sim

#endif  // RELFAB_SIM_PARAMS_H_
