#ifndef RELFAB_SIM_MEMORY_SYSTEM_H_
#define RELFAB_SIM_MEMORY_SYSTEM_H_

#include <cstdint>

#include "common/logging.h"
#include "obs/query_profile.h"
#include "obs/registry.h"
#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/params.h"
#include "sim/prefetcher.h"
#include "sim/stats.h"

namespace relfab::sim {

/// Trace-driven timing model of the platform's memory hierarchy.
///
/// The model keeps two clocks:
///  * `cpu_cycles` — latency visible to the core: cache hits, exposed miss
///    latency, explicit compute work, and pipeline stalls;
///  * `channel_busy_cycles` — DRAM channel occupancy: every line moved
///    from DRAM (demand or RM gather) charges a transfer slot.
/// Elapsed time for a run is max(cpu, channel): a perfectly prefetched
/// scan becomes bandwidth-bound, a pointer-chasing scan latency-bound.
///
/// Data itself lives in ordinary host memory; this class only assigns
/// *simulated* addresses (via Allocate) and accounts for the cost of
/// touching them. Addresses at or above kFabricBase model the Relational
/// Memory fill buffer: they are cacheable but are produced by the fabric,
/// so a demand miss on them costs a fabric read instead of a DRAM access
/// and consumes no DRAM channel slot (the gather that produced them
/// already did).
class MemorySystem {
 public:
  /// Simulated addresses >= this value belong to the RM fill buffer.
  static constexpr uint64_t kFabricBase = 1ull << 40;

  explicit MemorySystem(const SimParams& params = SimParams::ZynqA53Defaults())
      : params_(params),
        l1_(params.l1_sets(), params.l1_ways),
        l2_(params.l2_sets(), params.l2_ways),
        prefetcher_(params),
        dram_(params) {}

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Reserves `bytes` of simulated address space (64 B aligned).
  uint64_t Allocate(uint64_t bytes, MemClass mem_class = MemClass::kDram) {
    uint64_t* brk =
        mem_class == MemClass::kFabricBuffer ? &fabric_brk_ : &dram_brk_;
    const uint64_t addr = *brk;
    *brk += (bytes + params_.cache_line_bytes - 1) &
            ~static_cast<uint64_t>(params_.cache_line_bytes - 1);
    if (mem_class == MemClass::kDram) {
      RELFAB_CHECK(*brk < kFabricBase) << "simulated DRAM exhausted";
    }
    return addr;
  }

  /// Charges a demand read of [addr, addr+bytes). bytes must be > 0.
  void Read(uint64_t addr, uint64_t bytes) {
    const uint64_t first = addr >> kLineShift;
    const uint64_t last = (addr + bytes - 1) >> kLineShift;
    for (uint64_t line = first; line <= last; ++line) AccessLine(line);
  }

  /// Charges a demand write (write-allocate, same path as Read; writeback
  /// traffic is not modelled).
  void Write(uint64_t addr, uint64_t bytes) { Read(addr, bytes); }

  /// Charges pure compute work on the core.
  void CpuWork(double cycles) { cpu_cycles_ += cycles; }

  /// Charges a pipeline stall (e.g. waiting for the RM fill buffer).
  void Stall(double cycles) { cpu_cycles_ += cycles; }

  /// RM gather path: the fabric fetches one source line from DRAM.
  /// Returns the raw bank latency; the caller overlaps latencies across
  /// banks (fabric_gather_parallelism) when aggregating production time.
  /// Charges channel bandwidth but does not touch the CPU caches — the
  /// gather bypasses the core, which is exactly the "no cache pollution"
  /// property of the paper.
  double GatherLine(uint64_t addr, bool* row_hit) {
    const double lat = dram_.Access(addr, row_hit);
    channel_busy_cycles_ += params_.line_transfer_cycles;
    ++stats_.dram_lines_gather;
    return lat;
  }

  /// Bookkeeping hook for fill-buffer wrap-arounds (stats only; the
  /// stall itself is charged by the caller via Stall()).
  void NoteFabricRefill() { ++stats_.fabric_refills; }

  // --- timing readout ---
  double cpu_cycles() const { return cpu_cycles_; }
  double channel_busy_cycles() const { return channel_busy_cycles_; }

  /// Total simulated time so far: the core and the DRAM channel advance
  /// concurrently, so the run takes as long as the busier of the two.
  uint64_t ElapsedCycles() const {
    const double e =
        cpu_cycles_ > channel_busy_cycles_ ? cpu_cycles_ : channel_busy_cycles_;
    return static_cast<uint64_t>(e);
  }

  /// Zeroes both clocks and the event counters; keeps cache/DRAM/prefetch
  /// state (use between timed sections that share warmed state).
  void ResetTiming() {
    cpu_cycles_ = 0;
    channel_busy_cycles_ = 0;
    stats_ = MemStats{};
    dram_row_hit_base_ = dram_.row_hits();
    dram_row_miss_base_ = dram_.row_misses();
  }

  /// Cold-start: flushes caches, prefetch streams and row buffers, and
  /// zeroes all clocks/counters. Allocations are preserved.
  void ResetState() {
    l1_.Flush();
    l2_.Flush();
    prefetcher_.Reset();
    dram_.Reset();
    ResetTiming();
    dram_row_hit_base_ = 0;
    dram_row_miss_base_ = 0;
  }

  /// Event counters since the last ResetTiming/ResetState.
  MemStats stats() const {
    MemStats s = stats_;
    s.dram_row_hits = dram_.row_hits() - dram_row_hit_base_;
    s.dram_row_misses = dram_.row_misses() - dram_row_miss_base_;
    return s;
  }

  /// One reading of the accumulating meters for per-operator attribution
  /// (obs::OpProfiler); cheaper than a full stats() snapshot.
  obs::MeterSample Sample() const {
    obs::MeterSample s;
    s.cpu_cycles = cpu_cycles_;
    s.channel_busy_cycles = channel_busy_cycles_;
    s.dram_lines_demand = stats_.dram_lines_demand;
    s.dram_lines_gather = stats_.dram_lines_gather;
    s.fabric_reads = stats_.fabric_reads;
    s.l1_misses = stats_.l1_misses;
    s.l2_misses = stats_.l2_misses;
    return s;
  }

  /// Publishes the memory hierarchy's counters into `registry` under
  /// "sim.*": MemStats events, both clocks, DRAM bank/row-buffer state
  /// and the prefetcher's stream-table statistics. This is the metrics
  /// spine of the observability layer — every component exports through a
  /// Registry so one snapshot describes a whole run.
  void ExportTo(obs::Registry* registry) const {
    const MemStats s = stats();
    registry->Set("sim.cpu_cycles", cpu_cycles_);
    registry->Set("sim.channel_busy_cycles", channel_busy_cycles_);
    registry->Set("sim.elapsed_cycles",
                  static_cast<double>(ElapsedCycles()));
    registry->counter("sim.l1.hits")->Set(s.l1_hits);
    registry->counter("sim.l1.misses")->Set(s.l1_misses);
    registry->counter("sim.l2.hits")->Set(s.l2_hits);
    registry->counter("sim.l2.misses")->Set(s.l2_misses);
    registry->Set("sim.l1.hit_rate", s.l1_hit_rate());
    registry->Set("sim.l2.hit_rate", s.l2_hit_rate());
    registry->counter("sim.prefetch.covered")->Set(s.prefetch_covered);
    registry->counter("sim.prefetch.uncovered")->Set(s.prefetch_uncovered);
    registry->Set("sim.prefetch.coverage", s.prefetch_coverage());
    registry->counter("sim.prefetch.stream_allocs")
        ->Set(prefetcher_.allocations());
    registry->counter("sim.prefetch.stream_steals")->Set(prefetcher_.steals());
    registry->counter("sim.dram.row_hits")->Set(s.dram_row_hits);
    registry->counter("sim.dram.row_misses")->Set(s.dram_row_misses);
    registry->Set("sim.dram.banks", dram_.banks());
    registry->counter("sim.dram.lines_demand")->Set(s.dram_lines_demand);
    registry->counter("sim.dram.lines_gather")->Set(s.dram_lines_gather);
    registry->counter("sim.dram.bytes_total")->Set(s.dram_bytes_total());
    registry->counter("sim.fabric.buffer_reads")->Set(s.fabric_reads);
    registry->counter("sim.fabric.refills")->Set(s.fabric_refills);
  }

  const SimParams& params() const { return params_; }

 private:
  static constexpr uint32_t kLineShift = 6;  // 64 B lines

  static bool IsFabricLine(uint64_t line) {
    return (line << kLineShift) >= kFabricBase;
  }

  void AccessLine(uint64_t line) {
    if (l1_.Access(line)) {
      cpu_cycles_ += params_.l1_hit_cycles;
      ++stats_.l1_hits;
      return;
    }
    ++stats_.l1_misses;
    if (l2_.Access(line)) {
      cpu_cycles_ += params_.l2_hit_cycles;
      ++stats_.l2_hits;
      l1_.Insert(line);
      return;
    }
    ++stats_.l2_misses;
    if (IsFabricLine(line)) {
      cpu_cycles_ += params_.fabric_read_cycles;
      ++stats_.fabric_reads;
      l2_.Insert(line);
      l1_.Insert(line);
      return;
    }
    const bool covered = prefetcher_.OnDemandMiss(line);
    const double lat = dram_.Access(line << kLineShift);
    if (covered) {
      cpu_cycles_ += params_.prefetch_covered_cycles;
      ++stats_.prefetch_covered;
    } else {
      cpu_cycles_ += lat / params_.cpu_mlp;
      ++stats_.prefetch_uncovered;
    }
    channel_busy_cycles_ += params_.line_transfer_cycles;
    ++stats_.dram_lines_demand;
    l2_.Insert(line);
    l1_.Insert(line);
  }

  SimParams params_;
  CacheModel l1_;
  CacheModel l2_;
  StreamPrefetcher prefetcher_;
  DramModel dram_;
  MemStats stats_;
  double cpu_cycles_ = 0;
  double channel_busy_cycles_ = 0;
  uint64_t dram_brk_ = 1ull << 20;  // leave page zero unmapped
  uint64_t fabric_brk_ = kFabricBase;
  uint64_t dram_row_hit_base_ = 0;
  uint64_t dram_row_miss_base_ = 0;
};

/// Charges sequential demand reads while skipping the per-access cost for
/// bytes that stay within an already-touched cache line. Engines use this
/// so a tight value-by-value loop performs one simulated access per line,
/// not per value.
class SequentialReader {
 public:
  explicit SequentialReader(MemorySystem* memory)
      : memory_(memory) {}

  /// Charges the read of [addr, addr+bytes); bytes that fall on lines the
  /// stream already touched are free (the value sits in L1/a register —
  /// that cost belongs to the engine's per-value CPU constant).
  void Read(uint64_t addr, uint32_t bytes) {
    const uint64_t first = addr >> 6;
    const uint64_t last = (addr + bytes - 1) >> 6;
    uint64_t begin = first;
    if (last_line_ != kNoLine && first <= last_line_) begin = last_line_ + 1;
    if (begin > last) return;
    memory_->Read(begin << 6, ((last - begin) + 1) << 6);
    last_line_ = last;
  }

  /// Forgets the current line (e.g. when jumping to a new region).
  void Reset() { last_line_ = kNoLine; }

 private:
  static constexpr uint64_t kNoLine = ~0ull;

  MemorySystem* memory_;
  uint64_t last_line_ = kNoLine;
};

}  // namespace relfab::sim

#endif  // RELFAB_SIM_MEMORY_SYSTEM_H_
