#ifndef RELFAB_SIM_MEMORY_SYSTEM_H_
#define RELFAB_SIM_MEMORY_SYSTEM_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "common/logging.h"
#include "faults/injector.h"
#include "obs/query_profile.h"
#include "obs/registry.h"
#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/params.h"
#include "sim/prefetcher.h"
#include "sim/stats.h"

namespace relfab::sim {

/// Trace-driven timing model of the platform's memory hierarchy.
///
/// The model keeps two clocks:
///  * `cpu_cycles` — latency visible to the core: cache hits, exposed miss
///    latency, explicit compute work, and pipeline stalls;
///  * `channel_busy_cycles` — DRAM channel occupancy: every line moved
///    from DRAM (demand or RM gather) charges a transfer slot.
/// Elapsed time for a run is max(cpu, channel): a perfectly prefetched
/// scan becomes bandwidth-bound, a pointer-chasing scan latency-bound.
///
/// Data itself lives in ordinary host memory; this class only assigns
/// *simulated* addresses (via Allocate) and accounts for the cost of
/// touching them. Addresses at or above kFabricBase model the Relational
/// Memory fill buffer: they are cacheable but are produced by the fabric,
/// so a demand miss on them costs a fabric read instead of a DRAM access
/// and consumes no DRAM channel slot (the gather that produced them
/// already did).
///
/// ## Fast path (see docs/performance.md)
///
/// The per-line AccessLine walk is the *reference* implementation. By
/// default a batched fast path replays common access shapes in closed
/// form — provably producing bit-identical clocks and MemStats:
///  * a *hot-line memo* replays repeated touches of the most recently
///    accessed line as L1 hits without walking the cache;
///  * a *cold watermark* per region (DRAM / fabric) proves lines never
///    inserted since the last flush miss both caches, skipping lookups;
///  * runs of cold lines covered by one trained prefetch stream are
///    charged with one multiply per clock plus bulk cache/DRAM updates.
/// Toggle with set_fast_path() or RELFAB_SIM_FAST_PATH=0; the contract
/// (enforced by tests/sim_equivalence_test.cc) is that both modes yield
/// identical ElapsedCycles() and stats() for every workload.
class MemorySystem {
 public:
  /// Simulated addresses >= this value belong to the RM fill buffer.
  static constexpr uint64_t kFabricBase = 1ull << 40;

  explicit MemorySystem(const SimParams& params = SimParams::ZynqA53Defaults())
      : params_(params),
        l1_(params.l1_sets(), params.l1_ways),
        l2_(params.l2_sets(), params.l2_ways),
        prefetcher_(params),
        dram_(params) {
    const char* env = std::getenv("RELFAB_SIM_FAST_PATH");
    fast_path_ = env == nullptr || env[0] == '\0' || env[0] != '0';
  }

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Reserves `bytes` of simulated address space (64 B aligned).
  uint64_t Allocate(uint64_t bytes, MemClass mem_class = MemClass::kDram) {
    uint64_t* brk =
        mem_class == MemClass::kFabricBuffer ? &fabric_brk_ : &dram_brk_;
    const uint64_t addr = *brk;
    *brk += (bytes + params_.cache_line_bytes - 1) &
            ~static_cast<uint64_t>(params_.cache_line_bytes - 1);
    if (mem_class == MemClass::kDram) {
      RELFAB_CHECK(*brk < kFabricBase) << "simulated DRAM exhausted";
    }
    return addr;
  }

  /// Charges a demand read of [addr, addr+bytes). bytes must be > 0.
  void Read(uint64_t addr, uint64_t bytes) {
    if (faults_ == nullptr) {
      ReadImpl(addr, bytes);
      return;
    }
    // ECC events are sampled per DRAM line actually moved, so both
    // simulation modes (which touch identical line counts) consume the
    // fault stream identically.
    const uint64_t before = stats_.dram_lines_demand;
    ReadImpl(addr, bytes);
    EccTick(stats_.dram_lines_demand - before);
  }

  /// Arms correctable-DRAM-ECC injection ("dram.ecc" site): each event
  /// stalls the core for the rule's penalty cycles. ECC faults are
  /// always correctable (stall-only) — the kind parameter is ignored for
  /// this site. Pass nullptr (or a plan without "dram.ecc") to disarm.
  void set_fault_injector(faults::FaultInjector* injector) {
    ecc_site_ = injector == nullptr
                    ? faults::FaultInjector::kNoSite
                    : injector->Site("dram.ecc");
    if (ecc_site_ < 0) {
      faults_ = nullptr;
      return;
    }
    faults_ = injector;
    ecc_penalty_ = injector->rule(ecc_site_).penalty_cycles;
    ecc_countdown_ = injector->NextGap(ecc_site_) + 1;
  }

 private:
  void ReadImpl(uint64_t addr, uint64_t bytes) {
    const uint64_t first = addr >> kLineShift;
    const uint64_t last = (addr + bytes - 1) >> kLineShift;
    if (!fast_path_) {
      for (uint64_t line = first; line <= last; ++line) AccessLine(line);
      return;
    }
    const bool fabric = IsFabricLine(first);
    uint64_t& watermark = fabric ? fabric_watermark_ : dram_watermark_;
    // Lines are visited in increasing order and the watermark only moves
    // at the end of the call, so `first >= watermark` proves every line
    // of the range has never been inserted since the last flush.
    const bool all_cold = first >= watermark;
    uint64_t line = first;
    while (line <= last) {
      if (line == hot_line_) {
        // The previous access left this line present and MRU of its L1
        // set; replaying it as a hit while skipping the LRU touch is
        // exact (it already holds the newest stamp of its set, and only
        // intra-set stamp order is ever observable).
        cpu_cycles_ += params_.l1_hit_cycles;
        ++stats_.l1_hits;
        ++fastpath_memo_hits_;
        ++line;
        continue;
      }
      if (all_cold) {
        const uint64_t n = last - line + 1;
        if (fabric) {
          ColdFabricRun(line, n);
          break;
        }
        if (n >= kMinRunLines && prefetcher_.TryAdvanceRun(line, n)) {
          ColdCoveredRun(line, n);
          break;
        }
        AccessLineCold(line);
        ++line;
        continue;
      }
      AccessLine(line);
      ++line;
    }
    hot_line_ = last;
    if (last >= watermark) watermark = last + 1;
  }

 public:
  /// Charges a demand write (write-allocate, same path as Read; writeback
  /// traffic is not modelled).
  void Write(uint64_t addr, uint64_t bytes) { Read(addr, bytes); }

  /// Charges a read of [addr, addr+bytes) that the *caller* proves is
  /// L1-resident: every line of the range is present in L1 and is the
  /// most recently touched line of its cache set (e.g. the fields of a
  /// row whose lines a scan operator just materialized). Under that
  /// precondition this is exactly equivalent to Read() — each line is an
  /// L1 hit, and skipping the LRU touch of a line that already holds its
  /// set's newest stamp cannot change any future hit, eviction or
  /// prefetch decision. Validated per line in debug builds; with the
  /// fast path disabled this simply forwards to the reference Read().
  void ReadL1Resident(uint64_t addr, uint64_t bytes) {
    if (!fast_path_) {
      Read(addr, bytes);
      return;
    }
    const uint64_t first = addr >> kLineShift;
    const uint64_t last = (addr + bytes - 1) >> kLineShift;
    const uint64_t n = last - first + 1;
#ifndef NDEBUG
    for (uint64_t line = first; line <= last; ++line) {
      RELFAB_DCHECK(l1_.IsMruOfSet(line))
          << "ReadL1Resident contract violated for line " << line;
    }
#endif
    AddRepeated(&cpu_cycles_, params_.l1_hit_cycles, n);
    stats_.l1_hits += n;
    fastpath_memo_hits_ += n;
    hot_line_ = last;
  }

  /// Charges `n` single-line reads of lines the *caller* proves are
  /// L1-resident and MRU of their sets — the counted form of
  /// ReadL1Resident for call sites that batch many provable hits (e.g.
  /// the volcano engine's per-field touches of a row its scan just
  /// materialized). Mode-independent by construction: both paths charge
  /// through AddRepeated (bit-identical to the scalar replay) and skip
  /// the LRU touch, which is exact for a line already holding its set's
  /// newest stamp. Pair with DebugCheckMruResident in debug builds to
  /// validate the precondition.
  void ChargeMruHits(uint64_t n) {
    if (n == 0) return;
    AddRepeated(&cpu_cycles_, params_.l1_hit_cycles, n);
    stats_.l1_hits += n;
    fastpath_memo_hits_ += n;
  }

  /// Debug-build validator for ChargeMruHits / ReadL1Resident call
  /// sites: true iff every line of [addr, addr+bytes) is present in L1
  /// and is the most recently stamped line of its set.
  bool DebugCheckMruResident(uint64_t addr, uint64_t bytes) const {
    const uint64_t first = addr >> kLineShift;
    const uint64_t last = (addr + bytes - 1) >> kLineShift;
    for (uint64_t line = first; line <= last; ++line) {
      if (!l1_.IsMruOfSet(line)) return false;
    }
    return true;
  }

  /// Charges pure compute work on the core.
  void CpuWork(double cycles) { cpu_cycles_ += cycles; }

  /// Charges a pipeline stall (e.g. waiting for the RM fill buffer).
  void Stall(double cycles) { cpu_cycles_ += cycles; }

  /// RM gather path: the fabric fetches one source line from DRAM.
  /// Returns the raw bank latency; the caller overlaps latencies across
  /// banks (fabric_gather_parallelism) when aggregating production time.
  /// Charges channel bandwidth but does not touch the CPU caches — the
  /// gather bypasses the core, which is exactly the "no cache pollution"
  /// property of the paper.
  double GatherLine(uint64_t addr, bool* row_hit) {
    const double lat = dram_.Access(addr, row_hit);
    channel_busy_cycles_ += params_.line_transfer_cycles;
    ++stats_.dram_lines_gather;
    if (faults_ != nullptr) EccTick(1);
    return lat;
  }

  /// Bulk equivalent of `n` GatherLine calls for consecutive lines
  /// starting at `addr` (line aligned): identical channel charge, DRAM
  /// row-buffer state and gather counters, computed in closed form.
  /// Returns the number of DRAM row misses so the caller can charge the
  /// bank-overlapped miss latency (miss latency is a constant, so
  /// `misses * miss_cycles` replays the per-line sum exactly).
  uint64_t GatherRun(uint64_t addr, uint64_t n) {
    uint64_t misses = 0;
    dram_.AccessRun(addr, n, params_.cache_line_bytes, &misses);
    AddRepeated(&channel_busy_cycles_, params_.line_transfer_cycles, n);
    stats_.dram_lines_gather += n;
    ++fastpath_runs_;
    fastpath_lines_ += n;
    if (faults_ != nullptr) EccTick(n);
    return misses;
  }

  /// Bookkeeping hook for fill-buffer wrap-arounds (stats only; the
  /// stall itself is charged by the caller via Stall()).
  void NoteFabricRefill() { ++stats_.fabric_refills; }

  // --- timing readout ---
  double cpu_cycles() const { return cpu_cycles_; }
  double channel_busy_cycles() const { return channel_busy_cycles_; }

  /// Total simulated time so far: the core and the DRAM channel advance
  /// concurrently, so the run takes as long as the busier of the two.
  uint64_t ElapsedCycles() const {
    const double e =
        cpu_cycles_ > channel_busy_cycles_ ? cpu_cycles_ : channel_busy_cycles_;
    return static_cast<uint64_t>(e);
  }

  /// Zeroes both clocks and the event counters; keeps cache/DRAM/prefetch
  /// state (use between timed sections that share warmed state).
  void ResetTiming() {
    cpu_cycles_ = 0;
    channel_busy_cycles_ = 0;
    stats_ = MemStats{};
    dram_row_hit_base_ = dram_.row_hits();
    dram_row_miss_base_ = dram_.row_misses();
  }

  /// Cold-start: flushes caches, prefetch streams and row buffers, and
  /// zeroes all clocks/counters. DRAM allocations are preserved; the
  /// fabric fill-buffer break is rewound because fill-buffer space is
  /// ephemeral by nature (every chunk production allocates fresh
  /// addresses), which makes a cell's simulated cycles independent of
  /// which queries ran before it in the same process — a prerequisite
  /// for running sweep cells on worker threads in any order.
  void ResetState() {
    l1_.Flush();
    l2_.Flush();
    prefetcher_.Reset();
    dram_.Reset();
    ResetTiming();
    dram_row_hit_base_ = 0;
    dram_row_miss_base_ = 0;
    fabric_brk_ = kFabricBase;
    hot_line_ = kNoLine;
    dram_watermark_ = 0;
    fabric_watermark_ = kFabricBase >> kLineShift;
  }

  /// ResetState plus a rewind of the simulated DRAM allocator: the next
  /// Allocate returns exactly what it would on a freshly constructed
  /// system. For worker-private rigs that re-host a different table per
  /// task (the shard scheduler): with the allocator rewound, a task's
  /// addresses — and therefore its bank/set mappings and cycles — are a
  /// pure function of the task, independent of what the rig ran before.
  /// ResetState deliberately does NOT do this (benches rely on
  /// allocations surviving it); use this only when the rig's previous
  /// tables are dead.
  void ResetAddressSpace() {
    ResetState();
    dram_brk_ = 1ull << 20;
  }

  /// Selects the batched fast path (default, also controlled by the
  /// RELFAB_SIM_FAST_PATH environment variable) or the per-line
  /// reference path. Both produce bit-identical clocks and stats; the
  /// reference path exists as the oracle for equivalence tests.
  /// Enabling mid-run conservatively forfeits cold-region knowledge
  /// accumulated while the reference path ran (it does not maintain the
  /// watermarks), so freshly allocated space past the current breaks is
  /// the only region the fast path will treat as cold.
  void set_fast_path(bool enabled) {
    if (enabled && !fast_path_) {
      hot_line_ = kNoLine;
      dram_watermark_ = dram_brk_ >> kLineShift;
      fabric_watermark_ = fabric_brk_ >> kLineShift;
    }
    fast_path_ = enabled;
  }
  bool fast_path() const { return fast_path_; }

  /// Fast-path telemetry (not part of MemStats, which must stay
  /// bit-identical across modes): lines charged via closed-form runs /
  /// the hot-line memo, and the number of closed-form runs taken.
  uint64_t fastpath_lines() const { return fastpath_lines_; }
  uint64_t fastpath_runs() const { return fastpath_runs_; }
  uint64_t fastpath_memo_hits() const { return fastpath_memo_hits_; }

  /// Event counters since the last ResetTiming/ResetState.
  MemStats stats() const {
    MemStats s = stats_;
    s.dram_row_hits = dram_.row_hits() - dram_row_hit_base_;
    s.dram_row_misses = dram_.row_misses() - dram_row_miss_base_;
    return s;
  }

  /// One reading of the accumulating meters for per-operator attribution
  /// (obs::OpProfiler); cheaper than a full stats() snapshot.
  obs::MeterSample Sample() const {
    obs::MeterSample s;
    s.cpu_cycles = cpu_cycles_;
    s.channel_busy_cycles = channel_busy_cycles_;
    s.dram_lines_demand = stats_.dram_lines_demand;
    s.dram_lines_gather = stats_.dram_lines_gather;
    s.fabric_reads = stats_.fabric_reads;
    s.l1_misses = stats_.l1_misses;
    s.l2_misses = stats_.l2_misses;
    return s;
  }

  /// Publishes the memory hierarchy's counters into `registry` under
  /// "sim.*": MemStats events, both clocks, DRAM bank/row-buffer state
  /// and the prefetcher's stream-table statistics. This is the metrics
  /// spine of the observability layer — every component exports through a
  /// Registry so one snapshot describes a whole run.
  void ExportTo(obs::Registry* registry) const {
    const MemStats s = stats();
    registry->Set("sim.cpu_cycles", cpu_cycles_);
    registry->Set("sim.channel_busy_cycles", channel_busy_cycles_);
    registry->Set("sim.elapsed_cycles",
                  static_cast<double>(ElapsedCycles()));
    registry->counter("sim.l1.hits")->Set(s.l1_hits);
    registry->counter("sim.l1.misses")->Set(s.l1_misses);
    registry->counter("sim.l2.hits")->Set(s.l2_hits);
    registry->counter("sim.l2.misses")->Set(s.l2_misses);
    registry->Set("sim.l1.hit_rate", s.l1_hit_rate());
    registry->Set("sim.l2.hit_rate", s.l2_hit_rate());
    registry->counter("sim.prefetch.covered")->Set(s.prefetch_covered);
    registry->counter("sim.prefetch.uncovered")->Set(s.prefetch_uncovered);
    registry->Set("sim.prefetch.coverage", s.prefetch_coverage());
    registry->counter("sim.prefetch.stream_allocs")
        ->Set(prefetcher_.allocations());
    registry->counter("sim.prefetch.stream_steals")->Set(prefetcher_.steals());
    registry->counter("sim.dram.row_hits")->Set(s.dram_row_hits);
    registry->counter("sim.dram.row_misses")->Set(s.dram_row_misses);
    registry->Set("sim.dram.banks", dram_.banks());
    registry->counter("sim.dram.lines_demand")->Set(s.dram_lines_demand);
    registry->counter("sim.dram.lines_gather")->Set(s.dram_lines_gather);
    registry->counter("sim.dram.bytes_total")->Set(s.dram_bytes_total());
    registry->counter("sim.fabric.buffer_reads")->Set(s.fabric_reads);
    registry->counter("sim.fabric.refills")->Set(s.fabric_refills);
    registry->Set("sim.fastpath.enabled", fast_path_ ? 1.0 : 0.0);
    registry->counter("sim.fastpath.runs")->Set(fastpath_runs_);
    registry->counter("sim.fastpath.lines")->Set(fastpath_lines_);
    registry->counter("sim.fastpath.memo_hits")->Set(fastpath_memo_hits_);
  }

  const SimParams& params() const { return params_; }

  /// Adds `c` to `*acc` exactly `n` times, bit-identical to the scalar
  /// loop but in O(log n) work. The accumulator may carry full-mantissa
  /// cruft from earlier non-dyadic charges, so a plain `n * c` fused add
  /// could round differently from the sequential replay when a partial
  /// sum crosses a power-of-two boundary (the representable spacing
  /// doubles there). Instead: while the partial sums stay at or below
  /// the next power of two — where every one is an exact multiple of
  /// ulp(acc), hence exactly representable — a single fused `m * c`
  /// addition is bit-equal to `m` scalar additions; the at most one
  /// addition per binade that crosses the boundary is replayed
  /// individually so it rounds exactly as the reference loop does.
  /// Falls back to the scalar loop for charge constants that are not
  /// dyadic rationals with <= 12 fractional bits (every stock parameter
  /// is one) or for astronomically large accumulators. Public so the
  /// equivalence tests can exercise it directly.
  static void AddRepeated(double* acc, double c, uint64_t n) {
    if (n < 8) {  // the closed form's setup costs more than 8 adds
      for (uint64_t i = 0; i < n; ++i) *acc += c;
      return;
    }
    const double scaled = c * 4096.0;  // 2^12
    if (!(c > 0) || scaled != std::floor(scaled) || scaled >= 0x1p53) {
      for (uint64_t i = 0; i < n; ++i) *acc += c;
      return;
    }
    while (n > 0) {
      const double a = *acc;
      int exp = 0;
      std::frexp(a, &exp);
      if (exp > 41) {
        for (uint64_t i = 0; i < n; ++i) *acc += c;
        return;
      }
      // Smallest power of two strictly greater than `a` (for a == 2^k,
      // frexp yields f = 0.5, exp = k + 1, so bound = 2^(k+1)).
      const double bound = a == 0 ? 1.0 : std::ldexp(1.0, exp);
      uint64_t m = static_cast<uint64_t>((bound - a) / c);
      if (m == 0) {  // boundary crossing: replay the rounding exactly
        *acc = a + c;
        --n;
        continue;
      }
      if (m > n) m = n;
      *acc = a + static_cast<double>(m) * c;
      n -= m;
    }
  }

 private:
  static constexpr uint32_t kLineShift = 6;  // 64 B lines
  static constexpr uint64_t kNoLine = ~0ull;

  /// Consumes `n` DRAM-line events from the ECC countdown; every expiry
  /// charges one correctable-ECC stall and redraws the geometric gap.
  /// O(1) amortized — the hot Read path pays one subtraction per call.
  void EccTick(uint64_t n) {
    if (n == 0) return;
    faults_->NoteChecks(ecc_site_, n);
    while (n >= ecc_countdown_) {
      n -= ecc_countdown_;
      cpu_cycles_ += ecc_penalty_;
      faults_->NoteInjected(ecc_site_);
      ecc_countdown_ = faults_->NextGap(ecc_site_) + 1;
    }
    ecc_countdown_ -= n;
  }

  /// Minimum cold-run length worth the closed-form setup (stream-table
  /// scan + per-set bulk inserts); below it per-line cold accesses win.
  static constexpr uint64_t kMinRunLines = 4;

  static bool IsFabricLine(uint64_t line) {
    return (line << kLineShift) >= kFabricBase;
  }

  /// Reference per-line walk — the oracle the fast path is tested
  /// against. Every closed-form charge above replays exactly the state
  /// transitions and clock/counter increments of this function.
  void AccessLine(uint64_t line) {
    if (l1_.Access(line)) {
      cpu_cycles_ += params_.l1_hit_cycles;
      ++stats_.l1_hits;
      return;
    }
    ++stats_.l1_misses;
    if (l2_.Access(line)) {
      cpu_cycles_ += params_.l2_hit_cycles;
      ++stats_.l2_hits;
      l1_.Insert(line);
      return;
    }
    ++stats_.l2_misses;
    if (IsFabricLine(line)) {
      cpu_cycles_ += params_.fabric_read_cycles;
      ++stats_.fabric_reads;
      l2_.Insert(line);
      l1_.Insert(line);
      return;
    }
    const bool covered = prefetcher_.OnDemandMiss(line);
    const double lat = dram_.Access(line << kLineShift);
    if (covered) {
      cpu_cycles_ += params_.prefetch_covered_cycles;
      ++stats_.prefetch_covered;
    } else {
      cpu_cycles_ += lat / params_.cpu_mlp;
      ++stats_.prefetch_uncovered;
    }
    channel_busy_cycles_ += params_.line_transfer_cycles;
    ++stats_.dram_lines_demand;
    l2_.Insert(line);
    l1_.Insert(line);
  }

  /// One provably cold line: the watermark proves it was never inserted
  /// since the last flush, and Access() has no side effects on a miss,
  /// so skipping both cache lookups is state-exact. The tail (counters,
  /// prefetcher, DRAM, inserts) is identical to AccessLine.
  void AccessLineCold(uint64_t line) {
    ++stats_.l1_misses;
    ++stats_.l2_misses;
    if (IsFabricLine(line)) {
      cpu_cycles_ += params_.fabric_read_cycles;
      ++stats_.fabric_reads;
      l2_.Insert(line);
      l1_.Insert(line);
      return;
    }
    const bool covered = prefetcher_.OnDemandMiss(line);
    const double lat = dram_.Access(line << kLineShift);
    if (covered) {
      cpu_cycles_ += params_.prefetch_covered_cycles;
      ++stats_.prefetch_covered;
    } else {
      cpu_cycles_ += lat / params_.cpu_mlp;
      ++stats_.prefetch_uncovered;
    }
    channel_busy_cycles_ += params_.line_transfer_cycles;
    ++stats_.dram_lines_demand;
    l2_.Insert(line);
    l1_.Insert(line);
  }

  /// Closed-form charge for `n` cold DRAM lines that
  /// StreamPrefetcher::TryAdvanceRun already proved (and accounted) to
  /// be covered by one trained stream. Exactness: every line of the run
  /// misses both caches (cold), reports covered (so the per-line DRAM
  /// latency is discarded and the charge is the constant
  /// prefetch_covered_cycles), and all charge constants are dyadic
  /// rationals, making `n * c` bit-equal to `n` repeated additions.
  /// Cache and DRAM state advance through their bulk replays.
  void ColdCoveredRun(uint64_t line, uint64_t n) {
    stats_.l1_misses += n;
    stats_.l2_misses += n;
    stats_.prefetch_covered += n;
    stats_.dram_lines_demand += n;
    AddRepeated(&cpu_cycles_, params_.prefetch_covered_cycles, n);
    AddRepeated(&channel_busy_cycles_, params_.line_transfer_cycles, n);
    dram_.AccessRun(line << kLineShift, n, params_.cache_line_bytes,
                    nullptr);
    l2_.InsertRun(line, n);
    l1_.InsertRun(line, n);
    ++fastpath_runs_;
    fastpath_lines_ += n;
  }

  /// Closed-form charge for `n` cold fill-buffer lines: the fabric path
  /// touches neither the prefetcher, the DRAM model nor the channel, so
  /// a cold fabric run needs no stream proof at all.
  void ColdFabricRun(uint64_t line, uint64_t n) {
    stats_.l1_misses += n;
    stats_.l2_misses += n;
    stats_.fabric_reads += n;
    AddRepeated(&cpu_cycles_, params_.fabric_read_cycles, n);
    l2_.InsertRun(line, n);
    l1_.InsertRun(line, n);
    ++fastpath_runs_;
    fastpath_lines_ += n;
  }

  SimParams params_;
  CacheModel l1_;
  CacheModel l2_;
  StreamPrefetcher prefetcher_;
  DramModel dram_;
  MemStats stats_;
  double cpu_cycles_ = 0;
  double channel_busy_cycles_ = 0;
  uint64_t dram_brk_ = 1ull << 20;  // leave page zero unmapped
  uint64_t fabric_brk_ = kFabricBase;
  uint64_t dram_row_hit_base_ = 0;
  uint64_t dram_row_miss_base_ = 0;
  // --- fault injection (null = unarmed: the hot paths pay one branch) ---
  faults::FaultInjector* faults_ = nullptr;
  int ecc_site_ = -1;
  uint64_t ecc_countdown_ = ~0ull;
  double ecc_penalty_ = 0;
  // --- fast-path state (never observable through clocks or stats) ---
  bool fast_path_ = true;
  /// Most recently accessed line: present in L1 and MRU of its set.
  uint64_t hot_line_ = kNoLine;
  /// First line of each region never inserted since the last flush.
  uint64_t dram_watermark_ = 0;
  uint64_t fabric_watermark_ = kFabricBase >> kLineShift;
  uint64_t fastpath_lines_ = 0;
  uint64_t fastpath_runs_ = 0;
  uint64_t fastpath_memo_hits_ = 0;
};

/// Charges sequential demand reads while skipping the per-access cost for
/// bytes that stay within an already-touched cache line. Engines use this
/// so a tight value-by-value loop performs one simulated access per line,
/// not per value.
class SequentialReader {
 public:
  explicit SequentialReader(MemorySystem* memory)
      : memory_(memory) {}

  /// Charges the read of [addr, addr+bytes); bytes that fall on lines the
  /// stream already touched are free (the value sits in L1/a register —
  /// that cost belongs to the engine's per-value CPU constant).
  void Read(uint64_t addr, uint32_t bytes) {
    const uint64_t first = addr >> 6;
    const uint64_t last = (addr + bytes - 1) >> 6;
    uint64_t begin = first;
    if (last_line_ != kNoLine && first <= last_line_) begin = last_line_ + 1;
    if (begin > last) return;
    memory_->Read(begin << 6, ((last - begin) + 1) << 6);
    last_line_ = last;
  }

  /// Forgets the current line (e.g. when jumping to a new region).
  void Reset() { last_line_ = kNoLine; }

  /// Records that the stream position has been charged through `addr`'s
  /// line by an out-of-band bulk read (e.g. a whole-column hoist):
  /// subsequent Read calls at or below it charge nothing.
  void NoteConsumedThrough(uint64_t addr) { last_line_ = addr >> 6; }

 private:
  static constexpr uint64_t kNoLine = ~0ull;

  MemorySystem* memory_;
  uint64_t last_line_ = kNoLine;
};

}  // namespace relfab::sim

#endif  // RELFAB_SIM_MEMORY_SYSTEM_H_
