#ifndef RELFAB_NET_TOPOLOGY_H_
#define RELFAB_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "sim/params.h"

namespace relfab::net {

/// How a sharded table's replicas map onto the cluster's nodes.
enum class Placement : uint8_t {
  /// Replica j of shard i lands on node (i + j) mod N: shards stripe
  /// across the cluster and a shard's replicas always sit on distinct
  /// nodes (up to N), so one node death costs at most one replica per
  /// shard.
  kRoundRobin = 0,
  /// Shards partition into contiguous blocks (shard i's primary is node
  /// floor(i * N / num_shards)); replicas still step to the next node.
  /// Keeps key-adjacent shards co-located for range-heavy workloads.
  kBlock = 1,
};

inline std::string_view PlacementToString(Placement placement) {
  switch (placement) {
    case Placement::kRoundRobin:
      return "round_robin";
    case Placement::kBlock:
      return "block";
  }
  return "?";
}

inline StatusOr<Placement> PlacementFromString(std::string_view name) {
  if (name == "round_robin") return Placement::kRoundRobin;
  if (name == "block") return Placement::kBlock;
  return Status::InvalidArgument("unknown placement '" + std::string(name) +
                                 "' (round_robin, block)");
}

/// Everything Fabric::ConfigureCluster needs: how many simulated nodes
/// and how they are linked. Designated-initializer friendly:
///
///   fabric.ConfigureCluster({.nodes = 4});
///   fabric.ConfigureCluster({.nodes = 8, .network = {.mtu_bytes = 1500}});
struct ClusterConfig {
  /// Simulated nodes (>= 1). Each gets its own MemorySystem/RmEngine
  /// rig (exec::NodeGroup); the shard scheduler deals shards to nodes
  /// and prices coordinator merges as network transfers.
  uint32_t nodes = 1;
  /// Inter-node link model; defaults to sim::NetworkParams defaults
  /// (the same values a default-constructed SimParams carries).
  sim::NetworkParams network;
};

/// Validated cluster shape: node count, link parameters and the
/// shard/replica → node mapping. Default-constructed = disabled (the
/// classic single-host fan-out with no network charges). Value type —
/// the planner and scheduler each hold a copy kept in sync by
/// Fabric::ConfigureCluster.
class Topology {
 public:
  /// Disabled topology (single-host execution).
  Topology() = default;

  /// Validates `config` (structured kInvalidArgument on bad values) and
  /// builds an enabled topology.
  static StatusOr<Topology> Make(const ClusterConfig& config);

  bool enabled() const { return nodes_ > 0; }
  /// Node count; 0 when disabled.
  uint32_t nodes() const { return nodes_; }
  const sim::NetworkParams& network() const { return network_; }

  /// Failure-domain component name of a node ("node0", "node1", ...).
  static std::string NodeName(uint32_t node);

  /// Node hosting replica `replica` of shard `shard` in a table of
  /// `num_shards` shards under `placement`.
  uint32_t NodeFor(uint32_t shard, uint32_t replica, uint32_t num_shards,
                   Placement placement) const;

 private:
  uint32_t nodes_ = 0;
  sim::NetworkParams network_;
};

}  // namespace relfab::net

#endif  // RELFAB_NET_TOPOLOGY_H_
