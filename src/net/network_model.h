#ifndef RELFAB_NET_NETWORK_MODEL_H_
#define RELFAB_NET_NETWORK_MODEL_H_

#include <cstdint>
#include <string_view>

#include "common/statusor.h"
#include "sim/params.h"

namespace relfab::net {

/// What a shard sends its partial result to the coordinator as.
/// Both modes compute the *identical* partial spec on the node — like
/// replicas, ship modes are timing aliases: the wire format changes
/// cycles and bytes, never the answer. kAggs ships merged partial
/// aggregates (Farview-style operator pushdown into the node); kRows
/// ships the matching rows' referenced columns and lets the coordinator
/// aggregate.
enum class ShipMode : uint8_t {
  kAggs = 0,
  kRows = 1,
};

inline std::string_view ShipModeToString(ShipMode mode) {
  switch (mode) {
    case ShipMode::kAggs:
      return "aggs";
    case ShipMode::kRows:
      return "rows";
  }
  return "?";
}

inline StatusOr<ShipMode> ShipModeFromString(std::string_view name) {
  if (name == "aggs") return ShipMode::kAggs;
  if (name == "rows") return ShipMode::kRows;
  return Status::InvalidArgument("unknown ship mode '" + std::string(name) +
                                 "' (rows, aggs)");
}

/// One priced node→coordinator transfer. `serialize_cycles` is CPU work
/// on the producing node (charged to that node's clock);
/// `wire_cycles` is link occupancy (latency per message + bandwidth),
/// charged to the coordinator's serial ingest. Deserialization at the
/// coordinator is priced separately (same per-unit costs, coordinator
/// clock).
struct Transfer {
  uint64_t payload_bytes = 0;
  uint64_t messages = 0;
  double serialize_cycles = 0;
  double wire_cycles = 0;
};

/// Closed-form cycle pricing of the inter-node fabric. Pure arithmetic
/// over (sim::NetworkParams, CostModel serialization fields) — no state,
/// no wall clock — so transfers are a deterministic function of the
/// result shape, independent of host threading. Every transfer sends at
/// least one message (the completion/summary frame), so even an empty
/// shard pays one link latency.
class NetworkModel {
 public:
  NetworkModel(const sim::NetworkParams& params, double serialize_row_cycles,
               double serialize_agg_cycles)
      : params_(params),
        serialize_row_cycles_(serialize_row_cycles),
        serialize_agg_cycles_(serialize_agg_cycles) {}

  const sim::NetworkParams& params() const { return params_; }

  /// Messages needed for `payload_bytes` of payload (>= 1).
  uint64_t MessagesFor(uint64_t payload_bytes) const {
    const uint64_t mtu = params_.mtu_bytes == 0 ? 1 : params_.mtu_bytes;
    return payload_bytes == 0 ? 1 : (payload_bytes + mtu - 1) / mtu;
  }

  /// Link occupancy for a payload: per-message latency plus the
  /// bandwidth term over payload + framing.
  double WireCycles(uint64_t payload_bytes, uint64_t messages) const {
    const double total_bytes =
        static_cast<double>(payload_bytes) +
        static_cast<double>(messages) *
            static_cast<double>(params_.message_header_bytes);
    return static_cast<double>(messages) * params_.link_latency_cycles +
           total_bytes / params_.bytes_per_cycle;
  }

  /// Prices shipping `rows` materialized rows of `row_bytes` referenced
  /// bytes each (ship=rows).
  Transfer ShipRows(uint64_t rows, uint32_t row_bytes) const {
    Transfer t;
    t.payload_bytes = rows * row_bytes;
    t.messages = MessagesFor(t.payload_bytes);
    t.serialize_cycles =
        static_cast<double>(rows) * serialize_row_cycles_;
    t.wire_cycles = WireCycles(t.payload_bytes, t.messages);
    return t;
  }

  /// Prices shipping partial aggregates (ship=aggs): `groups` result
  /// rows (1 for a flat aggregate), each carrying `key_bytes` of group
  /// key plus `slots` 8-byte partial values.
  Transfer ShipAggs(uint64_t groups, uint32_t key_bytes,
                    uint64_t slots) const {
    Transfer t;
    t.payload_bytes = groups * (key_bytes + slots * 8);
    t.messages = MessagesFor(t.payload_bytes);
    t.serialize_cycles = static_cast<double>(groups * slots) *
                         serialize_agg_cycles_;
    t.wire_cycles = WireCycles(t.payload_bytes, t.messages);
    return t;
  }

  double serialize_row_cycles() const { return serialize_row_cycles_; }
  double serialize_agg_cycles() const { return serialize_agg_cycles_; }

 private:
  sim::NetworkParams params_;
  double serialize_row_cycles_;
  double serialize_agg_cycles_;
};

}  // namespace relfab::net

#endif  // RELFAB_NET_NETWORK_MODEL_H_
