#include "net/topology.h"

namespace relfab::net {

StatusOr<Topology> Topology::Make(const ClusterConfig& config) {
  if (config.nodes < 1) {
    return Status::InvalidArgument(
        "ClusterConfig.nodes must be >= 1, got " +
        std::to_string(config.nodes));
  }
  if (config.nodes > 1024) {
    return Status::InvalidArgument(
        "ClusterConfig.nodes must be <= 1024, got " +
        std::to_string(config.nodes));
  }
  if (!(config.network.bytes_per_cycle > 0)) {
    return Status::InvalidArgument(
        "ClusterConfig.network.bytes_per_cycle must be > 0");
  }
  if (config.network.link_latency_cycles < 0) {
    return Status::InvalidArgument(
        "ClusterConfig.network.link_latency_cycles must be >= 0");
  }
  if (config.network.mtu_bytes < 64) {
    return Status::InvalidArgument(
        "ClusterConfig.network.mtu_bytes must be >= 64, got " +
        std::to_string(config.network.mtu_bytes));
  }
  Topology t;
  t.nodes_ = config.nodes;
  t.network_ = config.network;
  return t;
}

std::string Topology::NodeName(uint32_t node) {
  return "node" + std::to_string(node);
}

uint32_t Topology::NodeFor(uint32_t shard, uint32_t replica,
                           uint32_t num_shards, Placement placement) const {
  // relfab-lint: allow(data-check) wiring-time invariant: callers route here only when a cluster is configured
  RELFAB_CHECK(nodes_ > 0) << "NodeFor on a disabled topology";
  switch (placement) {
    case Placement::kRoundRobin:
      return (shard + replica) % nodes_;
    case Placement::kBlock: {
      const uint64_t base =
          num_shards == 0
              ? 0
              : static_cast<uint64_t>(shard) * nodes_ / num_shards;
      return static_cast<uint32_t>((base + replica) % nodes_);
    }
  }
  return 0;
}

}  // namespace relfab::net
