#include "common/format.h"

#include <cstdio>

namespace relfab {

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int pos = static_cast<int>(digits.size());
  for (char c : digits) {
    out.push_back(c);
    --pos;
    if (pos > 0 && pos % 3 == 0) out.push_back(',');
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace relfab
