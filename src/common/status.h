#ifndef RELFAB_COMMON_STATUS_H_
#define RELFAB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace relfab {

/// Error category for a failed operation. Mirrors the common subset of
/// canonical database error codes; the library never throws exceptions,
/// every fallible public entry point returns Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kAborted,        // e.g. transaction conflict
  kResourceExhausted,
  kInternal,
  kCorruption,     // e.g. codec integrity failure
  kIoError,        // simulated-device I/O failure
  kUnavailable,    // component permanently dead (no live replica/path)
  kDeadlineExceeded,  // cycle-domain query deadline expired
};

/// Returns the canonical lower_snake name of a code ("invalid_argument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
/// Cheap to copy in the OK case (empty message).
///
/// [[nodiscard]]: silently dropping a Status hides failures, so the
/// build runs with -Werror=unused-result. Callers must propagate
/// (RELFAB_RETURN_IF_ERROR), handle, or explicitly discard with
/// RELFAB_IGNORE_STATUS(expr, "reason").
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace relfab

/// Propagates a non-OK Status from an expression to the caller.
#define RELFAB_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::relfab::Status _relfab_status = (expr);         \
    if (!_relfab_status.ok()) return _relfab_status;  \
  } while (0)

/// Explicitly discards a Status (or StatusOr) result. The mandatory
/// reason string documents why dropping the error is correct at this
/// call site; an empty reason fails to compile. This is the only
/// sanctioned way past -Werror=unused-result.
#define RELFAB_IGNORE_STATUS(expr, reason)                                \
  do {                                                                    \
    static_assert(sizeof(reason "") > 1,                                  \
                  "RELFAB_IGNORE_STATUS needs a non-empty reason");       \
    static_cast<void>(expr);                                              \
  } while (0)

#endif  // RELFAB_COMMON_STATUS_H_
