#ifndef RELFAB_COMMON_FORMAT_H_
#define RELFAB_COMMON_FORMAT_H_

#include <cstdint>
#include <string>

namespace relfab {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/// "512 B", "4.0 KiB", "2.5 MiB", "1.2 GiB".
std::string FormatBytes(uint64_t bytes);

/// Groups digits with commas: 1234567 -> "1,234,567".
std::string FormatCount(uint64_t n);

/// Fixed-precision double without locale surprises.
std::string FormatDouble(double v, int precision);

}  // namespace relfab

#endif  // RELFAB_COMMON_FORMAT_H_
