#ifndef RELFAB_COMMON_RANDOM_H_
#define RELFAB_COMMON_RANDOM_H_

#include <cstdint>

#include "common/logging.h"

namespace relfab {

/// Deterministic xorshift128+ PRNG. All data generation in the repo goes
/// through this so experiments are exactly reproducible across runs and
/// platforms (std::mt19937 distributions are not portable across stdlibs).
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 expansion of the seed into two non-zero state words.
    state0_ = SplitMix64(&seed);
    state1_ = SplitMix64(&seed);
    if (state0_ == 0 && state1_ == 0) state1_ = 0x9e3779b97f4a7c15ull;
  }

  /// Uniform over the full 64-bit range.
  uint64_t NextU64() {
    uint64_t s1 = state0_;
    const uint64_t s0 = state1_;
    state0_ = s0;
    s1 ^= s1 << 23;
    state1_ = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return state1_ + s0;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    RELFAB_DCHECK(bound > 0);
    // Multiply-shift reduction; bias is negligible for bound << 2^64.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextU64()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    RELFAB_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / (1ull << 53));
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace relfab

#endif  // RELFAB_COMMON_RANDOM_H_
