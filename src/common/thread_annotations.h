#ifndef RELFAB_COMMON_THREAD_ANNOTATIONS_H_
#define RELFAB_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

/// Clang thread-safety annotations (a thin RELFAB_-prefixed spelling of
/// the attributes behind -Wthread-safety), plus the annotated Mutex /
/// MutexLock pair the rest of the repo must use instead of naked
/// std::mutex / std::lock_guard (enforced by tools/relfab_lint.py).
///
/// Under clang the annotations turn lock discipline into compile errors:
/// every member declared RELFAB_GUARDED_BY(mu) may only be touched while
/// `mu` is held, and the CI static-analysis job builds with
/// -Wthread-safety -Werror. Under gcc (the local toolchain) they expand
/// to nothing and the classes degrade to zero-cost wrappers.

#if defined(__clang__) && defined(__has_attribute)
#define RELFAB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RELFAB_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a type as a lockable capability ("mutex").
#define RELFAB_CAPABILITY(x) RELFAB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define RELFAB_SCOPED_CAPABILITY RELFAB_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated member may only be read or written while `x` is held.
#define RELFAB_GUARDED_BY(x) RELFAB_THREAD_ANNOTATION_(guarded_by(x))

/// The annotated pointer's pointee is protected by `x` (the pointer
/// itself is not).
#define RELFAB_PT_GUARDED_BY(x) RELFAB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while the listed capabilities are
/// held (and does not acquire them itself).
#define RELFAB_REQUIRES(...) \
  RELFAB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function may only be called while the listed capabilities are
/// NOT held (it acquires them itself; prevents self-deadlock).
#define RELFAB_EXCLUDES(...) \
  RELFAB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on
/// return.
#define RELFAB_ACQUIRE(...) \
  RELFAB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define RELFAB_RELEASE(...) \
  RELFAB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define RELFAB_RETURN_CAPABILITY(x) \
  RELFAB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is not checked. Every use needs an
/// adjacent comment explaining why the analysis cannot see the
/// invariant (same policy as the lint allowlist).
#define RELFAB_NO_THREAD_SAFETY_ANALYSIS \
  RELFAB_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace relfab {

/// std::mutex wearing the capability attribute so clang can check lock
/// discipline. Same cost and semantics as std::mutex; the extra methods
/// exist only to carry annotations.
class RELFAB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RELFAB_ACQUIRE() { mu_.lock(); }
  void Unlock() RELFAB_RELEASE() { mu_.unlock(); }

  /// For the rare call site that must interoperate with std APIs
  /// (condition variables); using it bypasses the analysis.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, replacing std::lock_guard. Construction
/// acquires, destruction releases; clang tracks the held capability for
/// the scope.
class RELFAB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RELFAB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELFAB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace relfab

#endif  // RELFAB_COMMON_THREAD_ANNOTATIONS_H_
