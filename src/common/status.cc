#include "common/status.h"

namespace relfab {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace relfab
