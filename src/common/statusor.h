#ifndef RELFAB_COMMON_STATUSOR_H_
#define RELFAB_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace relfab {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a failed StatusOr aborts the
/// process (programming error), matching absl::StatusOr semantics.
/// [[nodiscard]] for the same reason as Status: an ignored StatusOr is
/// an ignored error (see -Werror=unused-result in CMakeLists.txt).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error (there would be no value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    RELFAB_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(T value)  // NOLINT
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RELFAB_CHECK(ok()) << "value() on failed StatusOr: "
                       << status_.ToString();
    return *value_;
  }
  T& value() & {
    RELFAB_CHECK(ok()) << "value() on failed StatusOr: "
                       << status_.ToString();
    return *value_;
  }
  T&& value() && {
    RELFAB_CHECK(ok()) << "value() on failed StatusOr: "
                       << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace relfab

/// Evaluates a StatusOr expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (a declaration or assignable).
#define RELFAB_ASSIGN_OR_RETURN(lhs, expr)              \
  RELFAB_ASSIGN_OR_RETURN_IMPL_(                        \
      RELFAB_STATUS_CONCAT_(_relfab_sor, __LINE__), lhs, expr)

#define RELFAB_STATUS_CONCAT_INNER_(a, b) a##b
#define RELFAB_STATUS_CONCAT_(a, b) RELFAB_STATUS_CONCAT_INNER_(a, b)

#define RELFAB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // RELFAB_COMMON_STATUSOR_H_
