#ifndef RELFAB_COMMON_LOGGING_H_
#define RELFAB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace relfab {
namespace internal_logging {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via RELFAB_CHECK; invariant violations are programming errors
/// and are not recoverable through Status.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed CheckFailStream expression to void so the ternary
/// in RELFAB_CHECK type-checks. operator& binds looser than operator<<.
struct Voidify {
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal_logging
}  // namespace relfab

/// Aborts with a message if `cond` is false; supports streaming extra
/// context: RELFAB_CHECK(n > 0) << "n=" << n. For internal invariants only;
/// user-facing validation must return Status instead.
#define RELFAB_CHECK(cond)                                      \
  (cond) ? (void)0                                              \
         : ::relfab::internal_logging::Voidify() &              \
               ::relfab::internal_logging::CheckFailStream(     \
                   __FILE__, __LINE__, #cond)

#define RELFAB_CHECK_EQ(a, b) RELFAB_CHECK((a) == (b))
#define RELFAB_CHECK_NE(a, b) RELFAB_CHECK((a) != (b))
#define RELFAB_CHECK_LT(a, b) RELFAB_CHECK((a) < (b))
#define RELFAB_CHECK_LE(a, b) RELFAB_CHECK((a) <= (b))
#define RELFAB_CHECK_GT(a, b) RELFAB_CHECK((a) > (b))
#define RELFAB_CHECK_GE(a, b) RELFAB_CHECK((a) >= (b))

#ifdef NDEBUG
#define RELFAB_DCHECK(cond) \
  while (false) RELFAB_CHECK(cond)
#else
#define RELFAB_DCHECK(cond) RELFAB_CHECK(cond)
#endif

#endif  // RELFAB_COMMON_LOGGING_H_
