#ifndef RELFAB_COMMON_LOGGING_H_
#define RELFAB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

namespace relfab {
namespace internal_logging {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via RELFAB_CHECK; invariant violations are programming errors
/// and are not recoverable through Status.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Converts a streamed expression to void so the ternaries in RELFAB_CHECK
/// and RELFAB_LOG type-check. operator& binds looser than operator<<.
struct Voidify {
  template <typename T>
  void operator&(const T&) {}
};

/// Streams `v` if the type supports operator<<, otherwise a placeholder
/// (e.g. scoped enums in CHECK_EQ operands).
template <typename T>
auto StreamValue(std::ostream& os, const T& v, int)
    -> decltype(os << v, void()) {
  os << v;
}
template <typename T>
void StreamValue(std::ostream& os, const T&, long) {  // NOLINT
  os << "<unprintable>";
}

/// Evaluates a binary CHECK: null on success; on failure a message with
/// the stringified expression *and both operand values*, e.g.
/// "rows == expected (7 vs. 9)". Operands are evaluated exactly once.
template <typename A, typename B, typename Cmp>
std::unique_ptr<std::string> CheckOpMessage(const A& a, const B& b, Cmp cmp,
                                            const char* exprtext) {
  if (cmp(a, b)) return nullptr;
  std::ostringstream os;
  os << exprtext << " (";
  StreamValue(os, a, 0);
  os << " vs. ";
  StreamValue(os, b, 0);
  os << ")";
  return std::make_unique<std::string>(os.str());
}

// Log severities usable as RELFAB_LOG(ERROR|WARN|INFO|DEBUG).
inline constexpr int kLogERROR = 0;
inline constexpr int kLogWARN = 1;
inline constexpr int kLogINFO = 2;
inline constexpr int kLogDEBUG = 3;

/// Active threshold, read once from RELFAB_LOG_LEVEL (a number 0-3 or a
/// name: error, warn, info, debug). Messages above it are discarded at
/// the call site. Default: WARN.
inline int LogThreshold() {
  static const int threshold = [] {
    const char* v = std::getenv("RELFAB_LOG_LEVEL");
    if (v == nullptr || v[0] == '\0') return kLogWARN;
    if (v[0] >= '0' && v[0] <= '9') {
      const int n = std::atoi(v);
      return n < kLogERROR ? kLogERROR : (n > kLogDEBUG ? kLogDEBUG : n);
    }
    switch (v[0]) {
      case 'e': case 'E': return kLogERROR;
      case 'w': case 'W': return kLogWARN;
      case 'i': case 'I': return kLogINFO;
      case 'd': case 'D': return kLogDEBUG;
      default: return kLogWARN;
    }
  }();
  return threshold;
}

/// One leveled log record; flushes to stderr on destruction. Kept simple
/// on purpose: the simulator is single-threaded per run.
class LogStream {
 public:
  LogStream(const char* file, int line, int level) {
    static constexpr char kTag[] = {'E', 'W', 'I', 'D'};
    // Basename keeps the prefix short without allocating.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << '[' << kTag[level] << " relfab " << base << ':' << line
            << "] ";
  }

  ~LogStream() { std::cerr << stream_.str() << '\n'; }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace relfab

/// Leveled logging: RELFAB_LOG(INFO) << "loaded " << n << " rows";
/// Severity is one of ERROR, WARN, INFO, DEBUG; records above the
/// RELFAB_LOG_LEVEL threshold (default WARN) cost one predictable branch
/// and stream nothing. Engines use this instead of raw std::cerr.
#define RELFAB_LOG(severity)                                          \
  (::relfab::internal_logging::kLog##severity >                       \
   ::relfab::internal_logging::LogThreshold())                        \
      ? (void)0                                                       \
      : ::relfab::internal_logging::Voidify() &                       \
            ::relfab::internal_logging::LogStream(                    \
                __FILE__, __LINE__,                                   \
                ::relfab::internal_logging::kLog##severity)

/// True when RELFAB_LOG(severity) would emit (for guarding expensive
/// message construction).
#define RELFAB_LOG_ENABLED(severity)            \
  (::relfab::internal_logging::kLog##severity <= \
   ::relfab::internal_logging::LogThreshold())

/// Aborts with a message if `cond` is false; supports streaming extra
/// context: RELFAB_CHECK(n > 0) << "n=" << n. For internal invariants only;
/// user-facing validation must return Status instead.
#define RELFAB_CHECK(cond)                                      \
  (cond) ? (void)0                                              \
         : ::relfab::internal_logging::Voidify() &              \
               ::relfab::internal_logging::CheckFailStream(     \
                   __FILE__, __LINE__, #cond)

/// Binary checks that print both operand values on failure:
/// "CHECK failed at f.cc:10: n == m (3 vs. 5)". The while-loop body runs
/// at most once — CheckFailStream's destructor aborts the process.
#define RELFAB_CHECK_OP_(op, a, b)                                        \
  while (::std::unique_ptr<::std::string> relfab_check_msg =              \
             ::relfab::internal_logging::CheckOpMessage(                  \
                 (a), (b),                                                \
                 [](const auto& x, const auto& y) { return x op y; },     \
                 #a " " #op " " #b))                                      \
  ::relfab::internal_logging::Voidify() &                                 \
      ::relfab::internal_logging::CheckFailStream(                        \
          __FILE__, __LINE__, relfab_check_msg->c_str())

#define RELFAB_CHECK_EQ(a, b) RELFAB_CHECK_OP_(==, a, b)
#define RELFAB_CHECK_NE(a, b) RELFAB_CHECK_OP_(!=, a, b)
#define RELFAB_CHECK_LT(a, b) RELFAB_CHECK_OP_(<, a, b)
#define RELFAB_CHECK_LE(a, b) RELFAB_CHECK_OP_(<=, a, b)
#define RELFAB_CHECK_GT(a, b) RELFAB_CHECK_OP_(>, a, b)
#define RELFAB_CHECK_GE(a, b) RELFAB_CHECK_OP_(>=, a, b)

#ifdef NDEBUG
// Compiled out: operands are never evaluated in release builds.
#define RELFAB_DCHECK(cond) \
  while (false) RELFAB_CHECK(cond)
#else
#define RELFAB_DCHECK(cond) RELFAB_CHECK(cond)
#endif

#endif  // RELFAB_COMMON_LOGGING_H_
