#include "shard/sharded_table.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace relfab::shard {

StatusOr<ShardedTable> ShardedTable::Create(layout::Schema schema,
                                            uint32_t key_column,
                                            sim::MemorySystem* memory,
                                            ShardedTableOptions options) {
  if (options.replicas < 1) {
    return Status::InvalidArgument(
        "ShardedTableOptions.replicas must be >= 1, got " +
        std::to_string(options.replicas));
  }
  if (key_column >= schema.num_columns()) {
    return Status::OutOfRange("shard key column out of range");
  }
  if (schema.type(key_column) != layout::ColumnType::kInt64) {
    return Status::InvalidArgument("shard key must be an int64 column");
  }
  for (size_t i = 1; i < options.splits.size(); ++i) {
    if (options.splits[i] <= options.splits[i - 1]) {
      return Status::InvalidArgument(
          "ShardedTableOptions.splits must be strictly increasing (splits[" +
          std::to_string(i) + "] = " + std::to_string(options.splits[i]) +
          " <= splits[" + std::to_string(i - 1) +
          "] = " + std::to_string(options.splits[i - 1]) + ")");
    }
  }
  if (memory == nullptr) {
    return Status::InvalidArgument("memory system is required");
  }
  return ShardedTable(std::move(schema), key_column, memory,
                      std::move(options));
}

ShardedTable::ShardedTable(layout::Schema schema, uint32_t key_column,
                           sim::MemorySystem* memory,
                           ShardedTableOptions options)
    : schema_(std::move(schema)),
      key_column_(key_column),
      replicas_(options.replicas),
      placement_(options.placement),
      split_points_(std::move(options.splits)) {
  shards_.reserve(split_points_.size() + 1);
  for (size_t i = 0; i <= split_points_.size(); ++i) {
    shards_.push_back(
        std::make_unique<layout::RowTable>(schema_, memory, 0));
  }
}

uint64_t ShardedTable::num_rows() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->num_rows();
  return total;
}

void ShardedTable::ShardBounds(uint32_t i, int64_t* lo, int64_t* hi) const {
  *lo = i == 0 ? std::numeric_limits<int64_t>::min() : split_points_[i - 1];
  *hi = i == split_points_.size() ? std::numeric_limits<int64_t>::max()
                                  : split_points_[i] - 1;
}

uint32_t ShardedTable::ShardFor(int64_t key) const {
  const auto it =
      std::upper_bound(split_points_.begin(), split_points_.end(), key);
  return static_cast<uint32_t>(it - split_points_.begin());
}

void ShardedTable::Append(const uint8_t* packed_row) {
  int64_t key;
  std::memcpy(&key, packed_row + schema_.offset(key_column_), 8);
  shards_[ShardFor(key)]->AppendRow(packed_row);
}

std::vector<uint32_t> ShardedTable::ShardsForRange(int64_t lo,
                                                   int64_t hi) const {
  std::vector<uint32_t> out;
  if (lo > hi) return out;
  for (uint32_t s = ShardFor(lo); s <= ShardFor(hi); ++s) {
    out.push_back(s);
  }
  return out;
}

StatusOr<std::vector<relmem::EphemeralView>> ShardedTable::ConfigureRange(
    relmem::RmEngine* rm, const relmem::Geometry& base_geometry, int64_t lo,
    int64_t hi) const {
  RELFAB_CHECK(rm != nullptr);
  std::vector<relmem::EphemeralView> views;
  for (uint32_t s : ShardsForRange(lo, hi)) {
    // Shard s covers [shard_lo, shard_hi] (inclusive bounds, open ends).
    int64_t shard_lo, shard_hi;
    ShardBounds(s, &shard_lo, &shard_hi);
    relmem::Geometry g = base_geometry;
    // Residual predicates only where the request range cuts the shard.
    if (lo > shard_lo) {
      g.predicates.push_back(
          relmem::HwPredicate::Int(key_column_, relmem::CompareOp::kGe, lo));
    }
    if (hi < shard_hi) {
      g.predicates.push_back(
          relmem::HwPredicate::Int(key_column_, relmem::CompareOp::kLe, hi));
    }
    RELFAB_ASSIGN_OR_RETURN(relmem::EphemeralView view,
                            rm->Configure(*shards_[s], std::move(g)));
    views.push_back(std::move(view));
  }
  return views;
}

}  // namespace relfab::shard
