#ifndef RELFAB_SHARD_SHARDED_TABLE_H_
#define RELFAB_SHARD_SHARDED_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/statusor.h"
#include "layout/row_table.h"
#include "layout/schema.h"
#include "net/topology.h"
#include "relmem/ephemeral.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::shard {

/// Construction options for a sharded table, designated-initializer
/// friendly so call sites read as configuration, not a positional tail:
///
///   fabric.CreateShardedTable("m", schema, "k",
///                             {.splits = {1000, 2000}, .replicas = 2});
///
/// Validation is structured: every violated constraint is a
/// kInvalidArgument naming the offending field.
struct ShardedTableOptions {
  /// Strictly increasing split points; n points create n+1 shards,
  /// shard i covering [splits[i-1], splits[i]) with open ends.
  std::vector<int64_t> splits;
  /// Replication factor per shard (>= 1): timing-alias replicas the
  /// failure-domain layer can kill and the scheduler fails over across.
  uint32_t replicas = 1;
  /// How shards/replicas map onto cluster nodes when a cluster is
  /// configured (Fabric::ConfigureCluster); ignored single-host.
  net::Placement placement = net::Placement::kRoundRobin;
};

/// Range-sharded relation (paper §III-A): horizontal partitioning is a
/// physical-design-time decision that Relational Fabric composes with —
/// "the data system can request the desired column group on a sharding
/// key range, and the Relational Fabric will directly return the
/// corresponding data". Each shard is an independent row-oriented base
/// table; vertical partitioning within a shard stays on-the-fly.
///
/// Shard i covers keys in [split[i-1], split[i]) with open ends at the
/// extremes; the shard key must be an int64 column.
class ShardedTable {
 public:
  /// Builds a sharded table from `options` (see ShardedTableOptions).
  /// Replicas are *timing aliases* of the shard's single RowTable — the
  /// simulator has one copy of the data, and replica j of shard i is the
  /// named serving endpoint "<table>.shard<i>.r<j>" the scheduler picks
  /// (and the failure-domain layer can kill) independently. Replicating
  /// data physically would only duplicate bit-identical scans; the
  /// availability semantics live entirely in replica selection.
  static StatusOr<ShardedTable> Create(layout::Schema schema,
                                       uint32_t key_column,
                                       sim::MemorySystem* memory,
                                       ShardedTableOptions options);

  ShardedTable(ShardedTable&&) = default;
  ShardedTable& operator=(ShardedTable&&) = default;

  const layout::Schema& schema() const { return schema_; }
  uint32_t key_column() const { return key_column_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// Replication factor (timing-alias replicas per shard, >= 1).
  uint32_t num_replicas() const { return replicas_; }
  /// Replica → node mapping policy (consulted by net::Topology::NodeFor
  /// when a cluster is configured).
  net::Placement placement() const { return placement_; }
  const layout::RowTable& shard(uint32_t i) const { return *shards_[i]; }
  uint64_t num_rows() const;

  /// Shard that owns `key`.
  uint32_t ShardFor(int64_t key) const;

  /// Inclusive key span [*lo, *hi] shard `i` covers (int64 extremes at
  /// the open ends). The planner's ship-mode estimates use this to turn
  /// a WHERE-clause key range into a per-shard selectivity fraction.
  void ShardBounds(uint32_t i, int64_t* lo, int64_t* hi) const;

  /// Routes a packed row to its shard by the embedded key.
  void Append(const uint8_t* packed_row);

  /// Shards intersecting the key range [lo, hi] (pruning).
  std::vector<uint32_t> ShardsForRange(int64_t lo, int64_t hi) const;

  /// One ephemeral view per shard intersecting [lo, hi]: inner shards
  /// are shipped whole; boundary shards get residual key predicates
  /// pushed into the fabric. Scanning the returned views in order yields
  /// exactly the rows with key in [lo, hi] (shard-major order).
  StatusOr<std::vector<relmem::EphemeralView>> ConfigureRange(
      relmem::RmEngine* rm, const relmem::Geometry& base_geometry,
      int64_t lo, int64_t hi) const;

 private:
  ShardedTable(layout::Schema schema, uint32_t key_column,
               sim::MemorySystem* memory, ShardedTableOptions options);

  layout::Schema schema_;
  uint32_t key_column_;
  uint32_t replicas_;
  net::Placement placement_;
  std::vector<int64_t> split_points_;
  std::vector<std::unique_ptr<layout::RowTable>> shards_;
};

}  // namespace relfab::shard

#endif  // RELFAB_SHARD_SHARDED_TABLE_H_
