#ifndef RELFAB_COMPRESS_DELTA_H_
#define RELFAB_COMPRESS_DELTA_H_

#include <vector>

#include "compress/bitpack.h"
#include "compress/codec.h"

namespace relfab::compress {

/// Delta / frame-of-reference encoding: values split into fixed blocks;
/// each block stores its minimum and bit-packed offsets from it.
/// Positional decode is O(1) (block header + offset extract), so the
/// encoding is scatter-accessible (paper §III-D).
class DeltaCodec : public ColumnCodec {
 public:
  static constexpr uint32_t kBlockValues = 128;

  CodecKind kind() const override { return CodecKind::kDelta; }
  bool scatter_accessible() const override { return true; }

  Status Encode(const std::vector<int64_t>& values) override;
  int64_t ValueAt(uint64_t pos) const override;
  uint64_t size() const override { return size_; }
  uint64_t encoded_bytes() const override;
  double decode_cost_per_value() const override { return 2.5; }

  uint64_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    int64_t frame = 0;  // block minimum
    BitPackedArray offsets;
  };

  uint64_t size_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace relfab::compress

#endif  // RELFAB_COMPRESS_DELTA_H_
