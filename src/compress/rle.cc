#include "compress/rle.h"

#include <algorithm>

namespace relfab::compress {

Status RleCodec::Encode(const std::vector<int64_t>& values) {
  size_ = values.size();
  runs_.clear();
  for (uint64_t i = 0; i < values.size(); ++i) {
    if (runs_.empty() || runs_.back().value != values[i]) {
      runs_.push_back({i, values[i]});
    }
  }
  return Status::Ok();
}

int64_t RleCodec::ValueAt(uint64_t pos) const {
  RELFAB_CHECK_LT(pos, size_);
  // Last run whose start <= pos.
  const auto it = std::upper_bound(
      runs_.begin(), runs_.end(), pos,
      [](uint64_t p, const Run& r) { return p < r.start; });
  return (it - 1)->value;
}

}  // namespace relfab::compress
