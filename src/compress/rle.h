#ifndef RELFAB_COMPRESS_RLE_H_
#define RELFAB_COMPRESS_RLE_H_

#include <cmath>
#include <vector>

#include "compress/codec.h"

namespace relfab::compress {

/// Run-length encoding: (start, value) runs. Positional decode requires
/// a binary search of the run directory — RLE is *not* scatter-
/// accessible, which is exactly why the paper (§III-D) says RLE "cannot
/// be used out of the box" with Relational Fabric: the fabric cannot
/// project the value at an arbitrary row without a data-dependent search.
class RleCodec : public ColumnCodec {
 public:
  CodecKind kind() const override { return CodecKind::kRle; }
  bool scatter_accessible() const override { return false; }

  Status Encode(const std::vector<int64_t>& values) override;
  int64_t ValueAt(uint64_t pos) const override;
  uint64_t size() const override { return size_; }
  uint64_t encoded_bytes() const override { return runs_.size() * 16; }

  /// Binary search over the run directory per positional access.
  double decode_cost_per_value() const override {
    return 4.0 + 2.0 * std::log2(static_cast<double>(runs_.size()) + 1.0);
  }

  uint64_t num_runs() const { return runs_.size(); }

 private:
  struct Run {
    uint64_t start;
    int64_t value;
  };

  uint64_t size_ = 0;
  std::vector<Run> runs_;
};

}  // namespace relfab::compress

#endif  // RELFAB_COMPRESS_RLE_H_
