#include "compress/dictionary.h"

#include <algorithm>

namespace relfab::compress {

Status DictionaryCodec::Encode(const std::vector<int64_t>& values) {
  dictionary_ = values;
  std::sort(dictionary_.begin(), dictionary_.end());
  dictionary_.erase(std::unique(dictionary_.begin(), dictionary_.end()),
                    dictionary_.end());
  const uint32_t bits =
      dictionary_.size() <= 1
          ? 0
          : BitPackedArray::BitsFor(dictionary_.size() - 1);
  std::vector<uint64_t> codes(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const auto it = std::lower_bound(dictionary_.begin(), dictionary_.end(),
                                     values[i]);
    codes[i] = static_cast<uint64_t>(it - dictionary_.begin());
  }
  codes_ = BitPackedArray(codes, bits);
  return Status::Ok();
}

int64_t DictionaryCodec::ValueAt(uint64_t pos) const {
  return dictionary_[codes_.Get(pos)];
}

uint64_t DictionaryCodec::LowerBoundCode(int64_t value) const {
  return static_cast<uint64_t>(
      std::lower_bound(dictionary_.begin(), dictionary_.end(), value) -
      dictionary_.begin());
}

uint64_t DictionaryCodec::UpperBoundCode(int64_t value) const {
  return static_cast<uint64_t>(
      std::upper_bound(dictionary_.begin(), dictionary_.end(), value) -
      dictionary_.begin());
}

}  // namespace relfab::compress
