#include "compress/huffman.h"

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.h"

namespace relfab::compress {

namespace {

/// Computes Huffman code lengths for the given frequencies (tree build
/// over a min-heap; ties broken deterministically by symbol order).
std::vector<uint32_t> CodeLengths(const std::vector<uint64_t>& freqs) {
  const size_t n = freqs.size();
  if (n == 1) return {1};
  struct Node {
    uint64_t freq;
    uint32_t order;  // deterministic tie-break
    int32_t left;
    int32_t right;
    int32_t symbol;  // -1 for internal
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  auto cmp = [&nodes](int32_t a, int32_t b) {
    if (nodes[a].freq != nodes[b].freq) return nodes[a].freq > nodes[b].freq;
    return nodes[a].order > nodes[b].order;
  };
  std::priority_queue<int32_t, std::vector<int32_t>, decltype(cmp)> heap(cmp);
  uint32_t order = 0;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back({freqs[i], order++, -1, -1, static_cast<int32_t>(i)});
    heap.push(static_cast<int32_t>(i));
  }
  while (heap.size() > 1) {
    const int32_t a = heap.top();
    heap.pop();
    const int32_t b = heap.top();
    heap.pop();
    nodes.push_back({nodes[a].freq + nodes[b].freq, order++, a, b, -1});
    heap.push(static_cast<int32_t>(nodes.size()) - 1);
  }
  std::vector<uint32_t> lengths(n, 0);
  // Iterative depth-first walk assigning depths.
  std::vector<std::pair<int32_t, uint32_t>> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[idx];
    if (node.symbol >= 0) {
      lengths[node.symbol] = std::max(1u, depth);
      continue;
    }
    stack.push_back({node.left, depth + 1});
    stack.push_back({node.right, depth + 1});
  }
  return lengths;
}

}  // namespace

Status HuffmanCodec::Encode(const std::vector<int64_t>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot Huffman-encode an empty column");
  }
  size_ = values.size();
  bitstream_.clear();
  block_offsets_.clear();
  encode_table_.clear();
  bits_used_ = 0;

  // Frequencies of distinct symbols (map keeps symbol order stable).
  std::map<int64_t, uint64_t> freq;
  for (int64_t v : values) ++freq[v];
  std::vector<int64_t> symbols;
  std::vector<uint64_t> counts;
  symbols.reserve(freq.size());
  for (const auto& [sym, f] : freq) {
    symbols.push_back(sym);
    counts.push_back(f);
  }
  const std::vector<uint32_t> lengths = CodeLengths(counts);
  max_len_ = *std::max_element(lengths.begin(), lengths.end());
  RELFAB_CHECK_LE(max_len_, 58u) << "Huffman code too long for this encoder";

  // Canonical ordering: by (length, symbol).
  std::vector<uint32_t> idx(symbols.size());
  for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return symbols[a] < symbols[b];
  });

  count_.assign(max_len_ + 1, 0);
  for (uint32_t l : lengths) ++count_[l];
  first_code_.assign(max_len_ + 1, 0);
  first_index_.assign(max_len_ + 1, 0);
  uint64_t code = 0;
  uint32_t index = 0;
  for (uint32_t len = 1; len <= max_len_; ++len) {
    code = (code + (len > 1 ? count_[len - 1] : 0)) << 1;
    if (len == 1) code = 0;
    first_code_[len] = code;
    first_index_[len] = index;
    index += count_[len];
  }
  // Recompute canonical codes per symbol in sorted order.
  sorted_symbols_.resize(symbols.size());
  {
    std::vector<uint64_t> next_code = first_code_;
    for (uint32_t i = 0; i < idx.size(); ++i) {
      const uint32_t s = idx[i];
      sorted_symbols_[i] = symbols[s];
      encode_table_[symbols[s]] = {next_code[lengths[s]]++, lengths[s]};
    }
  }

  // Encode the value stream with a block directory.
  for (uint64_t i = 0; i < values.size(); ++i) {
    if (i % kBlockValues == 0) block_offsets_.push_back(bits_used_);
    const auto [c, len] = encode_table_.at(values[i]);
    AppendBits(c, len);
  }
  return Status::Ok();
}

void HuffmanCodec::AppendBits(uint64_t code, uint32_t len) {
  // Codes append MSB-first so canonical decoding reads bits in order.
  for (uint32_t i = 0; i < len; ++i) {
    const uint64_t bit = (code >> (len - 1 - i)) & 1;
    const uint64_t pos = bits_used_++;
    if ((pos >> 6) >= bitstream_.size()) bitstream_.push_back(0);
    bitstream_[pos >> 6] |= bit << (pos & 63);
  }
}

int64_t HuffmanCodec::DecodeSymbol(uint64_t* bit_pos) const {
  uint64_t code = 0;
  for (uint32_t len = 1; len <= max_len_; ++len) {
    code = (code << 1) | ReadBit((*bit_pos)++);
    if (count_[len] != 0 && code >= first_code_[len] &&
        code < first_code_[len] + count_[len]) {
      return sorted_symbols_[first_index_[len] +
                             static_cast<uint32_t>(code - first_code_[len])];
    }
  }
  RELFAB_CHECK(false) << "corrupt Huffman stream";
  return 0;
}

int64_t HuffmanCodec::ValueAt(uint64_t pos) const {
  RELFAB_CHECK_LT(pos, size_);
  uint64_t bit = block_offsets_[pos / kBlockValues];
  int64_t value = 0;
  for (uint64_t i = 0; i <= pos % kBlockValues; ++i) {
    value = DecodeSymbol(&bit);
  }
  return value;
}

}  // namespace relfab::compress
