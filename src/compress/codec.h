#ifndef RELFAB_COMPRESS_CODEC_H_
#define RELFAB_COMPRESS_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace relfab::compress {

/// Compression families discussed by the paper (§III-D). Relational
/// Fabric requires *scatter-accessible* encodings: the fabric must be
/// able to decode the value at an arbitrary row position without
/// decompressing a prefix. Dictionary / delta (frame-of-reference) /
/// Huffman-coded fixed blocks qualify; RLE does not (positional decode
/// needs a scan of the run directory), and LZ-family codecs require full
/// decompression so they are out of scope entirely.
enum class CodecKind : uint8_t {
  kDictionary,
  kDelta,
  kHuffman,
  kRle,
};

std::string_view CodecKindToString(CodecKind kind);

/// A column codec over int64 values (fixed-width columns decode to
/// int64; char columns encode their packed key). Encodes a whole column,
/// then serves random-position reads.
class ColumnCodec {
 public:
  virtual ~ColumnCodec() = default;

  virtual CodecKind kind() const = 0;

  /// True if the codec can decode an arbitrary position in O(1)-ish work
  /// without touching unrelated values — the property Relational Fabric
  /// needs to project compressed columns on the fly.
  virtual bool scatter_accessible() const = 0;

  /// Compresses `values`; replaces any previous state.
  virtual Status Encode(const std::vector<int64_t>& values) = 0;

  /// Value at `pos`. For non-scatter-accessible codecs this still
  /// returns the right value but the cost model reflects the decode
  /// penalty (see decode_cost_per_value()).
  virtual int64_t ValueAt(uint64_t pos) const = 0;

  /// Number of encoded values.
  virtual uint64_t size() const = 0;

  /// Encoded payload size in bytes (for compression-ratio reporting).
  virtual uint64_t encoded_bytes() const = 0;

  /// Model: CPU cycles the fabric/CPU spends decoding one value at a
  /// random position (dictionary lookup, delta add, Huffman table walk,
  /// or RLE run search).
  virtual double decode_cost_per_value() const = 0;
};

}  // namespace relfab::compress

#endif  // RELFAB_COMPRESS_CODEC_H_
