#include "compress/codec.h"

namespace relfab::compress {

std::string_view CodecKindToString(CodecKind kind) {
  switch (kind) {
    case CodecKind::kDictionary:
      return "dictionary";
    case CodecKind::kDelta:
      return "delta";
    case CodecKind::kHuffman:
      return "huffman";
    case CodecKind::kRle:
      return "rle";
  }
  return "?";
}

}  // namespace relfab::compress
