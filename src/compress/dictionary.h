#ifndef RELFAB_COMPRESS_DICTIONARY_H_
#define RELFAB_COMPRESS_DICTIONARY_H_

#include <vector>

#include "compress/bitpack.h"
#include "compress/codec.h"

namespace relfab::compress {

/// Dictionary encoding: distinct values in a sorted dictionary, positions
/// as fixed-width bit-packed codes. O(1) positional decode (code extract
/// + dictionary load), so the fabric can project dictionary-compressed
/// columns out of row-oriented base data directly (paper §III-D).
class DictionaryCodec : public ColumnCodec {
 public:
  CodecKind kind() const override { return CodecKind::kDictionary; }
  bool scatter_accessible() const override { return true; }

  Status Encode(const std::vector<int64_t>& values) override;
  int64_t ValueAt(uint64_t pos) const override;
  uint64_t size() const override { return codes_.size(); }
  uint64_t encoded_bytes() const override {
    return codes_.bytes() + dictionary_.size() * 8;
  }
  double decode_cost_per_value() const override { return 2.0; }

  uint64_t dictionary_size() const { return dictionary_.size(); }
  /// The code assigned to the value at position `pos` (for tests and for
  /// operating directly on compressed data).
  uint64_t CodeAt(uint64_t pos) const { return codes_.Get(pos); }

  // --- operating directly on compressed data (paper §VII Q2) ---
  // The dictionary is sorted, so codes are order-preserving: any range
  // predicate on values maps to a range predicate on codes, evaluable
  // without decoding a single value.

  /// Smallest code whose value is >= `value` (== dictionary_size() when
  /// every value is smaller).
  uint64_t LowerBoundCode(int64_t value) const;
  /// Smallest code whose value is > `value`.
  uint64_t UpperBoundCode(int64_t value) const;
  /// True iff the value at `pos` satisfies `v < value`, decided in the
  /// code domain (one code extract + one integer compare).
  bool LessThanOnCodes(uint64_t pos, int64_t value) const {
    return codes_.Get(pos) < LowerBoundCode(value);
  }

 private:
  std::vector<int64_t> dictionary_;
  BitPackedArray codes_;
};

}  // namespace relfab::compress

#endif  // RELFAB_COMPRESS_DICTIONARY_H_
