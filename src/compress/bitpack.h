#ifndef RELFAB_COMPRESS_BITPACK_H_
#define RELFAB_COMPRESS_BITPACK_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace relfab::compress {

/// Fixed-width bit-packed array of unsigned values (width 0..64 bits).
/// Width-0 arrays store nothing and read back zero — the all-equal case.
class BitPackedArray {
 public:
  BitPackedArray() = default;

  /// Packs `values`; every value must fit in `bits` bits.
  BitPackedArray(const std::vector<uint64_t>& values, uint32_t bits)
      : bits_(bits), size_(values.size()) {
    RELFAB_CHECK_LE(bits, 64u);
    if (bits == 0) return;
    words_.assign((size_ * bits + 63) / 64, 0);
    for (uint64_t i = 0; i < size_; ++i) {
      const uint64_t v = values[i];
      RELFAB_DCHECK(bits == 64 || (v >> bits) == 0)
          << "value does not fit in " << bits << " bits";
      Set(i, v);
    }
  }

  uint64_t Get(uint64_t idx) const {
    RELFAB_DCHECK(idx < size_);
    if (bits_ == 0) return 0;
    const uint64_t bit = idx * bits_;
    const uint64_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    uint64_t v = words_[word] >> shift;
    if (shift + bits_ > 64) {
      v |= words_[word + 1] << (64 - shift);
    }
    return bits_ == 64 ? v : (v & ((1ull << bits_) - 1));
  }

  uint64_t size() const { return size_; }
  uint32_t bits() const { return bits_; }
  uint64_t bytes() const { return words_.size() * 8; }

  /// Smallest width that can hold `max_value`.
  static uint32_t BitsFor(uint64_t max_value) {
    uint32_t bits = 0;
    while (max_value != 0) {
      ++bits;
      max_value >>= 1;
    }
    return bits;
  }

 private:
  void Set(uint64_t idx, uint64_t v) {
    const uint64_t bit = idx * bits_;
    const uint64_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    words_[word] |= v << shift;
    if (shift + bits_ > 64) {
      words_[word + 1] |= v >> (64 - shift);
    }
  }

  uint32_t bits_ = 0;
  uint64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace relfab::compress

#endif  // RELFAB_COMPRESS_BITPACK_H_
