#include "compress/delta.h"

#include <algorithm>

namespace relfab::compress {

Status DeltaCodec::Encode(const std::vector<int64_t>& values) {
  size_ = values.size();
  blocks_.clear();
  for (uint64_t start = 0; start < values.size(); start += kBlockValues) {
    const uint64_t end =
        std::min<uint64_t>(values.size(), start + kBlockValues);
    int64_t lo = values[start];
    int64_t hi = values[start];
    for (uint64_t i = start; i < end; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    const uint64_t range = static_cast<uint64_t>(hi - lo);
    std::vector<uint64_t> offsets(end - start);
    for (uint64_t i = start; i < end; ++i) {
      offsets[i - start] = static_cast<uint64_t>(values[i] - lo);
    }
    Block block;
    block.frame = lo;
    block.offsets = BitPackedArray(offsets, BitPackedArray::BitsFor(range));
    blocks_.push_back(std::move(block));
  }
  return Status::Ok();
}

int64_t DeltaCodec::ValueAt(uint64_t pos) const {
  const Block& block = blocks_[pos / kBlockValues];
  return block.frame +
         static_cast<int64_t>(block.offsets.Get(pos % kBlockValues));
}

uint64_t DeltaCodec::encoded_bytes() const {
  uint64_t bytes = 0;
  for (const Block& b : blocks_) bytes += 8 + b.offsets.bytes();
  return bytes;
}

}  // namespace relfab::compress
