#ifndef RELFAB_COMPRESS_HUFFMAN_H_
#define RELFAB_COMPRESS_HUFFMAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compress/codec.h"

namespace relfab::compress {

/// Canonical Huffman coding with a block directory: symbols are the
/// column's distinct values; every kBlockValues-th value's bit offset is
/// recorded so the fabric can start decoding at any block boundary.
/// Positional access decodes at most one block prefix — "block-scatter-
/// accessible", which is how column stores make Huffman projectable
/// (paper §III-D groups it with dictionary/delta as fabric-compatible).
class HuffmanCodec : public ColumnCodec {
 public:
  static constexpr uint32_t kBlockValues = 128;

  CodecKind kind() const override { return CodecKind::kHuffman; }
  bool scatter_accessible() const override { return true; }

  Status Encode(const std::vector<int64_t>& values) override;
  int64_t ValueAt(uint64_t pos) const override;
  uint64_t size() const override { return size_; }
  uint64_t encoded_bytes() const override {
    return bits_used_ / 8 + block_offsets_.size() * 8 +
           sorted_symbols_.size() * 9;  // symbol table + lengths
  }
  /// Sequential (block-amortized) decode cost: one canonical table walk.
  double decode_cost_per_value() const override { return 4.0; }

  uint32_t max_code_length() const { return max_len_; }
  uint64_t num_symbols() const { return sorted_symbols_.size(); }

 private:
  void AppendBits(uint64_t code, uint32_t len);
  uint32_t ReadBit(uint64_t bit_pos) const {
    return static_cast<uint32_t>((bitstream_[bit_pos >> 6] >>
                                  (bit_pos & 63)) &
                                 1);
  }
  /// Decodes one symbol starting at *bit_pos (advances it).
  int64_t DecodeSymbol(uint64_t* bit_pos) const;

  uint64_t size_ = 0;
  uint64_t bits_used_ = 0;
  uint32_t max_len_ = 0;
  std::vector<uint64_t> bitstream_;
  std::vector<uint64_t> block_offsets_;  // bit offset of each block start
  // canonical tables, indexed by code length 1..max_len_
  std::vector<uint64_t> first_code_;    // first canonical code of length L
  std::vector<uint32_t> first_index_;   // index of that code's symbol
  std::vector<uint32_t> count_;         // #codes of length L
  std::vector<int64_t> sorted_symbols_; // symbols in canonical order
  std::unordered_map<int64_t, std::pair<uint64_t, uint32_t>> encode_table_;
};

}  // namespace relfab::compress

#endif  // RELFAB_COMPRESS_HUFFMAN_H_
