#include "engine/hybrid.h"

#include <algorithm>

#include "engine/rm_exec.h"
#include "engine/volcano.h"
#include "relmem/ephemeral.h"

namespace relfab::engine {

namespace {

bool Compare(double v, const Predicate& p) {
  switch (p.op) {
    case CompareOp::kLt:
      return v < p.double_operand;
    case CompareOp::kLe:
      return v <= p.double_operand;
    case CompareOp::kGt:
      return v > p.double_operand;
    case CompareOp::kGe:
      return v >= p.double_operand;
    case CompareOp::kEq:
      return v == p.double_operand;
    case CompareOp::kNe:
      return v != p.double_operand;
  }
  return false;
}

}  // namespace

void HybridEngine::RecordFallback(const Status& cause,
                                  const char* where) const {
  if (injector_ != nullptr) injector_->NoteFallback(where);
  if (prof_ != nullptr) {
    prof_->NoteFallback(cause.ToString() +
                        "; remaining work completed on host row path");
  }
}

void HybridEngine::HostSelectRemainder(
    const QuerySpec& query, uint64_t resume_row,
    std::vector<uint64_t>* qualifying) const {
  sim::MemorySystem* memory = table_->memory();
  const layout::Schema& schema = table_->schema();
  const uint64_t num_rows = table_->num_rows();
  const uint64_t row_bytes = table_->row_bytes();
  int op_host = -1;
  if (prof_ != nullptr) {
    op_host = prof_->AddOp("HostSelectResume");
    prof_->op(op_host).rows_in = num_rows - resume_row;
    prof_->Switch(op_host);
  }
  const size_t found_before = qualifying->size();
  for (uint64_t row = resume_row; row < num_rows; ++row) {
    memory->CpuWork(cost_.volcano_next_cycles);
    // Tuple-at-a-time: materialize the whole row (the data movement the
    // fabric would have avoided — degradation trades cycles, never the
    // answer), then read the predicate fields from the L1-resident
    // tuple.
    if (row_bytes > 0) memory->Read(table_->RowAddress(row), row_bytes);
    bool pass = true;
    for (const Predicate& p : query.predicates) {
      memory->ReadL1Resident(table_->FieldAddress(row, p.column),
                             schema.width(p.column));
      memory->CpuWork(cost_.volcano_field_cycles + cost_.compare_cycles);
      const double v = table_->GetDouble(row, p.column);
      pass = pass && Compare(v, p);
    }
    if (pass) {
      qualifying->push_back(row);
      memory->CpuWork(cost_.arith_cycles);  // row-id list append
    }
  }
  if (prof_ != nullptr) {
    prof_->op(op_host).rows_out = qualifying->size() - found_before;
  }
}

StatusOr<QueryResult> HybridEngine::Execute(const QuerySpec& query) {
  RELFAB_RETURN_IF_ERROR(query.Validate(table_->schema()));
  if (query.predicates.empty()) {
    RmExecEngine rm_engine(table_, rm_, cost_);
    rm_engine.set_profiler(prof_);
    StatusOr<QueryResult> result = rm_engine.Execute(query);
    if (result.ok() || !faults::IsFabricFault(result.status())) {
      return result;
    }
    // The delegated RM plan died on a fabric fault: rerun the whole
    // query on the host row engine (the RM attempt's cycles stay on the
    // clock — the time was really spent).
    RecordFallback(result.status(), "hybrid.rm");
    VolcanoEngine row_engine(table_, cost_);
    row_engine.set_profiler(prof_);
    return row_engine.Execute(query);
  }
  sim::MemorySystem* memory = table_->memory();
  const layout::Schema& schema = table_->schema();

  // --- phase 1: column-at-a-time selection over an ephemeral view of
  // the predicate columns only ---
  relmem::Geometry geometry;
  {
    std::vector<uint32_t> cols;
    for (const Predicate& p : query.predicates) cols.push_back(p.column);
    std::sort(cols.begin(), cols.end(), [&schema](uint32_t a, uint32_t b) {
      return schema.offset(a) < schema.offset(b);
    });
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    geometry.columns = std::move(cols);
  }
  std::vector<int32_t> field_of(schema.num_columns(), -1);
  for (size_t f = 0; f < geometry.columns.size(); ++f) {
    field_of[geometry.columns[f]] = static_cast<int32_t>(f);
  }
  // Phase 1 is one operator: configure + stream + predicate evaluation.
  int op_select = -1;
  if (prof_ != nullptr) {
    op_select = prof_->AddOp("FabricSelect");
    prof_->op(op_select).rows_in = table_->num_rows();
    prof_->Switch(op_select);
  }
  StatusOr<relmem::EphemeralView> view_or =
      rm_->Configure(*table_, std::move(geometry));
  std::vector<uint64_t> qualifying;
  if (!view_or.ok()) {
    if (!faults::IsFabricFault(view_or.status())) return view_or.status();
    // The fabric would not even accept the descriptor: run the whole
    // selection on the host.
    RecordFallback(view_or.status(), "hybrid.select");
    HostSelectRemainder(query, 0, &qualifying);
  } else {
    relmem::EphemeralView& view = *view_or;
    {
      relmem::EphemeralView::Cursor cur(&view);
      for (; cur.Valid(); cur.Advance()) {
        bool pass = true;
        for (const Predicate& p : query.predicates) {
          memory->CpuWork(cost_.rm_value_cycles + cost_.compare_cycles);
          const double v =
              cur.GetDouble(static_cast<uint32_t>(field_of[p.column]));
          pass = pass && Compare(v, p);
        }
        if (pass) {
          qualifying.push_back(cur.row_index());
          memory->CpuWork(cost_.arith_cycles);  // row-id list append
        }
      }
    }
    if (prof_ != nullptr) prof_->op(op_select).rows_out = qualifying.size();
    if (!view.status().ok()) {
      if (!faults::IsFabricFault(view.status())) return view.status();
      // Production died mid-stream after exhausting its retries; the
      // stream stopped exactly at input_row(), so the host picks up the
      // remaining source rows and the combined row-id list is identical
      // to a fault-free run.
      RecordFallback(view.status(), "hybrid.select");
      HostSelectRemainder(query, view.input_row(), &qualifying);
    }
  }

  // --- phase 2: row-at-a-time aggregation over the qualifying rows,
  // reading the output columns straight from the base rows ---
  if (prof_ != nullptr) {
    // Hand the meter over; phase 2's operators attribute themselves.
    prof_->Switch(-1);
  }
  QuerySpec payload;
  payload.exprs = query.exprs;
  payload.aggregates = query.aggregates;
  payload.group_by = query.group_by;
  payload.projection = query.projection;
  VolcanoEngine row_engine(table_, cost_);
  row_engine.set_profiler(prof_);
  RELFAB_ASSIGN_OR_RETURN(QueryResult result,
                          row_engine.ExecuteOnRowIds(payload, qualifying));
  // Report scan semantics of the whole query, not just phase 2.
  result.rows_scanned = table_->num_rows();
  result.rows_matched = qualifying.size();
  result.sim_cycles = memory->ElapsedCycles();
  return result;
}

}  // namespace relfab::engine
