#ifndef RELFAB_ENGINE_VOLCANO_H_
#define RELFAB_ENGINE_VOLCANO_H_

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "layout/row_table.h"
#include "obs/query_profile.h"

namespace relfab::engine {

/// The paper's ROW baseline: an in-memory row-store executing queries
/// volcano-style, tuple-at-a-time through a Scan -> Filter -> Aggregate/
/// Project operator chain. Every field access performs a demand read of
/// the base row data, so scanning narrow column subsets of wide rows
/// drags whole cache lines through the hierarchy — the cache pollution
/// Relational Fabric removes.
class VolcanoEngine {
 public:
  explicit VolcanoEngine(const layout::RowTable* table,
                         CostModel cost = CostModel::A53Defaults())
      : table_(table), cost_(cost) {
    RELFAB_CHECK(table != nullptr);
  }

  /// Executes `query` over the whole table, charging the simulator.
  /// result.sim_cycles is the memory system's elapsed cycles after the
  /// query (callers time one query per ResetTiming window).
  StatusOr<QueryResult> Execute(const QuerySpec& query);

  /// Executes `query` over the given candidate rows only (e.g. the
  /// result of an index lookup). Predicates are still evaluated — the
  /// candidates may be a superset of the qualifying rows.
  /// result.rows_scanned counts the candidates.
  StatusOr<QueryResult> ExecuteOnRowIds(const QuerySpec& query,
                                        const std::vector<uint64_t>& rows);

  const layout::RowTable& table() const { return *table_; }
  const CostModel& cost_model() const { return cost_; }

  /// Attaches a per-operator profiler (EXPLAIN ANALYZE). Null — the
  /// default — keeps every profiling call site a single pointer test.
  void set_profiler(obs::OpProfiler* profiler) { prof_ = profiler; }

 private:
  const layout::RowTable* table_;
  CostModel cost_;
  obs::OpProfiler* prof_ = nullptr;
};

/// Packs a char field (<= 8 bytes) into an int64 group-key component.
int64_t PackCharKey(std::string_view bytes);

}  // namespace relfab::engine

#endif  // RELFAB_ENGINE_VOLCANO_H_
