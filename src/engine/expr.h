#ifndef RELFAB_ENGINE_EXPR_H_
#define RELFAB_ENGINE_EXPR_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "relmem/geometry.h"

namespace relfab::engine {

/// Engines share the fabric's predicate representation: a conjunction of
/// `column <op> literal` terms. The same predicate list can be evaluated
/// in software (ROW/COL/RM engines) or pushed into the fabric (§IV-B).
using Predicate = relmem::HwPredicate;
using relmem::CompareOp;

/// Arena of small arithmetic expressions over columns and constants,
/// referenced by node index. Rich enough for the TPC-H evaluation
/// queries (e.g. Q1's `extendedprice * (1 - discount) * (1 + tax)`).
class ExprPool {
 public:
  enum class Kind : uint8_t { kColumn, kConst, kAdd, kSub, kMul };

  struct Node {
    Kind kind;
    uint32_t column = 0;  // kColumn
    double constant = 0;  // kConst
    int32_t lhs = -1;
    int32_t rhs = -1;
  };

  /// Node constructors; each returns the node's index.
  int32_t Column(uint32_t column) {
    nodes_.push_back({Kind::kColumn, column, 0, -1, -1});
    return Last();
  }
  int32_t Constant(double value) {
    nodes_.push_back({Kind::kConst, 0, value, -1, -1});
    return Last();
  }
  int32_t Add(int32_t lhs, int32_t rhs) { return Binary(Kind::kAdd, lhs, rhs); }
  int32_t Sub(int32_t lhs, int32_t rhs) { return Binary(Kind::kSub, lhs, rhs); }
  int32_t Mul(int32_t lhs, int32_t rhs) { return Binary(Kind::kMul, lhs, rhs); }

  const Node& node(int32_t idx) const { return nodes_[idx]; }
  size_t size() const { return nodes_.size(); }

  /// Evaluates node `idx`; `col_fn(column)` supplies column values of the
  /// current row as double.
  template <typename ColFn>
  double Eval(int32_t idx, ColFn&& col_fn) const {
    const Node& n = nodes_[idx];
    switch (n.kind) {
      case Kind::kColumn:
        return col_fn(n.column);
      case Kind::kConst:
        return n.constant;
      case Kind::kAdd:
        return Eval(n.lhs, col_fn) + Eval(n.rhs, col_fn);
      case Kind::kSub:
        return Eval(n.lhs, col_fn) - Eval(n.rhs, col_fn);
      case Kind::kMul:
        return Eval(n.lhs, col_fn) * Eval(n.rhs, col_fn);
    }
    return 0;
  }

  /// Number of arithmetic operations in the subtree at `idx` (for CPU
  /// cost accounting) — column/const leaves are free, operators cost one.
  uint32_t OpCount(int32_t idx) const {
    const Node& n = nodes_[idx];
    switch (n.kind) {
      case Kind::kColumn:
      case Kind::kConst:
        return 0;
      default:
        return 1 + OpCount(n.lhs) + OpCount(n.rhs);
    }
  }

  /// Appends the distinct columns referenced by the subtree to `out`.
  void CollectColumns(int32_t idx, std::vector<uint32_t>* out) const {
    const Node& n = nodes_[idx];
    switch (n.kind) {
      case Kind::kColumn:
        out->push_back(n.column);
        return;
      case Kind::kConst:
        return;
      default:
        CollectColumns(n.lhs, out);
        CollectColumns(n.rhs, out);
    }
  }

 private:
  int32_t Binary(Kind kind, int32_t lhs, int32_t rhs) {
    RELFAB_CHECK(lhs >= 0 && static_cast<size_t>(lhs) < nodes_.size());
    RELFAB_CHECK(rhs >= 0 && static_cast<size_t>(rhs) < nodes_.size());
    nodes_.push_back({kind, 0, 0, lhs, rhs});
    return Last();
  }
  int32_t Last() const { return static_cast<int32_t>(nodes_.size()) - 1; }

  std::vector<Node> nodes_;
};

}  // namespace relfab::engine

#endif  // RELFAB_ENGINE_EXPR_H_
