#ifndef RELFAB_ENGINE_HYBRID_H_
#define RELFAB_ENGINE_HYBRID_H_

#include <vector>

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "faults/injector.h"
#include "layout/row_table.h"
#include "obs/query_profile.h"
#include "relmem/rm_engine.h"

namespace relfab::engine {

/// The §III-B opportunity made concrete: "a novel full-fledged hybrid
/// query engine that can alternate between row-at-a-time and
/// column-at-a-time while working on the same base data".
///
/// Strategy (late materialization through the single base copy):
///   phase 1 — column-at-a-time: stream only the *predicate* columns
///   through an ephemeral view and collect qualifying row ids;
///   phase 2 — row-at-a-time: fetch the output columns of qualifying
///   rows directly from the row-oriented base data and aggregate.
///
/// Because both phases address the same single-copy base data, the
/// switch is free — no conversion, no second layout. The hybrid beats
/// the pure-RM plan when the predicate is selective and the output is
/// wide (phase 2 touches few rows), and converges to pure RM plus a
/// row-fetch penalty when everything qualifies.
class HybridEngine {
 public:
  HybridEngine(const layout::RowTable* table, relmem::RmEngine* rm,
               CostModel cost = CostModel::A53Defaults())
      : table_(table), rm_(rm), cost_(cost) {
    RELFAB_CHECK(table != nullptr && rm != nullptr);
  }

  /// Executes `query`; functionally identical to the other engines.
  /// Queries without predicates degenerate to the pure RM plan.
  StatusOr<QueryResult> Execute(const QuerySpec& query);

  /// Attaches a per-operator profiler (EXPLAIN ANALYZE). Null — the
  /// default — keeps every profiling call site a single pointer test.
  void set_profiler(obs::OpProfiler* profiler) { prof_ = profiler; }

  /// Used only to account degradations ("hybrid.*" fallback counters);
  /// the injection itself happens inside RmEngine / MemorySystem.
  void set_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
  }

 private:
  /// Graceful degradation of phase 1: evaluates the selection for source
  /// rows [resume_row, num_rows) on the host row path (volcano-style
  /// tuple materialization + predicate evaluation), appending qualifying
  /// row ids. Functionally identical to the fabric selection, so the
  /// query's answer is unchanged — only the cycles differ.
  void HostSelectRemainder(const QuerySpec& query, uint64_t resume_row,
                           std::vector<uint64_t>* qualifying) const;

  void RecordFallback(const Status& cause, const char* where) const;

  const layout::RowTable* table_;
  relmem::RmEngine* rm_;
  CostModel cost_;
  obs::OpProfiler* prof_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
};

}  // namespace relfab::engine

#endif  // RELFAB_ENGINE_HYBRID_H_
