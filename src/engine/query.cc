#include "engine/query.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace relfab::engine {

std::string_view AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

std::vector<uint32_t> QuerySpec::ReferencedColumns(
    const layout::Schema& schema) const {
  std::vector<uint32_t> cols;
  for (const Predicate& p : predicates) cols.push_back(p.column);
  for (const AggSpec& a : aggregates) {
    if (a.expr >= 0) exprs.CollectColumns(a.expr, &cols);
  }
  for (uint32_t c : group_by) cols.push_back(c);
  for (uint32_t c : projection) cols.push_back(c);
  std::sort(cols.begin(), cols.end(), [&schema](uint32_t a, uint32_t b) {
    return schema.offset(a) < schema.offset(b);
  });
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

Status QuerySpec::Validate(const layout::Schema& schema) const {
  if (aggregates.empty() && projection.empty()) {
    return Status::InvalidArgument(
        "query needs aggregates or a projection list");
  }
  if (!aggregates.empty() && !projection.empty()) {
    return Status::InvalidArgument(
        "query cannot mix aggregates with a raw projection list");
  }
  for (const Predicate& p : predicates) {
    if (p.column >= schema.num_columns()) {
      return Status::OutOfRange("predicate column out of range");
    }
    if (schema.type(p.column) == layout::ColumnType::kChar) {
      return Status::InvalidArgument("predicates require numeric columns");
    }
  }
  for (const AggSpec& a : aggregates) {
    if (a.func != AggFunc::kCount &&
        (a.expr < 0 || static_cast<size_t>(a.expr) >= exprs.size())) {
      return Status::InvalidArgument("aggregate references a bad expression");
    }
  }
  std::vector<uint32_t> check;
  for (const AggSpec& a : aggregates) {
    if (a.expr >= 0) exprs.CollectColumns(a.expr, &check);
  }
  for (uint32_t c : check) {
    if (c >= schema.num_columns()) {
      return Status::OutOfRange("aggregate column out of range");
    }
    if (schema.type(c) == layout::ColumnType::kChar) {
      return Status::InvalidArgument(
          "aggregate expressions require numeric columns");
    }
  }
  if (group_by.size() > 4) {
    return Status::InvalidArgument("at most 4 group-by columns supported");
  }
  for (uint32_t c : group_by) {
    if (c >= schema.num_columns()) {
      return Status::OutOfRange("group-by column out of range");
    }
    if (schema.type(c) == layout::ColumnType::kChar && schema.width(c) > 8) {
      return Status::InvalidArgument(
          "group-by char columns must be at most 8 bytes wide");
    }
    if (schema.type(c) == layout::ColumnType::kDouble) {
      return Status::InvalidArgument(
          "group-by on floating-point columns is not supported");
    }
  }
  for (uint32_t c : projection) {
    if (c >= schema.num_columns()) {
      return Status::OutOfRange("projected column out of range");
    }
  }
  if (group_by.size() > 0 && aggregates.empty()) {
    return Status::InvalidArgument("group-by requires aggregates");
  }
  return Status::Ok();
}

uint32_t QuerySpec::AggOpCount() const {
  uint32_t ops = 0;
  for (const AggSpec& a : aggregates) {
    if (a.expr >= 0) ops += exprs.OpCount(a.expr);
  }
  return ops;
}

namespace {

bool CloseEnough(double a, double b, double rel_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * std::max(scale, 1.0);
}

}  // namespace

bool QueryResult::SameAnswer(const QueryResult& other, double rel_tol) const {
  if (rows_scanned != other.rows_scanned ||
      rows_matched != other.rows_matched) {
    return false;
  }
  if (aggregates.size() != other.aggregates.size()) return false;
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (!CloseEnough(aggregates[i], other.aggregates[i], rel_tol)) {
      return false;
    }
  }
  if (groups.size() != other.groups.size()) return false;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!(groups[g].first == other.groups[g].first)) return false;
    if (groups[g].second.size() != other.groups[g].second.size()) return false;
    for (size_t i = 0; i < groups[g].second.size(); ++i) {
      if (!CloseEnough(groups[g].second[i], other.groups[g].second[i],
                       rel_tol)) {
        return false;
      }
    }
  }
  return CloseEnough(projection_checksum, other.projection_checksum, rel_tol);
}

void FinalizeAggregates(
    const QuerySpec& query, const std::vector<AggState>& flat,
    const std::map<GroupKey, std::vector<AggState>>& groups,
    QueryResult* result) {
  if (query.aggregates.empty()) return;
  if (!query.group_by.empty()) {
    for (const auto& [key, states] : groups) {
      std::vector<double> finals(states.size());
      for (size_t a = 0; a < states.size(); ++a) {
        finals[a] = states[a].Final(query.aggregates[a].func);
      }
      result->groups.emplace_back(key, std::move(finals));
    }
    return;
  }
  result->aggregates.resize(flat.size());
  for (size_t a = 0; a < flat.size(); ++a) {
    result->aggregates[a] = flat[a].Final(query.aggregates[a].func);
  }
}

std::string QueryResult::ToString() const {
  std::ostringstream os;
  os << "scanned=" << rows_scanned << " matched=" << rows_matched;
  if (!aggregates.empty()) {
    os << " aggs=[";
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (i > 0) os << ", ";
      os << aggregates[i];
    }
    os << "]";
  }
  if (!groups.empty()) os << " groups=" << groups.size();
  if (projection_checksum != 0) os << " checksum=" << projection_checksum;
  os << " cycles=" << sim_cycles;
  return os.str();
}

}  // namespace relfab::engine
