#include "engine/volcano.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "sim/memory_system.h"

namespace relfab::engine {

int64_t PackCharKey(std::string_view bytes) {
  RELFAB_CHECK_LE(bytes.size(), 8u);
  int64_t key = 0;
  std::memcpy(&key, bytes.data(), bytes.size());
  return key;
}

namespace {

/// Charged field accessor over row-major base data. Each access performs
/// a simulated demand read of the field's bytes (the cache model absorbs
/// repeated touches of the same line) plus the volcano field-extraction
/// CPU cost.
///
/// When `rows_materialized` is set the caller guarantees that every
/// field access targets a row whose cache lines were demand-read
/// immediately before (the scan operator materializes the whole tuple
/// and nothing else touches simulated memory until the row is
/// consumed), so the field's lines are L1-resident and MRU of their
/// sets — the precondition of MemorySystem::ReadL1Resident. The index
/// path (ExecuteOnRowIds) has no such materialization and keeps the
/// general Read.
class RowFieldReader {
 public:
  /// `batch_charges` additionally defers the (provable) L1-hit charges
  /// of materialized-row field reads into one bulk ChargeMruHits call:
  /// exact for cycles and stats (AddRepeated over any grouping replays
  /// the same scalar sum, hit counts are integers), but it shifts when
  /// the cycles land — so it is disabled under EXPLAIN ANALYZE, whose
  /// per-operator attribution samples the meters between operators.
  RowFieldReader(const layout::RowTable* table, const CostModel* cost,
                 bool rows_materialized, bool batch_charges)
      : table_(table),
        memory_(table->memory()),
        cost_(cost),
        rows_materialized_(rows_materialized),
        batch_charges_(batch_charges) {}

  double GetNumeric(uint64_t row, uint32_t col) {
    Charge(row, col);
    return table_->GetDouble(row, col);
  }

  int64_t GetKey(uint64_t row, uint32_t col) {
    Charge(row, col);
    if (table_->schema().type(col) == layout::ColumnType::kChar) {
      return PackCharKey(table_->GetChar(row, col));
    }
    return table_->GetInt(row, col);
  }

  /// Charges any deferred field touches; must run before the engine
  /// reads ElapsedCycles.
  void FlushCharges() {
    memory_->ChargeMruHits(pending_touches_);
    pending_touches_ = 0;
  }

 private:
  void Charge(uint64_t row, uint32_t col) {
    if (rows_materialized_) {
      const uint64_t addr = table_->FieldAddress(row, col);
      const uint32_t width = table_->schema().width(col);
      RELFAB_DCHECK(memory_->DebugCheckMruResident(addr, width))
          << "field read of row " << row << " col " << col
          << " is not L1-resident";
      if (batch_charges_) {
        pending_touches_ += ((addr + width - 1) >> 6) - (addr >> 6) + 1;
      } else {
        memory_->ReadL1Resident(addr, width);
      }
    } else {
      memory_->Read(table_->FieldAddress(row, col),
                    table_->schema().width(col));
    }
    memory_->CpuWork(cost_->volcano_field_cycles);
  }

  const layout::RowTable* table_;
  sim::MemorySystem* memory_;
  const CostModel* cost_;
  bool rows_materialized_;
  bool batch_charges_;
  uint64_t pending_touches_ = 0;
};

/// Volcano iterator interface: produces row ids one at a time.
class TupleSource {
 public:
  virtual ~TupleSource() = default;
  /// Advances to the next tuple; returns false at end of stream.
  virtual bool Next(uint64_t* row) = 0;
};

class ScanOperator : public TupleSource {
 public:
  ScanOperator(const layout::RowTable* table, sim::MemorySystem* memory,
               const CostModel* cost, obs::OpProfiler* prof, int op)
      : table_(table),
        num_rows_(table->num_rows()),
        memory_(memory),
        cost_(cost),
        prof_(prof),
        op_(op) {
    // Materialization is charged per *chunk* of rows instead of per row:
    // one maximal demand Read over the chunk's line span (which the fast
    // path collapses to a closed-form covered run) plus a counted charge
    // for the row-boundary lines the per-row replay would re-hit. The
    // chunk is capped at one L1 set's worth of lines so every chunk line
    // is still the MRU of its cache set when the consumer reads the
    // row's fields (the ReadL1Resident/ChargeMruHits precondition).
    const uint64_t row_bytes = table->row_bytes();
    const uint64_t span_lines = memory->params().l1_sets();
    chunk_rows_ = row_bytes == 0
                      ? 1
                      : (span_lines * memory->params().cache_line_bytes) /
                            row_bytes;
    if (chunk_rows_ == 0) chunk_rows_ = 1;
  }

  bool Next(uint64_t* row) override {
    if (prof_ != nullptr) prof_->Switch(op_);
    memory_->CpuWork(cost_->volcano_next_cycles);
    if (next_ == num_rows_) return false;
    *row = next_;
    // Tuple-at-a-time scan materializes the whole tuple: every cache
    // line of the row crosses the hierarchy whether or not the query
    // needs it — the data movement Relational Fabric removes (Fig. 1).
    if (next_ == chunk_end_) ChargeChunk();
    ++next_;
    if (prof_ != nullptr) ++prof_->op(op_).rows_out;
    return true;
  }

 private:
  /// Charges the materialization of rows [chunk_end_, chunk_end_ +
  /// chunk_rows_). Equivalence with the per-row replay: the per-row
  /// Reads visit the span's lines in increasing order, missing each
  /// distinct line exactly once and re-hitting a line only when a row
  /// starts mid-line (its first line was the previous row's last, and
  /// that line — the most recently inserted of its set — is hit with an
  /// LRU touch that is a no-op for an MRU line). One Read over the span
  /// reproduces the misses, state and counters; ChargeMruHits reproduces
  /// the re-hits. Only the order cpu_cycles accumulates in changes
  /// (ulp-level; see docs/performance.md).
  void ChargeChunk() {
    const uint64_t first_row = chunk_end_;
    const uint64_t end_row = std::min(num_rows_, first_row + chunk_rows_);
    chunk_end_ = end_row;
    const uint64_t row_bytes = table_->row_bytes();
    const uint64_t begin = table_->RowAddress(first_row);
    const uint64_t end = table_->RowAddress(end_row - 1) + row_bytes;
    uint64_t first_line = begin >> 6;
    const uint64_t last_line = (end - 1) >> 6;
    // The chunk's first line can be the tail of the previous chunk's
    // last row; the replay hits it before missing the rest.
    if (first_line == prev_last_line_) {
      RELFAB_DCHECK(memory_->DebugCheckMruResident(first_line << 6, 1));
      memory_->ChargeMruHits(1);
      ++first_line;
    }
    if (first_line <= last_line) {
      memory_->Read(first_line << 6, (last_line - first_line + 1) << 6);
    }
    // Interior rows starting mid-line re-hit their predecessor's last
    // line (addr % line != 0 <=> first line == previous row's last).
    uint64_t hits = 0;
    for (uint64_t r = first_row + 1; r < end_row; ++r) {
      if ((table_->RowAddress(r) & 63) != 0) {
        RELFAB_DCHECK(
            memory_->DebugCheckMruResident(table_->RowAddress(r), 1));
        ++hits;
      }
    }
    memory_->ChargeMruHits(hits);
    prev_last_line_ = last_line;
  }

  const layout::RowTable* table_;
  uint64_t num_rows_;
  uint64_t next_ = 0;
  uint64_t chunk_rows_ = 1;
  uint64_t chunk_end_ = 0;
  uint64_t prev_last_line_ = ~0ull;
  sim::MemorySystem* memory_;
  const CostModel* cost_;
  obs::OpProfiler* prof_;
  int op_;
};

class FilterOperator : public TupleSource {
 public:
  FilterOperator(TupleSource* child, const std::vector<Predicate>* predicates,
                 RowFieldReader* reader, sim::MemorySystem* memory,
                 const CostModel* cost, obs::OpProfiler* prof, int op)
      : child_(child),
        predicates_(predicates),
        reader_(reader),
        memory_(memory),
        cost_(cost),
        prof_(prof),
        op_(op) {}

  bool Next(uint64_t* row) override {
    while (child_->Next(row)) {
      if (prof_ != nullptr) {
        prof_->Switch(op_);
        ++prof_->op(op_).rows_in;
      }
      memory_->CpuWork(cost_->volcano_next_cycles);
      if (Qualifies(*row)) {
        if (prof_ != nullptr) ++prof_->op(op_).rows_out;
        return true;
      }
    }
    return false;
  }

 private:
  // Conjuncts short-circuit: a tuple-at-a-time interpreter stops at the
  // first failing term (unlike the vectorized engines, which evaluate
  // predicate columns in full).
  bool Qualifies(uint64_t row) {
    for (const Predicate& p : *predicates_) {
      const double v = reader_->GetNumeric(row, p.column);
      memory_->CpuWork(cost_->compare_cycles);
      bool pass = false;
      switch (p.op) {
        case CompareOp::kLt:
          pass = v < p.double_operand;
          break;
        case CompareOp::kLe:
          pass = v <= p.double_operand;
          break;
        case CompareOp::kGt:
          pass = v > p.double_operand;
          break;
        case CompareOp::kGe:
          pass = v >= p.double_operand;
          break;
        case CompareOp::kEq:
          pass = v == p.double_operand;
          break;
        case CompareOp::kNe:
          pass = v != p.double_operand;
          break;
      }
      if (!pass) return false;
    }
    return true;
  }

  TupleSource* child_;
  const std::vector<Predicate>* predicates_;
  RowFieldReader* reader_;
  sim::MemorySystem* memory_;
  const CostModel* cost_;
  obs::OpProfiler* prof_;
  int op_;
};

/// Sink rows_out: a projection emits every matched row; an ungrouped
/// aggregate emits one row; a grouped aggregate one row per group.
void OpStatsRowsOut(obs::OpProfiler* prof, int op, const QuerySpec& query,
                    uint64_t rows_matched, size_t num_groups) {
  uint64_t out = rows_matched;
  if (!query.aggregates.empty()) {
    out = query.group_by.empty() ? 1 : num_groups;
  }
  prof->op(op).rows_out = out;
}

}  // namespace

StatusOr<QueryResult> VolcanoEngine::Execute(const QuerySpec& query) {
  RELFAB_RETURN_IF_ERROR(query.Validate(table_->schema()));
  sim::MemorySystem* memory = table_->memory();
  RowFieldReader reader(table_, &cost_, /*rows_materialized=*/true,
                        /*batch_charges=*/prof_ == nullptr);

  int op_scan = -1, op_filter = -1, op_sink = -1;
  if (prof_ != nullptr) {
    op_scan = prof_->AddOp("Scan");
    prof_->op(op_scan).rows_in = table_->num_rows();
    if (!query.predicates.empty()) op_filter = prof_->AddOp("Filter");
    op_sink =
        prof_->AddOp(query.aggregates.empty() ? "Project" : "Aggregate");
  }

  ScanOperator scan(table_, memory, &cost_, prof_, op_scan);
  FilterOperator filter(&scan, &query.predicates, &reader, memory, &cost_,
                        prof_, op_filter);
  TupleSource* top = query.predicates.empty()
                         ? static_cast<TupleSource*>(&scan)
                         : static_cast<TupleSource*>(&filter);

  QueryResult result;
  result.rows_scanned = table_->num_rows();

  const bool grouped = !query.group_by.empty();
  std::vector<AggState> flat_aggs(query.aggregates.size());
  std::map<GroupKey, std::vector<AggState>> groups;
  uint64_t current_row = 0;
  const auto col_fn = [&](uint32_t col) {
    return reader.GetNumeric(current_row, col);
  };

  uint64_t row = 0;
  while (top->Next(&row)) {
    if (prof_ != nullptr) {
      prof_->Switch(op_sink);
      ++prof_->op(op_sink).rows_in;
    }
    ++result.rows_matched;
    current_row = row;
    if (query.aggregates.empty()) {
      // Pure projection: fold projected values into the checksum.
      for (uint32_t col : query.projection) {
        double v;
        if (table_->schema().type(col) == layout::ColumnType::kChar) {
          v = static_cast<double>(reader.GetKey(row, col) & 0xffff);
        } else {
          v = reader.GetNumeric(row, col);
        }
        result.projection_checksum += v;
        memory->CpuWork(cost_.arith_cycles);
      }
      continue;
    }
    std::vector<AggState>* states = &flat_aggs;
    if (grouped) {
      GroupKey key;
      key.size = static_cast<uint32_t>(query.group_by.size());
      for (uint32_t i = 0; i < key.size; ++i) {
        key.values[i] = reader.GetKey(row, query.group_by[i]);
      }
      memory->CpuWork(cost_.group_hash_cycles);
      auto it = groups
                    .try_emplace(key,
                                 std::vector<AggState>(query.aggregates.size()))
                    .first;
      states = &it->second;
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const AggSpec& spec = query.aggregates[a];
      double v = 0;
      if (spec.expr >= 0) {
        v = query.exprs.Eval(spec.expr, col_fn);
        memory->CpuWork(cost_.arith_cycles * query.exprs.OpCount(spec.expr));
      }
      (*states)[a].Update(v);
      memory->CpuWork(cost_.agg_update_cycles);
    }
  }

  if (prof_ != nullptr) {
    prof_->Finish();
    OpStatsRowsOut(prof_, op_sink, query, result.rows_matched,
                   grouped ? groups.size() : 0);
  }
  FinalizeAggregates(query, flat_aggs, groups, &result);
  reader.FlushCharges();
  result.sim_cycles = memory->ElapsedCycles();
  return result;
}

StatusOr<QueryResult> VolcanoEngine::ExecuteOnRowIds(
    const QuerySpec& query, const std::vector<uint64_t>& rows) {
  RELFAB_RETURN_IF_ERROR(query.Validate(table_->schema()));
  sim::MemorySystem* memory = table_->memory();
  RowFieldReader reader(table_, &cost_, /*rows_materialized=*/false,
                        /*batch_charges=*/false);

  int op_fetch = -1, op_sink = -1;
  if (prof_ != nullptr) {
    // The candidate loop fetches + filters in one pass; model it as one
    // "IndexFetch" operator feeding the aggregate/projection sink.
    op_fetch = prof_->AddOp("IndexFetch");
    prof_->op(op_fetch).rows_in = rows.size();
    op_sink =
        prof_->AddOp(query.aggregates.empty() ? "Project" : "Aggregate");
  }

  QueryResult result;
  result.rows_scanned = rows.size();

  const bool grouped = !query.group_by.empty();
  std::vector<AggState> flat_aggs(query.aggregates.size());
  std::map<GroupKey, std::vector<AggState>> groups;
  uint64_t current_row = 0;
  const auto col_fn = [&](uint32_t col) {
    return reader.GetNumeric(current_row, col);
  };

  for (uint64_t row : rows) {
    if (row >= table_->num_rows()) {
      return Status::OutOfRange("candidate row out of range");
    }
    if (prof_ != nullptr) prof_->Switch(op_fetch);
    memory->CpuWork(cost_.volcano_next_cycles);
    bool pass = true;
    for (const Predicate& p : query.predicates) {
      const double v = reader.GetNumeric(row, p.column);
      memory->CpuWork(cost_.compare_cycles);
      bool term = false;
      switch (p.op) {
        case CompareOp::kLt:
          term = v < p.double_operand;
          break;
        case CompareOp::kLe:
          term = v <= p.double_operand;
          break;
        case CompareOp::kGt:
          term = v > p.double_operand;
          break;
        case CompareOp::kGe:
          term = v >= p.double_operand;
          break;
        case CompareOp::kEq:
          term = v == p.double_operand;
          break;
        case CompareOp::kNe:
          term = v != p.double_operand;
          break;
      }
      if (!term) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    if (prof_ != nullptr) {
      ++prof_->op(op_fetch).rows_out;
      prof_->Switch(op_sink);
      ++prof_->op(op_sink).rows_in;
    }
    ++result.rows_matched;
    current_row = row;
    if (query.aggregates.empty()) {
      for (uint32_t col : query.projection) {
        double v;
        if (table_->schema().type(col) == layout::ColumnType::kChar) {
          v = static_cast<double>(reader.GetKey(row, col) & 0xffff);
        } else {
          v = reader.GetNumeric(row, col);
        }
        result.projection_checksum += v;
        memory->CpuWork(cost_.arith_cycles);
      }
      continue;
    }
    std::vector<AggState>* states = &flat_aggs;
    if (grouped) {
      GroupKey key;
      key.size = static_cast<uint32_t>(query.group_by.size());
      for (uint32_t i = 0; i < key.size; ++i) {
        key.values[i] = reader.GetKey(row, query.group_by[i]);
      }
      memory->CpuWork(cost_.group_hash_cycles);
      states = &groups
                    .try_emplace(key, std::vector<AggState>(
                                          query.aggregates.size()))
                    .first->second;
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const AggSpec& spec = query.aggregates[a];
      double v = 0;
      if (spec.expr >= 0) {
        v = query.exprs.Eval(spec.expr, col_fn);
        memory->CpuWork(cost_.arith_cycles * query.exprs.OpCount(spec.expr));
      }
      (*states)[a].Update(v);
      memory->CpuWork(cost_.agg_update_cycles);
    }
  }

  if (prof_ != nullptr) {
    prof_->Finish();
    OpStatsRowsOut(prof_, op_sink, query, result.rows_matched,
                   grouped ? groups.size() : 0);
  }
  FinalizeAggregates(query, flat_aggs, groups, &result);
  result.sim_cycles = memory->ElapsedCycles();
  return result;
}

}  // namespace relfab::engine
