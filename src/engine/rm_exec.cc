#include "engine/rm_exec.h"

#include <algorithm>
#include <map>

#include "engine/volcano.h"  // PackCharKey
#include "relmem/ephemeral.h"

namespace relfab::engine {

namespace {

bool Compare(double v, const Predicate& p) {
  switch (p.op) {
    case CompareOp::kLt:
      return v < p.double_operand;
    case CompareOp::kLe:
      return v <= p.double_operand;
    case CompareOp::kGt:
      return v > p.double_operand;
    case CompareOp::kGe:
      return v >= p.double_operand;
    case CompareOp::kEq:
      return v == p.double_operand;
    case CompareOp::kNe:
      return v != p.double_operand;
  }
  return false;
}

}  // namespace

StatusOr<QueryResult> RmExecEngine::Execute(const QuerySpec& query) {
  RELFAB_RETURN_IF_ERROR(query.Validate(table_->schema()));
  sim::MemorySystem* memory = table_->memory();
  const layout::Schema& schema = table_->schema();

  // Columns the CPU must see: with pushdown the predicate columns stay in
  // the fabric; without it they ride along in the ephemeral group.
  relmem::Geometry geometry;
  if (pushdown_) {
    std::vector<uint32_t> cpu_cols;
    for (const AggSpec& a : query.aggregates) {
      if (a.expr >= 0) query.exprs.CollectColumns(a.expr, &cpu_cols);
    }
    for (uint32_t c : query.group_by) cpu_cols.push_back(c);
    for (uint32_t c : query.projection) cpu_cols.push_back(c);
    std::sort(cpu_cols.begin(), cpu_cols.end(),
              [&schema](uint32_t a, uint32_t b) {
                return schema.offset(a) < schema.offset(b);
              });
    cpu_cols.erase(std::unique(cpu_cols.begin(), cpu_cols.end()),
                   cpu_cols.end());
    if (cpu_cols.empty()) {
      // Degenerate count-only query: ship the narrowest column (prefer a
      // predicate column, which the fabric reads anyway).
      uint32_t narrowest = 0;
      if (!query.predicates.empty()) {
        narrowest = query.predicates[0].column;
        for (const Predicate& p : query.predicates) {
          if (schema.width(p.column) < schema.width(narrowest)) {
            narrowest = p.column;
          }
        }
      } else {
        for (uint32_t c = 1; c < schema.num_columns(); ++c) {
          if (schema.width(c) < schema.width(narrowest)) narrowest = c;
        }
      }
      cpu_cols.push_back(narrowest);
    }
    geometry.columns = std::move(cpu_cols);
    geometry.predicates = query.predicates;
  } else {
    geometry.columns = query.ReferencedColumns(schema);
    if (geometry.columns.empty()) {
      // Pure COUNT(*): the fabric still needs a stream to count rows;
      // ship the narrowest column.
      uint32_t narrowest = 0;
      for (uint32_t c = 1; c < schema.num_columns(); ++c) {
        if (schema.width(c) < schema.width(narrowest)) narrowest = c;
      }
      geometry.columns.push_back(narrowest);
    }
  }

  // Field index of each source column inside the packed output row.
  std::vector<int32_t> field_of(schema.num_columns(), -1);
  for (size_t f = 0; f < geometry.columns.size(); ++f) {
    field_of[geometry.columns[f]] = static_cast<int32_t>(f);
  }

  // FabricScan covers configuration, chunk production and buffer refills;
  // with pushdown the fabric also filters, so no Filter operator appears
  // and the scan's rows_out drop below its rows_in.
  int op_scan = -1, op_filter = -1, op_sink = -1;
  const bool cpu_filter = !pushdown_ && !query.predicates.empty();
  if (prof_ != nullptr) {
    op_scan =
        prof_->AddOp(pushdown_ ? "FabricScanFilter" : "FabricScan");
    prof_->op(op_scan).rows_in = table_->num_rows();
    if (cpu_filter) op_filter = prof_->AddOp("Filter");
    op_sink =
        prof_->AddOp(query.aggregates.empty() ? "Project" : "Aggregate");
    prof_->Switch(op_scan);
  }

  RELFAB_ASSIGN_OR_RETURN(relmem::EphemeralView view,
                          rm_->Configure(*table_, std::move(geometry)));

  QueryResult result;
  result.rows_scanned = table_->num_rows();

  const bool grouped = !query.group_by.empty();
  std::vector<AggState> flat_aggs(query.aggregates.size());
  std::map<GroupKey, std::vector<AggState>> groups;

  relmem::EphemeralView::Cursor cur(&view);
  const auto numeric = [&](uint32_t col) {
    memory->CpuWork(cost_.rm_value_cycles);
    RELFAB_DCHECK(field_of[col] >= 0);
    return cur.GetDouble(static_cast<uint32_t>(field_of[col]));
  };
  const auto key_of = [&](uint32_t col) {
    memory->CpuWork(cost_.rm_value_cycles);
    RELFAB_DCHECK(field_of[col] >= 0);
    const uint32_t f = static_cast<uint32_t>(field_of[col]);
    if (schema.type(col) == layout::ColumnType::kChar) {
      return PackCharKey(cur.GetChar(f));
    }
    return cur.GetInt(f);
  };

  // Cursor advancement (chunk production, refills) belongs to the scan
  // operator; the body's buffer reads belong to whichever operator
  // consumes them.
  const auto advance = [&] {
    if (prof_ != nullptr) prof_->Switch(op_scan);
    cur.Advance();
  };
  for (; cur.Valid(); advance()) {
    if (prof_ != nullptr) ++prof_->op(op_scan).rows_out;
    if (!pushdown_) {
      if (prof_ != nullptr && cpu_filter) {
        prof_->Switch(op_filter);
        ++prof_->op(op_filter).rows_in;
      }
      bool pass = true;
      for (const Predicate& p : query.predicates) {
        const double v = numeric(p.column);
        memory->CpuWork(cost_.compare_cycles);
        pass = pass && Compare(v, p);
      }
      if (!pass) continue;
      if (prof_ != nullptr && cpu_filter) ++prof_->op(op_filter).rows_out;
    }
    if (prof_ != nullptr) {
      prof_->Switch(op_sink);
      ++prof_->op(op_sink).rows_in;
    }
    ++result.rows_matched;
    if (query.aggregates.empty()) {
      for (uint32_t col : query.projection) {
        double v;
        if (schema.type(col) == layout::ColumnType::kChar) {
          v = static_cast<double>(key_of(col) & 0xffff);
        } else {
          v = numeric(col);
        }
        result.projection_checksum += v;
        memory->CpuWork(cost_.arith_cycles);
      }
      continue;
    }
    std::vector<AggState>* states = &flat_aggs;
    if (grouped) {
      GroupKey key;
      key.size = static_cast<uint32_t>(query.group_by.size());
      for (uint32_t i = 0; i < key.size; ++i) {
        key.values[i] = key_of(query.group_by[i]);
      }
      memory->CpuWork(cost_.group_hash_cycles);
      states = &groups
                    .try_emplace(key, std::vector<AggState>(
                                          query.aggregates.size()))
                    .first->second;
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const AggSpec& spec = query.aggregates[a];
      double v = 0;
      if (spec.expr >= 0) {
        v = query.exprs.Eval(spec.expr, numeric);
        memory->CpuWork(cost_.arith_cycles * query.exprs.OpCount(spec.expr));
      }
      (*states)[a].Update(v);
      memory->CpuWork(cost_.agg_update_cycles);
    }
  }

  if (!view.status().ok()) {
    // The stream died on an injected fabric fault after exhausting its
    // retries. This engine is the pure-RM path: it has no host fallback
    // of its own, so the error propagates (HybridEngine / the executor
    // degrade to the row scan).
    if (prof_ != nullptr) prof_->Finish();
    return view.status();
  }
  if (prof_ != nullptr) {
    prof_->Finish();
    uint64_t out = result.rows_matched;
    if (!query.aggregates.empty()) out = grouped ? groups.size() : 1;
    prof_->op(op_sink).rows_out = out;
  }
  FinalizeAggregates(query, flat_aggs, groups, &result);
  result.sim_cycles = memory->ElapsedCycles();
  return result;
}

}  // namespace relfab::engine
