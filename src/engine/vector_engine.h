#ifndef RELFAB_ENGINE_VECTOR_ENGINE_H_
#define RELFAB_ENGINE_VECTOR_ENGINE_H_

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "layout/column_table.h"
#include "obs/query_profile.h"

namespace relfab::engine {

/// How the columnar engine walks multiple columns.
enum class VectorMode : uint8_t {
  /// One fused pass; all referenced columns advance in lockstep per row.
  /// This matches the paper's COL baseline: with more than four live
  /// column cursors the hardware prefetcher's stream table thrashes and
  /// performance degrades — the source of the crossover in Figs. 5/6.
  kFusedLockstep,
  /// Selection runs column-at-a-time per predicate (one sequential stream
  /// at a time, refining a selection vector); only the aggregation pass
  /// walks the output columns in lockstep. Ablation mode.
  kColumnAtATime,
};

/// The paper's COL baseline: an in-memory column-store with vectorized
/// (batch-at-a-time) execution over a materialized column-major copy of
/// the data. Narrow queries touch only the needed columns (minimal data
/// movement); wide queries pay tuple-reconstruction cost and prefetcher
/// stream pressure.
class VectorEngine {
 public:
  explicit VectorEngine(const layout::ColumnTable* table,
                        CostModel cost = CostModel::A53Defaults(),
                        VectorMode mode = VectorMode::kFusedLockstep)
      : table_(table), cost_(cost), mode_(mode) {
    RELFAB_CHECK(table != nullptr);
  }

  /// Executes `query`, charging the simulator; one query per
  /// ResetTiming window for meaningful sim_cycles.
  StatusOr<QueryResult> Execute(const QuerySpec& query);

  const layout::ColumnTable& table() const { return *table_; }
  VectorMode mode() const { return mode_; }

  /// Attaches a per-operator profiler (EXPLAIN ANALYZE). Null — the
  /// default — keeps every profiling call site a single pointer test.
  void set_profiler(obs::OpProfiler* profiler) { prof_ = profiler; }

 private:
  StatusOr<QueryResult> ExecuteFused(const QuerySpec& query);
  StatusOr<QueryResult> ExecuteColumnAtATime(const QuerySpec& query);

  const layout::ColumnTable* table_;
  CostModel cost_;
  VectorMode mode_;
  obs::OpProfiler* prof_ = nullptr;
};

}  // namespace relfab::engine

#endif  // RELFAB_ENGINE_VECTOR_ENGINE_H_
