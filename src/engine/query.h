#ifndef RELFAB_ENGINE_QUERY_H_
#define RELFAB_ENGINE_QUERY_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/expr.h"
#include "layout/schema.h"

namespace relfab::engine {

enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

std::string_view AggFuncToString(AggFunc func);

/// One output aggregate: func applied to an ExprPool node (ignored for
/// kCount).
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  int32_t expr = -1;
};

/// A (restricted) analytical query: conjunctive predicates, then either
/// aggregation (optionally grouped) or pure projection. This is the query
/// family of the paper's evaluation: projectivity/selectivity sweeps and
/// TPC-H Q1/Q6.
struct QuerySpec {
  ExprPool exprs;
  std::vector<Predicate> predicates;
  std::vector<AggSpec> aggregates;
  /// Group-key columns (integer, date or char<=8 columns).
  std::vector<uint32_t> group_by;
  /// For aggregate-free queries: columns to project; the engines fold the
  /// projected values into a checksum so results stay comparable without
  /// materializing output.
  std::vector<uint32_t> projection;

  /// All distinct columns the query touches, in schema-offset order.
  std::vector<uint32_t> ReferencedColumns(const layout::Schema& schema) const;

  /// Sanity-checks column indices and group-key types.
  Status Validate(const layout::Schema& schema) const;

  /// Total arithmetic ops across aggregate expressions (cost accounting).
  uint32_t AggOpCount() const;
};

/// Group key: up to 4 packed int64 values (char keys <= 8 bytes pack into
/// one value).
struct GroupKey {
  std::array<int64_t, 4> values{};
  uint32_t size = 0;

  friend bool operator==(const GroupKey& a, const GroupKey& b) {
    if (a.size != b.size) return false;
    for (uint32_t i = 0; i < a.size; ++i) {
      if (a.values[i] != b.values[i]) return false;
    }
    return true;
  }
  friend bool operator<(const GroupKey& a, const GroupKey& b) {
    if (a.size != b.size) return a.size < b.size;
    for (uint32_t i = 0; i < a.size; ++i) {
      if (a.values[i] != b.values[i]) return a.values[i] < b.values[i];
    }
    return false;
  }
};

/// Result of executing a QuerySpec. All three engines produce identical
/// functional results for the same query; only the simulated cycles
/// differ.
struct QueryResult {
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  /// Ungrouped aggregate values, one per AggSpec (kAvg already divided).
  std::vector<double> aggregates;
  /// Grouped results, sorted by key.
  std::vector<std::pair<GroupKey, std::vector<double>>> groups;
  /// Order-independent checksum for pure-projection queries.
  double projection_checksum = 0;
  /// Simulated elapsed cycles for the execution (filled by the engine).
  uint64_t sim_cycles = 0;
  /// True when shards with no live replica were skipped under
  /// QueryOptions::allow_partial — the answer covers only the surviving
  /// shards. Never set on the default (fail-with-kUnavailable) path.
  bool partial = false;

  /// Functional equality (ignores sim_cycles); doubles compared with a
  /// relative tolerance to absorb summation-order differences.
  bool SameAnswer(const QueryResult& other, double rel_tol = 1e-9) const;

  std::string ToString() const;
};

/// Running state for one aggregate.
struct AggState {
  double sum = 0;
  double min = 0;
  double max = 0;
  uint64_t count = 0;

  void Update(double v) {
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    sum += v;
    ++count;
  }

  double Final(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return static_cast<double>(count);
      case AggFunc::kSum:
        return sum;
      case AggFunc::kMin:
        return count == 0 ? 0 : min;
      case AggFunc::kMax:
        return count == 0 ? 0 : max;
      case AggFunc::kAvg:
        return count == 0 ? 0 : sum / static_cast<double>(count);
    }
    return 0;
  }
};

/// Converts accumulated aggregate states into the result's final values
/// (shared by all three engines so they finalize identically).
void FinalizeAggregates(const QuerySpec& query,
                        const std::vector<AggState>& flat,
                        const std::map<GroupKey, std::vector<AggState>>& groups,
                        QueryResult* result);

}  // namespace relfab::engine

#endif  // RELFAB_ENGINE_QUERY_H_
