#include "engine/vector_engine.h"

#include <algorithm>
#include <map>
#include <memory>

#include "engine/volcano.h"  // PackCharKey
#include "sim/memory_system.h"

namespace relfab::engine {

namespace {

/// Charged sequential cursor over one column array. Per value it charges
/// the vectorized load/op CPU cost; memory traffic is charged once per
/// cache-line transition of the column's stream.
class ColumnReader {
 public:
  ColumnReader(const layout::ColumnTable* table, uint32_t col,
               sim::MemorySystem* memory, const CostModel* cost)
      : table_(table),
        col_(col),
        width_(table->schema().width(col)),
        is_char_(table->schema().type(col) == layout::ColumnType::kChar),
        reader_(memory),
        memory_(memory),
        cost_(cost) {}

  double GetNumeric(uint64_t row) {
    Charge(row);
    return table_->GetDouble(col_, row);
  }

  int64_t GetKey(uint64_t row) {
    Charge(row);
    if (is_char_) return PackCharKey(table_->GetChar(col_, row));
    return table_->GetInt(col_, row);
  }

  /// Bulk-charges the dense [0, n) extent of the column as one demand
  /// read and marks the sequential stream consumed through it, so the
  /// per-value Charge calls of a full-column pass skip the simulator
  /// entirely. The dense pass touches exactly the same cache lines in
  /// the same order either way, and the per-value CPU constants still
  /// accrue inside the loop — only the interleaving of commuting
  /// charges changes, which no cache/prefetcher/DRAM decision observes.
  void ChargeDenseExtent(uint64_t n) {
    if (n == 0) return;
    const uint64_t base = table_->ValueAddress(col_, 0);
    const uint64_t end = table_->ValueAddress(col_, n - 1) + width_;
    memory_->Read(base, end - base);
    reader_.NoteConsumedThrough(end - 1);
  }

 private:
  void Charge(uint64_t row) {
    reader_.Read(table_->ValueAddress(col_, row), width_);
    memory_->CpuWork(cost_->vector_value_cycles);
  }

  const layout::ColumnTable* table_;
  uint32_t col_;
  uint32_t width_;
  bool is_char_;
  sim::SequentialReader reader_;
  sim::MemorySystem* memory_;
  const CostModel* cost_;
};

/// Lazily-created per-column readers for one query execution.
class ReaderSet {
 public:
  ReaderSet(const layout::ColumnTable* table, sim::MemorySystem* memory,
            const CostModel* cost)
      : table_(table), memory_(memory), cost_(cost) {
    readers_.resize(table->schema().num_columns());
  }

  ColumnReader& at(uint32_t col) {
    if (!readers_[col]) {
      readers_[col] =
          std::make_unique<ColumnReader>(table_, col, memory_, cost_);
    }
    return *readers_[col];
  }

 private:
  const layout::ColumnTable* table_;
  sim::MemorySystem* memory_;
  const CostModel* cost_;
  std::vector<std::unique_ptr<ColumnReader>> readers_;
};

bool Compare(double v, const Predicate& p) {
  switch (p.op) {
    case CompareOp::kLt:
      return v < p.double_operand;
    case CompareOp::kLe:
      return v <= p.double_operand;
    case CompareOp::kGt:
      return v > p.double_operand;
    case CompareOp::kGe:
      return v >= p.double_operand;
    case CompareOp::kEq:
      return v == p.double_operand;
    case CompareOp::kNe:
      return v != p.double_operand;
  }
  return false;
}

/// Distinct columns the post-selection phase materializes per tuple
/// (aggregate inputs, group keys, projection): the tuple-reconstruction
/// width.
uint32_t OutputFieldCount(const QuerySpec& query) {
  std::vector<uint32_t> cols;
  for (const AggSpec& a : query.aggregates) {
    if (a.expr >= 0) query.exprs.CollectColumns(a.expr, &cols);
  }
  for (uint32_t c : query.group_by) cols.push_back(c);
  for (uint32_t c : query.projection) cols.push_back(c);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return static_cast<uint32_t>(cols.size());
}

}  // namespace

StatusOr<QueryResult> VectorEngine::Execute(const QuerySpec& query) {
  RELFAB_RETURN_IF_ERROR(query.Validate(table_->schema()));
  if (mode_ == VectorMode::kColumnAtATime && !query.predicates.empty()) {
    return ExecuteColumnAtATime(query);
  }
  return ExecuteFused(query);
}

StatusOr<QueryResult> VectorEngine::ExecuteFused(const QuerySpec& query) {
  sim::MemorySystem* memory = table_->memory();
  ReaderSet readers(table_, memory, &cost_);

  QueryResult result;
  const uint64_t n = table_->num_rows();
  result.rows_scanned = n;

  // The fused pass evaluates scan + selection in one operator; only the
  // aggregate/projection sink is separable.
  int op_scan = -1, op_sink = -1;
  if (prof_ != nullptr) {
    op_scan = prof_->AddOp(query.predicates.empty() ? "ColumnScan"
                                                    : "ColumnScanFilter");
    prof_->op(op_scan).rows_in = n;
    op_sink =
        prof_->AddOp(query.aggregates.empty() ? "Project" : "Aggregate");
  }

  const bool grouped = !query.group_by.empty();
  const uint32_t out_fields = OutputFieldCount(query);
  std::vector<AggState> flat_aggs(query.aggregates.size());
  std::map<GroupKey, std::vector<AggState>> groups;
  uint64_t current_row = 0;
  const auto col_fn = [&](uint32_t col) {
    return readers.at(col).GetNumeric(current_row);
  };

  for (uint64_t batch = 0; batch < n; batch += cost_.batch_rows) {
    if (prof_ != nullptr) prof_->Switch(op_scan);
    memory->CpuWork(cost_.batch_overhead_cycles);
    const uint64_t batch_end = std::min<uint64_t>(n, batch + cost_.batch_rows);
    for (uint64_t row = batch; row < batch_end; ++row) {
      if (prof_ != nullptr) prof_->Switch(op_scan);
      // Vectorized predicate evaluation: all conjuncts computed (no
      // per-tuple short circuit), selection folded into a mask.
      bool pass = true;
      for (const Predicate& p : query.predicates) {
        const double v = readers.at(p.column).GetNumeric(row);
        memory->CpuWork(cost_.compare_cycles);
        pass = pass && Compare(v, p);
      }
      if (!pass) continue;
      if (prof_ != nullptr) {
        ++prof_->op(op_scan).rows_out;
        prof_->Switch(op_sink);
        ++prof_->op(op_sink).rows_in;
      }
      ++result.rows_matched;
      current_row = row;
      // Tuple reconstruction: stitch the output fields of this position
      // from `out_fields` separate arrays.
      if (out_fields > 1) {
        memory->CpuWork(cost_.reconstruct_field_cycles * out_fields);
      }
      if (query.aggregates.empty()) {
        for (uint32_t col : query.projection) {
          double v;
          if (table_->schema().type(col) == layout::ColumnType::kChar) {
            v = static_cast<double>(readers.at(col).GetKey(row) & 0xffff);
          } else {
            v = readers.at(col).GetNumeric(row);
          }
          result.projection_checksum += v;
          memory->CpuWork(cost_.arith_cycles);
        }
        continue;
      }
      std::vector<AggState>* states = &flat_aggs;
      if (grouped) {
        GroupKey key;
        key.size = static_cast<uint32_t>(query.group_by.size());
        for (uint32_t i = 0; i < key.size; ++i) {
          key.values[i] = readers.at(query.group_by[i]).GetKey(row);
        }
        memory->CpuWork(cost_.group_hash_cycles);
        states = &groups
                      .try_emplace(key, std::vector<AggState>(
                                            query.aggregates.size()))
                      .first->second;
      }
      for (size_t a = 0; a < query.aggregates.size(); ++a) {
        const AggSpec& spec = query.aggregates[a];
        double v = 0;
        if (spec.expr >= 0) {
          v = query.exprs.Eval(spec.expr, col_fn);
          memory->CpuWork(cost_.arith_cycles *
                          query.exprs.OpCount(spec.expr));
        }
        (*states)[a].Update(v);
        memory->CpuWork(cost_.agg_update_cycles);
      }
    }
  }

  if (prof_ != nullptr) {
    prof_->Finish();
    uint64_t out = result.rows_matched;
    if (!query.aggregates.empty()) out = grouped ? groups.size() : 1;
    prof_->op(op_sink).rows_out = out;
  }
  FinalizeAggregates(query, flat_aggs, groups, &result);
  result.sim_cycles = memory->ElapsedCycles();
  return result;
}

StatusOr<QueryResult> VectorEngine::ExecuteColumnAtATime(
    const QuerySpec& query) {
  sim::MemorySystem* memory = table_->memory();
  ReaderSet readers(table_, memory, &cost_);

  QueryResult result;
  const uint64_t n = table_->num_rows();
  result.rows_scanned = n;

  // Selection: one full sequential pass per predicate column, refining a
  // selection vector. Each pass keeps exactly one live stream, so this
  // mode does not suffer prefetch-stream thrash during selection.
  std::vector<uint64_t> positions;
  for (size_t pi = 0; pi < query.predicates.size(); ++pi) {
    const Predicate& p = query.predicates[pi];
    ColumnReader& reader = readers.at(p.column);
    std::vector<uint64_t> next;
    const uint64_t in_count = pi == 0 ? n : positions.size();
    int op_select = -1;
    if (prof_ != nullptr) {
      // Each predicate pass is its own operator: one full sequential
      // column stream refining the selection vector.
      op_select = prof_->AddOp(
          "Select(" + table_->schema().column(p.column).name + ")");
      prof_->op(op_select).rows_in = in_count;
      prof_->Switch(op_select);
    }
    memory->CpuWork(cost_.batch_overhead_cycles *
                    (static_cast<double>(in_count) / cost_.batch_rows + 1));
    if (pi == 0) {
      // The first predicate pass streams the whole column densely:
      // charge its memory traffic as one batched read up front (the
      // per-value loop below then only pays CPU constants).
      reader.ChargeDenseExtent(n);
      next.reserve(n / 2);
      for (uint64_t row = 0; row < n; ++row) {
        const double v = reader.GetNumeric(row);
        memory->CpuWork(cost_.compare_cycles);
        if (Compare(v, p)) next.push_back(row);
      }
    } else {
      next.reserve(positions.size());
      for (uint64_t row : positions) {
        const double v = reader.GetNumeric(row);
        memory->CpuWork(cost_.compare_cycles);
        if (Compare(v, p)) next.push_back(row);
      }
    }
    positions = std::move(next);
    if (prof_ != nullptr) prof_->op(op_select).rows_out = positions.size();
  }
  result.rows_matched = positions.size();

  // Aggregation/projection pass over qualifying positions; the output
  // columns advance in lockstep here, like the fused engine.
  const bool grouped = !query.group_by.empty();
  const uint32_t out_fields = OutputFieldCount(query);
  std::vector<AggState> flat_aggs(query.aggregates.size());
  std::map<GroupKey, std::vector<AggState>> groups;
  uint64_t current_row = 0;
  const auto col_fn = [&](uint32_t col) {
    return readers.at(col).GetNumeric(current_row);
  };
  int op_sink = -1;
  if (prof_ != nullptr) {
    op_sink =
        prof_->AddOp(query.aggregates.empty() ? "Project" : "Aggregate");
    prof_->op(op_sink).rows_in = positions.size();
    prof_->Switch(op_sink);
  }
  memory->CpuWork(cost_.batch_overhead_cycles *
                  (static_cast<double>(positions.size()) / cost_.batch_rows +
                   1));
  for (uint64_t row : positions) {
    current_row = row;
    if (out_fields > 1) {
      memory->CpuWork(cost_.reconstruct_field_cycles * out_fields);
    }
    if (query.aggregates.empty()) {
      for (uint32_t col : query.projection) {
        double v;
        if (table_->schema().type(col) == layout::ColumnType::kChar) {
          v = static_cast<double>(readers.at(col).GetKey(row) & 0xffff);
        } else {
          v = readers.at(col).GetNumeric(row);
        }
        result.projection_checksum += v;
        memory->CpuWork(cost_.arith_cycles);
      }
      continue;
    }
    std::vector<AggState>* states = &flat_aggs;
    if (grouped) {
      GroupKey key;
      key.size = static_cast<uint32_t>(query.group_by.size());
      for (uint32_t i = 0; i < key.size; ++i) {
        key.values[i] = readers.at(query.group_by[i]).GetKey(row);
      }
      memory->CpuWork(cost_.group_hash_cycles);
      states = &groups
                    .try_emplace(key, std::vector<AggState>(
                                          query.aggregates.size()))
                    .first->second;
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const AggSpec& spec = query.aggregates[a];
      double v = 0;
      if (spec.expr >= 0) {
        v = query.exprs.Eval(spec.expr, col_fn);
        memory->CpuWork(cost_.arith_cycles * query.exprs.OpCount(spec.expr));
      }
      (*states)[a].Update(v);
      memory->CpuWork(cost_.agg_update_cycles);
    }
  }

  if (prof_ != nullptr) {
    prof_->Finish();
    uint64_t out = result.rows_matched;
    if (!query.aggregates.empty()) out = grouped ? groups.size() : 1;
    prof_->op(op_sink).rows_out = out;
  }
  FinalizeAggregates(query, flat_aggs, groups, &result);
  result.sim_cycles = memory->ElapsedCycles();
  return result;
}

}  // namespace relfab::engine
