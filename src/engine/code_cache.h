#ifndef RELFAB_ENGINE_CODE_CACHE_H_
#define RELFAB_ENGINE_CODE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/logging.h"
#include "engine/query.h"
#include "sim/memory_system.h"

namespace relfab::engine {

/// Model of a compiled-fragment cache (paper §III-B, "Code Generation").
/// Adaptive legacy systems generate code per (query, buffered layout)
/// pair; with Relational Fabric "data layouts are not buffered, [so the
/// system] can buffer more code fragments and reuse previously compiled
/// code fragments more aggressively" — one fragment per query, and the
/// capacity freed from layout variants raises the hit rate.
///
/// Admission charges the compilation latency to the simulator; hits
/// charge a lookup. LRU replacement over a fixed fragment budget.
class CodeCache {
 public:
  /// `capacity` = fragments the system can keep resident;
  /// `compile_cycles` = cost of generating + compiling one fragment.
  CodeCache(sim::MemorySystem* memory, uint32_t capacity = 64,
            double compile_cycles = 150000.0)
      : memory_(memory),
        capacity_(capacity),
        compile_cycles_(compile_cycles) {
    RELFAB_CHECK(memory != nullptr);
    RELFAB_CHECK(capacity > 0);
  }

  /// Structural signature of a query: same shape => same fragment.
  /// `layout_variant` distinguishes per-layout fragments in legacy
  /// systems (Relational Fabric always passes 0 — one layout).
  static uint64_t Signature(const QuerySpec& spec,
                            uint32_t layout_variant = 0) {
    uint64_t h = 0xcbf29ce484222325ull ^ layout_variant;
    const auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    for (const Predicate& p : spec.predicates) {
      mix(p.column);
      mix(static_cast<uint64_t>(p.op) + 17);
      mix(static_cast<uint64_t>(p.int_operand));
    }
    for (const AggSpec& a : spec.aggregates) {
      mix(static_cast<uint64_t>(a.func) + 101);
      mix(static_cast<uint64_t>(a.expr) + 7);
    }
    for (uint32_t c : spec.group_by) mix(c + 301);
    for (uint32_t c : spec.projection) mix(c + 501);
    // The expression pool's content is part of the generated code.
    for (size_t i = 0; i < spec.exprs.size(); ++i) {
      const ExprPool::Node& n = spec.exprs.node(static_cast<int32_t>(i));
      mix(static_cast<uint64_t>(n.kind) + 11);
      mix(n.column);
      mix(static_cast<uint64_t>(n.constant * 1024));
      mix(static_cast<uint64_t>(n.lhs + 1));
      mix(static_cast<uint64_t>(n.rhs + 1));
    }
    return h;
  }

  /// Ensures a fragment for `signature` is resident; returns true on a
  /// hit. A miss charges the compile and may evict the LRU fragment.
  bool Require(uint64_t signature) {
    auto it = resident_.find(signature);
    memory_->CpuWork(kLookupCycles);
    if (it != resident_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return true;
    }
    ++misses_;
    memory_->CpuWork(compile_cycles_);
    if (resident_.size() == capacity_) {
      resident_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    lru_.push_front(signature);
    resident_[signature] = lru_.begin();
    return false;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint32_t capacity() const { return capacity_; }
  size_t resident() const { return resident_.size(); }
  double hit_rate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }

 private:
  static constexpr double kLookupCycles = 40.0;

  sim::MemorySystem* memory_;
  uint32_t capacity_;
  double compile_cycles_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::list<uint64_t> lru_;
  // relfab-lint: allow(unordered-iteration) point lookups only; eviction order is the deterministic lru_ list
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> resident_;
};

}  // namespace relfab::engine

#endif  // RELFAB_ENGINE_CODE_CACHE_H_
