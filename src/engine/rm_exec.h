#ifndef RELFAB_ENGINE_RM_EXEC_H_
#define RELFAB_ENGINE_RM_EXEC_H_

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "layout/row_table.h"
#include "obs/query_profile.h"
#include "relmem/rm_engine.h"

namespace relfab::engine {

/// Query execution over Relational Memory: the engine configures an
/// ephemeral view for exactly the columns the query touches and runs a
/// vectorized loop over the packed output. No tuple reconstruction is
/// charged — the fabric already delivered row-major column groups — and
/// the CPU sees a single dense stream regardless of how many columns the
/// query references.
///
/// With `pushdown_selection` (the paper's §IV-B extension), the
/// predicates are evaluated inside the fabric; only qualifying rows'
/// output columns cross the memory hierarchy and the CPU skips predicate
/// evaluation entirely.
class RmExecEngine {
 public:
  RmExecEngine(const layout::RowTable* table, relmem::RmEngine* rm,
               CostModel cost = CostModel::A53Defaults(),
               bool pushdown_selection = false)
      : table_(table), rm_(rm), cost_(cost), pushdown_(pushdown_selection) {
    RELFAB_CHECK(table != nullptr && rm != nullptr);
  }

  /// Executes `query`, charging the simulator; one query per
  /// ResetTiming window for meaningful sim_cycles.
  StatusOr<QueryResult> Execute(const QuerySpec& query);

  bool pushdown_selection() const { return pushdown_; }

  /// Attaches a per-operator profiler (EXPLAIN ANALYZE). Null — the
  /// default — keeps every profiling call site a single pointer test.
  void set_profiler(obs::OpProfiler* profiler) { prof_ = profiler; }

 private:
  const layout::RowTable* table_;
  relmem::RmEngine* rm_;
  CostModel cost_;
  bool pushdown_;
  obs::OpProfiler* prof_ = nullptr;
};

}  // namespace relfab::engine

#endif  // RELFAB_ENGINE_RM_EXEC_H_
