#ifndef RELFAB_ENGINE_COST_MODEL_H_
#define RELFAB_ENGINE_COST_MODEL_H_

#include <cstdint>

namespace relfab::engine {

/// Per-operation CPU cycle costs charged by the execution engines on top
/// of the memory-system costs. Together with sim::SimParams these are the
/// calibration surface for the paper's figures; defaults model an
/// in-order Cortex-A53 running interpreted (volcano) vs. vectorized
/// loops.
struct CostModel {
  // --- volcano (tuple-at-a-time) row engine ---
  /// Virtual Next() dispatch per tuple per operator edge.
  double volcano_next_cycles = 3.0;
  /// Extracting one field from a row (offset arithmetic + load; the L1
  /// probe itself is charged by the memory system on top).
  double volcano_field_cycles = 2.0;

  // --- shared scalar op costs ---
  double compare_cycles = 1.2;        // one predicate comparison
  double arith_cycles = 1.0;          // one expression-node operation
  double agg_update_cycles = 1.5;     // one aggregate update
  double group_hash_cycles = 7.0;     // hashing + group lookup per tuple

  // --- vectorized (column-at-a-time) engine ---
  /// Loading + processing one columnar value in a tight loop.
  double vector_value_cycles = 1.2;
  /// Stitching one field when reconstructing a multi-column tuple
  /// (the paper's "tuple reconstruction cost", grows with projectivity).
  double reconstruct_field_cycles = 1.0;
  /// Fixed overhead per vector batch (loop setup, selection-vector
  /// management).
  double batch_overhead_cycles = 32.0;
  /// Rows per vector batch.
  uint32_t batch_rows = 1024;

  // --- RM (ephemeral-view) engine ---
  /// Loading + processing one value from a packed ephemeral row. Slightly
  /// above vector_value_cycles: the packed group is row-major within the
  /// group, so loops are strided by the group width rather than unit.
  double rm_value_cycles = 2.1;

  // --- shard fan-out ---
  /// Host-side handoff per shard partial after the parallel scans join
  /// (dequeue, pointer chasing, result bookkeeping); the per-value merge
  /// work is charged via agg_update_cycles on top.
  double shard_merge_task_cycles = 60.0;

  // --- distributed fan-out (network shipping, src/net) ---
  /// Packing one materialized row into a wire message on the producing
  /// node — and, symmetrically, unpacking it at the coordinator (field
  /// copies + length bookkeeping per referenced column group).
  double net_serialize_row_cycles = 4.0;
  /// Packing/unpacking one partial-aggregate value (a double slot plus
  /// its share of the group-key bytes).
  double net_serialize_agg_cycles = 2.0;

  /// Failing over from a dead shard replica to the next live one:
  /// timeout detection plus re-dispatch, charged once per dead replica
  /// skipped during replica selection. Deliberately much larger than a
  /// merge handoff — death is detected by a missed heartbeat, not a
  /// return code.
  double shard_failover_cycles = 2500.0;

  static CostModel A53Defaults() { return CostModel{}; }
};

}  // namespace relfab::engine

#endif  // RELFAB_ENGINE_COST_MODEL_H_
