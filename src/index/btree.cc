#include "index/btree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace relfab::index {

BTreeIndex::BTreeIndex(sim::MemorySystem* memory, uint32_t fanout,
                       engine::CostModel cost)
    : memory_(memory), cost_(cost), fanout_(fanout) {
  RELFAB_CHECK(memory != nullptr);
  RELFAB_CHECK_GE(fanout, 4u);
  // Key area + value/child area, 16 B per entry.
  node_bytes_ = fanout_ * 16 + 64;
  root_ = AllocNode(/*is_leaf=*/true);
}

uint32_t BTreeIndex::AllocNode(bool is_leaf) {
  Node node;
  node.is_leaf = is_leaf;
  node.sim_addr = memory_->Allocate(node_bytes_);
  nodes_.push_back(std::move(node));
  return static_cast<uint32_t>(nodes_.size()) - 1;
}

void BTreeIndex::ChargeNodeRead(const Node& node) {
  // A traversal touches the header plus the occupied key area.
  const uint64_t bytes = 64 + node.keys.size() * 16;
  memory_->Read(node.sim_addr, std::max<uint64_t>(bytes, 64));
}

void BTreeIndex::ChargeSearch(const Node& node) {
  const double steps =
      std::log2(static_cast<double>(node.keys.size()) + 2.0);
  memory_->CpuWork(steps * cost_.compare_cycles * 2);
}

uint32_t BTreeIndex::DescendToLeaf(int64_t key, std::vector<uint32_t>* path,
                                   bool leftmost) {
  uint32_t node_id = root_;
  while (true) {
    Node& node = nodes_[node_id];
    ChargeNodeRead(node);
    ChargeSearch(node);
    if (node.is_leaf) return node_id;
    // Inserts descend to the rightmost candidate (upper_bound); reads
    // descend to the leftmost (lower_bound) so duplicate keys that
    // straddle a split are never skipped.
    const auto it =
        leftmost ? std::lower_bound(node.keys.begin(), node.keys.end(), key)
                 : std::upper_bound(node.keys.begin(), node.keys.end(), key);
    const size_t child = static_cast<size_t>(it - node.keys.begin());
    if (path != nullptr) path->push_back(node_id);
    node_id = node.children[child];
  }
}

void BTreeIndex::Insert(int64_t key, uint64_t row) {
  std::vector<uint32_t> path;
  const uint32_t leaf_id = DescendToLeaf(key, &path, /*leftmost=*/false);
  Node& leaf = nodes_[leaf_id];
  const auto it = std::upper_bound(leaf.keys.begin(), leaf.keys.end(), key);
  const size_t pos = static_cast<size_t>(it - leaf.keys.begin());
  leaf.keys.insert(leaf.keys.begin() + pos, key);
  leaf.values.insert(leaf.values.begin() + pos, row);
  memory_->Write(leaf.sim_addr + 64 + pos * 16, 16);
  memory_->CpuWork(cost_.arith_cycles * 4);  // shift bookkeeping
  ++size_;
  if (leaf.keys.size() > fanout_) SplitUpwards(leaf_id, std::move(path));
}

void BTreeIndex::SplitUpwards(uint32_t node_id, std::vector<uint32_t> path) {
  while (true) {
    const bool is_leaf = nodes_[node_id].is_leaf;
    if (nodes_[node_id].keys.size() <= fanout_) return;
    const uint32_t right_id = AllocNode(is_leaf);
    Node& node = nodes_[node_id];  // re-borrow after AllocNode
    Node& right = nodes_[right_id];
    const size_t mid = node.keys.size() / 2;
    int64_t separator;
    if (is_leaf) {
      separator = node.keys[mid];
      right.keys.assign(node.keys.begin() + mid, node.keys.end());
      right.values.assign(node.values.begin() + mid, node.values.end());
      node.keys.resize(mid);
      node.values.resize(mid);
      right.next_leaf = node.next_leaf;
      node.next_leaf = right_id;
    } else {
      separator = node.keys[mid];
      right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
      right.children.assign(node.children.begin() + mid + 1,
                            node.children.end());
      node.keys.resize(mid);
      node.children.resize(mid + 1);
    }
    // Split writes both halves back.
    memory_->Write(node.sim_addr, node_bytes_);
    memory_->Write(right.sim_addr, node_bytes_);

    if (path.empty()) {
      const uint32_t new_root = AllocNode(/*is_leaf=*/false);
      Node& root = nodes_[new_root];
      root.keys = {separator};
      root.children = {node_id, right_id};
      memory_->Write(root.sim_addr, 64);
      root_ = new_root;
      ++height_;
      return;
    }
    const uint32_t parent_id = path.back();
    path.pop_back();
    Node& parent = nodes_[parent_id];
    const auto it = std::upper_bound(parent.keys.begin(), parent.keys.end(),
                                     separator);
    const size_t pos = static_cast<size_t>(it - parent.keys.begin());
    parent.keys.insert(parent.keys.begin() + pos, separator);
    parent.children.insert(parent.children.begin() + pos + 1, right_id);
    memory_->Write(parent.sim_addr + 64 + pos * 16, 16);
    node_id = parent_id;
  }
}

std::vector<uint64_t> BTreeIndex::Lookup(int64_t key) {
  return Range(key, key);
}

std::vector<uint64_t> BTreeIndex::Range(int64_t lo, int64_t hi) {
  std::vector<uint64_t> rows;
  if (lo > hi) return rows;
  uint32_t leaf_id = DescendToLeaf(lo, nullptr, /*leftmost=*/true);
  bool first = true;
  while (leaf_id != kNoNode) {
    const Node& leaf = nodes_[leaf_id];
    if (!first) ChargeNodeRead(leaf);
    first = false;
    auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), lo);
    for (; it != leaf.keys.end(); ++it) {
      if (*it > hi) return rows;
      rows.push_back(
          leaf.values[static_cast<size_t>(it - leaf.keys.begin())]);
      memory_->CpuWork(cost_.arith_cycles);
    }
    leaf_id = leaf.next_leaf;
  }
  return rows;
}

bool BTreeIndex::CheckNode(uint32_t node_id, int64_t lo, int64_t hi,
                           uint32_t depth) const {
  const Node& node = nodes_[node_id];
  if (!std::is_sorted(node.keys.begin(), node.keys.end())) return false;
  for (int64_t k : node.keys) {
    if (k < lo || k > hi) return false;
  }
  if (node_id != root_ && node.keys.size() > fanout_) return false;
  if (node.is_leaf) {
    if (depth + 1 != height_) return false;
    return node.keys.size() == node.values.size();
  }
  if (node.children.size() != node.keys.size() + 1) return false;
  for (size_t c = 0; c < node.children.size(); ++c) {
    const int64_t child_lo = c == 0 ? lo : node.keys[c - 1];
    const int64_t child_hi =
        c == node.keys.size() ? hi : node.keys[c];
    if (!CheckNode(node.children[c], child_lo, child_hi, depth + 1)) {
      return false;
    }
  }
  return true;
}

bool BTreeIndex::CheckInvariants() const {
  return CheckNode(root_, std::numeric_limits<int64_t>::min(),
                   std::numeric_limits<int64_t>::max(), 0);
}

}  // namespace relfab::index
