#ifndef RELFAB_INDEX_HASH_INDEX_H_
#define RELFAB_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "engine/cost_model.h"
#include "sim/memory_system.h"

namespace relfab::index {

/// Open-addressing hash index from int64 keys to row ids (linear
/// probing, duplicate keys chained in place). Buckets live in simulated
/// memory; a lookup charges the probe sequence — typically one random
/// cache miss, which is why hash indexes are the gold standard for the
/// point queries the paper reserves for indexes (§III-A) while being
/// useless for ranges.
class HashIndex {
 public:
  explicit HashIndex(sim::MemorySystem* memory, uint64_t expected_keys = 64,
                     engine::CostModel cost = engine::CostModel::A53Defaults())
      : memory_(memory), cost_(cost) {
    RELFAB_CHECK(memory != nullptr);
    capacity_ = 64;
    while (capacity_ < expected_keys * 2) capacity_ *= 2;
    slots_.assign(capacity_, Slot{});
    base_addr_ = memory_->Allocate(capacity_ * kSlotBytes);
  }

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  /// Inserts key -> row (duplicates allowed).
  void Insert(int64_t key, uint64_t row) {
    if ((size_ + 1) * 2 > capacity_) Grow();
    uint64_t slot = Hash(key) & (capacity_ - 1);
    while (slots_[slot].used) {
      ChargeProbe(slot);
      slot = (slot + 1) & (capacity_ - 1);
    }
    ChargeProbe(slot);
    memory_->Write(base_addr_ + slot * kSlotBytes, kSlotBytes);
    slots_[slot] = {true, key, row};
    ++size_;
  }

  /// All row ids stored under `key`.
  std::vector<uint64_t> Lookup(int64_t key) {
    std::vector<uint64_t> rows;
    uint64_t slot = Hash(key) & (capacity_ - 1);
    while (slots_[slot].used) {
      ChargeProbe(slot);
      if (slots_[slot].key == key) rows.push_back(slots_[slot].row);
      slot = (slot + 1) & (capacity_ - 1);
    }
    ChargeProbe(slot);  // the terminating empty slot
    return rows;
  }

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }

 private:
  static constexpr uint32_t kSlotBytes = 24;  // used + key + row

  struct Slot {
    bool used = false;
    int64_t key = 0;
    uint64_t row = 0;
  };

  static uint64_t Hash(int64_t key) {
    uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ull;
    return h ^ (h >> 32);
  }

  void ChargeProbe(uint64_t slot) {
    memory_->Read(base_addr_ + slot * kSlotBytes, kSlotBytes);
    memory_->CpuWork(cost_.compare_cycles + cost_.arith_cycles);
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    capacity_ *= 2;
    slots_.assign(capacity_, Slot{});
    base_addr_ = memory_->Allocate(capacity_ * kSlotBytes);
    // Rehash charges the table rebuild.
    for (const Slot& s : old) {
      if (!s.used) continue;
      uint64_t slot = Hash(s.key) & (capacity_ - 1);
      while (slots_[slot].used) slot = (slot + 1) & (capacity_ - 1);
      slots_[slot] = s;
      memory_->Write(base_addr_ + slot * kSlotBytes, kSlotBytes);
    }
  }

  sim::MemorySystem* memory_;
  engine::CostModel cost_;
  uint64_t capacity_ = 0;
  uint64_t size_ = 0;
  uint64_t base_addr_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace relfab::index

#endif  // RELFAB_INDEX_HASH_INDEX_H_
