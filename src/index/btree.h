#ifndef RELFAB_INDEX_BTREE_H_
#define RELFAB_INDEX_BTREE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "sim/memory_system.h"

namespace relfab::index {

/// B+-tree from int64 keys to row ids, with duplicate-key support.
/// Nodes live in simulated memory: every traversal charges the node
/// reads (typically one cache-missing line per level for a cold tree),
/// which is exactly the cost structure that makes indexes great for
/// point queries and mediocre for large range scans — the trade-off the
/// paper leans on in §III-A ("indexes should be used for point queries
/// and point updates", while range queries go to column-group accesses).
///
/// Keys within nodes are kept sorted; leaves are linked for range scans.
class BTreeIndex {
 public:
  /// `fanout` = max keys per node (leaf and internal). 64 keys * 8 B
  /// spans 8 cache lines per node, a typical in-memory B+-tree layout.
  explicit BTreeIndex(sim::MemorySystem* memory, uint32_t fanout = 64,
                      engine::CostModel cost = engine::CostModel::A53Defaults());

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  /// Inserts key -> row (duplicates allowed). Charges the descent and
  /// the leaf write; splits charge the copied lines.
  void Insert(int64_t key, uint64_t row);

  /// Point lookup: all row ids with exactly this key (usually 0 or 1).
  /// Charges the root-to-leaf node reads and in-node binary searches.
  std::vector<uint64_t> Lookup(int64_t key);

  /// Range scan: row ids with key in [lo, hi], in key order. Charges the
  /// descent plus every touched leaf.
  std::vector<uint64_t> Range(int64_t lo, int64_t hi);

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  uint64_t num_nodes() const { return nodes_.size(); }

  /// Validates the B+-tree invariants (sorted keys, balanced height,
  /// fanout bounds, leaf links); for tests.
  bool CheckInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    uint64_t sim_addr = 0;            // simulated address of this node
    std::vector<int64_t> keys;        // sorted
    std::vector<uint64_t> values;     // leaf: row ids (parallel to keys)
    std::vector<uint32_t> children;   // internal: keys.size() + 1 ids
    uint32_t next_leaf = kNoNode;     // leaf chain
  };

  static constexpr uint32_t kNoNode = ~0u;

  uint32_t AllocNode(bool is_leaf);
  /// Charges a read of the node's key area (its resident lines).
  void ChargeNodeRead(const Node& node);
  /// Charges the binary search within a node.
  void ChargeSearch(const Node& node);
  /// Descends to a leaf that can contain `key` (leftmost candidate for
  /// reads, rightmost for inserts), recording the path of ancestors.
  uint32_t DescendToLeaf(int64_t key, std::vector<uint32_t>* path,
                         bool leftmost);
  /// Splits the over-full node `node_id`; `path` holds its ancestors.
  void SplitUpwards(uint32_t node_id, std::vector<uint32_t> path);
  bool CheckNode(uint32_t node_id, int64_t lo, int64_t hi,
                 uint32_t depth) const;

  sim::MemorySystem* memory_;
  engine::CostModel cost_;
  uint32_t fanout_;
  uint32_t node_bytes_;
  uint32_t root_;
  uint32_t height_ = 1;
  uint64_t size_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace relfab::index

#endif  // RELFAB_INDEX_BTREE_H_
