#ifndef RELFAB_TPCH_DBGEN_H_
#define RELFAB_TPCH_DBGEN_H_

#include <cstdint>

#include "layout/row_table.h"
#include "layout/schema.h"
#include "sim/memory_system.h"

namespace relfab::tpch {

/// Days since 1992-01-01 (the TPC-H calendar start) for a civil date.
int32_t DayNumber(int year, int month, int day);

/// Fixed-width lineitem schema. Money is int64 cents; discount/tax are
/// integer percent; dates are day numbers. 106-byte rows — the ratio of
/// row width to the Q1/Q6 target-column widths matches the paper's
/// Figure 7 data-size axis (e.g. 692 MB table for a 128 MB Q6 column
/// group).
layout::Schema LineitemSchema();

/// Column indices in LineitemSchema (stable; tests rely on names too).
struct LineitemCols {
  static constexpr uint32_t kOrderKey = 0;
  static constexpr uint32_t kPartKey = 1;
  static constexpr uint32_t kSuppKey = 2;
  static constexpr uint32_t kLineNumber = 3;
  static constexpr uint32_t kQuantity = 4;
  static constexpr uint32_t kExtendedPrice = 5;
  static constexpr uint32_t kDiscount = 6;
  static constexpr uint32_t kTax = 7;
  static constexpr uint32_t kReturnFlag = 8;
  static constexpr uint32_t kLineStatus = 9;
  static constexpr uint32_t kShipDate = 10;
  static constexpr uint32_t kCommitDate = 11;
  static constexpr uint32_t kReceiptDate = 12;
  static constexpr uint32_t kShipInstruct = 13;
  static constexpr uint32_t kShipMode = 14;
  static constexpr uint32_t kComment = 15;
};

/// Deterministically generates `num_rows` lineitem rows with the value
/// distributions Q1 and Q6 depend on (quantity 1..50, discount 0..10%,
/// tax 0..8%, ship dates across the 1992-1998 window, flag/status derived
/// from dates as in dbgen).
layout::RowTable GenerateLineitem(uint64_t num_rows, uint64_t seed,
                                  sim::MemorySystem* memory);

}  // namespace relfab::tpch

#endif  // RELFAB_TPCH_DBGEN_H_
