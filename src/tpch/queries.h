#ifndef RELFAB_TPCH_QUERIES_H_
#define RELFAB_TPCH_QUERIES_H_

#include "engine/query.h"

namespace relfab::tpch {

/// TPC-H Q1 (pricing summary report) over LineitemSchema():
///
///   SELECT l_returnflag, l_linestatus,
///          sum(l_quantity), sum(l_extendedprice),
///          sum(l_extendedprice*(1-l_discount)),
///          sum(l_extendedprice*(1-l_discount)*(1+l_tax)),
///          avg(l_quantity), avg(l_extendedprice), avg(l_discount),
///          count(*)
///   FROM lineitem
///   WHERE l_shipdate <= date '1998-12-01' - interval '90' day
///   GROUP BY l_returnflag, l_linestatus
///
/// Discount/tax are stored as integer percent, so the expressions use
/// (1 - d*0.01) / (1 + t*0.01). CPU-bound: eight aggregates with
/// multi-column arithmetic per row (paper Fig. 7a: layouts perform
/// similarly).
engine::QuerySpec MakeQ1Spec();

/// TPC-H Q6 (forecasting revenue change):
///
///   SELECT sum(l_extendedprice * l_discount)
///   FROM lineitem
///   WHERE l_shipdate >= date '1994-01-01'
///     AND l_shipdate < date '1995-01-01'
///     AND l_discount BETWEEN 0.06 - 0.01 AND 0.06 + 0.01
///     AND l_quantity < 24
///
/// Movement-bound: a narrow predicate + a two-column product over a wide
/// table (paper Fig. 7b: RM/COL clearly beat ROW).
engine::QuerySpec MakeQ6Spec();

}  // namespace relfab::tpch

#endif  // RELFAB_TPCH_QUERIES_H_
