#include "tpch/queries.h"

#include "tpch/dbgen.h"

namespace relfab::tpch {

using engine::AggFunc;
using engine::AggSpec;
using engine::QuerySpec;
using relmem::CompareOp;
using relmem::HwPredicate;

QuerySpec MakeQ1Spec() {
  QuerySpec q;
  const int32_t qty = q.exprs.Column(LineitemCols::kQuantity);
  const int32_t price = q.exprs.Column(LineitemCols::kExtendedPrice);
  const int32_t disc = q.exprs.Column(LineitemCols::kDiscount);
  const int32_t tax = q.exprs.Column(LineitemCols::kTax);
  const int32_t one = q.exprs.Constant(1.0);
  const int32_t pct = q.exprs.Constant(0.01);
  // 1 - l_discount (as fraction)
  const int32_t one_minus_disc =
      q.exprs.Sub(one, q.exprs.Mul(disc, pct));
  const int32_t one_plus_tax = q.exprs.Add(one, q.exprs.Mul(tax, pct));
  const int32_t disc_price = q.exprs.Mul(price, one_minus_disc);
  const int32_t charge = q.exprs.Mul(disc_price, one_plus_tax);

  q.predicates.push_back(HwPredicate::Int(LineitemCols::kShipDate,
                                          CompareOp::kLe,
                                          DayNumber(1998, 12, 1) - 90));
  q.aggregates = {
      {AggFunc::kSum, qty},    {AggFunc::kSum, price},
      {AggFunc::kSum, disc_price}, {AggFunc::kSum, charge},
      {AggFunc::kAvg, qty},    {AggFunc::kAvg, price},
      {AggFunc::kAvg, disc},   {AggFunc::kCount, -1},
  };
  q.group_by = {LineitemCols::kReturnFlag, LineitemCols::kLineStatus};
  return q;
}

QuerySpec MakeQ6Spec() {
  QuerySpec q;
  const int32_t price = q.exprs.Column(LineitemCols::kExtendedPrice);
  const int32_t disc = q.exprs.Column(LineitemCols::kDiscount);
  // revenue in cents: price * (discount/100)
  const int32_t revenue =
      q.exprs.Mul(price, q.exprs.Mul(disc, q.exprs.Constant(0.01)));

  q.predicates.push_back(HwPredicate::Int(
      LineitemCols::kShipDate, CompareOp::kGe, DayNumber(1994, 1, 1)));
  q.predicates.push_back(HwPredicate::Int(
      LineitemCols::kShipDate, CompareOp::kLt, DayNumber(1995, 1, 1)));
  q.predicates.push_back(
      HwPredicate::Int(LineitemCols::kDiscount, CompareOp::kGe, 5));
  q.predicates.push_back(
      HwPredicate::Int(LineitemCols::kDiscount, CompareOp::kLe, 7));
  q.predicates.push_back(
      HwPredicate::Int(LineitemCols::kQuantity, CompareOp::kLt, 24));
  q.aggregates = {{AggFunc::kSum, revenue}};
  return q;
}

}  // namespace relfab::tpch
