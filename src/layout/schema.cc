#include "layout/schema.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace relfab::layout {

uint32_t FixedWidthOf(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
    case ColumnType::kDate:
      return 4;
    case ColumnType::kInt64:
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kChar:
      return 0;  // width comes from the column definition
  }
  return 0;
}

bool IsIntegerType(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
    case ColumnType::kInt64:
    case ColumnType::kDate:
      return true;
    case ColumnType::kDouble:
    case ColumnType::kChar:
      return false;
  }
  return false;
}

std::string_view ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
      return "int32";
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kDate:
      return "date";
    case ColumnType::kChar:
      return "char";
  }
  return "?";
}

StatusOr<Schema> Schema::Create(std::vector<ColumnDef> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  Schema schema;
  std::unordered_set<std::string_view> names;
  uint32_t offset = 0;
  for (ColumnDef& col : columns) {
    if (col.name.empty()) {
      return Status::InvalidArgument("column name must not be empty");
    }
    uint32_t width = FixedWidthOf(col.type);
    if (col.type == ColumnType::kChar) {
      if (col.width == 0) {
        return Status::InvalidArgument("char column '" + col.name +
                                       "' needs a non-zero width");
      }
      width = col.width;
    }
    col.width = width;
    schema.offsets_.push_back(offset);
    schema.widths_.push_back(width);
    offset += width;
  }
  for (const ColumnDef& col : columns) {
    if (!names.insert(col.name).second) {
      return Status::InvalidArgument("duplicate column name '" + col.name +
                                     "'");
    }
  }
  schema.columns_ = std::move(columns);
  schema.row_bytes_ = offset;
  return schema;
}

Schema Schema::Uniform(uint32_t num_columns, ColumnType type,
                       uint32_t char_width) {
  RELFAB_CHECK(num_columns > 0);
  std::vector<ColumnDef> cols;
  cols.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    cols.push_back({"c" + std::to_string(i), type, char_width});
  }
  auto schema = Create(std::move(cols));
  RELFAB_CHECK(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

StatusOr<uint32_t> Schema::IndexOf(std::string_view name) const {
  for (uint32_t i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (uint32_t i = 0; i < num_columns(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << ":" << ColumnTypeToString(columns_[i].type)
       << " @" << offsets_[i];
  }
  return os.str();
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (uint32_t i = 0; i < a.num_columns(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type ||
        a.widths_[i] != b.widths_[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace relfab::layout
