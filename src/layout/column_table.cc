#include "layout/column_table.h"

namespace relfab::layout {

ColumnTable::ColumnTable(const RowTable& rows, sim::MemorySystem* memory)
    : schema_(rows.schema()), memory_(memory), num_rows_(rows.num_rows()) {
  RELFAB_CHECK(memory != nullptr);
  const uint32_t n_cols = schema_.num_columns();
  columns_.resize(n_cols);
  base_addrs_.resize(n_cols);
  for (uint32_t c = 0; c < n_cols; ++c) {
    const uint32_t width = schema_.width(c);
    columns_[c].resize(num_rows_ * width);
    base_addrs_[c] = memory->Allocate(num_rows_ * width);
  }
  for (uint64_t r = 0; r < num_rows_; ++r) {
    const uint8_t* row = rows.RowData(r);
    for (uint32_t c = 0; c < n_cols; ++c) {
      std::memcpy(columns_[c].data() + r * schema_.width(c),
                  row + schema_.offset(c), schema_.width(c));
    }
  }
}

}  // namespace relfab::layout
