#include "layout/row_table.h"

#include <algorithm>

namespace relfab::layout {

RowBuilder& RowBuilder::AddChar(std::string_view s) {
  RELFAB_CHECK_LT(next_column_, schema_->num_columns());
  RELFAB_CHECK(schema_->type(next_column_) == ColumnType::kChar)
      << "field " << next_column_ << " is not a char column";
  const uint32_t width = schema_->width(next_column_);
  uint8_t* dst = buffer_.data() + schema_->offset(next_column_);
  const size_t n = std::min<size_t>(s.size(), width);
  std::memcpy(dst, s.data(), n);
  std::memset(dst + n, 0, width - n);
  ++next_column_;
  return *this;
}

RowTable::RowTable(Schema schema, sim::MemorySystem* memory,
                   uint64_t capacity)
    : schema_(std::move(schema)), memory_(memory) {
  RELFAB_CHECK(memory != nullptr);
  if (capacity > 0) Grow(capacity);
}

RowTable RowTable::TimingAlias(const RowTable& base,
                               sim::MemorySystem* memory) {
  RELFAB_CHECK(memory != nullptr);
  RowTable alias(base.schema_, memory, 0);
  alias.shared_data_ = base.data_.data();
  alias.num_rows_ = base.num_rows_;
  alias.capacity_ = base.num_rows_;
  alias.base_addr_ = memory->Allocate(base.num_rows_ * base.row_bytes());
  return alias;
}

void RowTable::AppendRow(const uint8_t* packed_row) {
  RELFAB_CHECK(shared_data_ == nullptr) << "timing alias is read-only";
  if (num_rows_ == capacity_) {
    Grow(capacity_ == 0 ? 1024 : capacity_ * 2);
  }
  std::memcpy(data_.data() + num_rows_ * row_bytes(), packed_row,
              row_bytes());
  ++num_rows_;
}

void RowTable::Grow(uint64_t min_capacity) {
  const uint64_t new_capacity = std::max(min_capacity, capacity_);
  data_.resize(new_capacity * row_bytes());
  base_addr_ = memory_->Allocate(new_capacity * row_bytes());
  capacity_ = new_capacity;
}

}  // namespace relfab::layout
