#ifndef RELFAB_LAYOUT_COLUMN_TABLE_H_
#define RELFAB_LAYOUT_COLUMN_TABLE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "layout/row_table.h"
#include "layout/schema.h"
#include "sim/memory_system.h"

namespace relfab::layout {

/// Column-major copy of a table: one densely packed array per column,
/// each with its own simulated address range. This is the baseline the
/// paper calls COL — a materialized columnar duplicate of the row-store
/// base data (exactly the duplication Relational Fabric removes).
class ColumnTable {
 public:
  /// Materializes a columnar copy of `rows`. The conversion cost is not
  /// charged to the simulator: the COL baseline assumes the copy already
  /// exists (the paper's baseline does too).
  ColumnTable(const RowTable& rows, sim::MemorySystem* memory);

  ColumnTable(const ColumnTable&) = delete;
  ColumnTable& operator=(const ColumnTable&) = delete;
  ColumnTable(ColumnTable&&) = default;
  ColumnTable& operator=(ColumnTable&&) = default;

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }

  /// Simulated address of value `row` of column `col`.
  uint64_t ValueAddress(uint32_t col, uint64_t row) const {
    return base_addrs_[col] + row * schema_.width(col);
  }
  uint64_t ColumnAddress(uint32_t col) const { return base_addrs_[col]; }
  uint64_t column_bytes(uint32_t col) const {
    return num_rows_ * schema_.width(col);
  }

  int64_t GetInt(uint32_t col, uint64_t row) const {
    const uint8_t* p = ValuePtr(col, row);
    switch (schema_.type(col)) {
      case ColumnType::kInt32:
      case ColumnType::kDate: {
        int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case ColumnType::kInt64: {
        int64_t v;
        std::memcpy(&v, p, 8);
        return v;
      }
      default:
        RELFAB_CHECK(false) << "GetInt on non-integer column " << col;
        return 0;
    }
  }

  double GetDouble(uint32_t col, uint64_t row) const {
    if (schema_.type(col) == ColumnType::kDouble) {
      double v;
      std::memcpy(&v, ValuePtr(col, row), 8);
      return v;
    }
    return static_cast<double>(GetInt(col, row));
  }

  std::string_view GetChar(uint32_t col, uint64_t row) const {
    RELFAB_DCHECK(schema_.type(col) == ColumnType::kChar);
    return std::string_view(
        reinterpret_cast<const char*>(ValuePtr(col, row)),
        schema_.width(col));
  }

  sim::MemorySystem* memory() const { return memory_; }

 private:
  const uint8_t* ValuePtr(uint32_t col, uint64_t row) const {
    RELFAB_DCHECK(row < num_rows_);
    return columns_[col].data() + row * schema_.width(col);
  }

  Schema schema_;
  sim::MemorySystem* memory_ = nullptr;
  uint64_t num_rows_ = 0;
  std::vector<std::vector<uint8_t>> columns_;
  std::vector<uint64_t> base_addrs_;
};

}  // namespace relfab::layout

#endif  // RELFAB_LAYOUT_COLUMN_TABLE_H_
