#ifndef RELFAB_LAYOUT_ROW_TABLE_H_
#define RELFAB_LAYOUT_ROW_TABLE_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "layout/schema.h"
#include "sim/memory_system.h"

namespace relfab::layout {

/// Builds one packed row field-by-field in schema order.
class RowBuilder {
 public:
  explicit RowBuilder(const Schema* schema)
      : schema_(schema), buffer_(schema->row_bytes()) {}

  RowBuilder& AddInt32(int32_t v) { return AddRaw(&v, 4, ColumnType::kInt32); }
  RowBuilder& AddInt64(int64_t v) { return AddRaw(&v, 8, ColumnType::kInt64); }
  RowBuilder& AddDouble(double v) {
    return AddRaw(&v, 8, ColumnType::kDouble);
  }
  RowBuilder& AddDate(int32_t days) {
    return AddRaw(&days, 4, ColumnType::kDate);
  }
  /// Pads/truncates to the column's fixed width.
  RowBuilder& AddChar(std::string_view s);

  /// The packed row; all fields must have been added.
  const uint8_t* Finish() {
    RELFAB_CHECK_EQ(next_column_, schema_->num_columns())
        << "row is missing fields";
    next_column_ = 0;
    return buffer_.data();
  }

  /// Restarts the builder for the next row.
  void Reset() { next_column_ = 0; }

 private:
  RowBuilder& AddRaw(const void* src, uint32_t bytes, ColumnType expect) {
    RELFAB_CHECK_LT(next_column_, schema_->num_columns());
    RELFAB_CHECK(schema_->type(next_column_) == expect)
        << "field " << next_column_ << " type mismatch";
    std::memcpy(buffer_.data() + schema_->offset(next_column_), src, bytes);
    ++next_column_;
    return *this;
  }

  const Schema* schema_;
  std::vector<uint8_t> buffer_;
  uint32_t next_column_ = 0;
};

/// The base data of the Relational Fabric design: a single packed
/// row-oriented table in simulated DRAM. This is the *only* physical copy
/// of the data — the COL baseline materializes its own copy, while RM
/// accesses this one through ephemeral views.
///
/// Functional data lives in host memory (`data_`); `base_addr_` is the
/// table's location in the simulated address space for timing.
class RowTable {
 public:
  /// Creates an empty table whose simulated storage can hold `capacity`
  /// rows. Appends beyond capacity relocate the table in simulated memory
  /// (new allocation), like a realloc would.
  RowTable(Schema schema, sim::MemorySystem* memory, uint64_t capacity = 0);

  /// Timing alias: a read-only view that shares `base`'s host bytes but
  /// lives at a fresh allocation in `memory`'s simulated address space.
  /// Engines running on the alias charge *that* memory system — which is
  /// how the shard scheduler re-hosts a shard (built on the fabric's
  /// memory) onto a worker-private rig without copying data. The alias
  /// is immutable (AppendRow/MutableRowData abort) and must not outlive
  /// `base`.
  static RowTable TimingAlias(const RowTable& base,
                              sim::MemorySystem* memory);

  RowTable(const RowTable&) = delete;
  RowTable& operator=(const RowTable&) = delete;
  RowTable(RowTable&&) = default;
  RowTable& operator=(RowTable&&) = default;

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  uint64_t capacity() const { return capacity_; }
  uint32_t row_bytes() const { return schema_.row_bytes(); }
  uint64_t data_bytes() const { return num_rows_ * row_bytes(); }

  /// Simulated address of the start of row `row`.
  uint64_t RowAddress(uint64_t row) const {
    return base_addr_ + row * row_bytes();
  }
  /// Simulated address of field `col` of row `row`.
  uint64_t FieldAddress(uint64_t row, uint32_t col) const {
    return RowAddress(row) + schema_.offset(col);
  }
  uint64_t base_address() const { return base_addr_; }

  /// Appends one packed row (row_bytes() bytes).
  void AppendRow(const uint8_t* packed_row);

  /// Host pointer to the packed bytes of a row.
  const uint8_t* RowData(uint64_t row) const {
    RELFAB_DCHECK(row < num_rows_);
    const uint8_t* base = shared_data_ != nullptr ? shared_data_ : data_.data();
    return base + row * row_bytes();
  }
  uint8_t* MutableRowData(uint64_t row) {
    RELFAB_DCHECK(row < num_rows_);
    RELFAB_CHECK(shared_data_ == nullptr) << "timing alias is read-only";
    return data_.data() + row * row_bytes();
  }

  /// True for TimingAlias views (read-only, borrowed host bytes).
  bool is_alias() const { return shared_data_ != nullptr; }

  // --- typed field access (functional only; callers charge the sim) ---
  int64_t GetInt(uint64_t row, uint32_t col) const {
    const uint8_t* p = RowData(row) + schema_.offset(col);
    switch (schema_.type(col)) {
      case ColumnType::kInt32:
      case ColumnType::kDate: {
        int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case ColumnType::kInt64: {
        int64_t v;
        std::memcpy(&v, p, 8);
        return v;
      }
      default:
        RELFAB_CHECK(false) << "GetInt on non-integer column " << col;
        return 0;
    }
  }

  double GetDouble(uint64_t row, uint32_t col) const {
    if (schema_.type(col) == ColumnType::kDouble) {
      double v;
      std::memcpy(&v, RowData(row) + schema_.offset(col), 8);
      return v;
    }
    return static_cast<double>(GetInt(row, col));
  }

  std::string_view GetChar(uint64_t row, uint32_t col) const {
    RELFAB_DCHECK(schema_.type(col) == ColumnType::kChar);
    return std::string_view(
        reinterpret_cast<const char*>(RowData(row) + schema_.offset(col)),
        schema_.width(col));
  }

  sim::MemorySystem* memory() const { return memory_; }

 private:
  void Grow(uint64_t min_capacity);

  Schema schema_;
  sim::MemorySystem* memory_;
  std::vector<uint8_t> data_;
  const uint8_t* shared_data_ = nullptr;  // set for TimingAlias views
  uint64_t base_addr_ = 0;
  uint64_t num_rows_ = 0;
  uint64_t capacity_ = 0;
};

}  // namespace relfab::layout

#endif  // RELFAB_LAYOUT_ROW_TABLE_H_
