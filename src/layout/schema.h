#ifndef RELFAB_LAYOUT_SCHEMA_H_
#define RELFAB_LAYOUT_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace relfab::layout {

/// Fixed-width column types. The paper's base data is a packed
/// row-oriented relational table of fixed-width attributes (Fig. 3);
/// variable-width data would be stored via fixed-width references.
enum class ColumnType : uint8_t {
  kInt32,
  kInt64,
  kDouble,
  kDate,  // days since epoch, stored as int32
  kChar,  // fixed-width character field
};

/// Byte width of a type; kChar takes its width from the column definition.
uint32_t FixedWidthOf(ColumnType type);

/// True for types whose values compare as int64 (everything but kDouble /
/// kChar).
bool IsIntegerType(ColumnType type);

std::string_view ColumnTypeToString(ColumnType type);

/// One column definition inside a schema.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Byte width; only meaningful for kChar (otherwise derived from type).
  uint32_t width = 0;
};

/// Ordered collection of fixed-width columns; knows each column's byte
/// offset inside a packed row. Immutable once built.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails on duplicate/empty names or zero-width kChar.
  static StatusOr<Schema> Create(std::vector<ColumnDef> columns);

  /// Convenience: a schema of `n` equally-typed columns named
  /// "c0".."c{n-1}" — the synthetic-table shape used throughout the
  /// paper's microbenchmarks (4-byte columns, 64-byte rows).
  static Schema Uniform(uint32_t num_columns, ColumnType type,
                        uint32_t char_width = 0);

  uint32_t num_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }
  uint32_t row_bytes() const { return row_bytes_; }

  const ColumnDef& column(uint32_t idx) const { return columns_[idx]; }
  uint32_t offset(uint32_t idx) const { return offsets_[idx]; }
  uint32_t width(uint32_t idx) const { return widths_[idx]; }
  ColumnType type(uint32_t idx) const { return columns_[idx].type; }

  /// Index of a column by name.
  StatusOr<uint32_t> IndexOf(std::string_view name) const;

  /// Human-readable description ("key:int64 @0, qty:int32 @8, ...").
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<ColumnDef> columns_;
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> widths_;
  uint32_t row_bytes_ = 0;
};

}  // namespace relfab::layout

#endif  // RELFAB_LAYOUT_SCHEMA_H_
