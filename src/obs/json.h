#ifndef RELFAB_OBS_JSON_H_
#define RELFAB_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace relfab::obs {

/// Minimal JSON document model for the observability layer: registry
/// snapshots, Chrome trace events and bench run reports are emitted and
/// re-read through this type, so exports can be round-trip tested without
/// an external dependency. Numbers are kept as double (every counter the
/// layer emits fits exactly below 2^53).
class Json {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                   // NOLINT
  Json(double v) : kind_(Kind::kNumber), number_(v) {}             // NOLINT
  Json(int64_t v)                                                  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(uint64_t v)                                                 // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(int v) : kind_(Kind::kNumber), number_(v) {}                // NOLINT
  Json(std::string s)                                              // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}        // NOLINT

  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  uint64_t AsUint() const { return static_cast<uint64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::map<std::string, Json>& members() const { return members_; }

  /// Array append.
  void Append(Json v) { items_.push_back(std::move(v)); }
  size_t size() const {
    return kind_ == Kind::kArray ? items_.size() : members_.size();
  }

  /// Object member access; Set inserts or overwrites.
  void Set(const std::string& key, Json v) {
    members_[key] = std::move(v);
  }
  bool Has(const std::string& key) const { return members_.count(key) > 0; }
  /// Null when absent (kind checks double as presence checks).
  const Json& at(const std::string& key) const {
    static const Json kNull;
    auto it = members_.find(key);
    return it == members_.end() ? kNull : it->second;
  }
  const Json& at(size_t i) const { return items_[i]; }

  /// Serializes compactly (indent < 0) or pretty-printed with `indent`
  /// spaces per level.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static StatusOr<Json> Parse(std::string_view text);

  /// Escapes a string for embedding in hand-built JSON output.
  static std::string Escape(std::string_view s);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::map<std::string, Json> members_;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_JSON_H_
