#include "obs/flight_recorder.h"

#include <cstdio>

namespace relfab::obs {

void FlightRecorder::Push(bool is_log, Tracer::Event event) {
  Entry entry;
  entry.is_log = is_log;
  entry.event = std::move(event);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[head_] = std::move(entry);
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

void FlightRecorder::Log(const std::string& component,
                         const std::string& message, uint64_t at_cycles) {
  Tracer::Event event;
  event.name = message;
  event.category = component;
  event.start_cycles = at_cycles;
  Push(true, std::move(event));
}

void FlightRecorder::Clear() {
  ring_.clear();
  head_ = 0;
}

std::vector<const FlightRecorder::Entry*> FlightRecorder::Ordered() const {
  std::vector<const Entry*> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    for (const Entry& e : ring_) out.push_back(&e);
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(&ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

Json FlightRecorder::ToJson() const {
  Json events = Json::Array();
  {
    Json meta = Json::Object();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", 1);
    meta.Set("tid", 1);
    Json args = Json::Object();
    args.Set("name", "flight recorder");
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (const Entry* entry : Ordered()) {
    const Tracer::Event& e = entry->event;
    Json ev = Json::Object();
    ev.Set("name", e.name);
    ev.Set("cat", e.category);
    ev.Set("ts", e.start_cycles);
    ev.Set("pid", 1);
    ev.Set("tid", static_cast<uint64_t>(e.track) + 1);
    if (entry->is_log) {
      ev.Set("ph", "i");
      ev.Set("s", "g");  // global-scope instant marker
    } else {
      ev.Set("ph", "X");
      ev.Set("dur", e.duration_cycles);
    }
    if (!e.args.empty()) {
      Json args = Json::Object();
      for (const auto& [k, v] : e.args) args.Set(k, v);
      ev.Set("args", std::move(args));
    }
    events.Append(std::move(ev));
  }
  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ns");
  Json meta = Json::Object();
  meta.Set("clock", "simulated-cycles");
  meta.Set("dumps", dumps_);
  meta.Set("reason", last_reason_);
  meta.Set("trigger_cycles", last_trigger_cycles_);
  meta.Set("entries_recorded", recorded_);
  doc.Set("otherData", std::move(meta));
  return doc;
}

Status FlightRecorder::TriggerDump(const std::string& reason,
                                   uint64_t at_cycles) {
  ++dumps_;
  last_reason_ = reason;
  last_trigger_cycles_ = at_cycles;
  Log("flight", "dump: " + reason, at_cycles);
  if (dump_path_.empty()) return Status::Ok();
  return WriteJson(dump_path_);
}

Status FlightRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open flight-recorder file '" + path +
                            "'");
  }
  const std::string text = ToJson().Dump(1);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to flight-recorder file '" + path +
                            "'");
  }
  return Status::Ok();
}

}  // namespace relfab::obs
