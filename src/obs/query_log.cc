#include "obs/query_log.h"

#include <sstream>

#include "common/format.h"

namespace relfab::obs {

Json QueryLogRecord::ToJson() const {
  Json doc = Json::Object();
  doc.Set("seq", seq);
  doc.Set("session", session);
  doc.Set("sql", sql);
  doc.Set("table", table);
  doc.Set("backend", backend);
  doc.Set("status", status);
  doc.Set("status_code", status_code);
  if (status == "error") doc.Set("error", error);
  doc.Set("cycles", cycles);
  doc.Set("end_cycles", end_cycles);
  doc.Set("rows_scanned", rows_scanned);
  doc.Set("rows_matched", rows_matched);
  doc.Set("shards_total", static_cast<uint64_t>(shards_total));
  doc.Set("shards_scanned", static_cast<uint64_t>(shards_scanned));
  doc.Set("shards_pruned", static_cast<uint64_t>(shards_pruned));
  doc.Set("shards_failed_over", static_cast<uint64_t>(shards_failed_over));
  doc.Set("net_bytes", net_bytes);
  doc.Set("shards_ship_rows", static_cast<uint64_t>(shards_ship_rows));
  doc.Set("shards_ship_aggs", static_cast<uint64_t>(shards_ship_aggs));
  doc.Set("degraded", degraded);
  doc.Set("degradation", degradation);
  doc.Set("faults_injected", faults_injected);
  doc.Set("fault_retries", fault_retries);
  doc.Set("fault_fallbacks", fault_fallbacks);
  return doc;
}

Status QueryLog::OpenSink(const std::string& path) {
  CloseSink();
  sink_ = std::fopen(path.c_str(), "a");
  if (sink_ == nullptr) {
    return Status::Internal("cannot open query-log sink '" + path + "'");
  }
  sink_path_ = path;
  return Status::Ok();
}

void QueryLog::CloseSink() {
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
  sink_path_.clear();
}

void QueryLog::Append(QueryLogRecord record) {
  record.seq = total_++;
  if (sink_ != nullptr) {
    const std::string line = record.ToJson().Dump() + "\n";
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fflush(sink_);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<const QueryLogRecord*> QueryLog::Recent() const {
  std::vector<const QueryLogRecord*> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    for (const QueryLogRecord& r : ring_) out.push_back(&r);
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(&ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

Status QueryLog::ValidateRecord(const Json& record) {
  if (!record.is_object()) {
    return Status::InvalidArgument("query-log record must be an object");
  }
  static constexpr const char* kStringFields[] = {
      "session", "sql", "table", "backend", "status", "status_code",
      "degradation"};
  for (const char* field : kStringFields) {
    if (!record.at(field).is_string()) {
      return Status::InvalidArgument(std::string("query-log field '") +
                                     field + "' must be a string");
    }
  }
  static constexpr const char* kNumberFields[] = {
      "seq",           "cycles",          "end_cycles",
      "rows_scanned",  "rows_matched",    "shards_total",
      "shards_scanned", "shards_pruned",  "shards_failed_over",
      "net_bytes",     "shards_ship_rows", "shards_ship_aggs",
      "faults_injected", "fault_retries", "fault_fallbacks"};
  for (const char* field : kNumberFields) {
    if (!record.at(field).is_number() || record.at(field).AsNumber() < 0) {
      return Status::InvalidArgument(std::string("query-log field '") +
                                     field +
                                     "' must be a non-negative number");
    }
  }
  if (!record.at("degraded").is_bool()) {
    return Status::InvalidArgument(
        "query-log field 'degraded' must be a bool");
  }
  const std::string& status = record.at("status").AsString();
  if (status != "ok" && status != "error") {
    return Status::InvalidArgument(
        "query-log field 'status' must be \"ok\" or \"error\"");
  }
  if (status == "error" && !record.at("error").is_string()) {
    return Status::InvalidArgument(
        "query-log error records must carry an 'error' string");
  }
  return Status::Ok();
}

Status QueryLog::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open query-log file '" + path + "'");
  }
  for (const QueryLogRecord* r : Recent()) {
    const std::string line = r->ToJson().Dump() + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      return Status::Internal("short write to query-log file '" + path +
                              "'");
    }
  }
  std::fclose(f);
  return Status::Ok();
}

std::string QueryLog::ToTable(size_t last_n) const {
  std::vector<const QueryLogRecord*> recent = Recent();
  const size_t begin = recent.size() > last_n ? recent.size() - last_n : 0;
  std::ostringstream os;
  os << "=== query log (" << total_ << " statements, showing "
     << recent.size() - begin << ") ===\n";
  for (size_t i = begin; i < recent.size(); ++i) {
    const QueryLogRecord& r = *recent[i];
    os << "  #" << r.seq << " [" << r.session << "] " << r.backend;
    if (r.shards_total > 0) {
      os << " shards=" << r.shards_scanned << "/" << r.shards_total;
      if (r.shards_failed_over > 0) {
        os << " failed_over=" << r.shards_failed_over;
      }
      if (r.shards_ship_rows + r.shards_ship_aggs > 0) {
        os << " ship={rows:" << r.shards_ship_rows << ",aggs:"
           << r.shards_ship_aggs << "} net=" << FormatCount(r.net_bytes);
      }
    }
    os << " cycles=" << FormatCount(r.cycles)
       << " rows=" << FormatCount(r.rows_matched);
    if (r.status != "ok") os << " ERROR(" << r.error << ")";
    if (r.degraded) os << " DEGRADED(" << r.degradation << ")";
    if (r.faults_injected > 0) os << " faults=" << r.faults_injected;
    os << "  " << r.sql << '\n';
  }
  return os.str();
}

}  // namespace relfab::obs
