#include "obs/digest.h"

#include <sstream>

#include "common/format.h"

namespace relfab::obs {

Histogram* DigestSet::digest(const std::string& name) {
  auto it = digests_.find(name);
  if (it == digests_.end()) {
    it = digests_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

void DigestSet::MergeFrom(const DigestSet& other) {
  for (const auto& [name, h] : other.digests_) digest(name)->Merge(*h);
}

void DigestSet::Reset() {
  for (auto& [name, h] : digests_) *h = Histogram();
}

Json DigestSet::ToJson() const {
  Json doc = Json::Object();
  for (const auto& [name, h] : digests_) {
    Json dj = Json::Object();
    dj.Set("count", h->count());
    dj.Set("min", h->min());
    dj.Set("max", h->max());
    dj.Set("mean", h->mean());
    dj.Set("p50", h->Quantile(0.5));
    dj.Set("p90", h->Quantile(0.9));
    dj.Set("p99", h->Quantile(0.99));
    dj.Set("p999", h->Quantile(0.999));
    doc.Set(name, std::move(dj));
  }
  return doc;
}

std::string DigestSet::ToTable() const {
  std::ostringstream os;
  os << "=== latency digests (simulated cycles) ===\n";
  for (const auto& [name, h] : digests_) {
    os << "  " << name;
    for (size_t i = name.size(); i < 32; ++i) os << ' ';
    os << " n=" << FormatCount(h->count())
       << " p50=" << FormatDouble(h->Quantile(0.5), 0)
       << " p90=" << FormatDouble(h->Quantile(0.9), 0)
       << " p99=" << FormatDouble(h->Quantile(0.99), 0)
       << " p999=" << FormatDouble(h->Quantile(0.999), 0)
       << " max=" << FormatDouble(h->max(), 0) << '\n';
  }
  return os.str();
}

void DigestSet::ExportTo(Registry* registry) const {
  for (const auto& [name, h] : digests_) {
    registry->histogram("digest." + name)->Merge(*h);
  }
}

}  // namespace relfab::obs
