#ifndef RELFAB_OBS_TRACE_H_
#define RELFAB_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace relfab::obs {

class FlightRecorder;

/// Span-based tracer over the *simulated* clock. Components open RAII
/// Spans around units of work (one query operator, one column-group
/// gather chunk, one MVCC commit); the tracer records them as Chrome
/// trace-event "complete" events that load directly into Perfetto or
/// chrome://tracing, with simulated cycles presented as microseconds.
///
/// Disabled by default: a null or disabled tracer makes Span construction
/// a single branch and records nothing, so traced code paths cost nothing
/// in normal runs.
class Tracer {
 public:
  struct Event {
    std::string name;
    std::string category;
    uint64_t start_cycles = 0;
    uint64_t duration_cycles = 0;
    uint32_t depth = 0;  // nesting level at emission (0 = top level)
    uint32_t track = 0;  // 0 = main simulated-CPU track (see RegisterTrack)
    std::vector<std::pair<std::string, std::string>> args;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Wires the simulated clock (e.g. [&m] { return m.ElapsedCycles(); }).
  /// Until a clock is set the tracer stays at timestamp 0.
  void SetClock(std::function<uint64_t()> clock) {
    clock_ = std::move(clock);
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Attaches a flight recorder: every span the tracer sees is also
  /// pushed into the recorder's fixed-size ring, even while full
  /// tracing is disabled. Null detaches. The recorder is not owned.
  void set_flight_recorder(FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  FlightRecorder* flight_recorder() const { return recorder_; }

  /// True when spans should be recorded at all — either full tracing is
  /// on or a flight recorder is capturing the recent-span ring.
  bool active() const { return enabled_ || recorder_ != nullptr; }

  uint64_t Now() const {
    const uint64_t t = clock_ ? clock_() : 0;
    // The simulated clock can be reset between timing windows; keep the
    // trace monotonic so spans never end before they start.
    if (t + offset_ < last_ts_) offset_ = last_ts_ - t;
    last_ts_ = t + offset_;
    return last_ts_;
  }

  /// Low-level emission for events whose timing lives in another domain
  /// (e.g. the storage clock of RsEngine). Feeds the full trace buffer
  /// when tracing is enabled and the flight-recorder ring when one is
  /// attached (out of line: FlightRecorder is incomplete here).
  void Emit(Event event);

  /// Registers a named timeline separate from the main simulated-CPU
  /// track (track 0). Events carrying the returned id render as their own
  /// row in the trace viewer — components with an independent clock
  /// domain (the RS device pipeline, say) get a real timeline instead of
  /// being folded into the CPU one. Idempotent per name.
  uint32_t RegisterTrack(const std::string& name) {
    for (uint32_t i = 0; i < tracks_.size(); ++i) {
      if (tracks_[i] == name) return i + 1;
    }
    tracks_.push_back(name);
    return static_cast<uint32_t>(tracks_.size());
  }

  /// Names of registered extra tracks (index i is track id i + 1).
  const std::vector<std::string>& tracks() const { return tracks_; }

  const std::vector<Event>& events() const { return events_; }
  void Clear() {
    events_.clear();
    // Keep the monotonic floor: already-recorded traces stay ordered.
  }

  /// Current span nesting depth (spans still open).
  uint32_t depth() const { return depth_; }

  /// Chrome trace-event JSON: {"traceEvents": [...], ...}. Timestamps are
  /// simulated cycles reported in the format's microsecond field.
  Json ToJson() const;

  /// Writes ToJson() to `path` (pretty-printed).
  Status WriteJson(const std::string& path) const;

 private:
  friend class Span;

  bool enabled_ = false;
  std::function<uint64_t()> clock_;
  mutable uint64_t last_ts_ = 0;
  mutable uint64_t offset_ = 0;
  uint32_t depth_ = 0;
  std::vector<Event> events_;
  std::vector<std::string> tracks_;
  FlightRecorder* recorder_ = nullptr;
};

/// RAII span: records [construction, destruction) as one complete event.
/// With a null or disabled tracer every method is a no-op.
class Span {
 public:
  Span(Tracer* tracer, std::string name, std::string category = "relfab")
      : tracer_(tracer != nullptr && tracer->active() ? tracer : nullptr) {
    if (tracer_ == nullptr) return;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.start_cycles = tracer_->Now();
    event_.depth = tracer_->depth_++;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value argument shown in the trace viewer.
  void AddArg(const std::string& key, std::string value) {
    if (tracer_ == nullptr) return;
    event_.args.emplace_back(key, std::move(value));
  }
  void AddArg(const std::string& key, uint64_t value) {
    AddArg(key, std::to_string(value));
  }

  /// Closes the span early (destruction becomes a no-op).
  void End() {
    if (tracer_ == nullptr) return;
    const uint64_t now = tracer_->Now();
    event_.duration_cycles = now - event_.start_cycles;
    --tracer_->depth_;
    tracer_->Emit(std::move(event_));
    tracer_ = nullptr;
  }

  ~Span() { End(); }

 private:
  Tracer* tracer_;
  Tracer::Event event_;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_TRACE_H_
