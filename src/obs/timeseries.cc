#include "obs/timeseries.h"

#include <algorithm>
#include <sstream>

#include "common/format.h"

namespace relfab::obs {

TimeSeries::TimeSeries(uint64_t window_cycles, size_t capacity)
    : window_cycles_(window_cycles == 0 ? 1 : window_cycles),
      capacity_(capacity == 0 ? 1 : capacity) {}

std::map<std::string, TimeSeries::Reading> TimeSeries::Read(
    const Registry& registry) const {
  std::map<std::string, Reading> out;
  for (const std::string& name : tracked_) {
    auto c = registry.counters().find(name);
    if (c != registry.counters().end()) {
      out[name] = {static_cast<double>(c->second->value()), true};
      continue;
    }
    auto g = registry.gauges().find(name);
    if (g != registry.gauges().end()) {
      out[name] = {g->second->value(), false};
    }
  }
  return out;
}

void TimeSeries::CloseWindow(uint64_t boundary_index) {
  Window w;
  w.index = open_index_;
  w.start_cycles = open_index_ * window_cycles_;
  w.end_cycles = w.start_cycles + window_cycles_;
  w.samples = open_samples_;
  for (const auto& [name, reading] : last_) {
    if (reading.is_counter) {
      double base = 0;
      auto it = window_base_.find(name);
      if (it != window_base_.end() && it->second.is_counter) {
        base = it->second.value;
      }
      w.values[name] = reading.value - base;
    } else {
      w.values[name] = reading.value;
    }
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(w));
  } else {
    ring_[ring_head_] = std::move(w);
    ring_head_ = (ring_head_ + 1) % capacity_;
  }
  ++windows_closed_;
  open_index_ = boundary_index;
}

void TimeSeries::Sample(const Registry& registry, uint64_t now_cycles) {
  std::map<std::string, Reading> readings = Read(registry);
  const uint64_t idx = now_cycles / window_cycles_;
  if (!open_) {
    open_ = true;
    open_index_ = idx;
    open_samples_ = 0;
    window_base_ = last_;  // empty on the very first sample: deltas from 0
  } else if (idx > open_index_) {
    // The activity between the last in-window sample and this one is
    // attributed to the closing window — a fixed convention that keeps
    // the series deterministic no matter how samples straddle
    // boundaries. Skipped windows (no samples at all) are simply
    // absent from the ring.
    last_ = readings;
    CloseWindow(idx);
    open_samples_ = 0;
    window_base_ = readings;
  }
  last_ = std::move(readings);
  ++open_samples_;
}

std::vector<TimeSeries::Window> TimeSeries::Windows() const {
  std::vector<Window> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
    }
  }
  return out;
}

Json TimeSeries::ToJson() const {
  Json doc = Json::Object();
  doc.Set("window_cycles", window_cycles_);
  doc.Set("capacity", static_cast<uint64_t>(capacity_));
  doc.Set("windows_closed", windows_closed_);
  Json windows = Json::Array();
  for (const Window& w : Windows()) {
    Json wj = Json::Object();
    wj.Set("index", w.index);
    wj.Set("start_cycles", w.start_cycles);
    wj.Set("end_cycles", w.end_cycles);
    wj.Set("samples", w.samples);
    Json values = Json::Object();
    for (const auto& [name, v] : w.values) values.Set(name, v);
    wj.Set("values", std::move(values));
    windows.Append(std::move(wj));
  }
  doc.Set("windows", std::move(windows));
  return doc;
}

std::string TimeSeries::ToTable(size_t last_n) const {
  std::vector<Window> windows = Windows();
  const size_t begin =
      windows.size() > last_n ? windows.size() - last_n : 0;
  std::ostringstream os;
  os << "=== time-series (window = " << FormatCount(window_cycles_)
     << " cycles) ===\n";
  if (windows.empty()) {
    os << "  (no closed windows yet)\n";
    return os.str();
  }
  for (size_t i = begin; i < windows.size(); ++i) {
    const Window& w = windows[i];
    os << "  window " << w.index << " [" << FormatCount(w.start_cycles)
       << ", " << FormatCount(w.end_cycles) << ") samples=" << w.samples;
    for (const auto& [name, v] : w.values) {
      os << ' ' << name << '=' << FormatDouble(v, 0);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace relfab::obs
