#include "obs/report.h"

#include <cstdio>

namespace relfab::obs {

Json RunReport::ToJson() const {
  Json doc = Json::Object();
  doc.Set("schema_version", 2);
  doc.Set("bench", name_);
  Json config = Json::Object();
  for (const auto& [k, v] : config_) config.Set(k, v);
  doc.Set("config", std::move(config));
  Json results = Json::Array();
  for (const Result& r : results_) {
    Json rj = Json::Object();
    rj.Set("series", r.series);
    rj.Set("x", r.x);
    rj.Set("sim_cycles", r.sim_cycles);
    rj.Set("host_wall_ms", r.host_wall_ms);
    if (r.lines_per_sec >= 0) {
      rj.Set("sim_lines_per_host_sec", r.lines_per_sec);
    }
    results.Append(std::move(rj));
  }
  doc.Set("results", std::move(results));
  doc.Set("metrics", metrics_);
  return doc;
}

Status RunReport::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open report file '" + path + "'");
  }
  const std::string text = ToJson().Dump(1);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to report file '" + path + "'");
  }
  return Status::Ok();
}

Status RunReport::Validate(const Json& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("report must be a JSON object");
  }
  if (!doc.at("schema_version").is_number() ||
      doc.at("schema_version").AsUint() != 2) {
    return Status::InvalidArgument("report schema_version must be 2");
  }
  if (!doc.at("bench").is_string() || doc.at("bench").AsString().empty()) {
    return Status::InvalidArgument("report 'bench' must be a non-empty string");
  }
  if (!doc.at("config").is_object()) {
    return Status::InvalidArgument("report 'config' must be an object");
  }
  for (const auto& [k, v] : doc.at("config").members()) {
    if (!v.is_string()) {
      return Status::InvalidArgument("config value '" + k +
                                     "' must be a string");
    }
  }
  if (!doc.at("results").is_array()) {
    return Status::InvalidArgument("report 'results' must be an array");
  }
  for (const Json& r : doc.at("results").items()) {
    if (!r.is_object() || !r.at("series").is_string() ||
        !r.at("x").is_string() || !r.at("sim_cycles").is_number() ||
        !r.at("host_wall_ms").is_number()) {
      return Status::InvalidArgument(
          "each result needs string 'series'/'x' and numeric "
          "'sim_cycles'/'host_wall_ms'");
    }
    if (!r.at("sim_lines_per_host_sec").is_null() &&
        !r.at("sim_lines_per_host_sec").is_number()) {
      return Status::InvalidArgument(
          "'sim_lines_per_host_sec' must be numeric when present");
    }
  }
  if (!doc.at("metrics").is_object()) {
    return Status::InvalidArgument("report 'metrics' must be an object");
  }
  // The metrics snapshot must itself be a loadable registry document.
  Registry probe;
  return probe.FromJson(doc.at("metrics"));
}

}  // namespace relfab::obs
