#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace relfab::obs {

namespace {

/// Formats a double the way JSON expects: integers without a fraction,
/// everything else with enough digits to round-trip.
void AppendNumber(std::string* out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out->append(buf);
    return;
  }
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null.
    out->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        RELFAB_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json());
      default:
        return ParseNumber();
    }
  }

  Status ExpectEnd() {
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters").status();
    return Status::Ok();
  }

 private:
  StatusOr<Json> Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  StatusOr<Json> ParseLiteral(std::string_view word, Json value) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return value;
  }

  StatusOr<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("bad number");
    return Json(v);
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("bad escape").status();
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape").status();
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Fail("bad \\u escape").status();
          }
          // The layer only emits ASCII; decode BMP code points to UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Fail("bad escape").status();
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string").status();
    ++pos_;  // closing quote
    return out;
  }

  StatusOr<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      RELFAB_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return arr;
      }
      return Fail("expected ',' or ']'");
    }
  }

  StatusOr<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected a member name");
      }
      RELFAB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      RELFAB_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(key, std::move(v));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return obj;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  std::string pad;
  std::string close_pad;
  if (indent >= 0) {
    pad.assign(1, '\n');
    pad.append(static_cast<size_t>(indent) * (depth + 1), ' ');
    close_pad.assign(1, '\n');
    close_pad.append(static_cast<size_t>(indent) * depth, ' ');
  }
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kNumber:
      AppendNumber(out, number_);
      return;
    case Kind::kString:
      out->push_back('"');
      out->append(Escape(string_));
      out->push_back('"');
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out->append("[]");
        return;
      }
      out->push_back('[');
      bool first = true;
      for (const Json& v : items_) {
        if (!first) out->push_back(',');
        first = false;
        out->append(pad);
        v.DumpTo(out, indent, depth + 1);
      }
      out->append(close_pad);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out->append("{}");
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        out->append(pad);
        out->push_back('"');
        out->append(Escape(k));
        out->append(indent < 0 ? "\":" : "\": ");
        v.DumpTo(out, indent, depth + 1);
      }
      out->append(close_pad);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

StatusOr<Json> Json::Parse(std::string_view text) {
  Reader reader(text);
  RELFAB_ASSIGN_OR_RETURN(Json value, reader.ParseValue());
  RELFAB_RETURN_IF_ERROR(reader.ExpectEnd());
  return value;
}

}  // namespace relfab::obs
