#ifndef RELFAB_OBS_FLIGHT_RECORDER_H_
#define RELFAB_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace relfab::obs {

/// Always-on incident capture: a fixed-size ring of the most recent
/// spans and log events, cheap enough to leave running in every
/// telemetry-enabled session. When something goes wrong — relfab::faults
/// fires, a query degrades — TriggerDump() snapshots the ring to a
/// Perfetto/Chrome-trace-compatible JSON artifact, so the question
/// "what was the fabric doing right before the incident?" has an
/// answer without re-running with full tracing on.
///
/// Spans arrive via Tracer::set_flight_recorder (the tracer pushes every
/// span it sees into the ring even while full tracing is disabled);
/// components add discrete markers with Log(). All timestamps are
/// simulated cycles — the recorder never reads a wall clock.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends a completed span (called by the attached Tracer).
  void RecordSpan(const Tracer::Event& event) { Push(false, event); }

  /// Appends a discrete marker (degradation notes, fault hits, ...).
  void Log(const std::string& component, const std::string& message,
           uint64_t at_cycles);

  /// File every dump is written to (overwritten per incident — the
  /// artifact always holds the latest one). Empty disables file output;
  /// TriggerDump still counts incidents and stamps the reason.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }

  /// Records an incident: bumps the dump counter, remembers the reason,
  /// and writes the ring to dump_path() when one is set.
  Status TriggerDump(const std::string& reason, uint64_t at_cycles);

  uint64_t dumps() const { return dumps_; }
  const std::string& last_reason() const { return last_reason_; }
  uint64_t last_trigger_cycles() const { return last_trigger_cycles_; }

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  /// Total entries ever recorded (>= size() once the ring wraps).
  uint64_t recorded() const { return recorded_; }

  void Clear();

  /// Chrome trace-event JSON of the ring, oldest entry first: spans as
  /// "X" complete events, Log() markers as "i" instant events, plus the
  /// incident metadata under "otherData".
  Json ToJson() const;

  /// Writes ToJson() to `path` (pretty-printed).
  Status WriteJson(const std::string& path) const;

 private:
  struct Entry {
    bool is_log = false;
    Tracer::Event event;
  };

  void Push(bool is_log, Tracer::Event event);
  std::vector<const Entry*> Ordered() const;

  size_t capacity_;
  std::vector<Entry> ring_;
  size_t head_ = 0;  // next slot to overwrite once full
  uint64_t recorded_ = 0;
  uint64_t dumps_ = 0;
  std::string dump_path_;
  std::string last_reason_;
  uint64_t last_trigger_cycles_ = 0;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_FLIGHT_RECORDER_H_
