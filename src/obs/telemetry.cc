#include "obs/telemetry.h"

#include <sstream>

#include "common/format.h"

namespace relfab::obs {

WorkloadTelemetry::WorkloadTelemetry(TelemetryConfig config)
    : config_(std::move(config)),
      timeseries_(config_.window_cycles, config_.timeseries_capacity),
      query_log_(config_.query_log_capacity),
      flight_recorder_(config_.flight_recorder_capacity) {
  // The bundle's own exported counters are always tracked; configured
  // instruments come on top.
  timeseries_.Track("telemetry.statements");
  timeseries_.Track("telemetry.cycles");
  timeseries_.Track("telemetry.errors");
  timeseries_.Track("telemetry.degraded");
  timeseries_.Track("telemetry.faults.injected");
  for (const std::string& name : config_.tracked) timeseries_.Track(name);
}

void WorkloadTelemetry::RecordStatement(const Statement& statement) {
  workload_cycles_ += statement.cycles;
  ++statements_;
  if (!statement.ok) ++errors_;
  if (statement.degraded) ++degraded_statements_;
  faults_injected_ += statement.faults_injected;
  fault_fallbacks_ += statement.fault_fallbacks;

  digests_.Observe("query.cycles", static_cast<double>(statement.cycles));
  if (!statement.backend.empty()) {
    digests_.Observe("query." + statement.backend + ".cycles",
                     static_cast<double>(statement.cycles));
  }

  QueryLogRecord record;
  record.session = config_.session;
  record.sql = statement.sql;
  record.table = statement.table;
  record.backend = statement.backend;
  record.status = statement.ok ? "ok" : "error";
  record.error = statement.error;
  record.status_code = statement.status_code;
  record.cycles = statement.cycles;
  record.end_cycles = workload_cycles_;
  record.rows_scanned = statement.rows_scanned;
  record.rows_matched = statement.rows_matched;
  record.shards_total = statement.shards_total;
  record.shards_scanned = statement.shards_scanned;
  record.shards_pruned = statement.shards_pruned;
  record.shards_failed_over = statement.shards_failed_over;
  record.net_bytes = statement.net_bytes;
  record.shards_ship_rows = statement.shards_ship_rows;
  record.shards_ship_aggs = statement.shards_ship_aggs;
  record.degraded = statement.degraded;
  record.degradation = statement.degradation;
  record.faults_injected = statement.faults_injected;
  record.fault_retries = statement.fault_retries;
  record.fault_fallbacks = statement.fault_fallbacks;
  query_log_.Append(std::move(record));

  if (statement.degraded || statement.faults_injected > 0) {
    std::string reason;
    if (statement.degraded) {
      reason = "degraded: " + statement.degradation;
    } else {
      reason = "faults: " + std::to_string(statement.faults_injected) +
               " injected";
    }
    const Status dumped =
        flight_recorder_.TriggerDump(reason, workload_cycles_);
    if (!dumped.ok()) ++dump_failures_;
  }
}

void WorkloadTelemetry::ExportTo(Registry* registry) const {
  registry->counter("telemetry.statements")->Set(statements_);
  registry->counter("telemetry.cycles")->Set(workload_cycles_);
  registry->counter("telemetry.errors")->Set(errors_);
  registry->counter("telemetry.degraded")->Set(degraded_statements_);
  registry->counter("telemetry.faults.injected")->Set(faults_injected_);
  registry->counter("telemetry.faults.fallbacks")->Set(fault_fallbacks_);
  registry->counter("telemetry.flight.dumps")
      ->Set(flight_recorder_.dumps());
}

Json WorkloadTelemetry::ToJson() const {
  Json doc = Json::Object();
  doc.Set("session", config_.session);
  doc.Set("workload_cycles", workload_cycles_);
  doc.Set("statements", statements_);
  doc.Set("errors", errors_);
  doc.Set("degraded", degraded_statements_);
  doc.Set("faults_injected", faults_injected_);
  doc.Set("fault_fallbacks", fault_fallbacks_);
  doc.Set("flight_recorder_dumps", flight_recorder_.dumps());
  doc.Set("timeseries", timeseries_.ToJson());
  doc.Set("digests", digests_.ToJson());
  return doc;
}

std::string WorkloadTelemetry::ToTable() const {
  std::ostringstream os;
  os << "=== workload [" << config_.session << "] ===\n"
     << "  statements=" << FormatCount(statements_)
     << " errors=" << FormatCount(errors_)
     << " degraded=" << FormatCount(degraded_statements_)
     << " faults=" << FormatCount(faults_injected_)
     << " dumps=" << FormatCount(flight_recorder_.dumps())
     << " cycles=" << FormatCount(workload_cycles_) << '\n';
  os << timeseries_.ToTable();
  os << digests_.ToTable();
  return os.str();
}

}  // namespace relfab::obs
