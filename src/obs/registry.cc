#include "obs/registry.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/format.h"

namespace relfab::obs {

uint32_t Histogram::BucketFor(double v) {
  if (!(v >= 1.0)) return 0;  // NaN and sub-1 values land in bucket 0
  // Octave = floor(log2(v)); sub-bucket = linear position inside it.
  const int exp = std::min(62, static_cast<int>(std::floor(std::log2(v))));
  const double lower = std::ldexp(1.0, exp);
  const uint32_t sub = std::min(
      kSubBuckets - 1,
      static_cast<uint32_t>((v - lower) / lower * kSubBuckets));
  return std::min(kNumBuckets - 1,
                  static_cast<uint32_t>(exp) * kSubBuckets + sub);
}

double Histogram::BucketLowerEdge(uint32_t b) {
  const uint32_t exp = b / kSubBuckets;
  const uint32_t sub = b % kSubBuckets;
  const double lower = std::ldexp(1.0, static_cast<int>(exp));
  return lower + lower * sub / kSubBuckets;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min();
  if (q >= 1) return max();
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Report the bucket's upper edge, clamped to the observed max.
      const double upper = BucketLowerEdge(b + 1);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (uint32_t b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
}

void Registry::Reset() {
  for (auto& [name, c] : counters_) c->Set(0);
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) *h = Histogram();
}

void Registry::MergeFrom(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name)->Inc(c->value());
  }
  for (const auto& [name, g] : other.gauges_) gauge(name)->Set(g->value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name)->Merge(*h);
  }
}

Json Registry::ToJson() const {
  Json doc = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, c] : counters_) counters.Set(name, c->value());
  Json gauges = Json::Object();
  for (const auto& [name, g] : gauges_) gauges.Set(name, g->value());
  Json histograms = Json::Object();
  for (const auto& [name, h] : histograms_) {
    Json hj = Json::Object();
    hj.Set("count", h->count());
    hj.Set("sum", h->sum());
    hj.Set("min", h->min());
    hj.Set("max", h->max());
    hj.Set("mean", h->mean());
    hj.Set("p50", h->Quantile(0.5));
    hj.Set("p90", h->Quantile(0.9));
    hj.Set("p99", h->Quantile(0.99));
    hj.Set("p999", h->Quantile(0.999));
    // Buckets carry both edges so external tools (analyze_query_log.py,
    // notebook consumers) can re-derive any quantile without knowing the
    // log-linear layout: [lower_edge, upper_edge, count].
    Json buckets = Json::Array();
    for (uint32_t b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h->buckets()[b] == 0) continue;
      Json triple = Json::Array();
      triple.Append(Histogram::BucketLowerEdge(b));
      triple.Append(Histogram::BucketLowerEdge(b + 1));
      triple.Append(h->buckets()[b]);
      buckets.Append(std::move(triple));
    }
    hj.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(hj));
  }
  doc.Set("counters", std::move(counters));
  doc.Set("gauges", std::move(gauges));
  doc.Set("histograms", std::move(histograms));
  return doc;
}

Status Registry::FromJson(const Json& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("registry snapshot must be an object");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (doc.Has(section) && !doc.at(section).is_object()) {
      return Status::InvalidArgument(std::string("registry section '") +
                                     section + "' must be an object");
    }
  }
  for (const auto& [name, v] : doc.at("counters").members()) {
    if (!v.is_number()) {
      return Status::InvalidArgument("counter '" + name + "' is not numeric");
    }
    counter(name)->Set(v.AsUint());
  }
  for (const auto& [name, v] : doc.at("gauges").members()) {
    if (!v.is_number()) {
      return Status::InvalidArgument("gauge '" + name + "' is not numeric");
    }
    gauge(name)->Set(v.AsNumber());
  }
  for (const auto& [name, hj] : doc.at("histograms").members()) {
    if (!hj.is_object() || !hj.at("buckets").is_array()) {
      return Status::InvalidArgument("histogram '" + name + "' is malformed");
    }
    Histogram* h = histogram(name);
    *h = Histogram();
    // Buckets were serialized by lower edge, and a lower edge maps back
    // to its own bucket, so the bucket array restores exactly. Accepts
    // both the [lower, upper, count] triple and the legacy
    // [lower, count] pair layout.
    for (const Json& entry : hj.at("buckets").items()) {
      if (!entry.is_array() || entry.size() < 2 || entry.size() > 3) {
        return Status::InvalidArgument("histogram '" + name +
                                       "' has a malformed bucket");
      }
      h->AddBucketCount(entry.at(0).AsNumber(),
                        entry.at(entry.size() - 1).AsUint());
    }
    h->RestoreMoments(hj.at("sum").AsNumber(), hj.at("min").AsNumber(),
                      hj.at("max").AsNumber());
  }
  return Status::Ok();
}

std::string Registry::ToTable() const {
  // Single sorted pass over all instrument kinds: each per-kind map is
  // already name-ordered, so a three-way merge keeps the whole dump in
  // one stable lexicographic order and metric-dump diffs deterministic.
  std::ostringstream os;
  os << "=== metrics ===\n";
  auto pad = [&os](const std::string& name) {
    os << "  " << name;
    for (size_t i = name.size(); i < 40; ++i) os << ' ';
  };
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto h = histograms_.begin();
  while (c != counters_.end() || g != gauges_.end() ||
         h != histograms_.end()) {
    const std::string* next = nullptr;
    if (c != counters_.end()) next = &c->first;
    if (g != gauges_.end() && (next == nullptr || g->first < *next)) {
      next = &g->first;
    }
    if (h != histograms_.end() && (next == nullptr || h->first < *next)) {
      next = &h->first;
    }
    if (c != counters_.end() && &c->first == next) {
      pad(c->first);
      os << ' ' << FormatCount(c->second->value()) << '\n';
      ++c;
    } else if (g != gauges_.end() && &g->first == next) {
      pad(g->first);
      os << ' ' << FormatDouble(g->second->value(), 4) << '\n';
      ++g;
    } else {
      pad(h->first);
      const Histogram& hist = *h->second;
      os << " count=" << FormatCount(hist.count())
         << " mean=" << FormatDouble(hist.mean(), 2)
         << " p50=" << FormatDouble(hist.Quantile(0.5), 2)
         << " p99=" << FormatDouble(hist.Quantile(0.99), 2)
         << " max=" << FormatDouble(hist.max(), 2) << '\n';
      ++h;
    }
  }
  return os.str();
}

}  // namespace relfab::obs
