#ifndef RELFAB_OBS_REPORT_H_
#define RELFAB_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace relfab::obs {

/// Machine-readable record of one bench (or any instrumented) run:
/// configuration, per-point results and a registry snapshot, emitted as a
/// single JSON document so the perf trajectory can be collected and
/// diffed by tooling (see bench/bench_report.schema.json).
class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  /// Free-form run configuration ("rows" -> "1048576", "full" -> "0").
  void SetConfig(const std::string& key, const std::string& value) {
    config_[key] = value;
  }
  void SetConfig(const std::string& key, uint64_t value) {
    config_[key] = std::to_string(value);
  }

  /// One measured point: a (series, x) cell with its simulated cycles,
  /// the host wall-clock time the cell's simulation took, and — when the
  /// bench noted how many cache lines the cell simulated — the derived
  /// simulation throughput. `host_wall_ms` is real time and therefore
  /// machine- and load-dependent; tooling that diffs reports for
  /// correctness must compare sim_cycles only (tools/compare_bench_json.py
  /// does exactly that).
  void AddResult(const std::string& series, const std::string& x,
                 uint64_t sim_cycles, double host_wall_ms = 0.0,
                 uint64_t sim_lines = 0) {
    double lines_per_sec = -1.0;
    if (sim_lines > 0 && host_wall_ms > 0) {
      lines_per_sec = static_cast<double>(sim_lines) / (host_wall_ms / 1e3);
    }
    results_.push_back({series, x, sim_cycles, host_wall_ms, lines_per_sec});
  }

  /// Attaches the final registry snapshot.
  void SetMetrics(const Registry& registry) { metrics_ = registry.ToJson(); }

  Json ToJson() const;

  /// Writes ToJson() to `path`, pretty-printed.
  Status WriteTo(const std::string& path) const;

  /// Structural validation of a report document (the same checks the CI
  /// schema job performs): required keys present with the right types.
  static Status Validate(const Json& doc);

 private:
  struct Result {
    std::string series;
    std::string x;
    uint64_t sim_cycles;
    double host_wall_ms = 0.0;
    double lines_per_sec = -1.0;  // < 0: bench did not note sim lines
  };

  std::string name_;
  std::map<std::string, std::string> config_;
  std::vector<Result> results_;
  Json metrics_ = Json::Object();
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_REPORT_H_
