#ifndef RELFAB_OBS_QUERY_PROFILE_H_
#define RELFAB_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace relfab::obs {

/// One reading of the simulator's accumulating meters. Engines fill this
/// from sim::MemorySystem; obs stays independent of the simulator so the
/// same profile type can later carry storage- or shard-domain samples.
struct MeterSample {
  double cpu_cycles = 0;
  double channel_busy_cycles = 0;
  uint64_t dram_lines_demand = 0;
  uint64_t dram_lines_gather = 0;
  uint64_t fabric_reads = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
};

/// Per-operator execution statistics for one query (EXPLAIN ANALYZE).
struct OpStats {
  std::string name;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  double cpu_cycles = 0;
  uint64_t dram_lines_demand = 0;
  uint64_t dram_lines_gather = 0;
  uint64_t fabric_reads = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;

  uint64_t dram_lines_total() const {
    return dram_lines_demand + dram_lines_gather;
  }
};

/// Profile of one executed query: which backend ran, the operators it
/// executed (in pipeline order, source first), and the run's totals.
struct QueryProfile {
  std::string backend;
  std::string table;
  std::vector<OpStats> ops;
  double total_cycles = 0;  // elapsed (max of cpu and channel clocks)
  /// Shard fan-out accounting (all zero for unsharded tables;
  /// shards_total > 0 marks a shard-fanout execution).
  uint32_t shards_total = 0;
  uint32_t shards_scanned = 0;
  uint32_t shards_pruned = 0;
  /// Failure-domain accounting (zero outside chaos/kill sessions):
  /// dead replicas skipped by replica selection, shards skipped for lack
  /// of any live replica (allow_partial), and shards cancelled by a
  /// cycle-domain deadline.
  uint32_t shards_failed_over = 0;
  uint32_t shards_unavailable = 0;
  uint32_t shards_cancelled = 0;
  /// Distributed-fabric accounting (all zero outside distributed mode;
  /// nodes > 0 marks a cluster execution): cluster size, payload bytes
  /// and messages shipped node → coordinator for this query, and how
  /// many shards shipped materialized rows vs partial aggregates.
  uint32_t nodes = 0;
  uint64_t net_bytes = 0;
  uint64_t net_messages = 0;
  uint32_t shards_ship_rows = 0;
  uint32_t shards_ship_aggs = 0;
  /// Non-empty when the fabric path failed mid-query and execution
  /// degraded to the host row-scan path; records why (EXPLAIN ANALYZE
  /// prints it as a "degraded:" line).
  std::string fallback;

  /// EXPLAIN ANALYZE rendering: one row per operator.
  std::string ToTable() const;
  Json ToJson() const;
};

/// Attributes simulator deltas to operators via explicit switch points.
/// Engines call Switch(op) when control enters an operator's work; the
/// delta since the previous switch is credited to the previously active
/// operator. This matches interleaved (volcano-style) execution, where
/// per-operator work is scattered through the loop, without any per-tuple
/// snapshotting beyond one meter read per switch.
///
/// A null profile disables everything: engines guard each call site with
/// `if (prof)`, keeping the normal path free of profiling cost.
class OpProfiler {
 public:
  OpProfiler(QueryProfile* out, std::function<MeterSample()> sampler)
      : out_(out), sampler_(std::move(sampler)), last_(sampler_()) {}

  /// Registers an operator; returns its handle.
  int AddOp(std::string name) {
    out_->ops.push_back(OpStats{});
    out_->ops.back().name = std::move(name);
    return static_cast<int>(out_->ops.size()) - 1;
  }

  /// Credits the meters advanced since the last call to the operator that
  /// was active, then makes `op` active (-1 = no operator, e.g. teardown).
  void Switch(int op) {
    const MeterSample now = sampler_();
    if (active_ >= 0) {
      OpStats& s = out_->ops[static_cast<size_t>(active_)];
      s.cpu_cycles += now.cpu_cycles - last_.cpu_cycles;
      s.dram_lines_demand += now.dram_lines_demand - last_.dram_lines_demand;
      s.dram_lines_gather += now.dram_lines_gather - last_.dram_lines_gather;
      s.fabric_reads += now.fabric_reads - last_.fabric_reads;
      s.l1_misses += now.l1_misses - last_.l1_misses;
      s.l2_misses += now.l2_misses - last_.l2_misses;
    }
    last_ = now;
    active_ = op;
  }

  /// Closes the active segment (call once when execution finishes).
  void Finish() { Switch(-1); }

  /// Records that the remaining work was re-planned onto the host path.
  void NoteFallback(std::string reason) {
    out_->fallback = std::move(reason);
  }

  OpStats& op(int handle) { return out_->ops[static_cast<size_t>(handle)]; }

 private:
  QueryProfile* out_;
  std::function<MeterSample()> sampler_;
  MeterSample last_;
  int active_ = -1;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_QUERY_PROFILE_H_
