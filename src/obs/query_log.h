#ifndef RELFAB_OBS_QUERY_LOG_H_
#define RELFAB_OBS_QUERY_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace relfab::obs {

/// One structured record per executed statement. Every field is emitted
/// on every record (only `error` is conditional) so downstream tools can
/// rely on a fixed schema; ValidateRecord() is the single source of
/// truth for that schema and is mirrored by tools/analyze_query_log.py.
struct QueryLogRecord {
  uint64_t seq = 0;           // assigned by QueryLog::Append
  std::string session;        // logical session id ("shell", "s3", ...)
  std::string sql;
  std::string table;
  std::string backend;        // chosen plan backend ("ROWWISE", ...)
  std::string status = "ok";  // "ok" | "error"
  std::string error;          // present iff status == "error"
  /// StatusCode name of the statement outcome ("ok", "unavailable",
  /// "deadline_exceeded", ...) — finer-grained than `status` so
  /// availability tooling can separate failure domains from plain
  /// errors.
  std::string status_code = "ok";
  uint64_t cycles = 0;        // simulated cycles for this statement
  uint64_t end_cycles = 0;    // cumulative workload clock at completion
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint32_t shards_total = 0;   // 0 = unsharded table
  uint32_t shards_scanned = 0;
  uint32_t shards_pruned = 0;
  uint32_t shards_failed_over = 0;  // dead replicas skipped (failovers)
  /// Distributed fabric (all zero outside a configured cluster): payload
  /// bytes shipped node → coordinator and the per-shard wire-format split.
  uint64_t net_bytes = 0;
  uint32_t shards_ship_rows = 0;
  uint32_t shards_ship_aggs = 0;
  bool degraded = false;
  std::string degradation;     // cause note, empty when !degraded
  uint64_t faults_injected = 0;  // deltas over this statement
  uint64_t fault_retries = 0;
  uint64_t fault_fallbacks = 0;

  Json ToJson() const;
};

/// In-memory ring of recent statement records plus an optional JSONL
/// sink: with a sink open every Append writes (and flushes) one JSON
/// line, so the log survives crashes mid-workload. Single-threaded like
/// the rest of the per-session telemetry — sessions each own a QueryLog
/// and merge session-major afterwards.
class QueryLog {
 public:
  explicit QueryLog(size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;
  ~QueryLog() { CloseSink(); }

  /// Opens (appends to) a JSONL sink; closes any previous one.
  Status OpenSink(const std::string& path);
  void CloseSink();
  bool has_sink() const { return sink_ != nullptr; }
  const std::string& sink_path() const { return sink_path_; }

  /// Stamps the record's seq (append order, from 0) and records it.
  void Append(QueryLogRecord record);

  /// Ring contents, oldest first (at most `capacity` records).
  std::vector<const QueryLogRecord*> Recent() const;

  uint64_t total() const { return total_; }
  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }

  /// Schema check for one JSONL record; the error names the offending
  /// field. Used by tests and mirrored in tools/analyze_query_log.py.
  static Status ValidateRecord(const Json& record);

  /// Writes the ring as JSONL to `path` (the shell's `\qlog <file>`).
  Status WriteJsonl(const std::string& path) const;

  /// Human-readable recent-statement table (the `\qlog` view).
  std::string ToTable(size_t last_n = 16) const;

 private:
  size_t capacity_;
  std::vector<QueryLogRecord> ring_;
  size_t head_ = 0;  // next slot to overwrite once full
  uint64_t total_ = 0;
  std::FILE* sink_ = nullptr;
  std::string sink_path_;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_QUERY_LOG_H_
