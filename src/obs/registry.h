#ifndef RELFAB_OBS_REGISTRY_H_
#define RELFAB_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/json.h"

namespace relfab::obs {

/// Monotonic event counter. The whole stack is single-threaded per
/// MemorySystem, so increments are plain (unsynchronized) integer adds —
/// the zero-overhead contract of the observability layer.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  void Set(uint64_t v) { value_ = v; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time numeric reading (hit rates, clock values, table sizes).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Log-linear histogram for latency/size distributions: buckets double
/// from 1 with `kSubBuckets` linear sub-buckets per octave, giving a
/// bounded-error (< 1/kSubBuckets relative) sketch with a few dozen
/// fixed buckets and O(1) insert — the classic HDR-style layout.
class Histogram {
 public:
  static constexpr uint32_t kSubBuckets = 4;
  static constexpr uint32_t kNumBuckets = 64 * kSubBuckets;

  void Observe(double v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    ++buckets_[BucketFor(v)];
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }

  /// Upper-bound estimate of the q-quantile (0 <= q <= 1) from the
  /// bucketed sketch.
  double Quantile(double q) const;

  /// Accumulates another histogram's population into this one.
  void Merge(const Histogram& other);

  // --- snapshot restore (Registry::FromJson) ---

  /// Adds `n` observations into the bucket containing `edge_value`
  /// without touching the moments (count is updated).
  void AddBucketCount(double edge_value, uint64_t n) {
    buckets_[BucketFor(edge_value)] += n;
    count_ += n;
  }
  /// Overwrites the exact moments carried alongside the buckets.
  void RestoreMoments(double sum, double min, double max) {
    sum_ = sum;
    min_ = min;
    max_ = max;
  }

  /// Lower edge of bucket `b` (value v lands in bucket b iff
  /// edge(b) <= v < edge(b+1)).
  static double BucketLowerEdge(uint32_t b);

  const uint64_t* buckets() const { return buckets_; }

 private:
  static uint32_t BucketFor(double v);

  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  uint64_t buckets_[kNumBuckets] = {};
};

/// Central metrics spine (the tentpole of relfab::obs): components obtain
/// stable handles by hierarchical dotted name ("sim.l1.hits",
/// "rm.gather.lines") and bump them directly; exporters walk the registry
/// to produce a JSON snapshot or a human table. Handle lookup is a map
/// probe done once at wiring time; the handles themselves are plain
/// integers, so steady-state cost is identical to a member counter.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use. The pointer is stable for the registry's lifetime.
  Counter* counter(const std::string& name) {
    return Lookup(&counters_, name);
  }
  Gauge* gauge(const std::string& name) { return Lookup(&gauges_, name); }
  Histogram* histogram(const std::string& name) {
    return Lookup(&histograms_, name);
  }

  /// One-shot convenience for non-hot-path call sites.
  void Add(const std::string& name, uint64_t delta) {
    counter(name)->Inc(delta);
  }
  void Set(const std::string& name, double v) { gauge(name)->Set(v); }
  void Observe(const std::string& name, double v) {
    histogram(name)->Observe(v);
  }

  /// Zeroes every registered instrument (handles stay valid).
  void Reset();

  /// Accumulates `other`'s counters and histograms into this registry;
  /// gauges take the other's latest reading. Used to combine per-shard or
  /// per-run registries into one report.
  void MergeFrom(const Registry& other);

  /// Full snapshot as a JSON document:
  ///   {"counters": {name: n, ...},
  ///    "gauges": {name: x, ...},
  ///    "histograms": {name: {"count": n, "sum": s, "min": m, "max": M,
  ///                          "p50": ..., "p90": ..., "p99": ..., "p999": ...,
  ///                          "buckets": [[lower_edge, upper_edge, count],
  ///                                      ...]}}}
  Json ToJson() const;

  /// Restores counters/gauges/histogram summaries from a ToJson document
  /// (bucket contents are restored exactly; min/max/sum too). Returns an
  /// error on malformed input.
  Status FromJson(const Json& doc);

  /// Multi-line human-readable table, grouped by name prefix.
  std::string ToTable() const;

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms()
      const {
    return histograms_;
  }

 private:
  template <typename T>
  static T* Lookup(std::map<std::string, std::unique_ptr<T>>* instruments,
                   const std::string& name) {
    auto it = instruments->find(name);
    if (it == instruments->end()) {
      it = instruments->emplace(name, std::make_unique<T>()).first;
    }
    return it->second.get();
  }

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_REGISTRY_H_
