#ifndef RELFAB_OBS_TELEMETRY_H_
#define RELFAB_OBS_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/digest.h"
#include "obs/flight_recorder.h"
#include "obs/query_log.h"
#include "obs/registry.h"
#include "obs/timeseries.h"

namespace relfab::obs {

/// Knobs for WorkloadTelemetry; the defaults suit an interactive shell
/// session or a bench session of a few hundred statements.
struct TelemetryConfig {
  std::string session = "main";       // session id stamped on log records
  uint64_t window_cycles = 5'000'000;  // time-series window width
  size_t timeseries_capacity = 64;     // windows retained
  size_t query_log_capacity = 1024;    // records retained in memory
  size_t flight_recorder_capacity = FlightRecorder::kDefaultCapacity;
  /// Registry instruments sampled into the time-series (in addition to
  /// the "telemetry.*" counters the bundle exports itself).
  std::vector<std::string> tracked;
};

/// relfab::obs v2 bundle: the per-session workload telemetry state —
/// cycle-domain time-series, latency digests, structured query log and
/// flight recorder — behind one object so the Fabric can wire all of it
/// with a single pointer. Everything runs on the cumulative *workload
/// clock* (the running sum of per-statement simulated cycles), which is
/// monotonic across the per-statement sim resets and never touches wall
/// time; with the bundle absent (null) the fabric's behavior — answers
/// and cycles — is bit-identical to having no telemetry at all.
class WorkloadTelemetry {
 public:
  /// Everything the Fabric reports about one finished statement.
  struct Statement {
    std::string sql;
    std::string table;
    std::string backend;
    bool ok = true;
    std::string error;
    /// StatusCode name of the outcome ("ok", "unavailable", ...).
    std::string status_code = "ok";
    uint64_t cycles = 0;
    uint64_t rows_scanned = 0;
    uint64_t rows_matched = 0;
    uint32_t shards_total = 0;
    uint32_t shards_scanned = 0;
    uint32_t shards_pruned = 0;
    uint32_t shards_failed_over = 0;  // dead replicas skipped
    /// Distributed fabric (zero outside a configured cluster).
    uint64_t net_bytes = 0;
    uint32_t shards_ship_rows = 0;
    uint32_t shards_ship_aggs = 0;
    bool degraded = false;
    std::string degradation;
    uint64_t faults_injected = 0;  // deltas over this statement
    uint64_t fault_retries = 0;
    uint64_t fault_fallbacks = 0;
  };

  explicit WorkloadTelemetry(TelemetryConfig config = {});

  /// Advances the workload clock by the statement's cycles, feeds the
  /// per-backend digests and the query log, and — when the statement
  /// degraded or faults fired — triggers a flight-recorder dump.
  void RecordStatement(const Statement& statement);

  /// Samples the time-series from `registry` at the current workload
  /// clock. Call after RecordStatement with the refreshed fabric
  /// registry (Fabric::CollectMetrics exports the "telemetry.*"
  /// counters into it first).
  void Sample(const Registry& registry) {
    timeseries_.Sample(registry, workload_cycles_);
  }

  /// Exports the bundle's own counters ("telemetry.statements", ...)
  /// into `registry`.
  void ExportTo(Registry* registry) const;

  uint64_t workload_cycles() const { return workload_cycles_; }
  uint64_t statements() const { return statements_; }
  uint64_t errors() const { return errors_; }
  uint64_t degraded_statements() const { return degraded_statements_; }
  uint64_t faults_injected() const { return faults_injected_; }
  uint64_t dump_failures() const { return dump_failures_; }

  TimeSeries& timeseries() { return timeseries_; }
  DigestSet& digests() { return digests_; }
  QueryLog& query_log() { return query_log_; }
  FlightRecorder& flight_recorder() { return flight_recorder_; }
  const TelemetryConfig& config() const { return config_; }

  /// Full JSON export: {"workload_cycles": ..., "statements": ...,
  /// "timeseries": ..., "digests": ..., "flight_recorder_dumps": ...}.
  Json ToJson() const;

  /// The `\top` view: headline counters, recent time-series windows and
  /// the latency-digest table.
  std::string ToTable() const;

 private:
  TelemetryConfig config_;
  TimeSeries timeseries_;
  DigestSet digests_;
  QueryLog query_log_;
  FlightRecorder flight_recorder_;

  uint64_t workload_cycles_ = 0;
  uint64_t statements_ = 0;
  uint64_t errors_ = 0;
  uint64_t degraded_statements_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t fault_fallbacks_ = 0;
  uint64_t dump_failures_ = 0;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_TELEMETRY_H_
