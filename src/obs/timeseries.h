#ifndef RELFAB_OBS_TIMESERIES_H_
#define RELFAB_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace relfab::obs {

/// Windowed snapshots of registry instruments over the *simulated*
/// clock. Time is supplied by the caller as a cumulative cycle count
/// (e.g. the workload clock maintained by Fabric telemetry); the class
/// never reads a wall clock, so it is deterministic by construction and
/// passes relfab_lint's no-wall-clock rule.
///
/// Windows are fixed-width in cycles. Each call to Sample(registry, now)
/// reads the tracked instruments; when `now` crosses a window boundary
/// the open window is closed and pushed into a fixed-capacity ring
/// (oldest entries are evicted). Counters are recorded as deltas over
/// the window (rates), gauges as their last reading inside it. Windows
/// with no samples are simply absent — the window index in each closed
/// entry makes gaps explicit.
class TimeSeries {
 public:
  struct Window {
    uint64_t index = 0;         // window number = start_cycles / width
    uint64_t start_cycles = 0;  // inclusive
    uint64_t end_cycles = 0;    // exclusive (start + width)
    uint64_t samples = 0;       // Sample() calls that landed inside
    std::map<std::string, double> values;
  };

  TimeSeries(uint64_t window_cycles, size_t capacity);

  /// Tracks the instrument (counter or gauge) registered under `name`.
  /// Unknown names are simply absent from windows until they appear in
  /// the sampled registry.
  void Track(const std::string& name) { tracked_.push_back(name); }
  const std::vector<std::string>& tracked() const { return tracked_; }

  /// Advances the series to `now_cycles`, closing any window the clock
  /// has moved past. `now_cycles` must be monotonically non-decreasing
  /// across calls (simulated time never runs backwards).
  void Sample(const Registry& registry, uint64_t now_cycles);

  /// Closed windows, oldest first (at most `capacity` of them).
  std::vector<Window> Windows() const;

  uint64_t window_cycles() const { return window_cycles_; }
  size_t capacity() const { return capacity_; }
  /// Total windows ever closed (>= Windows().size() once the ring wraps).
  uint64_t windows_closed() const { return windows_closed_; }

  /// {"window_cycles": w, "capacity": c, "windows":
  ///   [{"index": i, "start_cycles": s, "end_cycles": e,
  ///     "samples": n, "values": {name: v, ...}}, ...]}
  Json ToJson() const;

  /// Human-readable recent-window table (the `\top` throughput pane).
  std::string ToTable(size_t last_n = 8) const;

 private:
  struct Reading {
    double value = 0;
    bool is_counter = false;
  };

  std::map<std::string, Reading> Read(const Registry& registry) const;
  void CloseWindow(uint64_t boundary_index);

  uint64_t window_cycles_;
  size_t capacity_;
  std::vector<std::string> tracked_;

  // Open window state.
  bool open_ = false;
  uint64_t open_index_ = 0;
  uint64_t open_samples_ = 0;
  std::map<std::string, Reading> window_base_;  // readings at window open
  std::map<std::string, Reading> last_;         // most recent readings

  // Ring of closed windows.
  std::vector<Window> ring_;
  size_t ring_head_ = 0;  // next slot to overwrite once full
  uint64_t windows_closed_ = 0;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_TIMESERIES_H_
