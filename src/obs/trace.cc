#include "obs/trace.h"

#include <cstdio>

#include "obs/flight_recorder.h"

namespace relfab::obs {

void Tracer::Emit(Event event) {
  if (recorder_ != nullptr) recorder_->RecordSpan(event);
  if (enabled_) events_.push_back(std::move(event));
}

Json Tracer::ToJson() const {
  Json events = Json::Array();
  // Thread-name metadata rows so extra tracks render with their names.
  {
    Json meta = Json::Object();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", 1);
    meta.Set("tid", 1);
    Json args = Json::Object();
    args.Set("name", "sim (CPU)");
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (uint32_t i = 0; i < tracks_.size(); ++i) {
    Json meta = Json::Object();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", 1);
    meta.Set("tid", static_cast<uint64_t>(i) + 2);
    Json args = Json::Object();
    args.Set("name", tracks_[i]);
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (const Event& e : events_) {
    Json ev = Json::Object();
    ev.Set("name", e.name);
    ev.Set("cat", e.category);
    ev.Set("ph", "X");  // complete event: ts + dur
    ev.Set("ts", e.start_cycles);
    ev.Set("dur", e.duration_cycles);
    ev.Set("pid", 1);
    ev.Set("tid", static_cast<uint64_t>(e.track) + 1);
    if (!e.args.empty()) {
      Json args = Json::Object();
      for (const auto& [k, v] : e.args) args.Set(k, v);
      ev.Set("args", std::move(args));
    }
    events.Append(std::move(ev));
  }
  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(events));
  // One simulated cycle is reported in the microsecond field; tell the
  // viewer to display raw numbers at fine granularity.
  doc.Set("displayTimeUnit", "ns");
  Json meta = Json::Object();
  meta.Set("clock", "simulated-cycles");
  doc.Set("otherData", std::move(meta));
  return doc;
}

Status Tracer::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  const std::string text = ToJson().Dump(1);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace relfab::obs
