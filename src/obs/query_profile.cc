#include "obs/query_profile.h"

#include <cstdio>
#include <sstream>

#include "common/format.h"

namespace relfab::obs {

std::string QueryProfile::ToTable() const {
  std::ostringstream os;
  os << "EXPLAIN ANALYZE (" << backend << " over '" << table
     << "', total " << FormatCount(static_cast<uint64_t>(total_cycles))
     << " cycles)\n";
  if (shards_total > 0) {
    os << "  shards: scanned=" << shards_scanned << " pruned="
       << shards_pruned << " total=" << shards_total;
    if (shards_failed_over > 0) os << " failed_over=" << shards_failed_over;
    if (shards_unavailable > 0) os << " unavailable=" << shards_unavailable;
    if (shards_cancelled > 0) os << " cancelled=" << shards_cancelled;
    os << "\n";
  }
  if (nodes > 0) {
    os << "  cluster: nodes=" << nodes << " ship={rows:" << shards_ship_rows
       << ",aggs:" << shards_ship_aggs << "} net.bytes="
       << FormatCount(net_bytes) << " net.messages="
       << FormatCount(net_messages) << "\n";
  }
  if (!fallback.empty()) {
    os << "  degraded: " << fallback << "\n";
  }
  char line[160];
  std::snprintf(line, sizeof(line), "  %-18s %14s %14s %14s %12s %12s %10s\n",
                "operator", "rows_in", "rows_out", "cpu_cycles",
                "dram_demand", "dram_gather", "fab_reads");
  os << line;
  for (const OpStats& op : ops) {
    std::snprintf(line, sizeof(line),
                  "  %-18s %14s %14s %14s %12s %12s %10s\n", op.name.c_str(),
                  FormatCount(op.rows_in).c_str(),
                  FormatCount(op.rows_out).c_str(),
                  FormatCount(static_cast<uint64_t>(op.cpu_cycles)).c_str(),
                  FormatCount(op.dram_lines_demand).c_str(),
                  FormatCount(op.dram_lines_gather).c_str(),
                  FormatCount(op.fabric_reads).c_str());
    os << line;
  }
  return os.str();
}

Json QueryProfile::ToJson() const {
  Json doc = Json::Object();
  doc.Set("backend", backend);
  doc.Set("table", table);
  doc.Set("total_cycles", total_cycles);
  if (shards_total > 0) {
    doc.Set("shards_total", static_cast<uint64_t>(shards_total));
    doc.Set("shards_scanned", static_cast<uint64_t>(shards_scanned));
    doc.Set("shards_pruned", static_cast<uint64_t>(shards_pruned));
    doc.Set("shards_failed_over", static_cast<uint64_t>(shards_failed_over));
    doc.Set("shards_unavailable",
            static_cast<uint64_t>(shards_unavailable));
    doc.Set("shards_cancelled", static_cast<uint64_t>(shards_cancelled));
  }
  if (nodes > 0) {
    doc.Set("nodes", static_cast<uint64_t>(nodes));
    doc.Set("net_bytes", net_bytes);
    doc.Set("net_messages", net_messages);
    doc.Set("shards_ship_rows", static_cast<uint64_t>(shards_ship_rows));
    doc.Set("shards_ship_aggs", static_cast<uint64_t>(shards_ship_aggs));
  }
  if (!fallback.empty()) doc.Set("fallback", fallback);
  Json op_list = Json::Array();
  for (const OpStats& op : ops) {
    Json oj = Json::Object();
    oj.Set("name", op.name);
    oj.Set("rows_in", op.rows_in);
    oj.Set("rows_out", op.rows_out);
    oj.Set("cpu_cycles", op.cpu_cycles);
    oj.Set("dram_lines_demand", op.dram_lines_demand);
    oj.Set("dram_lines_gather", op.dram_lines_gather);
    oj.Set("fabric_reads", op.fabric_reads);
    oj.Set("l1_misses", op.l1_misses);
    oj.Set("l2_misses", op.l2_misses);
    op_list.Append(std::move(oj));
  }
  doc.Set("operators", std::move(op_list));
  return doc;
}

}  // namespace relfab::obs
