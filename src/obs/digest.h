#ifndef RELFAB_OBS_DIGEST_H_
#define RELFAB_OBS_DIGEST_H_

#include <map>
#include <memory>
#include <string>

#include "obs/registry.h"

namespace relfab::obs {

/// Named collection of latency digests: one log-linear quantile sketch
/// (obs::Histogram) per key, keyed by dotted name such as
/// "query.ROWWISE.cycles" or "shard.3.cycles". All values are in
/// simulated cycles; the set never reads a clock itself, so it stays in
/// the cycle domain by construction.
///
/// Determinism contract: digests are only ever fed and merged from
/// single-threaded code running in a deterministic order (the
/// shard-major post-join loop in ShardScheduler, the per-statement
/// epilogue in Fabric, session-major merges in benches). Under that
/// discipline the bucket counts, min/max, and therefore every quantile
/// are bit-identical regardless of host worker count or sim mode.
class DigestSet {
 public:
  DigestSet() = default;
  DigestSet(const DigestSet&) = delete;
  DigestSet& operator=(const DigestSet&) = delete;

  /// Returns the digest registered under `name`, creating it on first
  /// use. The pointer is stable for the set's lifetime.
  Histogram* digest(const std::string& name);

  void Observe(const std::string& name, double v) {
    digest(name)->Observe(v);
  }

  /// Accumulates `other`'s digests into this set. Callers must merge in
  /// a deterministic order (shard-major / session-major) to keep the
  /// floating-point sum — and hence the mean — bit-stable.
  void MergeFrom(const DigestSet& other);

  /// Zeroes every digest (handles stay valid).
  void Reset();

  size_t size() const { return digests_.size(); }

  /// {"<name>": {"count": n, "min": m, "max": M, "mean": u,
  ///             "p50": ..., "p90": ..., "p99": ..., "p999": ...}, ...}
  Json ToJson() const;

  /// Human-readable quantile table (the `\top` digest pane).
  std::string ToTable() const;

  /// Copies every digest into `registry` under "digest.<name>", so a
  /// bench RunReport's metrics snapshot carries the full sketches.
  void ExportTo(Registry* registry) const;

  const std::map<std::string, std::unique_ptr<Histogram>>& digests() const {
    return digests_;
  }

 private:
  std::map<std::string, std::unique_ptr<Histogram>> digests_;
};

}  // namespace relfab::obs

#endif  // RELFAB_OBS_DIGEST_H_
