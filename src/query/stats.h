#ifndef RELFAB_QUERY_STATS_H_
#define RELFAB_QUERY_STATS_H_

#include <cstdint>
#include <vector>

#include "engine/query.h"
#include "layout/row_table.h"

namespace relfab::query {

/// Equi-width histogram statistics for one numeric column.
struct ColumnStats {
  bool valid = false;
  double min = 0;
  double max = 0;
  uint64_t row_count = 0;
  /// Bucket b covers [min + b*width, min + (b+1)*width).
  std::vector<uint64_t> histogram;

  /// Estimated fraction of rows satisfying `col <op> operand`
  /// (interpolating within the boundary bucket). Returns 1.0 for
  /// invalid stats — unknown never prunes.
  double Selectivity(relmem::CompareOp op, double operand) const;
};

/// Per-table statistics (ANALYZE output). Collected once from the base
/// row data; like data generation, collection itself is not charged to
/// the simulator — it models an offline maintenance task.
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;  // indexed by schema column

  /// Combined selectivity of a conjunction, assuming independence
  /// (textbook Selinger-style estimation).
  double EstimateSelectivity(
      const std::vector<engine::Predicate>& predicates) const;
};

/// Scans the table and builds 64-bucket histograms for every numeric
/// column (char columns get invalid stats).
TableStats AnalyzeTable(const layout::RowTable& table);

}  // namespace relfab::query

#endif  // RELFAB_QUERY_STATS_H_
