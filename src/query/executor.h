#ifndef RELFAB_QUERY_EXECUTOR_H_
#define RELFAB_QUERY_EXECUTOR_H_

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "faults/injector.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "query/catalog.h"
#include "query/planner.h"
#include "relmem/rm_engine.h"

namespace relfab::query {

/// Runs a Plan on the chosen backend. Stateless apart from its wiring;
/// engines are constructed per call (they are thin).
class Executor {
 public:
  Executor(const Catalog* catalog, relmem::RmEngine* rm,
           engine::CostModel cost_model)
      : catalog_(catalog), rm_(rm), cost_(cost_model) {
    RELFAB_CHECK(catalog != nullptr && rm != nullptr);
  }

  /// Executes the plan. When `profile` is non-null (EXPLAIN ANALYZE) the
  /// chosen engine attributes simulator meters to its operators and the
  /// profile is filled in; when null, execution carries zero profiling
  /// cost. When a tracer is attached, the run is wrapped in a
  /// "query.execute" span.
  StatusOr<engine::QueryResult> Execute(
      const Plan& plan, obs::QueryProfile* profile = nullptr) const;

  /// Attaches a tracer for query spans. Null detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Arms graceful degradation accounting: when a fabric-path plan (RM /
  /// HYBRID) fails with a fabric fault, the executor re-runs the query
  /// on the host ROW backend and records the fallback here (the
  /// degradation itself happens with or without an injector).
  void set_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
  }

 private:
  StatusOr<engine::QueryResult> Dispatch(const Plan& plan,
                                         const TableEntry& entry,
                                         obs::OpProfiler* prof) const;

  /// Completes a fabric-failed query on the host row engine.
  StatusOr<engine::QueryResult> FallbackToRowScan(const Plan& plan,
                                                  const TableEntry& entry,
                                                  const Status& cause,
                                                  obs::OpProfiler* prof) const;

  const Catalog* catalog_;
  relmem::RmEngine* rm_;
  engine::CostModel cost_;
  obs::Tracer* tracer_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
};

}  // namespace relfab::query

#endif  // RELFAB_QUERY_EXECUTOR_H_
