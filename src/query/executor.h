#ifndef RELFAB_QUERY_EXECUTOR_H_
#define RELFAB_QUERY_EXECUTOR_H_

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "exec/exec_context.h"
#include "faults/injector.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "query/catalog.h"
#include "query/planner.h"
#include "relmem/rm_engine.h"

namespace relfab::query {

/// Runs a Plan on the chosen backend. Stateless apart from its wiring;
/// engines are constructed per call (they are thin). All per-query
/// collaborators — tracer, fault injector, profile sink, shard
/// scheduler, options — arrive through exec::ExecContext rather than
/// setters, so one Executor serves concurrent callers with different
/// observability wiring.
class Executor {
 public:
  Executor(const Catalog* catalog, relmem::RmEngine* rm,
           engine::CostModel cost_model)
      : catalog_(catalog), rm_(rm), cost_(cost_model) {
    // relfab-lint: allow(data-check) wiring-time null check: a programming error, never data-dependent
    RELFAB_CHECK(catalog != nullptr && rm != nullptr);
  }

  /// Executes the plan with the given context. When `ctx.profile` is
  /// non-null (EXPLAIN ANALYZE) the chosen engine attributes simulator
  /// meters to its operators and the profile is filled in; when null,
  /// execution carries zero profiling cost. When `ctx.tracer` is
  /// attached, the run is wrapped in a "query.execute" span. Shard
  /// fan-out plans require `ctx.scheduler`.
  StatusOr<engine::QueryResult> Execute(const Plan& plan,
                                        const exec::ExecContext& ctx) const;

  /// Convenience: executes with a default (unwired) context.
  StatusOr<engine::QueryResult> Execute(const Plan& plan) const {
    return Execute(plan, exec::ExecContext{});
  }

 private:
  StatusOr<engine::QueryResult> Dispatch(const Plan& plan,
                                         const TableEntry& entry,
                                         const exec::ExecContext& ctx,
                                         obs::OpProfiler* prof) const;

  /// Completes a fabric-failed query on the host row engine.
  StatusOr<engine::QueryResult> FallbackToRowScan(const Plan& plan,
                                                  const TableEntry& entry,
                                                  const exec::ExecContext& ctx,
                                                  const Status& cause,
                                                  obs::OpProfiler* prof) const;

  const Catalog* catalog_;
  relmem::RmEngine* rm_;
  engine::CostModel cost_;
};

}  // namespace relfab::query

#endif  // RELFAB_QUERY_EXECUTOR_H_
