#ifndef RELFAB_QUERY_EXECUTOR_H_
#define RELFAB_QUERY_EXECUTOR_H_

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "engine/query.h"
#include "query/catalog.h"
#include "query/planner.h"
#include "relmem/rm_engine.h"

namespace relfab::query {

/// Runs a Plan on the chosen backend. Stateless apart from its wiring;
/// engines are constructed per call (they are thin).
class Executor {
 public:
  Executor(const Catalog* catalog, relmem::RmEngine* rm,
           engine::CostModel cost_model)
      : catalog_(catalog), rm_(rm), cost_(cost_model) {
    RELFAB_CHECK(catalog != nullptr && rm != nullptr);
  }

  StatusOr<engine::QueryResult> Execute(const Plan& plan) const;

 private:
  const Catalog* catalog_;
  relmem::RmEngine* rm_;
  engine::CostModel cost_;
};

}  // namespace relfab::query

#endif  // RELFAB_QUERY_EXECUTOR_H_
