#include "query/parser.h"

#include <algorithm>
#include <cmath>

#include "query/lexer.h"

namespace relfab::query {

namespace {

/// Token-stream cursor bound to a target schema.
class ParseContext {
 public:
  ParseContext(const std::vector<Token>* tokens, const layout::Schema* schema)
      : tokens_(tokens), schema_(schema) {}

  const Token& Peek() const { return (*tokens_)[pos_]; }
  const Token& Next() { return (*tokens_)[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  size_t pos() const { return pos_; }
  void Seek(size_t pos) { pos_ = pos; }

  Status Expect(std::string_view symbol) {
    if (!Peek().IsSymbol(symbol)) {
      return Error(std::string("expected '") + std::string(symbol) + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().offset));
  }

  StatusOr<uint32_t> ResolveColumn(const std::string& name) const {
    return schema_->IndexOf(name);
  }

  const layout::Schema& schema() const { return *schema_; }

 private:
  const std::vector<Token>* tokens_;
  const layout::Schema* schema_;
  size_t pos_ = 0;
};

StatusOr<int32_t> ParseExpr(ParseContext* ctx, engine::ExprPool* pool);

StatusOr<int32_t> ParseFactor(ParseContext* ctx, engine::ExprPool* pool) {
  const Token& t = ctx->Peek();
  if (t.type == TokenType::kNumber) {
    ctx->Next();
    return pool->Constant(t.number);
  }
  if (t.IsSymbol("-")) {
    ctx->Next();
    RELFAB_ASSIGN_OR_RETURN(int32_t inner, ParseFactor(ctx, pool));
    return pool->Sub(pool->Constant(0), inner);
  }
  if (t.IsSymbol("(")) {
    ctx->Next();
    RELFAB_ASSIGN_OR_RETURN(int32_t inner, ParseExpr(ctx, pool));
    RELFAB_RETURN_IF_ERROR(ctx->Expect(")"));
    return inner;
  }
  if (t.type == TokenType::kIdent) {
    ctx->Next();
    RELFAB_ASSIGN_OR_RETURN(uint32_t col, ctx->ResolveColumn(t.text));
    if (ctx->schema().type(col) == layout::ColumnType::kChar) {
      return ctx->Error("char column '" + t.text + "' in arithmetic");
    }
    return pool->Column(col);
  }
  return ctx->Error("expected expression");
}

StatusOr<int32_t> ParseTerm(ParseContext* ctx, engine::ExprPool* pool) {
  RELFAB_ASSIGN_OR_RETURN(int32_t lhs, ParseFactor(ctx, pool));
  while (ctx->Peek().IsSymbol("*")) {
    ctx->Next();
    RELFAB_ASSIGN_OR_RETURN(int32_t rhs, ParseFactor(ctx, pool));
    lhs = pool->Mul(lhs, rhs);
  }
  return lhs;
}

StatusOr<int32_t> ParseExpr(ParseContext* ctx, engine::ExprPool* pool) {
  RELFAB_ASSIGN_OR_RETURN(int32_t lhs, ParseTerm(ctx, pool));
  while (ctx->Peek().IsSymbol("+") || ctx->Peek().IsSymbol("-")) {
    const bool add = ctx->Next().IsSymbol("+");
    RELFAB_ASSIGN_OR_RETURN(int32_t rhs, ParseTerm(ctx, pool));
    lhs = add ? pool->Add(lhs, rhs) : pool->Sub(lhs, rhs);
  }
  return lhs;
}

StatusOr<engine::AggFunc> AggKeyword(const Token& t) {
  if (t.IsKeyword("SUM")) return engine::AggFunc::kSum;
  if (t.IsKeyword("AVG")) return engine::AggFunc::kAvg;
  if (t.IsKeyword("MIN")) return engine::AggFunc::kMin;
  if (t.IsKeyword("MAX")) return engine::AggFunc::kMax;
  if (t.IsKeyword("COUNT")) return engine::AggFunc::kCount;
  return Status::NotFound("not an aggregate");
}

StatusOr<relmem::CompareOp> ParseCompareOp(ParseContext* ctx) {
  const Token& t = ctx->Next();
  if (t.IsSymbol("<")) return relmem::CompareOp::kLt;
  if (t.IsSymbol("<=")) return relmem::CompareOp::kLe;
  if (t.IsSymbol(">")) return relmem::CompareOp::kGt;
  if (t.IsSymbol(">=")) return relmem::CompareOp::kGe;
  if (t.IsSymbol("=")) return relmem::CompareOp::kEq;
  if (t.IsSymbol("!=")) return relmem::CompareOp::kNe;
  return ctx->Error("expected comparison operator");
}

}  // namespace

StatusOr<ParsedQuery> Parser::Parse(std::string_view sql) const {
  RELFAB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  // Locate FROM <table> first: the select list needs the schema.
  size_t from_idx = tokens.size();
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].IsKeyword("FROM")) {
      from_idx = i;
      break;
    }
  }
  if (from_idx == tokens.size()) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  if (from_idx + 1 >= tokens.size() ||
      tokens[from_idx + 1].type != TokenType::kIdent) {
    return Status::InvalidArgument("expected table name after FROM");
  }
  ParsedQuery parsed;
  parsed.table = tokens[from_idx + 1].text;
  RELFAB_ASSIGN_OR_RETURN(TableEntry entry, catalog_->Lookup(parsed.table));
  const layout::Schema& schema = entry.schema();

  ParseContext ctx(&tokens, &schema);
  if (!ctx.Peek().IsKeyword("SELECT")) {
    return ctx.Error("expected SELECT");
  }
  ctx.Next();

  // --- select list (up to FROM) ---
  std::vector<uint32_t> bare_columns;
  while (ctx.pos() < from_idx) {
    const Token& t = ctx.Peek();
    auto agg = AggKeyword(t);
    if (agg.ok() && tokens[ctx.pos() + 1].IsSymbol("(")) {
      ctx.Next();  // aggregate keyword
      ctx.Next();  // '('
      engine::AggSpec spec;
      spec.func = *agg;
      if (spec.func == engine::AggFunc::kCount && ctx.Peek().IsSymbol("*")) {
        ctx.Next();
        spec.expr = -1;
      } else {
        RELFAB_ASSIGN_OR_RETURN(spec.expr,
                                ParseExpr(&ctx, &parsed.spec.exprs));
      }
      RELFAB_RETURN_IF_ERROR(ctx.Expect(")"));
      parsed.spec.aggregates.push_back(spec);
    } else if (t.type == TokenType::kIdent) {
      ctx.Next();
      RELFAB_ASSIGN_OR_RETURN(uint32_t col, ctx.ResolveColumn(t.text));
      bare_columns.push_back(col);
    } else {
      return ctx.Error("expected column or aggregate in select list");
    }
    if (ctx.pos() < from_idx) {
      RELFAB_RETURN_IF_ERROR(ctx.Expect(","));
    }
  }
  ctx.Seek(from_idx + 2);  // past FROM <table>

  // --- WHERE ---
  if (ctx.Peek().IsKeyword("WHERE")) {
    ctx.Next();
    while (true) {
      const Token& col_tok = ctx.Next();
      if (col_tok.type != TokenType::kIdent) {
        return ctx.Error("expected column in WHERE");
      }
      RELFAB_ASSIGN_OR_RETURN(uint32_t col, ctx.ResolveColumn(col_tok.text));
      RELFAB_ASSIGN_OR_RETURN(relmem::CompareOp op, ParseCompareOp(&ctx));
      const Token& lit = ctx.Next();
      if (lit.type != TokenType::kNumber) {
        return ctx.Error("expected numeric literal in WHERE");
      }
      engine::Predicate pred;
      pred.column = col;
      pred.op = op;
      pred.double_operand = lit.number;
      pred.int_operand = static_cast<int64_t>(std::llround(lit.number));
      parsed.spec.predicates.push_back(pred);
      if (ctx.Peek().IsKeyword("AND")) {
        ctx.Next();
        continue;
      }
      break;
    }
  }

  // --- GROUP BY ---
  if (ctx.Peek().IsKeyword("GROUP")) {
    ctx.Next();
    if (!ctx.Peek().IsKeyword("BY")) return ctx.Error("expected BY");
    ctx.Next();
    while (true) {
      const Token& col_tok = ctx.Next();
      if (col_tok.type != TokenType::kIdent) {
        return ctx.Error("expected column in GROUP BY");
      }
      RELFAB_ASSIGN_OR_RETURN(uint32_t col, ctx.ResolveColumn(col_tok.text));
      parsed.spec.group_by.push_back(col);
      if (ctx.Peek().IsSymbol(",")) {
        ctx.Next();
        continue;
      }
      break;
    }
  }
  if (ctx.Peek().IsSymbol(";")) ctx.Next();
  if (!ctx.AtEnd()) return ctx.Error("unexpected trailing input");

  // Bare selected columns: projection for scan queries, otherwise they
  // must be group keys.
  if (parsed.spec.aggregates.empty()) {
    parsed.spec.projection = std::move(bare_columns);
  } else {
    for (uint32_t col : bare_columns) {
      if (std::find(parsed.spec.group_by.begin(), parsed.spec.group_by.end(),
                    col) == parsed.spec.group_by.end()) {
        return Status::InvalidArgument(
            "selected column '" + schema.column(col).name +
            "' must appear in GROUP BY");
      }
    }
  }
  RELFAB_RETURN_IF_ERROR(parsed.spec.Validate(schema));
  return parsed;
}

}  // namespace relfab::query
