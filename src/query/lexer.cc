#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

namespace relfab::query {

bool Token::IsKeyword(std::string_view upper) const {
  if (type != TokenType::kIdent || text.size() != upper.size()) return false;
  for (size_t i = 0; i < upper.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) != upper[i]) {
      return false;
    }
  }
  return true;
}

StatusOr<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      token.type = TokenType::kIdent;
      token.text = std::string(sql.substr(i, j - i));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        ++j;
      }
      token.type = TokenType::kNumber;
      token.text = std::string(sql.substr(i, j - i));
      token.number = std::strtod(token.text.c_str(), nullptr);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && sql[j] != '\'') ++j;
      if (j == n) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(i));
      }
      token.type = TokenType::kString;
      token.text = std::string(sql.substr(i + 1, j - i - 1));
      i = j + 1;
    } else {
      token.type = TokenType::kSymbol;
      // two-character operators first
      if (i + 1 < n) {
        const std::string_view two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
          token.text = std::string(two == "<>" ? "!=" : two);
          i += 2;
          tokens.push_back(std::move(token));
          continue;
        }
      }
      switch (c) {
        case '(':
        case ')':
        case ',':
        case '+':
        case '-':
        case '*':
        case '<':
        case '>':
        case '=':
        case ';':
          token.text = std::string(1, c);
          ++i;
          break;
        default:
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at offset " +
              std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace relfab::query
