#include "query/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

namespace relfab::query {

namespace {

/// Distinct cache lines the referenced fields span within one row
/// (row-relative; the per-row average over alignments is close to this
/// for rows that divide or are divided by the line size).
uint32_t LinesTouchedPerRow(const layout::Schema& schema,
                            const std::vector<uint32_t>& columns) {
  std::set<uint32_t> lines;
  for (uint32_t c : columns) {
    const uint32_t first = schema.offset(c) / 64;
    const uint32_t last = (schema.offset(c) + schema.width(c) - 1) / 64;
    for (uint32_t l = first; l <= last; ++l) lines.insert(l);
  }
  return static_cast<uint32_t>(lines.size());
}

uint32_t TotalWidth(const layout::Schema& schema,
                    const std::vector<uint32_t>& columns) {
  uint32_t w = 0;
  for (uint32_t c : columns) w += schema.width(c);
  return w;
}

int64_t ClampToInt64(double d) {
  if (d >= 9223372036854775807.0) {
    return std::numeric_limits<int64_t>::max();
  }
  if (d <= -9223372036854775808.0) {
    return std::numeric_limits<int64_t>::min();
  }
  return static_cast<int64_t>(d);
}

/// Integer key range implied by the WHERE conjuncts on the shard key.
/// Conservative: only tightens a bound when every int64 outside it is
/// provably excluded by a predicate (engines compare in the double
/// domain, hence the floor/ceil dance). An empty range means no row can
/// match and every shard prunes.
struct KeyRange {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  bool empty = false;

  void TightenLo(int64_t v) { lo = std::max(lo, v); }
  void TightenHi(int64_t v) { hi = std::min(hi, v); }
};

/// System-R style selectivity of the non-shard-key conjuncts (the key
/// range's effect is priced separately via shard-bound overlap).
double NonKeySelectivity(const engine::QuerySpec& spec, uint32_t key_column) {
  double sel = 1.0;
  for (const engine::Predicate& p : spec.predicates) {
    if (p.column == key_column) continue;
    switch (p.op) {
      case relmem::CompareOp::kEq:
        sel *= 0.1;
        break;
      case relmem::CompareOp::kNe:
        sel *= 0.9;
        break;
      default:
        sel *= 1.0 / 3.0;
        break;
    }
  }
  return sel;
}

/// Fraction of shard `s`'s key span that overlaps the query's pruned key
/// range. 1.0 when the shard's span is unbounded (edge shards) — no
/// density information, so assume every row qualifies.
double ShardOverlapFraction(const shard::ShardedTable& table, uint32_t s,
                            int64_t key_lo, int64_t key_hi) {
  int64_t lo = 0;
  int64_t hi = 0;
  table.ShardBounds(s, &lo, &hi);
  if (lo == std::numeric_limits<int64_t>::min() ||
      hi == std::numeric_limits<int64_t>::max()) {
    return 1.0;
  }
  const double span = static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
  const double ovl_lo = std::max(static_cast<double>(lo),
                                 static_cast<double>(key_lo));
  const double ovl_hi = std::min(static_cast<double>(hi),
                                 static_cast<double>(key_hi));
  if (ovl_hi < ovl_lo) return 0.0;
  return std::min(1.0, (ovl_hi - ovl_lo + 1.0) / span);
}

KeyRange ExtractKeyRange(const engine::QuerySpec& spec,
                         uint32_t key_column) {
  KeyRange r;
  for (const engine::Predicate& p : spec.predicates) {
    if (p.column != key_column) continue;
    const double x = p.double_operand;
    switch (p.op) {
      case relmem::CompareOp::kGe:  // v >= x  =>  v >= ceil(x)
        r.TightenLo(ClampToInt64(std::ceil(x)));
        break;
      case relmem::CompareOp::kGt:  // v > x  =>  v >= floor(x) + 1
        r.TightenLo(ClampToInt64(std::floor(x) + 1.0));
        break;
      case relmem::CompareOp::kLe:  // v <= x  =>  v <= floor(x)
        r.TightenHi(ClampToInt64(std::floor(x)));
        break;
      case relmem::CompareOp::kLt:  // v < x  =>  v <= ceil(x) - 1
        r.TightenHi(ClampToInt64(std::ceil(x) - 1.0));
        break;
      case relmem::CompareOp::kEq:
        if (x == std::floor(x) && std::abs(x) < 9.2e18) {
          r.TightenLo(static_cast<int64_t>(x));
          r.TightenHi(static_cast<int64_t>(x));
        } else {
          r.empty = true;  // int64 key can never equal a fractional value
        }
        break;
      case relmem::CompareOp::kNe:
        break;  // no range information
    }
  }
  if (r.lo > r.hi) r.empty = true;
  return r;
}

}  // namespace

double Planner::EstimateRow(const layout::Schema& schema, double n,
                            const engine::QuerySpec& spec) const {
  const std::vector<uint32_t> refs = spec.ReferencedColumns(schema);
  const double lines = LinesTouchedPerRow(schema, refs);
  // A row scan is one ascending stream: misses are prefetch-covered.
  const double mem = lines * sim_.prefetch_covered_cycles;
  const double hops = spec.predicates.empty() ? 1.0 : 2.0;
  double cpu = hops * cost_.volcano_next_cycles +
               static_cast<double>(refs.size()) *
                   (cost_.volcano_field_cycles + sim_.l1_hit_cycles) +
               static_cast<double>(spec.predicates.size()) *
                   cost_.compare_cycles +
               static_cast<double>(spec.AggOpCount()) * cost_.arith_cycles +
               static_cast<double>(spec.aggregates.size()) *
                   cost_.agg_update_cycles;
  if (!spec.group_by.empty()) cpu += cost_.group_hash_cycles;
  return n * (mem + cpu);
}

double Planner::EstimateColumn(const layout::Schema& schema, double n,
                               const engine::QuerySpec& spec) const {
  const std::vector<uint32_t> refs = spec.ReferencedColumns(schema);
  const double streams = static_cast<double>(refs.size());
  // Per-line cost depends on whether the concurrent column cursors fit
  // in the prefetcher's stream table.
  double line_cost = sim_.prefetch_covered_cycles;
  if (streams > sim_.prefetch_streams) {
    const double coverage = sim_.prefetch_streams / streams;
    line_cost = coverage * sim_.prefetch_covered_cycles +
                (1 - coverage) * (sim_.dram_row_hit_cycles / sim_.cpu_mlp);
  }
  const double lines_per_row = TotalWidth(schema, refs) / 64.0;
  const double mem = lines_per_row * line_cost;
  double cpu = streams * cost_.vector_value_cycles +
               static_cast<double>(spec.predicates.size()) *
                   cost_.compare_cycles +
               static_cast<double>(spec.AggOpCount()) * cost_.arith_cycles +
               static_cast<double>(spec.aggregates.size()) *
                   cost_.agg_update_cycles +
               cost_.batch_overhead_cycles / cost_.batch_rows;
  const size_t out_fields =
      refs.size() - spec.predicates.size();  // rough reconstruction width
  if (out_fields > 1) {
    cpu += cost_.reconstruct_field_cycles * static_cast<double>(out_fields);
  }
  if (!spec.group_by.empty()) cpu += cost_.group_hash_cycles;
  return n * (mem + cpu);
}

double Planner::EstimateRm(const layout::Schema& schema, double n,
                           const engine::QuerySpec& spec) const {
  const std::vector<uint32_t> refs = spec.ReferencedColumns(schema);
  const double out_bytes = TotalWidth(schema, refs);
  const double gather_lines = LinesTouchedPerRow(schema, refs);
  // Gather streams inside open DRAM rows; one row opening per
  // (row_bytes/64) lines amortizes across the bank parallelism.
  const double lines_per_dram_row = sim_.dram_row_bytes / 64.0;
  const double gather = gather_lines *
                        (sim_.line_transfer_cycles +
                         sim_.dram_row_miss_cycles /
                             (lines_per_dram_row *
                              sim_.fabric_gather_parallelism));
  const double parse = sim_.fabric_clock_ratio / sim_.fabric_rows_per_cycle;
  const double pack = out_bytes / 64.0 * sim_.fabric_pack_cycles_per_line *
                      sim_.fabric_clock_ratio;
  const double produce = std::max({gather, parse, pack});
  double consume = out_bytes / 64.0 * sim_.fabric_read_cycles +
                   static_cast<double>(refs.size()) * cost_.rm_value_cycles +
                   static_cast<double>(spec.predicates.size()) *
                       cost_.compare_cycles +
                   static_cast<double>(spec.AggOpCount()) *
                       cost_.arith_cycles +
                   static_cast<double>(spec.aggregates.size()) *
                       cost_.agg_update_cycles;
  if (!spec.group_by.empty()) consume += cost_.group_hash_cycles;
  return n * std::max(produce, consume) + sim_.fabric_configure_cycles;
}

double Planner::EstimateIndex(const TableEntry& entry,
                              const engine::QuerySpec& spec) const {
  if (entry.key_index == nullptr) {
    return std::numeric_limits<double>::infinity();
  }
  // Applicable only to point queries: an equality conjunct on the
  // indexed column.
  bool has_point = false;
  for (const engine::Predicate& p : spec.predicates) {
    if (p.column == entry.key_index_column &&
        p.op == relmem::CompareOp::kEq) {
      has_point = true;
      break;
    }
  }
  if (!has_point) return std::numeric_limits<double>::infinity();
  // Root-to-leaf descent of cold nodes, then a handful of row fetches.
  // Without cardinality statistics, assume the key is near-unique.
  const double descent = entry.key_index->height() *
                         (sim_.dram_row_hit_cycles / sim_.cpu_mlp +
                          4 * cost_.compare_cycles);
  const std::vector<uint32_t> refs =
      spec.ReferencedColumns(entry.rows->schema());
  const double fetch = sim_.dram_row_hit_cycles / sim_.cpu_mlp +
                       static_cast<double>(refs.size()) *
                           (cost_.volcano_field_cycles + sim_.l1_hit_cycles);
  return descent + 4 * fetch;
}

double Planner::EstimateHybrid(const TableEntry& entry,
                               const engine::QuerySpec& spec,
                               double selectivity) const {
  if (spec.predicates.empty() || entry.stats == nullptr) {
    return std::numeric_limits<double>::infinity();
  }
  const layout::Schema& schema = entry.rows->schema();
  const double n = static_cast<double>(entry.rows->num_rows());
  // Phase 1: RM stream of the predicate columns only.
  std::vector<uint32_t> pred_cols;
  for (const engine::Predicate& p : spec.predicates) {
    pred_cols.push_back(p.column);
  }
  std::sort(pred_cols.begin(), pred_cols.end());
  pred_cols.erase(std::unique(pred_cols.begin(), pred_cols.end()),
                  pred_cols.end());
  const double pred_bytes = TotalWidth(schema, pred_cols);
  const double parse = sim_.fabric_clock_ratio / sim_.fabric_rows_per_cycle;
  const double pack = pred_bytes / 64.0 * sim_.fabric_pack_cycles_per_line *
                      sim_.fabric_clock_ratio;
  const double phase1_produce = std::max(parse, pack);
  const double phase1_consume =
      pred_bytes / 64.0 * sim_.fabric_read_cycles +
      static_cast<double>(spec.predicates.size()) *
          (cost_.rm_value_cycles + cost_.compare_cycles);
  // Phase 2: per qualifying row, a near-random base-row fetch plus the
  // volcano-style field work.
  const std::vector<uint32_t> refs = spec.ReferencedColumns(schema);
  const double per_match =
      sim_.dram_row_hit_cycles / sim_.cpu_mlp +
      static_cast<double>(refs.size()) *
          (cost_.volcano_field_cycles + sim_.l1_hit_cycles) +
      static_cast<double>(spec.AggOpCount()) * cost_.arith_cycles +
      static_cast<double>(spec.aggregates.size()) * cost_.agg_update_cycles;
  return n * (std::max(phase1_produce, phase1_consume) +
              selectivity * per_match) +
         sim_.fabric_configure_cycles;
}

void Planner::ChooseShipModes(const shard::ShardedTable& table,
                              const engine::QuerySpec& spec,
                              ShardFanout* out) const {
  out->ship.assign(out->shard_ids.size(), net::ShipMode::kAggs);
  if (spec.aggregates.empty()) {
    // Projection-only queries have no partial-aggregate form: the rows
    // ARE the result, so every shard ships them.
    out->ship.assign(out->shard_ids.size(), net::ShipMode::kRows);
    return;
  }

  const layout::Schema& schema = table.schema();
  const uint32_t row_bytes =
      TotalWidth(schema, spec.ReferencedColumns(schema));
  const uint32_t key_bytes = static_cast<uint32_t>(spec.group_by.size()) * 8;
  // Partial slot count, mirroring the scheduler's decomposition: AVG
  // ships as SUM plus one shared hidden COUNT denominator.
  size_t slots = spec.aggregates.size();
  for (const engine::AggSpec& agg : spec.aggregates) {
    if (agg.func == engine::AggFunc::kAvg) {
      ++slots;
      break;
    }
  }
  const bool keyed_groups =
      std::find(spec.group_by.begin(), spec.group_by.end(),
                table.key_column()) != spec.group_by.end();
  const double sel = NonKeySelectivity(spec, table.key_column());
  const net::NetworkModel netm(topology_->network(),
                               cost_.net_serialize_row_cycles,
                               cost_.net_serialize_agg_cycles);

  for (size_t i = 0; i < out->shard_ids.size(); ++i) {
    const uint32_t s = out->shard_ids[i];
    const double frac =
        ShardOverlapFraction(table, s, out->key_lo, out->key_hi);
    const double est_rows =
        static_cast<double>(table.shard(s).num_rows()) * frac * sel;
    // Grouping by the shard key makes nearly every row its own group
    // (range-sharded integer keys); other group columns are assumed
    // low-cardinality, capped at 64 distinct values per shard.
    double est_groups;
    if (spec.group_by.empty()) {
      est_groups = 1.0;
    } else if (keyed_groups) {
      est_groups = est_rows;
    } else {
      est_groups = std::min(est_rows, 64.0);
    }

    const net::Transfer rows_t = netm.ShipRows(
        static_cast<uint64_t>(est_rows) + (est_rows > 0 ? 1 : 0), row_bytes);
    const net::Transfer aggs_t = netm.ShipAggs(
        static_cast<uint64_t>(est_groups) + (est_groups > 0 ? 1 : 0),
        key_bytes, slots);
    // Each side pays: pack on the node, wire occupancy, then per-unit
    // unpack + merge at the coordinator (rows replay into the partial
    // aggregates; agg values merge one CombineSlot each).
    const double rows_cost =
        rows_t.serialize_cycles + rows_t.wire_cycles +
        est_rows * (cost_.net_serialize_row_cycles +
                    static_cast<double>(slots) * cost_.agg_update_cycles);
    const double aggs_cost =
        aggs_t.serialize_cycles + aggs_t.wire_cycles +
        est_groups * static_cast<double>(slots) *
            (cost_.net_serialize_agg_cycles + cost_.agg_update_cycles);
    out->ship[i] =
        rows_cost < aggs_cost ? net::ShipMode::kRows : net::ShipMode::kAggs;
  }
}

StatusOr<Plan> Planner::MakeShardedPlan(
    const ParsedQuery& parsed, const TableEntry& entry,
    const exec::QueryOptions* options) const {
  const shard::ShardedTable& table = *entry.sharded;
  RELFAB_RETURN_IF_ERROR(parsed.spec.Validate(table.schema()));

  Plan plan;
  plan.table = parsed.table;
  plan.spec = parsed.spec;
  plan.shards.enabled = true;
  plan.shards.shards_total = table.num_shards();

  const KeyRange range = ExtractKeyRange(parsed.spec, table.key_column());
  plan.shards.key_lo = range.lo;
  plan.shards.key_hi = range.hi;
  if (!range.empty) {
    plan.shards.shard_ids = table.ShardsForRange(range.lo, range.hi);
  }

  const bool distributed = topology_ != nullptr && topology_->enabled();
  if (distributed) {
    plan.shards.distributed = true;
    plan.shards.nodes = topology_->nodes();
    ChooseShipModes(table, parsed.spec, &plan.shards);
  }
  if (options != nullptr && options->forced_ship.has_value()) {
    if (!distributed) {
      return Status::InvalidArgument(
          "ship=" + std::string(net::ShipModeToString(*options->forced_ship)) +
          " forced but no cluster is configured; call ConfigureCluster "
          "first");
    }
    plan.shards.ship.assign(plan.shards.shard_ids.size(),
                            *options->forced_ship);
  }

  // Surviving work: cost the two per-shard scan paths over the rows the
  // fan-out will actually touch (summed — the parallel speedup is an
  // execution-time property, identical for both paths, so it cancels
  // out of the choice).
  double n = 0;
  for (uint32_t s : plan.shards.shard_ids) {
    n += static_cast<double>(table.shard(s).num_rows());
  }
  const double extra_configures =
      plan.shards.shard_ids.empty()
          ? 0
          : static_cast<double>(plan.shards.shard_ids.size() - 1) *
                sim_.fabric_configure_cycles;
  plan.est_cost_row = EstimateRow(table.schema(), n, parsed.spec);
  plan.est_cost_rm =
      EstimateRm(table.schema(), n, parsed.spec) + extra_configures;
  plan.est_cost_column = std::numeric_limits<double>::infinity();
  plan.est_cost_index = std::numeric_limits<double>::infinity();
  plan.est_cost_hybrid = std::numeric_limits<double>::infinity();

  // Health-aware planning: a dead RM transformer prices the fabric path
  // out up front, so the plan is a Volcano fan-out rather than a doomed
  // RM dispatch; and a surviving shard whose replicas are all dead fails
  // the plan with kUnavailable before any work starts (unless the
  // caller asked for a partial answer — the scheduler then skips it).
  const bool rm_dead = health_ != nullptr && !health_->alive("rm");
  if (rm_dead) {
    plan.est_cost_rm = std::numeric_limits<double>::infinity();
  }
  if (health_ != nullptr) {
    const bool allow_partial =
        options != nullptr && options->allow_partial;
    for (uint32_t s : plan.shards.shard_ids) {
      bool any_live = false;
      for (uint32_t j = 0; j < table.num_replicas() && !any_live; ++j) {
        bool live = health_->alive(parsed.table + ".shard" +
                                   std::to_string(s) + ".r" +
                                   std::to_string(j));
        if (live && distributed) {
          // A replica on a dead node is as dead as the replica itself.
          const uint32_t node = topology_->NodeFor(
              s, j, table.num_shards(), table.placement());
          live = health_->alive(net::Topology::NodeName(node));
        }
        any_live = live;
      }
      if (!any_live && !allow_partial) {
        return Status::Unavailable(
            "shard " + std::to_string(s) + " of '" + parsed.table +
            "' has no live replica (" +
            std::to_string(table.num_replicas()) +
            " replica(s) dead" +
            (distributed ? " or on dead nodes" : "") +
            "); set allow_partial to answer from the survivors");
      }
    }
  }

  plan.backend = plan.est_cost_rm < plan.est_cost_row
                     ? Backend::kRelationalMemory
                     : Backend::kRow;
  if (options != nullptr && options->forced_backend.has_value()) {
    const Backend forced = *options->forced_backend;
    if (forced != Backend::kRow && forced != Backend::kRelationalMemory) {
      return Status::InvalidArgument(
          "sharded table '" + parsed.table + "' supports ROW and RM, not " +
          std::string(BackendToString(forced)));
    }
    if (forced == Backend::kRelationalMemory && rm_dead) {
      return Status::Unavailable("forced RM but the rm transformer is dead");
    }
    plan.backend = forced;
  }

  std::ostringstream os;
  os << "table=" << plan.table << " backend=SHARD("
     << BackendToString(plan.backend) << ") shards="
     << plan.shards.shard_ids.size() << "/" << plan.shards.shards_total
     << " pruned="
     << plan.shards.shards_total - plan.shards.shard_ids.size()
     << " est{ROW=" << plan.est_cost_row << ", RM=" << plan.est_cost_rm
     << "}";
  if (distributed) {
    size_t ship_rows = 0;
    for (net::ShipMode m : plan.shards.ship) {
      if (m == net::ShipMode::kRows) ++ship_rows;
    }
    os << " nodes=" << plan.shards.nodes << " ship={rows:" << ship_rows
       << ",aggs:" << plan.shards.ship.size() - ship_rows << "}";
    if (options != nullptr && options->forced_ship.has_value()) {
      os << " (ship forced)";
    }
  }
  if (rm_dead) os << " (rm dead: fabric path unavailable)";
  plan.explanation = os.str();
  return plan;
}

StatusOr<Plan> Planner::MakePlan(const ParsedQuery& parsed,
                                 const exec::QueryOptions* options) const {
  RELFAB_ASSIGN_OR_RETURN(TableEntry entry, catalog_->Lookup(parsed.table));
  if (entry.sharded != nullptr) {
    return MakeShardedPlan(parsed, entry, options);
  }
  if (options != nullptr && options->forced_ship.has_value()) {
    return Status::InvalidArgument(
        "ship=" + std::string(net::ShipModeToString(*options->forced_ship)) +
        " forced but table '" + parsed.table +
        "' is not sharded; ship modes apply to distributed shard fan-outs");
  }
  RELFAB_RETURN_IF_ERROR(parsed.spec.Validate(entry.rows->schema()));

  Plan plan;
  plan.table = parsed.table;
  plan.spec = parsed.spec;
  plan.est_selectivity =
      entry.stats != nullptr
          ? entry.stats->EstimateSelectivity(parsed.spec.predicates)
          : 1.0;
  const layout::Schema& schema = entry.rows->schema();
  const double n = static_cast<double>(entry.rows->num_rows());
  plan.est_cost_row = EstimateRow(schema, n, parsed.spec);
  plan.est_cost_column = entry.columns != nullptr
                             ? EstimateColumn(schema, n, parsed.spec)
                             : std::numeric_limits<double>::infinity();
  plan.est_cost_rm = EstimateRm(schema, n, parsed.spec);
  plan.est_cost_index = EstimateIndex(entry, parsed.spec);
  plan.est_cost_hybrid =
      EstimateHybrid(entry, parsed.spec, plan.est_selectivity);

  // A dead RM transformer takes both fabric-dependent paths out of the
  // running: the plan degrades to a host path up front.
  const bool rm_dead = health_ != nullptr && !health_->alive("rm");
  if (rm_dead) {
    plan.est_cost_rm = std::numeric_limits<double>::infinity();
    plan.est_cost_hybrid = std::numeric_limits<double>::infinity();
  }

  plan.backend = Backend::kRow;
  double best = plan.est_cost_row;
  if (plan.est_cost_column < best) {
    best = plan.est_cost_column;
    plan.backend = Backend::kColumn;
  }
  if (plan.est_cost_rm < best) {
    best = plan.est_cost_rm;
    plan.backend = Backend::kRelationalMemory;
  }
  if (plan.est_cost_hybrid < best) {
    best = plan.est_cost_hybrid;
    plan.backend = Backend::kHybrid;
  }
  if (plan.est_cost_index < best) {
    best = plan.est_cost_index;
    plan.backend = Backend::kIndex;
  }

  if (options != nullptr && options->forced_backend.has_value()) {
    const Backend forced = *options->forced_backend;
    if (rm_dead && (forced == Backend::kRelationalMemory ||
                    forced == Backend::kHybrid)) {
      return Status::Unavailable("forced " +
                                 std::string(BackendToString(forced)) +
                                 " but the rm transformer is dead");
    }
    switch (forced) {
      case Backend::kColumn:
        if (entry.columns == nullptr) {
          return Status::InvalidArgument(
              "forced COL but table '" + parsed.table +
              "' has no materialized columnar copy");
        }
        break;
      case Backend::kIndex:
        if (std::isinf(plan.est_cost_index)) {
          return Status::InvalidArgument(
              "forced INDEX but table '" + parsed.table +
              "' has no applicable index for this query");
        }
        break;
      case Backend::kHybrid:
        if (std::isinf(plan.est_cost_hybrid)) {
          return Status::InvalidArgument(
              "forced HYBRID but table '" + parsed.table +
              "' lacks predicates or ANALYZE statistics");
        }
        break;
      case Backend::kRow:
      case Backend::kRelationalMemory:
        break;  // always feasible (RM death checked above)
    }
    plan.backend = forced;
  }

  std::ostringstream os;
  os << "table=" << plan.table << " backend=" << BackendToString(plan.backend)
     << " est{ROW=" << plan.est_cost_row;
  if (entry.columns != nullptr) {
    os << ", COL=" << plan.est_cost_column;
  } else {
    os << ", COL=unavailable (no materialized copy)";
  }
  if (rm_dead) {
    os << ", RM=unavailable (rm dead)";
  } else {
    os << ", RM=" << plan.est_cost_rm;
  }
  if (entry.key_index != nullptr &&
      !std::isinf(plan.est_cost_index)) {
    os << ", INDEX=" << plan.est_cost_index;
  }
  if (!std::isinf(plan.est_cost_hybrid)) {
    os << ", HYBRID=" << plan.est_cost_hybrid << " (sel="
       << plan.est_selectivity << ")";
  }
  os << "}";
  if (options != nullptr && options->forced_backend.has_value()) {
    os << " (backend forced)";
  }
  plan.explanation = os.str();
  return plan;
}

}  // namespace relfab::query
