#ifndef RELFAB_QUERY_PLANNER_H_
#define RELFAB_QUERY_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "exec/options.h"
#include "faults/health.h"
#include "net/network_model.h"
#include "net/topology.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "sim/params.h"

namespace relfab::query {

/// Access path chosen for a query. The enum itself lives in exec (the
/// execution layer needs it without depending on the planner); these
/// aliases keep query-side code and call sites unchanged.
using Backend = exec::Backend;
using exec::BackendFromString;
using exec::BackendToString;

/// Shard fan-out section of a plan (set when the table is range-sharded).
struct ShardFanout {
  bool enabled = false;
  uint32_t shards_total = 0;
  /// Surviving shards after pruning the WHERE clause's shard-key range
  /// through ShardedTable::ShardsForRange, ascending. May be empty
  /// (contradictory key range: the query answers without scanning).
  std::vector<uint32_t> shard_ids;
  /// The pruned key range [key_lo, key_hi] (inclusive; int64 extremes
  /// when unbounded). Informational — predicates are still evaluated.
  int64_t key_lo = 0;
  int64_t key_hi = 0;
  /// Distributed-fabric section (set when a cluster is configured).
  /// `ship`, parallel to shard_ids, is the planner's per-shard wire
  /// format: ship the shard's matching rows, or its merged partial
  /// aggregates — whichever models cheaper under the network cost
  /// model. A timing alias: the answer is identical either way.
  bool distributed = false;
  uint32_t nodes = 0;
  std::vector<net::ShipMode> ship;
};

/// An executable plan: the chosen backend plus per-path cost estimates.
struct Plan {
  std::string table;
  Backend backend = Backend::kRow;
  engine::QuerySpec spec;
  double est_cost_row = 0;
  double est_cost_column = 0;  // +inf when no columnar copy exists
  double est_cost_rm = 0;
  double est_cost_index = 0;   // +inf when no applicable index exists
  double est_cost_hybrid = 0;  // +inf without predicates or statistics
  /// Selectivity estimate used for the hybrid decision (1.0 = unknown).
  double est_selectivity = 1.0;
  /// Shard fan-out (enabled only for sharded tables; estimates above
  /// then cover the surviving shards summed, i.e. total work).
  ShardFanout shards;
  std::string explanation;
};

/// The paper's §III-B point made concrete: with Relational Fabric, layout
/// selection stops being a combinatorial search over materialized
/// designs. The planner *constructs* the candidate geometries directly
/// from the query's referenced columns, prices the three access paths
/// with a closed-form mirror of the simulator's cost model, and picks the
/// cheapest. For sharded tables it additionally prunes shards from the
/// WHERE clause's shard-key range and emits a shard-fanout plan.
class Planner {
 public:
  /// `health` (optional) makes planning failure-domain-aware: a dead RM
  /// transformer prices RM/HYBRID at +inf (the plan degrades to a host
  /// path up front, no doomed dispatch), and a surviving shard with zero
  /// live replicas fails the plan with kUnavailable unless the options
  /// allow a partial answer. The planner only *reads* liveness — kill
  /// draws happen at dispatch/selection time, never during planning.
  Planner(const Catalog* catalog, sim::SimParams sim_params,
          engine::CostModel cost_model,
          const faults::HealthRegistry* health = nullptr)
      : catalog_(catalog),
        sim_(sim_params),
        cost_(cost_model),
        health_(health) {
    // relfab-lint: allow(data-check) wiring-time null check: a programming error, never data-dependent
    RELFAB_CHECK(catalog != nullptr);
  }

  /// Plans `parsed`. `options` (may be null = defaults) contributes the
  /// forced-backend override; an infeasible override (COL without a
  /// columnar copy, INDEX without an applicable index, COL/INDEX/HYBRID
  /// on a sharded table) is an InvalidArgument.
  StatusOr<Plan> MakePlan(const ParsedQuery& parsed,
                          const exec::QueryOptions* options = nullptr) const;

  /// Makes sharded planning cluster-aware: with an enabled topology the
  /// planner prices, per surviving shard, shipping materialized rows vs
  /// shipping partial aggregates across the modeled network and records
  /// the cheaper mode in ShardFanout::ship. Null or a disabled topology
  /// returns to single-host planning. The pointer is borrowed; the
  /// caller (core::Fabric) keeps it alive.
  void set_topology(const net::Topology* topology) { topology_ = topology; }

 private:
  double EstimateRow(const layout::Schema& schema, double n,
                     const engine::QuerySpec& spec) const;
  double EstimateColumn(const layout::Schema& schema, double n,
                        const engine::QuerySpec& spec) const;
  double EstimateRm(const layout::Schema& schema, double n,
                    const engine::QuerySpec& spec) const;
  /// +inf unless the query has an equality predicate on the indexed
  /// column (the point-query case the paper reserves for indexes).
  double EstimateIndex(const TableEntry& entry,
                       const engine::QuerySpec& spec) const;
  /// The §III-B hybrid plan: worth it only when ANALYZE statistics show
  /// the conjunction is selective; +inf without predicates or stats.
  double EstimateHybrid(const TableEntry& entry,
                        const engine::QuerySpec& spec,
                        double selectivity) const;

  StatusOr<Plan> MakeShardedPlan(const ParsedQuery& parsed,
                                 const TableEntry& entry,
                                 const exec::QueryOptions* options) const;

  /// Fills ShardFanout::ship (rows vs aggs per surviving shard) from the
  /// modeled transfer + coordinator-merge costs.
  void ChooseShipModes(const shard::ShardedTable& table,
                       const engine::QuerySpec& spec, ShardFanout* out) const;

  const Catalog* catalog_;
  sim::SimParams sim_;
  engine::CostModel cost_;
  const faults::HealthRegistry* health_;
  const net::Topology* topology_ = nullptr;
};

}  // namespace relfab::query

#endif  // RELFAB_QUERY_PLANNER_H_
