#ifndef RELFAB_QUERY_PLANNER_H_
#define RELFAB_QUERY_PLANNER_H_

#include <string>

#include "common/statusor.h"
#include "engine/cost_model.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "sim/params.h"

namespace relfab::query {

/// Access path chosen for a query.
enum class Backend : uint8_t {
  kRow,               // volcano over the row base data
  kColumn,            // vectorized over a materialized columnar copy
  kRelationalMemory,  // vectorized over an ephemeral column group
  kIndex,             // B+-tree point lookup, then fetch from row data
  kHybrid,            // ephemeral predicate stream + base-row fetch
};

std::string_view BackendToString(Backend backend);

/// An executable plan: the chosen backend plus per-path cost estimates.
struct Plan {
  std::string table;
  Backend backend = Backend::kRow;
  engine::QuerySpec spec;
  double est_cost_row = 0;
  double est_cost_column = 0;  // +inf when no columnar copy exists
  double est_cost_rm = 0;
  double est_cost_index = 0;   // +inf when no applicable index exists
  double est_cost_hybrid = 0;  // +inf without predicates or statistics
  /// Selectivity estimate used for the hybrid decision (1.0 = unknown).
  double est_selectivity = 1.0;
  std::string explanation;
};

/// The paper's §III-B point made concrete: with Relational Fabric, layout
/// selection stops being a combinatorial search over materialized
/// designs. The planner *constructs* the candidate geometries directly
/// from the query's referenced columns, prices the three access paths
/// with a closed-form mirror of the simulator's cost model, and picks the
/// cheapest.
class Planner {
 public:
  Planner(const Catalog* catalog, sim::SimParams sim_params,
          engine::CostModel cost_model)
      : catalog_(catalog),
        sim_(sim_params),
        cost_(cost_model) {
    RELFAB_CHECK(catalog != nullptr);
  }

  StatusOr<Plan> MakePlan(const ParsedQuery& parsed) const;

 private:
  double EstimateRow(const layout::RowTable& table,
                     const engine::QuerySpec& spec) const;
  double EstimateColumn(const layout::RowTable& table,
                        const engine::QuerySpec& spec) const;
  double EstimateRm(const layout::RowTable& table,
                    const engine::QuerySpec& spec) const;
  /// +inf unless the query has an equality predicate on the indexed
  /// column (the point-query case the paper reserves for indexes).
  double EstimateIndex(const TableEntry& entry,
                       const engine::QuerySpec& spec) const;
  /// The §III-B hybrid plan: worth it only when ANALYZE statistics show
  /// the conjunction is selective; +inf without predicates or stats.
  double EstimateHybrid(const TableEntry& entry,
                        const engine::QuerySpec& spec,
                        double selectivity) const;

  const Catalog* catalog_;
  sim::SimParams sim_;
  engine::CostModel cost_;
};

}  // namespace relfab::query

#endif  // RELFAB_QUERY_PLANNER_H_
