#include "query/executor.h"

#include "engine/hybrid.h"
#include "engine/rm_exec.h"
#include "engine/vector_engine.h"
#include "engine/volcano.h"

namespace relfab::query {

StatusOr<engine::QueryResult> Executor::Execute(const Plan& plan) const {
  RELFAB_ASSIGN_OR_RETURN(TableEntry entry, catalog_->Lookup(plan.table));
  switch (plan.backend) {
    case Backend::kRow: {
      engine::VolcanoEngine eng(entry.rows, cost_);
      return eng.Execute(plan.spec);
    }
    case Backend::kColumn: {
      if (entry.columns == nullptr) {
        return Status::FailedPrecondition(
            "plan chose COL but table '" + plan.table +
            "' has no materialized columnar copy");
      }
      engine::VectorEngine eng(entry.columns, cost_);
      return eng.Execute(plan.spec);
    }
    case Backend::kRelationalMemory: {
      engine::RmExecEngine eng(entry.rows, rm_, cost_);
      return eng.Execute(plan.spec);
    }
    case Backend::kHybrid: {
      engine::HybridEngine eng(entry.rows, rm_, cost_);
      return eng.Execute(plan.spec);
    }
    case Backend::kIndex: {
      if (entry.key_index == nullptr) {
        return Status::FailedPrecondition(
            "plan chose INDEX but table '" + plan.table + "' has no index");
      }
      const engine::Predicate* point = nullptr;
      for (const engine::Predicate& p : plan.spec.predicates) {
        if (p.column == entry.key_index_column &&
            p.op == relmem::CompareOp::kEq) {
          point = &p;
          break;
        }
      }
      if (point == nullptr) {
        return Status::FailedPrecondition(
            "plan chose INDEX without an equality predicate on the "
            "indexed column");
      }
      const std::vector<uint64_t> candidates =
          entry.key_index->Lookup(point->int_operand);
      engine::VolcanoEngine eng(entry.rows, cost_);
      return eng.ExecuteOnRowIds(plan.spec, candidates);
    }
  }
  return Status::Internal("unknown backend");
}

}  // namespace relfab::query
