#include "query/executor.h"

#include "engine/hybrid.h"
#include "engine/rm_exec.h"
#include "engine/vector_engine.h"
#include "engine/volcano.h"
#include "exec/shard_scheduler.h"
#include "sim/memory_system.h"

namespace relfab::query {
namespace {

/// One "rm.kill" opportunity for a statement that is about to use the
/// RM transformer. True when the engine is unusable — already dead, or
/// the kill draw fired just now (every serving attempt is one draw, so
/// the death schedule is a pure function of the workload). Runs in
/// single-threaded dispatch code only.
bool RmUnavailable(const exec::ExecContext& ctx) {
  if (ctx.health == nullptr) return false;
  if (!ctx.health->alive("rm")) return true;
  const uint64_t now = ctx.tracer != nullptr ? ctx.tracer->Now() : 0;
  return ctx.health->DrawKill("rm.kill", "rm", now);
}

/// Circuit-breaker report for the RM transformer after a dispatch.
void ReportRmOutcome(const exec::ExecContext& ctx, const Status& status) {
  if (ctx.health == nullptr) return;
  if (status.ok()) {
    ctx.health->ReportSuccess("rm");
  } else if (faults::IsFabricFault(status)) {
    ctx.health->ReportFailure("rm", status.ToString(),
                              ctx.tracer != nullptr ? ctx.tracer->Now() : 0);
  }
}

}  // namespace

StatusOr<engine::QueryResult> Executor::Execute(
    const Plan& plan, const exec::ExecContext& ctx) const {
  RELFAB_ASSIGN_OR_RETURN(TableEntry entry, catalog_->Lookup(plan.table));

  if (plan.shards.enabled) {
    if (entry.sharded == nullptr) {
      return Status::FailedPrecondition(
          "shard-fanout plan but table '" + plan.table + "' is not sharded");
    }
    if (ctx.scheduler == nullptr) {
      return Status::FailedPrecondition(
          "shard-fanout plan requires an exec::ShardScheduler in the "
          "ExecContext");
    }
    Backend backend = plan.backend;
    if (backend == Backend::kRelationalMemory && RmUnavailable(ctx)) {
      // The RM transformer died before (or at) dispatch: the whole
      // fan-out degrades to per-shard host row scans. The planner avoids
      // a dead RM for subsequent statements; this covers the statement
      // that drew the kill.
      backend = Backend::kRow;
      if (ctx.injector != nullptr) ctx.injector->NoteFallback("query.RM");
      if (ctx.recorder != nullptr) {
        ctx.recorder->Log("query",
                          "rm transformer dead: shard fan-out degraded to ROW",
                          ctx.tracer != nullptr ? ctx.tracer->Now() : 0);
      }
    }
    if (ctx.profile != nullptr) {
      ctx.profile->backend =
          "SHARD(" + std::string(BackendToString(backend)) + ")";
      ctx.profile->table = plan.table;
      if (backend != plan.backend) {
        ctx.profile->fallback = "rm transformer dead; fan-out ran on ROW";
      }
    }
    exec::ShardScheduler::Request req;
    req.table = entry.sharded;
    req.table_name = plan.table;
    req.spec = &plan.spec;
    req.backend = backend;
    req.shard_ids = &plan.shards.shard_ids;
    req.ship = plan.shards.distributed ? &plan.shards.ship : nullptr;
    req.cost = cost_;
    return ctx.scheduler->Execute(req, ctx);
  }

  obs::Span span(ctx.tracer, "query.execute", "query");
  span.AddArg("backend", std::string(BackendToString(plan.backend)));
  span.AddArg("table", plan.table);

  if (ctx.profile == nullptr) {
    auto result = Dispatch(plan, entry, ctx, nullptr);
    if (result.ok()) span.AddArg("rows_matched", result->rows_matched);
    return result;
  }

  ctx.profile->backend = std::string(BackendToString(plan.backend));
  ctx.profile->table = plan.table;
  sim::MemorySystem* memory =
      plan.backend == Backend::kColumn && entry.columns != nullptr
          ? entry.columns->memory()
          : entry.rows->memory();
  obs::OpProfiler prof(ctx.profile, [memory] { return memory->Sample(); });
  auto result = Dispatch(plan, entry, ctx, &prof);
  prof.Finish();  // engines already Finish(); this closes error paths
  if (result.ok()) {
    ctx.profile->total_cycles = result->sim_cycles;
    span.AddArg("rows_matched", result->rows_matched);
  }
  return result;
}

StatusOr<engine::QueryResult> Executor::FallbackToRowScan(
    const Plan& plan, const TableEntry& entry, const exec::ExecContext& ctx,
    const Status& cause, obs::OpProfiler* prof) const {
  // Graceful degradation (the Polynesia/Farview rule: the offload path
  // must degrade to the host path when the accelerator is unavailable):
  // the fabric plan died on an I/O-class fault after its retries, so the
  // query re-runs start-to-finish on the host row engine. The failed
  // attempt's simulated cycles stay on the clock, and the rerun starts
  // from the query's beginning because the failed engine's partial
  // aggregate state is not recoverable.
  if (ctx.injector != nullptr) {
    ctx.injector->NoteFallback("query." +
                               std::string(BackendToString(plan.backend)));
  }
  if (prof != nullptr) {
    prof->Switch(-1);
    prof->NoteFallback(cause.ToString() + "; query re-run on ROW backend");
  }
  if (ctx.recorder != nullptr) {
    ctx.recorder->Log("query",
                      "degraded to ROW: " + cause.ToString(),
                      ctx.tracer != nullptr ? ctx.tracer->Now() : 0);
  }
  obs::Span span(ctx.tracer, "query.fallback", "query");
  span.AddArg("cause", cause.ToString());
  engine::VolcanoEngine eng(entry.rows, cost_);
  eng.set_profiler(prof);
  return eng.Execute(plan.spec);
}

StatusOr<engine::QueryResult> Executor::Dispatch(const Plan& plan,
                                                 const TableEntry& entry,
                                                 const exec::ExecContext& ctx,
                                                 obs::OpProfiler* prof) const {
  switch (plan.backend) {
    case Backend::kRow: {
      engine::VolcanoEngine eng(entry.rows, cost_);
      eng.set_profiler(prof);
      return eng.Execute(plan.spec);
    }
    case Backend::kColumn: {
      if (entry.columns == nullptr) {
        return Status::FailedPrecondition(
            "plan chose COL but table '" + plan.table +
            "' has no materialized columnar copy");
      }
      engine::VectorEngine eng(entry.columns, cost_);
      eng.set_profiler(prof);
      return eng.Execute(plan.spec);
    }
    case Backend::kRelationalMemory: {
      if (RmUnavailable(ctx)) {
        return FallbackToRowScan(
            plan, entry, ctx,
            Status::Unavailable("rm transformer dead (killed at rm.kill)"),
            prof);
      }
      engine::RmExecEngine eng(entry.rows, rm_, cost_);
      eng.set_profiler(prof);
      StatusOr<engine::QueryResult> result = eng.Execute(plan.spec);
      ReportRmOutcome(ctx, result.ok() ? Status::Ok() : result.status());
      if (result.ok() || !faults::IsFabricFault(result.status())) {
        return result;
      }
      return FallbackToRowScan(plan, entry, ctx, result.status(), prof);
    }
    case Backend::kHybrid: {
      if (RmUnavailable(ctx)) {
        return FallbackToRowScan(
            plan, entry, ctx,
            Status::Unavailable("rm transformer dead (killed at rm.kill)"),
            prof);
      }
      engine::HybridEngine eng(entry.rows, rm_, cost_);
      eng.set_profiler(prof);
      eng.set_fault_injector(ctx.injector);
      StatusOr<engine::QueryResult> result = eng.Execute(plan.spec);
      ReportRmOutcome(ctx, result.ok() ? Status::Ok() : result.status());
      if (result.ok() || !faults::IsFabricFault(result.status())) {
        return result;
      }
      // The hybrid engine degrades internally; this only triggers when
      // even its internal recovery could not finish (e.g. a fault on the
      // delegated pure-RM plan that it chose not to retry).
      return FallbackToRowScan(plan, entry, ctx, result.status(), prof);
    }
    case Backend::kIndex: {
      if (entry.key_index == nullptr) {
        return Status::FailedPrecondition(
            "plan chose INDEX but table '" + plan.table + "' has no index");
      }
      const engine::Predicate* point = nullptr;
      for (const engine::Predicate& p : plan.spec.predicates) {
        if (p.column == entry.key_index_column &&
            p.op == relmem::CompareOp::kEq) {
          point = &p;
          break;
        }
      }
      if (point == nullptr) {
        return Status::FailedPrecondition(
            "plan chose INDEX without an equality predicate on the "
            "indexed column");
      }
      int op_lookup = -1;
      if (prof != nullptr) op_lookup = prof->AddOp("IndexLookup");
      if (prof != nullptr) prof->Switch(op_lookup);
      const std::vector<uint64_t> candidates =
          entry.key_index->Lookup(point->int_operand);
      if (prof != nullptr) {
        prof->op(op_lookup).rows_in = 1;  // one probed key
        prof->op(op_lookup).rows_out = candidates.size();
        prof->Switch(-1);
      }
      engine::VolcanoEngine eng(entry.rows, cost_);
      eng.set_profiler(prof);
      return eng.ExecuteOnRowIds(plan.spec, candidates);
    }
  }
  return Status::Internal("unknown backend");
}

}  // namespace relfab::query
