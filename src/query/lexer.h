#ifndef RELFAB_QUERY_LEXER_H_
#define RELFAB_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace relfab::query {

/// Token kinds of the SQL subset.
enum class TokenType : uint8_t {
  kIdent,   // identifiers and keywords (keywords resolved by the parser)
  kNumber,  // numeric literal (int or decimal)
  kString,  // 'quoted'
  kSymbol,  // punctuation / operators, text holds the exact symbol
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/symbol/string spelling
  double number = 0;  // kNumber value
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword test.
  bool IsKeyword(std::string_view upper) const;
};

/// Splits `sql` into tokens. Symbols: ( ) , + - * < <= > >= = != <>.
StatusOr<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace relfab::query

#endif  // RELFAB_QUERY_LEXER_H_
