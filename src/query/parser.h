#ifndef RELFAB_QUERY_PARSER_H_
#define RELFAB_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "engine/query.h"
#include "query/catalog.h"

namespace relfab::query {

/// A parsed statement: the target table plus the engine-level query.
struct ParsedQuery {
  std::string table;
  engine::QuerySpec spec;
};

/// Recursive-descent parser for the SQL subset:
///
///   SELECT <select_list> FROM <table>
///     [WHERE <col> <op> <number> [AND ...]]
///     [GROUP BY <col> [, ...]]
///
///   select_list := column [, ...]                    -- projection
///                | agg [, ...] [, column ...]        -- aggregation
///   agg         := COUNT(*) | SUM(expr) | AVG(expr)
///                | MIN(expr) | MAX(expr)
///   expr        := arithmetic over columns & numeric literals (+ - *)
///
/// Columns named in an aggregate query outside aggregates must appear in
/// GROUP BY (checked). Column names resolve against the target table's
/// schema from the catalog.
class Parser {
 public:
  explicit Parser(const Catalog* catalog) : catalog_(catalog) {
    // relfab-lint: allow(data-check) wiring-time null check: a programming error, never data-dependent
    RELFAB_CHECK(catalog != nullptr);
  }

  StatusOr<ParsedQuery> Parse(std::string_view sql) const;

 private:
  const Catalog* catalog_;
};

}  // namespace relfab::query

#endif  // RELFAB_QUERY_PARSER_H_
