#ifndef RELFAB_QUERY_CATALOG_H_
#define RELFAB_QUERY_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "index/btree.h"
#include "layout/column_table.h"
#include "layout/row_table.h"
#include "query/stats.h"
#include "shard/sharded_table.h"

namespace relfab::query {

/// Access paths registered for one relation. A relation is either a
/// single row-oriented base table (`rows`, the single source of truth)
/// or a range-sharded one (`sharded`); exactly one of the two is set.
/// A columnar copy is optional — with Relational Fabric present it is
/// usually *not* materialized, and the planner treats its absence as
/// "COL unavailable". An optional B+-tree over one integer column serves
/// point queries (paper §III-A: with the fabric handling range scans,
/// "indexes should be used for point queries and point updates").
/// Sharded relations execute through the shard fan-out path and carry
/// no columnar copy, index or stats.
struct TableEntry {
  const layout::RowTable* rows = nullptr;
  const layout::ColumnTable* columns = nullptr;  // optional baseline copy
  index::BTreeIndex* key_index = nullptr;        // optional point-query path
  uint32_t key_index_column = 0;                 // column key_index covers
  const TableStats* stats = nullptr;             // optional ANALYZE output
  const shard::ShardedTable* sharded = nullptr;  // range-sharded relation

  const layout::Schema& schema() const {
    return rows != nullptr ? rows->schema() : sharded->schema();
  }
  uint64_t num_rows() const {
    return rows != nullptr ? rows->num_rows() : sharded->num_rows();
  }
};

/// Name -> access paths. Names are case-sensitive.
class Catalog {
 public:
  Status Register(const std::string& name, TableEntry entry) {
    if (entry.rows == nullptr && entry.sharded == nullptr) {
      return Status::InvalidArgument("table needs row-oriented base data");
    }
    if (!tables_.emplace(name, entry).second) {
      return Status::AlreadyExists("table '" + name + "' already registered");
    }
    return Status::Ok();
  }

  StatusOr<TableEntry> Lookup(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("no table named '" + name + "'");
    }
    return it->second;
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, entry] : tables_) names.push_back(name);
    return names;
  }

 private:
  std::map<std::string, TableEntry> tables_;
};

}  // namespace relfab::query

#endif  // RELFAB_QUERY_CATALOG_H_
