#include "query/stats.h"

#include <algorithm>
#include <cmath>

namespace relfab::query {

namespace {

constexpr uint32_t kBuckets = 64;

}  // namespace

double ColumnStats::Selectivity(relmem::CompareOp op, double operand) const {
  if (!valid || row_count == 0) return 1.0;
  // Fraction of rows with value < operand (interpolated), then derive
  // the other comparisons from it.
  const auto fraction_below = [this](double x) {
    if (x <= min) return 0.0;
    if (x > max) return 1.0;
    const double width = (max - min) / histogram.size();
    double below = 0;
    if (width <= 0) return x > min ? 1.0 : 0.0;
    const uint32_t bucket = std::min<uint32_t>(
        static_cast<uint32_t>((x - min) / width),
        static_cast<uint32_t>(histogram.size()) - 1);
    for (uint32_t b = 0; b < bucket; ++b) below += histogram[b];
    const double into =
        (x - (min + bucket * width)) / width;  // position inside bucket
    below += histogram[bucket] * std::clamp(into, 0.0, 1.0);
    return below / static_cast<double>(row_count);
  };
  // Point-mass estimate for equality: one histogram bucket spread.
  const double eq = [&] {
    const double width = (max - min) / histogram.size();
    if (operand < min || operand > max) return 0.0;
    if (width <= 0) return 1.0;
    const uint32_t bucket = std::min<uint32_t>(
        static_cast<uint32_t>((operand - min) / width),
        static_cast<uint32_t>(histogram.size()) - 1);
    // Assume ~width distinct values per bucket.
    const double per_value = histogram[bucket] /
                             std::max(1.0, width) /
                             static_cast<double>(row_count);
    return std::min(1.0, per_value);
  }();
  switch (op) {
    case relmem::CompareOp::kLt:
      return fraction_below(operand);
    case relmem::CompareOp::kLe:
      return std::min(1.0, fraction_below(operand) + eq);
    case relmem::CompareOp::kGt:
      return std::max(0.0, 1.0 - fraction_below(operand) - eq);
    case relmem::CompareOp::kGe:
      return std::max(0.0, 1.0 - fraction_below(operand));
    case relmem::CompareOp::kEq:
      return eq;
    case relmem::CompareOp::kNe:
      return std::max(0.0, 1.0 - eq);
  }
  return 1.0;
}

double TableStats::EstimateSelectivity(
    const std::vector<engine::Predicate>& predicates) const {
  double selectivity = 1.0;
  for (const engine::Predicate& p : predicates) {
    if (p.column >= columns.size()) continue;
    selectivity *= columns[p.column].Selectivity(p.op, p.double_operand);
  }
  return selectivity;
}

TableStats AnalyzeTable(const layout::RowTable& table) {
  const layout::Schema& schema = table.schema();
  TableStats stats;
  stats.row_count = table.num_rows();
  stats.columns.resize(schema.num_columns());
  if (table.num_rows() == 0) return stats;

  for (uint32_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.type(c) == layout::ColumnType::kChar) continue;
    ColumnStats& col = stats.columns[c];
    col.valid = true;
    col.row_count = table.num_rows();
    col.min = table.GetDouble(0, c);
    col.max = col.min;
    for (uint64_t r = 1; r < table.num_rows(); ++r) {
      const double v = table.GetDouble(r, c);
      col.min = std::min(col.min, v);
      col.max = std::max(col.max, v);
    }
    col.histogram.assign(kBuckets, 0);
    const double width = (col.max - col.min) / kBuckets;
    for (uint64_t r = 0; r < table.num_rows(); ++r) {
      const double v = table.GetDouble(r, c);
      const uint32_t bucket =
          width <= 0 ? 0
                     : std::min<uint32_t>(
                           static_cast<uint32_t>((v - col.min) / width),
                           kBuckets - 1);
      ++col.histogram[bucket];
    }
  }
  return stats;
}

}  // namespace relfab::query
