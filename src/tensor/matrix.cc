#include "tensor/matrix.h"

#include <algorithm>
#include <cstring>

namespace relfab::tensor {

StatusOr<Matrix> Matrix::Create(uint64_t rows, uint32_t cols,
                                sim::MemorySystem* memory) {
  if (cols == 0 || cols > 1024) {
    return Status::InvalidArgument("matrix needs 1..1024 columns");
  }
  if (memory == nullptr) {
    return Status::InvalidArgument("memory system is required");
  }
  return Matrix(rows, cols, memory);
}

Matrix::Matrix(uint64_t rows, uint32_t cols, sim::MemorySystem* memory)
    : cols_(cols),
      table_(std::make_unique<layout::RowTable>(
          layout::Schema::Uniform(cols, layout::ColumnType::kDouble), memory,
          rows)),
      scratch_row_(static_cast<size_t>(cols) * 8) {}

void Matrix::Set(uint64_t r, uint32_t c, double v) {
  RELFAB_CHECK(r < table_->num_rows() && c < cols_);
  std::memcpy(table_->MutableRowData(r) + table_->schema().offset(c), &v, 8);
}

void Matrix::AppendRow(const double* values) {
  std::memcpy(scratch_row_.data(), values, scratch_row_.size());
  table_->AppendRow(scratch_row_.data());
}

StatusOr<relmem::EphemeralView> Matrix::Slice(relmem::RmEngine* rm,
                                              std::vector<uint32_t> columns,
                                              uint64_t row_begin,
                                              uint64_t row_end) const {
  RELFAB_CHECK(rm != nullptr);
  relmem::Geometry g;
  g.columns = std::move(columns);
  g.begin_row = row_begin;
  g.end_row = row_end;
  return rm->Configure(*table_, std::move(g));
}

double Matrix::SumColumnDirect(uint32_t col) const {
  RELFAB_CHECK(col < cols_);
  sim::MemorySystem* memory = table_->memory();
  double sum = 0;
  for (uint64_t r = 0; r < table_->num_rows(); ++r) {
    memory->Read(table_->FieldAddress(r, col), 8);
    memory->CpuWork(2.0);  // load + add in a tight loop
    sum += table_->GetDouble(r, col);
  }
  return sum;
}

StatusOr<double> Matrix::SumColumnFabric(relmem::RmEngine* rm,
                                         uint32_t col) const {
  RELFAB_ASSIGN_OR_RETURN(relmem::EphemeralView view, Slice(rm, {col}));
  sim::MemorySystem* memory = table_->memory();
  double sum = 0;
  for (relmem::EphemeralView::Cursor cur(&view); cur.Valid();
       cur.Advance()) {
    memory->CpuWork(2.0);
    sum += cur.GetDouble(0);
  }
  return sum;
}

StatusOr<double> Matrix::DotColumnsFabric(relmem::RmEngine* rm, uint32_t a,
                                          uint32_t b) const {
  RELFAB_ASSIGN_OR_RETURN(relmem::EphemeralView view, Slice(rm, {a, b}));
  sim::MemorySystem* memory = table_->memory();
  double dot = 0;
  for (relmem::EphemeralView::Cursor cur(&view); cur.Valid();
       cur.Advance()) {
    memory->CpuWork(3.0);  // two loads + fused multiply-add
    dot += cur.GetDouble(0) * cur.GetDouble(1);
  }
  return dot;
}

}  // namespace relfab::tensor
