#ifndef RELFAB_TENSOR_MATRIX_H_
#define RELFAB_TENSOR_MATRIX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/statusor.h"
#include "layout/row_table.h"
#include "relmem/ephemeral.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::tensor {

/// Dense row-major matrix of doubles in simulated DRAM, sliceable
/// through Relational Fabric. The paper's open question Q1 (§VII) notes
/// that transparent data transformation "has great potential for other
/// data-intensive applications over multi-dimensional data
/// (matrix/tensor slicing and vectorized operations on matrix/tensor
/// slices)" — a row-major matrix is exactly a relational table whose
/// columns are the matrix columns, so ephemeral variables deliver dense
/// column slices without a transpose.
///
/// The matrix is backed by a RowTable with one kDouble column per matrix
/// column (at most 1024 columns).
class Matrix {
 public:
  static StatusOr<Matrix> Create(uint64_t rows, uint32_t cols,
                                 sim::MemorySystem* memory);

  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  uint64_t rows() const { return table_->num_rows(); }
  uint32_t cols() const { return cols_; }
  const layout::RowTable& table() const { return *table_; }

  double At(uint64_t r, uint32_t c) const {
    return table_->GetDouble(r, c);
  }
  /// Host-side write (no sim charge; building the input is free, as with
  /// table generation).
  void Set(uint64_t r, uint32_t c, double v);

  /// Appends a row of `cols()` doubles.
  void AppendRow(const double* values);

  /// Ephemeral slice: arbitrary column group over a row range, packed
  /// dense by the fabric.
  StatusOr<relmem::EphemeralView> Slice(relmem::RmEngine* rm,
                                        std::vector<uint32_t> columns,
                                        uint64_t row_begin = 0,
                                        uint64_t row_end = ~0ull) const;

  /// Baseline: sum of one column via direct strided accesses to the
  /// row-major data (charges the simulator). The classic worst case the
  /// fabric removes.
  double SumColumnDirect(uint32_t col) const;

  /// Same sum through an ephemeral slice.
  StatusOr<double> SumColumnFabric(relmem::RmEngine* rm, uint32_t col) const;

  /// Dot product of two column slices through one two-column ephemeral
  /// view (a "vectorized operation on matrix slices").
  StatusOr<double> DotColumnsFabric(relmem::RmEngine* rm, uint32_t a,
                                    uint32_t b) const;

 private:
  Matrix(uint64_t rows, uint32_t cols, sim::MemorySystem* memory);

  uint32_t cols_;
  std::unique_ptr<layout::RowTable> table_;
  std::vector<uint8_t> scratch_row_;
};

}  // namespace relfab::tensor

#endif  // RELFAB_TENSOR_MATRIX_H_
