#!/usr/bin/env python3
"""Checks a graceful-degradation smoke pair of bench --json reports.

Usage: tools/check_degradation.py <baseline.json> <armed.json>

<baseline.json> is a run with $RELFAB_FAULTS unset; <armed.json> is the
same bench with a fault plan armed. The armed run must show the faults
actually biting (nonzero injections and at least one transparent
fallback to the host path) while every answer gauge ("result.*" in the
metrics snapshot) is exactly equal to the baseline: faults may cost
cycles and change the execution path, never the data.

Exits 0 when the contract holds, 1 with a diff otherwise.
"""

import json
import sys


def load(path: str):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    metrics = doc.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    return doc.get("bench"), counters, gauges


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    base_bench, base_counters, base_gauges = load(argv[1])
    armed_bench, armed_counters, armed_gauges = load(argv[2])

    ok = True

    def fail(msg: str):
        nonlocal ok
        print(f"FAIL {msg}")
        ok = False

    if base_bench != armed_bench:
        fail(f"bench mismatch: baseline={base_bench!r} armed={armed_bench!r}")

    # The baseline must really be fault-free.
    if base_gauges.get("faults.armed", 0) != 0:
        fail("baseline report has faults armed")
    if base_counters.get("faults.fallbacks.total", 0) != 0:
        fail("baseline report records fallbacks")

    # The armed run must have injected faults and degraded at least once,
    # or the smoke proved nothing.
    if armed_gauges.get("faults.armed", 0) != 1:
        fail("armed report does not show an armed fault plan "
             "(was $RELFAB_FAULTS set?)")
    injected = armed_counters.get("faults.injected", 0)
    fallbacks = armed_counters.get("faults.fallbacks.total", 0)
    if injected <= 0:
        fail("armed run injected no faults")
    if fallbacks <= 0:
        fail("armed run never degraded to the host path "
             "(raise probabilities so retries exhaust)")

    # Answers must be bit-identical.
    base_answers = {k: v for k, v in base_gauges.items()
                    if k.startswith("result.")}
    armed_answers = {k: v for k, v in armed_gauges.items()
                     if k.startswith("result.")}
    if not base_answers:
        fail("baseline report carries no result.* answer gauges")
    for key in sorted(base_answers.keys() | armed_answers.keys()):
        if key not in base_answers:
            fail(f"answer {key} only in armed report")
        elif key not in armed_answers:
            fail(f"answer {key} only in baseline report")
        elif base_answers[key] != armed_answers[key]:
            fail(f"answer changed under faults: {key}: "
                 f"baseline={base_answers[key]!r} "
                 f"armed={armed_answers[key]!r}")

    if ok:
        print(f"OK {armed_bench}: {len(base_answers)} answers identical; "
              f"armed run injected {injected:.0f} fault(s), "
              f"retried {armed_counters.get('faults.retries', 0):.0f}x, "
              f"exhausted {armed_counters.get('faults.exhausted', 0):.0f}, "
              f"fell back {fallbacks:.0f}x with unchanged answers")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
