#!/usr/bin/env python3
"""relfab_lint: repo-specific determinism and concurrency linter.

The repo's core guarantee is bit-identical simulated cycles and answers
across host thread counts, sim modes, and fault seeds. This linter
rejects the source patterns that historically break that guarantee:

  wall-clock           ambient time sources (std::chrono::*_clock, time(),
                       clock(), gettimeofday) — cycle accounting must use
                       the simulated clock; host-side wall timing needs an
                       inline allow marker.
  ambient-random       nondeterministic or non-portable randomness
                       (std::random_device, rand/srand, std::mt19937,
                       drand48). All randomness goes through
                       relfab::Random seeded from plan/config state; the
                       one sanctioned seeding path is documented in
                       docs/static-analysis.md.
  unordered-iteration  std::unordered_{map,set} in cycle-domain
                       directories (src/{sim,relmem,relstorage,mvcc,
                       engine,exec,shard}): iteration order is
                       implementation-defined, so anything iterated there
                       can leak into cycle accounting. Lookup-only use is
                       allowlisted inline with a reason.
  naked-mutex          std::mutex / std::lock_guard / std::unique_lock /
                       std::scoped_lock outside
                       src/common/thread_annotations.h — use the
                       annotated relfab::Mutex / relfab::MutexLock so
                       clang -Wthread-safety can check lock discipline.
  unguarded-mutex      a relfab::Mutex member with no
                       RELFAB_GUARDED_BY(<that mutex>) companion in the
                       same file: a mutex that guards nothing (or whose
                       guarded state is unannotated) defeats the
                       analysis.
  data-check           RELFAB_CHECK* (non-DCHECK) in src/{relmem,
                       relstorage,query}: the PR-3 bug class where a
                       data-dependent condition aborts the process
                       instead of returning Status. Genuine
                       programming-error invariants are allowlisted
                       inline with a reason.
  header-guard         every .h must open with #pragma once or a
                       matching #ifndef/#define include guard.

Allowlist policy (docs/static-analysis.md): every suppression is inline
and needs a reason —

    // relfab-lint: allow(<rule>) <reason text>

on the offending line or the line directly above it. A marker with no
reason is itself a violation (`bare-allow`).

Usage:
    tools/relfab_lint.py [--strict] [--root DIR] [paths...]

With no paths, scans src/ bench/ tests/ under --root (default: the repo
containing this script), skipping tests/lint_selftest/fixtures (those
files violate on purpose). --strict exits 1 on any violation; without it
violations are printed but the exit code stays 0 (advisory mode).
"""

import argparse
import os
import re
import sys

# Directories whose code charges or feeds the simulated-cycle domain.
CYCLE_DOMAIN_DIRS = (
    "src/sim",
    "src/relmem",
    "src/relstorage",
    "src/mvcc",
    "src/engine",
    "src/exec",
    "src/shard",
    "src/net",
)

# RELFAB_CHECK in these dirs must be an allowlisted programming-error
# invariant, never a data-dependent condition (return Status instead).
DATA_CHECK_DIRS = ("src/relmem", "src/relstorage", "src/query")

ALLOW_RE = re.compile(r"//\s*relfab-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)\s*(.*)")

SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

RULES = {}


def rule(name):
    def deco(fn):
        RULES[name] = fn
        return fn
    return deco


class Violation:
    def __init__(self, path, line_no, rule_name, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule_name
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Removes string/char literals and // comments so token scans don't
    fire on documentation or message text."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)
            continue
        out.append(c)
        i += 1
    return "".join(out)


class FileContext:
    def __init__(self, rel_path, lines):
        self.rel_path = rel_path
        self.lines = lines
        self.code_lines = [strip_comments_and_strings(l) for l in lines]
        # allows[line_no] = set of rule names allowed at that line
        # (1-based); a marker covers its own line and the next line.
        self.allows = {}
        self.bare_allows = []  # (line_no, marker text) missing a reason
        for idx, line in enumerate(lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",")}
            reason = m.group(2).strip()
            if not reason:
                self.bare_allows.append((idx, m.group(0).strip()))
                continue
            for covered in (idx, idx + 1):
                self.allows.setdefault(covered, set()).update(rules)

    def allowed(self, line_no, rule_name):
        return rule_name in self.allows.get(line_no, ())

    def in_dir(self, prefixes):
        return any(
            self.rel_path == p or self.rel_path.startswith(p + "/") or
            self.rel_path.startswith(p + os.sep)
            for p in prefixes
        )


def token_scan(ctx, rule_name, patterns, message, dirs=None):
    if dirs is not None and not ctx.in_dir(dirs):
        return []
    found = []
    for idx, code in enumerate(ctx.code_lines, start=1):
        for pat in patterns:
            if pat.search(code):
                if not ctx.allowed(idx, rule_name):
                    found.append(Violation(ctx.rel_path, idx, rule_name,
                                           message.format(match=pat.pattern)))
                break
    return found


@rule("wall-clock")
def check_wall_clock(ctx):
    pats = [
        re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
        re.compile(r"\bgettimeofday\s*\("),
        re.compile(r"(?<![:\w])time\s*\(\s*(nullptr|NULL|0)?\s*\)"),
        re.compile(r"(?<![:\w.>])clock\s*\(\s*\)"),
    ]
    return token_scan(
        ctx, "wall-clock", pats,
        "ambient time source; cycle accounting must use the simulated "
        "clock (allow() host-side wall timing with a reason)")


@rule("ambient-random")
def check_ambient_random(ctx):
    pats = [
        re.compile(r"std::random_device"),
        re.compile(r"std::mt19937"),
        re.compile(r"(?<![:\w])s?rand\s*\("),
        re.compile(r"\bd?rand48\s*\("),
    ]
    return token_scan(
        ctx, "ambient-random", pats,
        "nondeterministic/non-portable randomness; use relfab::Random "
        "seeded from plan/config state (common/random.h)")


@rule("unordered-iteration")
def check_unordered(ctx):
    pats = [re.compile(r"std::unordered_(map|set|multimap|multiset)")]
    return token_scan(
        ctx, "unordered-iteration", pats,
        "std::unordered_* in a cycle-domain directory: iteration order "
        "is implementation-defined and can leak into cycle accounting "
        "(allow() lookup-only use with a reason)",
        dirs=CYCLE_DOMAIN_DIRS)


@rule("naked-mutex")
def check_naked_mutex(ctx):
    if ctx.rel_path.replace(os.sep, "/") == "src/common/thread_annotations.h":
        return []
    pats = [
        re.compile(r"std::(timed_|recursive_|shared_)?mutex\b"),
        re.compile(r"std::(lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
    ]
    return token_scan(
        ctx, "naked-mutex", pats,
        "naked std mutex/lock; use relfab::Mutex / relfab::MutexLock "
        "(common/thread_annotations.h) so -Wthread-safety can check it")


MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:relfab::)?Mutex\s+(\w+)\s*;")


@rule("unguarded-mutex")
def check_unguarded_mutex(ctx):
    found = []
    joined = "\n".join(ctx.code_lines)
    for idx, code in enumerate(ctx.code_lines, start=1):
        m = MUTEX_MEMBER_RE.match(code)
        if not m:
            continue
        name = m.group(1)
        if re.search(r"RELFAB_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name)
                     + r"\s*\)", joined):
            continue
        if not ctx.allowed(idx, "unguarded-mutex"):
            found.append(Violation(
                ctx.rel_path, idx, "unguarded-mutex",
                f"Mutex member '{name}' has no RELFAB_GUARDED_BY({name}) "
                "companion in this file; annotate what it protects"))
    return found


@rule("data-check")
def check_data_check(ctx):
    pats = [re.compile(r"RELFAB_CHECK(_EQ|_NE|_LT|_LE|_GT|_GE)?\s*\(")]
    return token_scan(
        ctx, "data-check", pats,
        "RELFAB_CHECK in a data-handling layer: if the condition can be "
        "false for any input, return Status instead of aborting "
        "(allow() true programming-error invariants with a reason)",
        dirs=DATA_CHECK_DIRS)


@rule("header-guard")
def check_header_guard(ctx):
    if not ctx.rel_path.endswith((".h", ".hpp")):
        return []
    ifndef = None
    for idx, line in enumerate(ctx.lines[:30], start=1):
        stripped = line.strip()
        if stripped.startswith("#pragma once"):
            return []
        m = re.match(r"#ifndef\s+(\w+)", stripped)
        if m:
            ifndef = (idx, m.group(1))
            continue
        if ifndef is not None:
            m2 = re.match(r"#define\s+(\w+)", stripped)
            if m2 and m2.group(1) == ifndef[1]:
                return []
    if ctx.allowed(1, "header-guard"):
        return []
    return [Violation(ctx.rel_path, 1, "header-guard",
                      "header has neither #pragma once nor a matching "
                      "#ifndef/#define include guard")]


def lint_file(root, rel_path):
    abs_path = os.path.join(root, rel_path)
    try:
        with open(abs_path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Violation(rel_path, 0, "io", str(e))]
    ctx = FileContext(rel_path.replace(os.sep, "/"), lines)
    violations = []
    for line_no, marker in ctx.bare_allows:
        violations.append(Violation(
            ctx.rel_path, line_no, "bare-allow",
            f"allow marker '{marker}' has no reason; every suppression "
            "must say why (docs/static-analysis.md)"))
    # Allow markers naming rules that never fire on their line are stale.
    for check in RULES.values():
        violations.extend(check(ctx))
    return violations


def collect_files(root, paths):
    if paths:
        for p in paths:
            rel = os.path.relpath(os.path.abspath(p), root)
            yield rel
        return
    for top in ("src", "bench", "tests"):
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, top)):
            # Fixture files violate on purpose; the self-test feeds them
            # explicitly.
            dirnames[:] = [d for d in dirnames if d != "fixtures"]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any violation (CI/ctest mode)")
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write machine-readable findings JSON "
                             "(schema shared with tools/relfab_analyzer)")
    parser.add_argument("paths", nargs="*",
                        help="explicit files to lint (default: "
                             "src/ bench/ tests/)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    violations = []
    n_files = 0
    for rel in collect_files(args.root, args.paths):
        n_files += 1
        violations.extend(lint_file(args.root, rel))

    for v in violations:
        print(v)
    if args.json_out:
        # Reuse the analyzer's findings module so both tools emit the
        # exact same JSON schema (and fingerprint algorithm).
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from relfab_analyzer import findings as findings_mod
        findings_mod.write_json(
            args.json_out, "relfab_lint", os.path.abspath(args.root),
            n_files,
            [findings_mod.Finding(v.path, v.line_no, v.rule, v.message)
             for v in violations])
    tag = "STRICT " if args.strict else ""
    print(f"relfab_lint: {tag}{n_files} files, "
          f"{len(violations)} violation(s)", file=sys.stderr)
    if violations and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
