#!/usr/bin/env python3
"""Validates a bench --json run report against bench_report.schema.json.

Usage: tools/validate_bench_json.py <report.json> [report2.json ...]

Uses the `jsonschema` package when available; otherwise falls back to a
built-in structural check covering the same constraints the C++ side
enforces (obs::RunReport::Validate), so CI does not need extra installs.
Exits non-zero on the first invalid report.
"""

import json
import os
import sys

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "bench",
    "bench_report.schema.json")


def fail(path: str, message: str) -> None:
    print(f"FAIL {path}: {message}", file=sys.stderr)
    sys.exit(1)


def validate_structurally(path: str, doc: object) -> None:
    """Mirror of obs::RunReport::Validate for schema-less environments."""
    if not isinstance(doc, dict):
        fail(path, "report must be a JSON object")
    if doc.get("schema_version") != 2:
        fail(path, "schema_version must be 2")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "'bench' must be a non-empty string")
    config = doc.get("config")
    if not isinstance(config, dict) or any(
            not isinstance(v, str) for v in config.values()):
        fail(path, "'config' must be an object of string values")
    results = doc.get("results")
    if not isinstance(results, list):
        fail(path, "'results' must be an array")
    for r in results:
        if (not isinstance(r, dict) or not isinstance(r.get("series"), str)
                or not isinstance(r.get("x"), str)
                or not isinstance(r.get("sim_cycles"), (int, float))
                or r["sim_cycles"] < 0):
            fail(path, f"bad result entry: {r!r}")
        if (not isinstance(r.get("host_wall_ms"), (int, float))
                or r["host_wall_ms"] < 0):
            fail(path, f"result missing numeric host_wall_ms: {r!r}")
        lps = r.get("sim_lines_per_host_sec")
        if lps is not None and (not isinstance(lps, (int, float))
                                or lps < 0):
            fail(path, f"bad sim_lines_per_host_sec: {r!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(path, "'metrics' must be an object")
    for name, v in metrics.get("counters", {}).items():
        if not isinstance(v, (int, float)) or v < 0:
            fail(path, f"counter '{name}' must be a non-negative number")
    for name, v in metrics.get("gauges", {}).items():
        if not isinstance(v, (int, float)):
            fail(path, f"gauge '{name}' must be a number")
    for name, h in metrics.get("histograms", {}).items():
        if not isinstance(h, dict):
            fail(path, f"histogram '{name}' must be an object")
        for key in ("count", "sum", "min", "max", "buckets"):
            if key not in h:
                fail(path, f"histogram '{name}' missing '{key}'")
        for triple in h["buckets"]:
            if (not isinstance(triple, list) or len(triple) != 3
                    or not all(isinstance(x, (int, float)) for x in triple)):
                fail(path, f"histogram '{name}' has bad bucket {triple!r}")
            if triple[0] >= triple[1]:
                fail(path, f"histogram '{name}' bucket edges not increasing")


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)
    try:
        import jsonschema
        validator = jsonschema.Draft202012Validator(schema)
    except ImportError:
        validator = None
        print("note: jsonschema not installed, using built-in checks")

    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, str(e))
        if validator is not None:
            errors = sorted(validator.iter_errors(doc), key=str)
            if errors:
                fail(path, errors[0].message)
        validate_structurally(path, doc)
        n_results = len(doc["results"])
        n_counters = len(doc["metrics"].get("counters", {}))
        print(f"OK   {path}: bench={doc['bench']} results={n_results} "
              f"counters={n_counters}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
