#!/usr/bin/env python3
"""relfab_analyzer driver: semantic determinism analysis for the repo.

Usage:
    tools/relfab_analyzer/analyze.py [options] [paths...]

Options:
    --root DIR          repo root (default: repo containing this script)
    --compile-db FILE   compile_commands.json (default:
                        <root>/build/compile_commands.json when present;
                        the analyzer still runs without one by scanning
                        the scope directories)
    --frontend MODE     auto | clang | internal (default auto: libclang
                        when importable, per-TU fallback to the internal
                        parser)
    --rules LIST        comma-separated subset of rules to run
    --json FILE         write findings JSON (schema shared with
                        tools/relfab_lint.py --json)
    --baseline FILE     baseline to diff against (default:
                        tools/relfab_analyzer/baseline.json; pass 'none'
                        to disable)
    --write-baseline    rewrite the baseline from current findings
    --strict            exit 1 on findings not covered by the baseline
    --list-rules        print rule names and exit

Scans src/ by default (the cycle-domain production tree). Explicit
paths (used by the lint self-test's staged fixtures) override scope
discovery. See docs/static-analysis.md, "Layer 4 — the AST analyzer".
"""

import argparse
import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from relfab_analyzer import ANALYZER_RULES  # noqa: E402
    from relfab_analyzer import allowaudit, clang_frontend, compiledb, \
        cppmodel, findings as findings_mod, locks, statusflow, taint
else:
    from . import ANALYZER_RULES, allowaudit, clang_frontend, compiledb, \
        cppmodel, findings as findings_mod, locks, statusflow, taint


class Program:
    """Whole-program model: every TU, merged class index, all functions."""

    def __init__(self):
        self.tus = []
        self.functions = []
        self.classes = {}           # name -> ClassInfo (members merged)
        self.returns_statusor = set()
        self.frontend_counts = {"clang": 0, "internal": 0}

    def add_tu(self, tu):
        self.tus.append(tu)
        self.frontend_counts[tu.frontend] = \
            self.frontend_counts.get(tu.frontend, 0) + 1
        self.functions.extend(tu.functions)
        for name, cls in tu.classes.items():
            if name in self.classes:
                for mname, m in cls.members.items():
                    self.classes[name].members.setdefault(mname, m)
            else:
                self.classes[name] = cls
        for fn in tu.functions:
            if "StatusOr" in (fn.return_type or ""):
                self.returns_statusor.add(fn.name)
                self.returns_statusor.add(fn.qual_name)


def build_program(root, compile_db=None, frontend="auto",
                  explicit_paths=None, scope=compiledb.DEFAULT_SCOPE):
    sources, entries = compiledb.collect_tus(
        root, compile_db_path=compile_db, scope=scope,
        explicit_paths=explicit_paths)
    program = Program()
    clang_ok = False
    if frontend in ("auto", "clang"):
        try:
            clang_frontend.load()
            clang_ok = True
        except clang_frontend.ClangFrontendError as e:
            if frontend == "clang":
                raise SystemExit(f"relfab_analyzer: --frontend clang "
                                 f"requested but {e}")
            print(f"relfab_analyzer: libclang unavailable "
                  f"({e}); using internal frontend", file=sys.stderr)
    for rel in sources:
        abs_path = os.path.join(root, rel)
        if not os.path.exists(abs_path):
            continue
        tu = None
        if clang_ok:
            try:
                tu = clang_frontend.parse_file(abs_path, rel,
                                               entries.get(rel), root)
            except clang_frontend.ClangFrontendError as e:
                print(f"relfab_analyzer: {e}; internal fallback for {rel}",
                      file=sys.stderr)
        if tu is None:
            tu = cppmodel.parse_file(abs_path, rel)
        program.add_tu(tu)
    return program


def run_analyses(program, allow_index, root, rules):
    all_findings = []
    if "taint-flow" in rules:
        all_findings.extend(taint.TaintPass(program, allow_index).run())
    if "lock-consistency" in rules:
        all_findings.extend(locks.LockPass(program, allow_index).run())
    if "status-unwrap" in rules:
        returns_statusor = program.returns_statusor
        all_findings.extend(statusflow.StatusFlowPass(
            program, allow_index, returns_statusor).run())
    if "allow-audit" in rules:
        all_findings.extend(allowaudit.AllowAuditPass(
            program, allow_index, root).run())
    return findings_mod.dedupe(all_findings)


def main(argv):
    here = os.path.dirname(os.path.abspath(__file__))
    default_root = os.path.dirname(os.path.dirname(here))
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=default_root)
    parser.add_argument("--compile-db", default=None)
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "internal"))
    parser.add_argument("--rules", default=",".join(ANALYZER_RULES))
    parser.add_argument("--json", dest="json_out", default=None)
    parser.add_argument("--baseline",
                        default=os.path.join(here, "baseline.json"))
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument("--strict", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in ANALYZER_RULES:
            print(r)
        return 0

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(ANALYZER_RULES)
    if unknown:
        print(f"relfab_analyzer: unknown rule(s): {sorted(unknown)}",
              file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    compile_db = args.compile_db
    if compile_db is None:
        candidate = os.path.join(root, "build", "compile_commands.json")
        compile_db = candidate if os.path.exists(candidate) else None

    program = build_program(root, compile_db=compile_db,
                            frontend=args.frontend,
                            explicit_paths=args.paths or None)
    allow_index = findings_mod.AllowIndex(root)
    results = run_analyses(program, allow_index, root, rules)

    baseline_path = None if args.baseline in ("none", "") else args.baseline
    baseline = findings_mod.load_baseline(baseline_path)

    if args.write_baseline:
        findings_mod.write_baseline(baseline_path, results)
        print(f"relfab_analyzer: baseline rewritten with "
              f"{len(results)} finding(s) -> {baseline_path}",
              file=sys.stderr)
        return 0

    new, stale = findings_mod.diff_against_baseline(results, baseline)
    accepted = len(results) - len(new)

    for f in new:
        print(f)
    if args.json_out:
        findings_mod.write_json(args.json_out, "relfab_analyzer", root,
                                len(program.tus), results)
    if stale:
        print(f"relfab_analyzer: {len(stale)} baseline entr"
              f"{'y is' if len(stale) == 1 else 'ies are'} stale "
              f"(fixed findings — prune with --write-baseline):",
              file=sys.stderr)
        for e in stale:
            print(f"  stale: {e['path']} [{e['rule']}] "
                  f"{e.get('message', '')[:80]}", file=sys.stderr)
    fe = program.frontend_counts
    print(f"relfab_analyzer: {'STRICT ' if args.strict else ''}"
          f"{len(program.tus)} TU(s) "
          f"(clang: {fe.get('clang', 0)}, internal: {fe.get('internal', 0)}), "
          f"rules [{', '.join(sorted(rules))}], "
          f"{len(results)} finding(s): {len(new)} new, "
          f"{accepted} baseline-accepted", file=sys.stderr)
    if new and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
