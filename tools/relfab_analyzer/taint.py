"""Determinism taint analysis.

The fabric's contract is that answers and simulated cycles are pure
functions of (data, plan, seeds) — never of host state. This pass
tracks host-nondeterministic values (*sources*) through assignments,
returns, and call arguments until they reach cycle-domain state
(*sinks*), within each function and across translation units via a
conservative summary fixpoint.

Sources (kind tags used in messages):
  wall-clock           std::chrono::*_clock::now, time(), clock(),
                       gettimeofday, rdtsc
  thread-id            std::this_thread::get_id, gettid, getpid
  host-concurrency     std::thread::hardware_concurrency
  ambient-random       std::random_device, mt19937 (unseeded path),
                       rand/srand/drand48
  pointer-identity     reinterpret_cast<uintptr_t/intptr_t/size_t>(p):
                       pointer values are ASLR-dependent, so using one
                       as a number (map key, hash, comparison) is host
                       state
  unordered-iteration  the loop variable of a range-for over a
                       std::unordered_{map,set}: visit order is
                       implementation-defined

Sinks:
  - writes (=, +=, ...) to cycle accounting fields: `cycles`,
    `sim_cycles`, `total_cycles`, `cpu_cycles`, `channel_cycles`,
    any `*_cycles`, and the MemStats event counters
  - arguments to charge/pricing APIs: MemorySystem Charge*/AddRepeated,
    NetworkModel ShipRows/ShipAggs/WireCycles/MessagesFor
  - digest/telemetry feeds: DigestSet/Histogram Observe,
    Telemetry OnStatement

Sanitization falls out of the model rather than being special-cased:
`relfab::Random` is deterministic by construction (the regex linter
bans ambient seeding), so a Random seeded from clean plan state and
every value drawn from it carry no labels. Only a Random seeded from a
*tainted* expression stays tainted.

Cross-TU: each function gets a summary — which labels its return value
carries and which parameters reach a sink — iterated to a fixpoint
over the whole compile database (call resolution is by callee name,
deliberately over-approximate). A tainted argument to a summarized
sink-reaching parameter is reported at the call site.
"""

import re

from .findings import Finding

WALL_CLOCK_CALLEES = {"time", "clock", "gettimeofday", "rdtsc", "__rdtsc"}
THREAD_ID_CALLEES = {"gettid", "getpid"}
AMBIENT_RANDOM_CALLEES = {"rand", "srand", "drand48", "lrand48",
                          "random_device", "mt19937", "mt19937_64"}

SINK_FIELDS = {
    "cycles", "sim_cycles", "total_cycles", "cpu_cycles", "channel_cycles",
    "wire_cycles", "serialize_cycles", "configure_cycles",
    # MemStats event counters (src/sim/stats.h)
    "l1_hits", "l1_misses", "l2_hits", "l2_misses", "fabric_reads",
    "prefetch_covered", "prefetch_uncovered", "dram_row_hits",
    "dram_row_misses", "dram_lines_demand", "dram_lines_gather",
    "fabric_refills",
}
SINK_CALLEE_RE = re.compile(r"^Charge[A-Z]\w*$")
SINK_CALLEES = {"AddRepeated", "AddCycles", "Observe", "ShipRows",
                "ShipAggs", "WireCycles", "MessagesFor", "OnStatement"}

UNORDERED_TYPE_RE = re.compile(r"unordered_(map|set|multimap|multiset)")
PTR_CAST_RE = re.compile(
    r"(reinterpret|static)_cast<\s*(::)?\s*(std::)?\s*"
    r"(uintptr_t|intptr_t|ptrdiff_t|size_t|uint64_t)\b")

SRC_KINDS = {
    "wall-clock": "ambient wall-clock time",
    "thread-id": "host thread/process id",
    "host-concurrency": "std::thread::hardware_concurrency (host core count)",
    "ambient-random": "nondeterministic randomness",
    "pointer-identity": "pointer value cast to an integer (ASLR-dependent)",
    "unordered-iteration": "std::unordered_* iteration order",
}


def classify_source_call(call):
    """Returns a source kind for a Call, or None."""
    qual = call.qual
    callee = call.callee
    if callee == "now" and "_clock" in qual:
        return "wall-clock"
    if callee in WALL_CLOCK_CALLEES and ("std" in qual or qual == callee):
        return "wall-clock"
    if callee == "get_id" and "this_thread" in qual:
        return "thread-id"
    if callee in THREAD_ID_CALLEES and qual == callee:
        return "thread-id"
    if callee == "hardware_concurrency":
        return "host-concurrency"
    if callee in AMBIENT_RANDOM_CALLEES:
        return "ambient-random"
    if callee in ("reinterpret_cast", "static_cast") \
            and PTR_CAST_RE.match(qual.replace(" ", "")):
        # Only a source when the operand involves a pointer-ish value;
        # conservatively require a non-literal argument containing '&',
        # 'this', or an identifier that is not itself integer-typed —
        # approximated as: any identifier argument for reinterpret_cast,
        # never for static_cast (static_cast of integers is routine).
        if callee == "reinterpret_cast":
            return "pointer-identity"
    return None


class Summary:
    __slots__ = ("returns_src", "return_params", "sink_params",
                 "returns_statusor")

    def __init__(self):
        self.returns_src = {}      # kind -> origin text
        self.return_params = set() # param indices flowing to the return
        self.sink_params = {}      # index -> sink description
        self.returns_statusor = False

    def key(self):
        return (tuple(sorted(self.returns_src)),
                tuple(sorted(self.return_params)),
                tuple(sorted(self.sink_params)))

    def merge(self, other):
        self.returns_src.update(other.returns_src)
        self.return_params |= other.return_params
        for k, v in other.sink_params.items():
            self.sink_params.setdefault(k, v)
        self.returns_statusor |= other.returns_statusor


class TaintPass:
    def __init__(self, program, allow_index):
        self.program = program          # analyzer.Program
        self.allow = allow_index
        self.summaries = {}             # callee name -> Summary
        self.findings = []

    # -- label sets: dict label -> origin description ---------------------

    def expr_labels(self, expr, env, fn, emit=False):
        labels = {}
        if expr is None:
            return labels
        for ident in expr.idents:
            if ident in env:
                labels.update(env[ident])
        for chain in expr.members:
            head = chain.split(".")[0]
            if head in env:
                labels.update(env[head])
            if chain in env:
                labels.update(env[chain])
        for call in expr.all_calls():
            labels.update(self.call_labels(call, env, fn, emit=emit))
        return labels

    def call_labels(self, call, env, fn, emit=False):
        labels = {}
        kind = classify_source_call(call)
        if kind is not None:
            labels[("src", kind)] = (
                f"{call.qual or call.callee}() at line {call.line}")
        arg_labels = [self.expr_labels(a, env, fn, emit=emit)
                      for a in call.args]
        # Receiver taint propagates through method calls (x.size(),
        # rng.Next() on a tainted rng, ...).
        if call.base:
            head = call.base.split(".")[0].split("::")[-1]
            if head in env:
                labels.update(env[head])
        summary = self.summaries.get(call.callee)
        if summary is not None:
            for kind, origin in summary.returns_src.items():
                labels[("src", kind)] = (
                    f"{call.callee}() (cross-TU: {origin})")
            for i in summary.return_params:
                if i < len(arg_labels):
                    labels.update(arg_labels[i])
            for i, sink_desc in summary.sink_params.items():
                if i < len(arg_labels):
                    self.sink_hit(fn, call.line,
                                  f"argument {i + 1} of {call.callee}() "
                                  f"(cross-TU: {sink_desc})",
                                  arg_labels[i], emit)
        else:
            # Unknown callee: conservatively flows its arguments through
            # to its return value.
            for al in arg_labels:
                labels.update(al)
        # Direct sink call?
        if self.is_sink_call(call):
            for i, al in enumerate(arg_labels):
                self.sink_hit(fn, call.line,
                              f"argument {i + 1} of "
                              f"{(call.base + '.') if call.base else ''}"
                              f"{call.callee}()", al, emit)
        return labels

    @staticmethod
    def is_sink_call(call):
        return call.callee in SINK_CALLEES \
            or SINK_CALLEE_RE.match(call.callee) is not None

    def sink_hit(self, fn, line, sink_desc, labels, emit):
        summary = self.current_summary
        for label, origin in labels.items():
            if label[0] == "src":
                if emit:
                    self.emit(fn, line, sink_desc, label[1], origin)
            elif label[0] == "param":
                summary.sink_params.setdefault(label[1], sink_desc)

    def emit(self, fn, line, sink_desc, kind, origin):
        msg = (f"{SRC_KINDS[kind]} flows into cycle-domain sink "
               f"{sink_desc}; source: {origin}. Cycle accounting must be "
               f"a pure function of (data, plan, seeds)")
        if self.allow.allowed(fn.file, line, "taint-flow"):
            return
        self.findings.append(Finding(fn.file, line, "taint-flow", msg,
                                     symbol=fn.qual_name))

    # -- sinks on assignment targets --------------------------------------

    @staticmethod
    def sink_field(target):
        if not target:
            return None
        last = target.split(".")[-1].split("::")[-1].rstrip("_")
        if last in SINK_FIELDS or last.endswith("_cycles"):
            return last
        return None

    # -- per-function analysis --------------------------------------------

    def analyze_function(self, fn, emit=False):
        env = {}
        decl_types = {}
        for i, p in enumerate(fn.params):
            env[p.name] = {("param", i): f"parameter '{p.name}'"}
            decl_types[p.name] = p.type_text
        self.current_summary = Summary()
        self.current_summary.returns_statusor = \
            "StatusOr" in (fn.return_type or "")
        cls = self.program.classes.get(fn.cls) if fn.cls else None

        for _ in range(6):
            changed = self._run_body(fn, fn.body, env, decl_types, cls,
                                     emit=False)
            if not changed:
                break
        if emit:
            self._run_body(fn, fn.body, env, decl_types, cls, emit=True)
        return self.current_summary

    def _container_is_unordered(self, expr, decl_types, cls):
        """Does this range-for container expression name an unordered
        container (by declared local/param/member type)?"""
        names = set(expr.idents)
        for chain in expr.members:
            names.add(chain.split(".")[-1])
            names.add(chain.split(".")[0])
        for name in names:
            t = decl_types.get(name)
            if t is None and cls is not None and name in cls.members:
                t = cls.members[name].type_text
            if t is not None and UNORDERED_TYPE_RE.search(t):
                return True
        # Direct call returning an unordered member? out of scope.
        return False

    def _run_body(self, fn, block, env, decl_types, cls, emit):
        changed = False
        for st in block.statements:
            changed |= self._run_statement(fn, st, env, decl_types, cls,
                                           emit)
        return changed

    def _set(self, env, key, labels, strong):
        old = env.get(key)
        if strong:
            new = dict(labels)
        else:
            new = dict(old or {})
            new.update(labels)
        if not new:
            if old:
                env.pop(key, None)
                return True
            return False
        if old != new:
            env[key] = new
            return True
        return False

    def _run_statement(self, fn, st, env, decl_types, cls, emit):
        changed = False
        k = st.kind
        if k in ("decl", "assign"):
            labels = self.expr_labels(st.expr, env, fn, emit=emit)
            if k == "decl" and st.target:
                decl_types.setdefault(st.target, st.decl_type or "")
            if st.target:
                strong = (st.op in ("=", "(") and k == "decl") or \
                         (st.op == "=" and "." not in st.target)
                changed |= self._set(env, st.target, labels, strong)
                field = self.sink_field(st.target)
                if field is not None and labels:
                    self.sink_hit(fn, st.line,
                                  f"write to '{st.target}'", labels, emit)
        elif k == "return":
            labels = self.expr_labels(st.expr, env, fn, emit=emit)
            s = self.current_summary
            for label, origin in labels.items():
                if label[0] == "src" and label[1] not in s.returns_src:
                    s.returns_src[label[1]] = origin
                    changed = True
                elif label[0] == "param" \
                        and label[1] not in s.return_params:
                    s.return_params.add(label[1])
                    changed = True
        elif k == "rangefor":
            labels = self.expr_labels(st.expr, env, fn, emit=emit)
            if self._container_is_unordered(st.expr, decl_types, cls):
                labels = dict(labels)
                labels[("src", "unordered-iteration")] = (
                    f"range-for over unordered container at line {st.line}")
            if st.target:
                changed |= self._set(env, st.target, labels, strong=False)
        elif k in ("call", "other", "if", "loop"):
            if st.expr is not None:
                self.expr_labels(st.expr, env, fn, emit=emit)
        if st.body is not None:
            changed |= self._run_body(fn, st.body, env, decl_types, cls,
                                      emit)
        if st.else_body is not None:
            changed |= self._run_body(fn, st.else_body, env, decl_types,
                                      cls, emit)
        return changed

    # -- whole-program driver ---------------------------------------------

    def run(self):
        # Summary fixpoint (no findings emitted yet).
        for _ in range(4):
            new_summaries = {}
            for fn in self.program.functions:
                s = self.analyze_function(fn, emit=False)
                if fn.name in new_summaries:
                    new_summaries[fn.name].merge(s)
                else:
                    new_summaries[fn.name] = s
                if fn.qual_name != fn.name:
                    q = new_summaries.setdefault(fn.qual_name, Summary())
                    q.merge(s)
            stable = (
                {k: v.key() for k, v in new_summaries.items()} ==
                {k: v.key() for k, v in self.summaries.items()})
            self.summaries = new_summaries
            if stable:
                break
        # Reporting pass.
        for fn in self.program.functions:
            self.analyze_function(fn, emit=True)
        return self.findings
