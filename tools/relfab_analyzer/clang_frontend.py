"""libclang frontend (clang.cindex) for the relfab analyzer.

Used when the Python clang bindings and a matching libclang shared
library are available (the CI static-analysis job pins and installs
both; see .github/workflows/ci.yml). Structure facts — class
definitions, field declarations and their RELFAB_GUARDED_BY
annotations, function definitions with parameter types and accurate
extents — come from libclang cursors driven off compile_commands.json
flags, which makes them robust to constructs the internal parser only
approximates (templates, attributes, operator overloads).

Statement lowering reuses the shared statement grammar
(cppmodel.parse_block) over each function's *exact* body extent as
reported by libclang, so both frontends produce byte-identical IR
statement streams for identical bodies and every downstream pass is
frontend-agnostic. Any per-TU failure (parse error, missing header,
binding/library skew) raises ClangFrontendError and the driver falls
back to the internal frontend for that TU — findings are always
produced, never silently dropped.
"""

import os

from . import cppmodel
from .ir import Block, ClassInfo, Function, Member, Param, TranslationUnit


class ClangFrontendError(Exception):
    pass


_index = None


def load(libclang_path=None):
    """Initializes clang.cindex once; raises ClangFrontendError if the
    bindings or the shared library are unavailable."""
    global _index
    if _index is not None:
        return _index
    try:
        from clang import cindex
    except ImportError as e:
        raise ClangFrontendError(f"python clang bindings not found: {e}")
    try:
        if libclang_path:
            cindex.Config.set_library_file(libclang_path)
        elif os.environ.get("RELFAB_LIBCLANG"):
            cindex.Config.set_library_file(os.environ["RELFAB_LIBCLANG"])
        _index = cindex.Index.create()
    except Exception as e:  # cindex raises LibclangError and friends
        raise ClangFrontendError(f"libclang unavailable: {e}")
    return _index


def _filter_args(arguments):
    """compile_commands arguments -> clang frontend args (drop compiler,
    -c/-o pairs and the input file)."""
    args = []
    skip_next = False
    for i, a in enumerate(arguments[1:]):
        if skip_next:
            skip_next = False
            continue
        if a in ("-c", "-o"):
            skip_next = (a == "-o")
            continue
        if a.endswith((".cc", ".cpp", ".o")):
            continue
        args.append(a)
    return args


def _guarded_by_from_tokens(cursor):
    toks = [t.spelling for t in cursor.get_tokens()]
    for i, t in enumerate(toks):
        if t in ("RELFAB_GUARDED_BY", "RELFAB_PT_GUARDED_BY"):
            for t2 in toks[i + 1:]:
                if t2 not in ("(",):
                    return t2 if t2 != ")" else None
    return None


def _requires_from_tokens(cursor):
    req = set()
    toks = [t.spelling for t in cursor.get_tokens()]
    for i, t in enumerate(toks):
        if t in ("RELFAB_REQUIRES", "RELFAB_ACQUIRE"):
            j = i + 1
            while j < len(toks) and toks[j] != ")":
                if toks[j] not in ("(", ","):
                    req.add(toks[j])
                j += 1
        if t == "{":
            break
    return req


def parse_file(abs_path, rel_path, entry, root):
    """Parses one TU with libclang; raises ClangFrontendError on any
    problem so the caller can fall back to the internal frontend."""
    from clang import cindex

    index = load()
    args = _filter_args(entry["arguments"]) if entry and entry.get(
        "arguments") else ["-std=c++17", "-I" + root]
    try:
        cursor_tu = index.parse(abs_path, args=args)
    except Exception as e:
        raise ClangFrontendError(f"parse failed for {rel_path}: {e}")
    fatal = [d for d in cursor_tu.diagnostics if d.severity >= 4]
    if fatal:
        raise ClangFrontendError(
            f"fatal diagnostics for {rel_path}: {fatal[0].spelling}")

    with open(abs_path, encoding="utf-8", errors="replace") as f:
        text = f.read()

    tu = TranslationUnit(path=rel_path, frontend="clang")
    K = cindex.CursorKind

    def in_this_file(c):
        return (c.location.file is not None
                and os.path.samefile(str(c.location.file), abs_path))

    def class_name_of(c):
        sem = c.semantic_parent
        if sem is not None and sem.kind in (K.CLASS_DECL, K.STRUCT_DECL,
                                            K.CLASS_TEMPLATE):
            return sem.spelling
        return None

    def visit(c):
        for child in c.get_children():
            if not in_this_file(child):
                continue
            kind = child.kind
            if kind in (K.NAMESPACE, K.LINKAGE_SPEC):
                visit(child)
            elif kind in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE) \
                    and child.is_definition():
                name = child.spelling
                cls = tu.classes.setdefault(
                    name, ClassInfo(name=name, file=rel_path,
                                    line=child.location.line))
                for m in child.get_children():
                    if m.kind == K.FIELD_DECL:
                        cls.members[m.spelling] = Member(
                            name=m.spelling,
                            type_text=m.type.spelling,
                            guarded_by=_guarded_by_from_tokens(m),
                            line=m.location.line,
                            file=rel_path)
                visit(child)
            elif kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                          K.DESTRUCTOR, K.FUNCTION_TEMPLATE) \
                    and child.is_definition():
                tu.functions.append(lower_function(child))

    def lower_function(c):
        cls = class_name_of(c)
        params = [Param(type_text=a.type.spelling, name=a.spelling or "")
                  for a in c.get_arguments()]
        body = None
        for ch in c.get_children():
            if ch.kind == K.COMPOUND_STMT:
                body = ch
        block = Block()
        if body is not None:
            start = body.extent.start
            end = body.extent.end
            # Slice the exact body text and keep absolute line numbers
            # by padding with newlines, then reuse the shared statement
            # grammar.
            body_text = text[start.offset + 1:end.offset - 1] \
                if end.offset - 1 > start.offset + 1 else ""
            padded = "\n" * (start.line - 1) + body_text
            toks = cppmodel.tokenize(cppmodel.scrub(padded))
            block = cppmodel.parse_block(toks, 0, len(toks))
        qual = f"{cls}::{c.spelling}" if cls else c.spelling
        fn = Function(
            name=c.spelling, qual_name=qual, cls=cls,
            return_type=c.result_type.spelling
            if c.kind not in (K.CONSTRUCTOR, K.DESTRUCTOR) else "",
            params=params,
            body=block,
            requires=_requires_from_tokens(c),
            line=c.location.line, file=rel_path,
            is_ctor_dtor=c.kind in (K.CONSTRUCTOR, K.DESTRUCTOR))
        return fn

    try:
        visit(cursor_tu.cursor)
    except Exception as e:
        raise ClangFrontendError(f"cursor walk failed for {rel_path}: {e}")
    return tu
