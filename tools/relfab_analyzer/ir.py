"""Frontend-neutral IR for the relfab analyzer.

Both frontends (internal parser and libclang) lower C++ translation
units into this deliberately small model. It is *not* a faithful AST:
expressions keep only the facts the analyses consume — identifiers
read, member chains read, and calls made — and statements keep only
their kind, target, and nesting. Anything a frontend cannot classify
becomes kind 'other' with a best-effort expression, which keeps every
pass conservative rather than wrong.
"""

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Call:
    """One call expression: `base.callee(args)` / `callee(args)`."""
    callee: str                 # last identifier: "ChargeCompute", "value"
    base: str                   # receiver chain text: "mem", "ctx.digests" ("" if free)
    qual: str                   # full spelled path: "std::this_thread::get_id"
    args: list = field(default_factory=list)   # list[Expr]
    line: int = 0


@dataclass
class Expr:
    """Flattened expression facts for one token region."""
    idents: set = field(default_factory=set)    # plain identifiers read
    members: set = field(default_factory=set)   # member chains "a.b" (normalized -> .)
    calls: list = field(default_factory=list)   # list[Call], outermost first
    text: str = ""                              # raw-ish source text (diagnostics)
    line: int = 0

    def all_calls(self):
        """All calls including nested argument calls."""
        out = []
        stack = list(self.calls)
        while stack:
            c = stack.pop()
            out.append(c)
            for a in c.args:
                stack.extend(a.calls)
        return out


# Statement kinds:
#   decl      target (declared name), decl_type, expr (initializer or None)
#   assign    target (lhs chain), op ('=', '+=', ...), expr (rhs)
#   call      expr (expression statement, usually one call)
#   return    expr (may be None)
#   rangefor  target (loop variable), expr (container), body (Block)
#   if/loop   expr (condition), body (Block), else_body (Block or None)
#   block     body only (bare scope)
#   other     expr (unclassified statement, conservatively scanned)
@dataclass
class Statement:
    kind: str
    line: int = 0
    target: Optional[str] = None
    decl_type: Optional[str] = None
    op: Optional[str] = None
    expr: Optional[Expr] = None
    body: Optional["Block"] = None
    else_body: Optional["Block"] = None


@dataclass
class Block:
    statements: list = field(default_factory=list)  # list[Statement]

    def walk(self):
        """Yields every statement, depth-first, in source order."""
        for st in self.statements:
            yield st
            if st.body is not None:
                yield from st.body.walk()
            if st.else_body is not None:
                yield from st.else_body.walk()


@dataclass
class Param:
    type_text: str
    name: str


@dataclass
class Function:
    name: str                   # unqualified: "Execute"
    qual_name: str              # best effort: "ShardScheduler::Execute"
    cls: Optional[str]          # enclosing/owning class name or None
    return_type: str            # textual return type ("" for ctors)
    params: list = field(default_factory=list)      # list[Param]
    body: Block = field(default_factory=Block)
    requires: set = field(default_factory=set)      # RELFAB_REQUIRES(mu) names
    line: int = 0
    file: str = ""
    is_ctor_dtor: bool = False

    def param_index(self, name: str):
        for i, p in enumerate(self.params):
            if p.name == name:
                return i
        return None


@dataclass
class Member:
    name: str
    type_text: str
    guarded_by: Optional[str] = None
    line: int = 0
    file: str = ""


@dataclass
class ClassInfo:
    name: str
    members: dict = field(default_factory=dict)     # name -> Member
    file: str = ""
    line: int = 0


@dataclass
class TranslationUnit:
    path: str                   # repo-relative, '/'-separated
    functions: list = field(default_factory=list)   # list[Function]
    classes: dict = field(default_factory=dict)     # name -> ClassInfo
    frontend: str = "internal"


UNORDERED_TYPE_RE_TEXT = r"std\s*::\s*unordered_(map|set|multimap|multiset)"
