"""Compile-database handling.

The analyzer is driven off the CMake-exported compile_commands.json
(CMAKE_EXPORT_COMPILE_COMMANDS=ON since PR 5): the database defines
which translation units make up the program (so dead files don't feed
the cross-TU summary pass) and, for the libclang frontend, the exact
flags each TU compiles with.

Headers carry most of this repo's inline definitions, so the program
model is: every .cc listed in the database (filtered to the analysis
scope) plus every header under the scope directories, each parsed once.
The cross-TU pass is whole-program, which makes per-TU include
resolution unnecessary for the internal frontend.

When no database exists (tree not configured yet) the loader falls
back to scanning the scope directories directly — the analyzer must be
runnable before the first cmake configure.
"""

import json
import os

# Analysis scope: the cycle-domain production tree. bench/ and tests/
# intentionally live outside the default scope — they run in the host
# domain (wall timing is allowlisted there) and would drown the taint
# pass in deliberate noise.
DEFAULT_SCOPE = ("src",)

SOURCE_EXTS = (".cc", ".cpp")
HEADER_EXTS = (".h", ".hpp")


def _norm(root, path):
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


def load_entries(compile_db_path):
    """Returns [{file, directory, arguments}] or [] when unreadable."""
    try:
        with open(compile_db_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, ValueError):
        return []
    out = []
    for e in db:
        path = e.get("file")
        if not path:
            continue
        args = e.get("arguments")
        if args is None and e.get("command"):
            args = e["command"].split()
        out.append({"file": os.path.join(e.get("directory", ""), path)
                    if not os.path.isabs(path) else path,
                    "directory": e.get("directory", ""),
                    "arguments": args or []})
    return out


def in_scope(rel_path, scope):
    return any(rel_path == s or rel_path.startswith(s + "/") for s in scope)


def collect_tus(root, compile_db_path=None, scope=DEFAULT_SCOPE,
                explicit_paths=None):
    """Returns (sources, entries_by_rel):

    sources: ordered list of repo-relative paths to parse — every
    in-scope .cc from the compile database (or a directory scan when
    absent) plus every in-scope header.
    entries_by_rel: rel path -> compile-db entry (for the clang
    frontend's flags); internal-frontend-only paths map to None.
    """
    if explicit_paths:
        rels = [_norm(root, p) for p in explicit_paths]
        return rels, {r: None for r in rels}

    entries_by_rel = {}
    sources = []
    seen = set()

    for e in load_entries(compile_db_path) if compile_db_path else []:
        rel = _norm(root, e["file"])
        if not in_scope(rel, scope) or not rel.endswith(SOURCE_EXTS):
            continue
        if rel in seen:
            continue
        seen.add(rel)
        sources.append(rel)
        entries_by_rel[rel] = e

    # Directory scan: headers always, and any in-scope .cc the database
    # missed (stale database, file not yet wired into CMake) — a source
    # file must never escape analysis just because it wasn't built.
    for top in scope:
        top_abs = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(top_abs):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "fixtures"]
            for name in sorted(filenames):
                rel = _norm(root, os.path.join(dirpath, name))
                if rel in seen:
                    continue
                if name.endswith(HEADER_EXTS + SOURCE_EXTS):
                    seen.add(rel)
                    sources.append(rel)
                    entries_by_rel[rel] = None
    return sources, entries_by_rel
