"""Status-flow: StatusOr unwraps with no dominating ok() check.

relfab::StatusOr<T>::value() aborts the process when the wrapped
Status is an error (src/common/statusor.h), so every unwrap must sit
on a path where the error branch has already been handled. This pass
flags unwraps (.value(), operator*, operator->) of a StatusOr-typed
local whose function contains *no* prior handling of that value:

  handled means an earlier `.ok()` / `.status()` inspection of the same
  variable, a RELFAB_ASSIGN_OR_RETURN / RELFAB_RETURN_IF_ERROR macro
  mentioning it, or a RELFAB_CHECK(x.ok()) crash-on-purpose assertion.

The dominance test is linear (any handling earlier in the function
counts), which is deliberately weaker than a real CFG dominance check:
it keeps false positives near zero while still catching the bug class
— a fresh unwrap with the error branch assumed unreachable by
construction. StatusOr return types are resolved cross-TU through the
summary map, so `auto r = CallThatReturnsStatusOr();` is tracked too.
"""

import re

from .findings import Finding

STATUSOR_TYPE_RE = re.compile(r"\bStatusOr\s*<")
HANDLING_CALLEES = {"ok", "status"}
HANDLING_MACROS = {"RELFAB_ASSIGN_OR_RETURN", "RELFAB_RETURN_IF_ERROR",
                   "RELFAB_CHECK", "RELFAB_CHECK_OK", "RELFAB_DCHECK",
                   "ASSERT_TRUE", "EXPECT_TRUE", "ASSERT_OK", "EXPECT_OK"}


def _base_var(call):
    """`x.value()` / `std::move(x).value()` -> 'x' (best effort)."""
    base = call.base
    if base:
        head = base.split(".")[0].split("::")[-1]
        if head:
            return head
    for a in call.args:
        for inner in a.calls:
            if inner.callee == "move" and inner.args:
                ids = inner.args[0].idents
                if len(ids) == 1:
                    return next(iter(ids))
    return None


class StatusFlowPass:
    def __init__(self, program, allow_index, returns_statusor):
        self.program = program
        self.allow = allow_index
        self.returns_statusor = returns_statusor  # set of callee names
        self.findings = []

    def run(self):
        for fn in self.program.functions:
            self._check_function(fn)
        return self.findings

    def _check_function(self, fn):
        statusor_vars = set()
        handled = set()
        # moves through std::move(x).value() in return statements etc.
        events = []  # (line, kind, var) in source order

        for st in fn.body.walk():
            if st.kind == "decl" and st.target:
                t = st.decl_type or ""
                is_so = bool(STATUSOR_TYPE_RE.search(t))
                if not is_so and "auto" in t.split() and st.expr is not None:
                    for call in st.expr.all_calls():
                        if call.callee in self.returns_statusor:
                            is_so = True
                            break
                if is_so:
                    statusor_vars.add(st.target)
            if st.expr is None:
                continue
            for call in st.expr.all_calls():
                var = _base_var(call)
                if call.callee in HANDLING_CALLEES and var:
                    events.append((st.line, "handle", var))
                elif call.callee in HANDLING_MACROS:
                    for a in call.args:
                        for ident in a.idents:
                            events.append((st.line, "handle", ident))
                        for inner in a.all_calls():
                            v = _base_var(inner)
                            if v:
                                events.append((st.line, "handle", v))
                elif call.callee == "value" and var:
                    events.append((st.line, "unwrap", var))
            # operator-> unwrap: member chain rooted at a StatusOr var.
            for chain in st.expr.members:
                head = chain.split(".")[0]
                if head in statusor_vars and not chain.endswith(
                        (".ok", ".status", ".value")):
                    events.append((st.line, "unwrap", head))

        for line, kind, var in sorted(events, key=lambda e: e[0]):
            if var not in statusor_vars:
                continue
            if kind == "handle":
                handled.add(var)
            elif kind == "unwrap" and var not in handled:
                handled.add(var)  # report once per variable
                if self.allow.allowed(fn.file, line, "status-unwrap"):
                    continue
                self.findings.append(Finding(
                    fn.file, line, "status-unwrap",
                    f"StatusOr '{var}' unwrapped with no prior .ok() / "
                    f".status() handling in {fn.qual_name}(); value() "
                    f"aborts on error — handle the error branch or "
                    f"propagate with RELFAB_ASSIGN_OR_RETURN",
                    symbol=fn.qual_name))
