"""relfab_analyzer: AST-based semantic determinism analyzer.

Complements tools/relfab_lint.py (regex layer) with analyses that need
types, scopes, and data flow:

  taint-flow        host-nondeterministic values (wall clock, thread ids,
                    hardware_concurrency, pointer-as-integer, unordered
                    iteration order, ambient randomness) flowing into
                    cycle-domain sinks (Cycles/MemStats fields, charge
                    APIs, network pricing, digest/telemetry feeds),
                    propagated through assignments, returns, and call
                    arguments, with a conservative cross-TU summary pass.
  lock-consistency  a RELFAB_GUARDED_BY member touched outside any lock
                    in some method while other methods lock it — the
                    cross-TU gap single-TU -Wthread-safety can miss.
  status-unwrap     a StatusOr unwrapped (.value()/operator*/->) on a
                    path with no dominating .ok() check.
  allow-audit       every inline `allow(unordered-iteration)` marker is
                    re-verified: the container it covers must really be
                    lookup-only (never iterated anywhere in the program).

Two interchangeable frontends produce the same IR (relfab_analyzer.ir):

  clang     libclang (Python clang.cindex) driven off the CMake-exported
            compile_commands.json — precise declaration structure; used
            in CI where a pinned libclang is installed.
  internal  a self-contained conservative C++ structure parser — no
            dependencies beyond the stdlib, used wherever libclang is
            unavailable (the default dev container).

`--frontend auto` (the default) prefers clang and falls back, per TU,
to the internal frontend on any parse failure, so findings are always
produced. See docs/static-analysis.md ("Layer 4 — the AST analyzer").
"""

__version__ = "1.0"

ANALYZER_RULES = (
    "taint-flow",
    "lock-consistency",
    "status-unwrap",
    "allow-audit",
)
