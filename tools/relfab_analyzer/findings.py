"""Findings, inline allow markers, JSON schema, and the baseline file.

The findings JSON schema is shared with tools/relfab_lint.py --json so
CI can treat both layers' outputs uniformly:

    {
      "tool": "relfab_analyzer" | "relfab_lint",
      "schema_version": 1,
      "root": "<abs repo root>",
      "files_scanned": N,
      "findings": [
        {"path": "src/...", "line": 42, "rule": "taint-flow",
         "message": "...", "fingerprint": "0123abcd..."},
        ...
      ]
    }

Fingerprints are line-number-independent — sha1 over
(path | rule | symbol | normalized message) — so unrelated edits above
a finding do not churn the committed baseline
(tools/relfab_analyzer/baseline.json). The baseline holds the accepted
findings; CI and the tier-1 ctest fail only on fingerprints *not* in
the baseline, and print which baseline entries went stale (fixed) so
they can be pruned with --write-baseline.

Suppression reuses the repo-wide inline marker syntax
(docs/static-analysis.md): `// relfab-lint: allow(<rule>) <reason>` on
the finding's line or the line above. A reason is mandatory; bare
markers are relfab_lint's `bare-allow` violation and suppress nothing
here either.
"""

import hashlib
import json
import os
import re

ALLOW_RE = re.compile(
    r"//\s*relfab-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)\s*(.*)")

SCHEMA_VERSION = 1


class Finding:
    def __init__(self, path, line, rule, message, symbol=""):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.symbol = symbol  # enclosing function/class, part of the key

    @property
    def fingerprint(self):
        norm = re.sub(r"\d+", "#", self.message)
        key = "|".join((self.path, self.rule, self.symbol, norm))
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def to_json(self):
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message, "symbol": self.symbol,
                "fingerprint": self.fingerprint}

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)


class AllowIndex:
    """Per-file inline allow markers (marker covers its line + next)."""

    def __init__(self, root):
        self.root = root
        self._cache = {}

    def _load(self, rel_path):
        allows = {}
        abs_path = os.path.join(self.root, rel_path)
        try:
            with open(abs_path, encoding="utf-8", errors="replace") as f:
                for idx, line in enumerate(f, start=1):
                    m = ALLOW_RE.search(line)
                    if not m:
                        continue
                    reason = m.group(2).strip()
                    if not reason:
                        continue  # bare marker: relfab_lint reports it
                    rules = {r.strip() for r in m.group(1).split(",")}
                    for covered in (idx, idx + 1):
                        allows.setdefault(covered, set()).update(rules)
        except OSError:
            pass
        return allows

    def allowed(self, rel_path, line, rule):
        if rel_path not in self._cache:
            self._cache[rel_path] = self._load(rel_path)
        return rule in self._cache[rel_path].get(line, ())

    def markers(self, rel_path, rule):
        """All (line, reason) markers for `rule` in a file (for audits)."""
        out = []
        abs_path = os.path.join(self.root, rel_path)
        try:
            with open(abs_path, encoding="utf-8", errors="replace") as f:
                for idx, line in enumerate(f, start=1):
                    m = ALLOW_RE.search(line)
                    if m and rule in {r.strip()
                                      for r in m.group(1).split(",")}:
                        out.append((idx, m.group(2).strip()))
        except OSError:
            pass
        return out


def dedupe(findings):
    seen = set()
    out = []
    for f in sorted(findings, key=Finding.sort_key):
        key = (f.fingerprint, f.line)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


def write_json(path, tool, root, files_scanned, findings):
    doc = {
        "tool": tool,
        "schema_version": SCHEMA_VERSION,
        "root": os.path.abspath(root),
        "files_scanned": files_scanned,
        "findings": [f.to_json() for f in findings],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def load_baseline(path):
    """Returns {fingerprint: entry} (empty when the file is absent)."""
    if not path or not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {e["fingerprint"]: e for e in doc.get("findings", [])}


def write_baseline(path, findings):
    doc = {
        "tool": "relfab_analyzer",
        "schema_version": SCHEMA_VERSION,
        "comment": "Accepted findings; CI fails only on fingerprints not "
                   "listed here. Regenerate with analyze.py "
                   "--write-baseline after auditing each entry "
                   "(docs/static-analysis.md).",
        "findings": [f.to_json() for f in findings],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def diff_against_baseline(findings, baseline):
    """Splits findings into (new, accepted) and finds stale baseline
    entries; returns (new_findings, stale_entries)."""
    current = {f.fingerprint for f in findings}
    new = [f for f in findings if f.fingerprint not in baseline]
    stale = [e for fp, e in sorted(baseline.items()) if fp not in current]
    return new, stale
