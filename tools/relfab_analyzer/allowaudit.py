"""allow-audit: semantic re-verification of inline lint suppressions.

The regex linter accepts `// relfab-lint: allow(unordered-iteration)
<reason>` on faith — the reason invariably claims the container is
"lookup-only". This pass checks the claim against the program model:

  1. the marker must actually cover a std::unordered_* declaration
     (member or local) on its own line or the next — otherwise it is
     stale and reported;
  2. the declared container must never be iterated anywhere in the
     program: no range-for over it, no .begin()/.end()/.cbegin()/
     .cend() on it (erase(find(...)) and count/find/at/contains/
     operator[] are lookups and stay legal).

An iteration anywhere turns the marker's promise false: the finding
points at the iterating statement, names the marker it contradicts,
and must be fixed either by switching to an ordered container or by
making the iteration genuinely order-insensitive *outside* the cycle
domain (and re-justifying the marker).
"""

import re

from .findings import Finding
from .ir import UNORDERED_TYPE_RE_TEXT

UNORDERED_DECL_RE = re.compile(UNORDERED_TYPE_RE_TEXT)
# .begin() starts an iteration; .end()/.cend() alone are the sentinel
# half of the `find(k) != m.end()` lookup idiom and prove nothing.
ITERATION_CALLEES = {"begin", "cbegin", "rbegin"}


class AllowAuditPass:
    def __init__(self, program, allow_index, root):
        self.program = program
        self.allow = allow_index
        self.root = root
        self.findings = []

    def run(self):
        # marker sites: (file, line, reason, covered container name|None)
        markers = []
        for tu in self.program.tus:
            for line, reason in self.allow.markers(tu.path,
                                                   "unordered-iteration"):
                name = self._covered_container(tu, line)
                markers.append((tu.path, line, reason, name))
        if not markers:
            return self.findings

        for path, line, reason, name in markers:
            if name is None:
                self.findings.append(Finding(
                    path, line, "allow-audit",
                    "allow(unordered-iteration) marker does not cover a "
                    "std::unordered_* declaration on this or the next "
                    "line; remove the stale marker",
                    symbol=""))
                continue
            for site in self._iteration_sites(name):
                site_fn, site_line, how = site
                self.findings.append(Finding(
                    site_fn.file, site_line, "allow-audit",
                    f"'{name}' is promised lookup-only by the "
                    f"allow(unordered-iteration) marker at {path}:{line} "
                    f"(\"{reason}\") but {site_fn.qual_name}() iterates "
                    f"it ({how}); iteration order is implementation-"
                    f"defined and can leak into cycle accounting",
                    symbol=site_fn.qual_name))
        return self.findings

    def _covered_container(self, tu, marker_line):
        """Name of the unordered member/local declared on the marker's
        line or the next one, else None."""
        for cls in tu.classes.values():
            for m in cls.members.values():
                if m.line in (marker_line, marker_line + 1) \
                        and UNORDERED_DECL_RE.search(
                            m.type_text.replace(" ", "")):
                    return m.name
        for fn in tu.functions:
            for st in fn.body.walk():
                if st.kind == "decl" and st.target \
                        and st.line in (marker_line, marker_line + 1) \
                        and "unordered_" in (st.decl_type or ""):
                    return st.target
        return None

    def _iteration_sites(self, name):
        """All (function, line, description) where `name` is iterated."""
        sites = []
        for fn in self.program.functions:
            for st in fn.body.walk():
                if st.kind == "rangefor" and st.expr is not None:
                    heads = set(st.expr.idents)
                    for chain in st.expr.members:
                        heads.add(chain.split(".")[-1])
                    if name in heads:
                        sites.append((fn, st.line, "range-for"))
                        continue
                if st.expr is None:
                    continue
                for call in st.expr.all_calls():
                    if call.callee in ITERATION_CALLEES and call.base:
                        base_tail = call.base.split(".")[-1]
                        if base_tail == name:
                            sites.append((fn, st.line,
                                          f".{call.callee}()"))
        return sites
