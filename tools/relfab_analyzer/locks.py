"""Lock-consistency: cross-TU checking of RELFAB_GUARDED_BY members.

clang's -Wthread-safety is single-TU: a method defined out-of-line in
a .cc it doesn't see, or a helper in another file, can touch a guarded
member without the analysis noticing (historically the ShardScheduler
and NodeGroup rig pools were exactly this shape). This pass rebuilds
the check over the whole program model:

  for every member annotated RELFAB_GUARDED_BY(mu) in any class, every
  access from a method of that class must happen either
    - inside the scope of a `MutexLock <name>(&mu)` declaration, or
    - in a method annotated RELFAB_REQUIRES(mu) / RELFAB_ACQUIRE(mu),
    - or in a constructor/destructor (exclusive access by construction).

Anything else is a `lock-consistency` finding — even when every *other*
method locks correctly, since one unlocked reader is enough to race.

The pass is name-scoped (member accesses are matched within methods of
the declaring class only), so free functions and other classes with
same-named members do not produce noise.
"""

from .findings import Finding

LOCK_DECL_TYPES = ("MutexLock", "relfab :: MutexLock")


def _lock_names_from_decl(st):
    """`MutexLock l(&mu_);` -> {'mu_'} (from the init expression)."""
    names = set()
    if st.expr is not None:
        names |= set(st.expr.idents)
        for chain in st.expr.members:
            names.add(chain.split(".")[-1])
    return names


def _is_lock_decl(st):
    if st.kind != "decl" or not st.decl_type:
        return False
    t = st.decl_type.replace(" ", "")
    return t.endswith("MutexLock") or "MutexLock" in t


class LockPass:
    def __init__(self, program, allow_index):
        self.program = program
        self.allow = allow_index
        self.findings = []

    def run(self):
        guarded_by_class = {}
        for cls in self.program.classes.values():
            guarded = {name: m for name, m in cls.members.items()
                       if m.guarded_by}
            if guarded:
                guarded_by_class[cls.name] = guarded
        if not guarded_by_class:
            return self.findings
        for fn in self.program.functions:
            if fn.cls in guarded_by_class and not fn.is_ctor_dtor:
                self._check_function(fn, guarded_by_class[fn.cls])
        return self.findings

    def _check_function(self, fn, guarded):
        held = set(fn.requires)
        self._walk(fn, fn.body, guarded, held)

    def _walk(self, fn, block, guarded, held):
        held = set(held)  # block-scoped copy
        for st in block.statements:
            if _is_lock_decl(st):
                held |= _lock_names_from_decl(st)
                continue
            self._check_statement(fn, st, guarded, held)
            if st.body is not None:
                self._walk(fn, st.body, guarded, held)
            if st.else_body is not None:
                self._walk(fn, st.else_body, guarded, held)

    def _accessed_members(self, st, guarded):
        names = set()
        exprs = [st.expr] if st.expr is not None else []
        for e in exprs:
            for ident in e.idents:
                if ident in guarded:
                    names.add(ident)
            for chain in e.members:
                parts = chain.split(".")
                # this->field or field.sub — only count accesses rooted
                # at the member itself.
                if parts[0] in guarded:
                    names.add(parts[0])
                elif parts[0] == "this" and len(parts) > 1 \
                        and parts[1] in guarded:
                    names.add(parts[1])
        if st.target:
            head = st.target.split(".")[0]
            if head in guarded:
                names.add(head)
            elif head == "this":
                parts = st.target.split(".")
                if len(parts) > 1 and parts[1] in guarded:
                    names.add(parts[1])
        return names

    def _check_statement(self, fn, st, guarded, held):
        for name in self._accessed_members(st, guarded):
            mu = guarded[name].guarded_by
            if mu in held:
                continue
            if self.allow.allowed(fn.file, st.line, "lock-consistency"):
                continue
            self.findings.append(Finding(
                fn.file, st.line, "lock-consistency",
                f"'{fn.cls}::{name}' is RELFAB_GUARDED_BY({mu}) but "
                f"{fn.qual_name}() touches it without holding '{mu}' "
                f"(no MutexLock in scope, no RELFAB_REQUIRES({mu})); "
                f"other methods lock it, so this access can race",
                symbol=fn.qual_name))
