"""Internal C++ frontend: a conservative structure parser.

Lowers one C++ source file into the analyzer IR (relfab_analyzer.ir)
with no dependency beyond the Python stdlib. It is *not* a C++ parser;
it is a bracket-matching structure scanner plus a statement classifier
tuned to this repo's house style (clang-format, no macros that open or
close braces, one statement per `;`). Constructs it cannot classify
degrade to `other` statements whose identifiers are still scanned, so
downstream passes stay conservative (may miss, never crash).

Pipeline:
  1. scrub(): strip comments / string & char literal bodies, preserving
     newlines so token line numbers survive.
  2. tokenize(): identifiers, numbers, and punctuation with line info.
  3. StructureParser: tracks namespace/class nesting, extracts member
     declarations (with RELFAB_GUARDED_BY attributes) and function
     definitions, and hands each function body to parse_block().
  4. parse_block()/parse_statement(): statements and nesting; RHS token
     regions become Expr facts via parse_expr().
"""

import re

from .ir import (Block, Call, ClassInfo, Expr, Function, Member, Param,
                 Statement, TranslationUnit)

IDENT_RE = re.compile(r"[A-Za-z_]\w*")
TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"                 # identifier / keyword
    r"|\d[\w.+\-]*"                 # numeric literal (incl. 1e-6, 0x1f)
    r"|::|->\*?|\.\*|<<=|>>=|<=>"   # multi-char operators
    r"|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--"
    r"|[-+*/%&|^]=|=|[{}()\[\];,<>.:?~!&|^*/%+-]"
    r"|\"\"|''"                     # scrubbed literals
)

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "do", "else", "case", "default", "goto", "new",
                    "delete", "sizeof", "alignof", "throw", "co_return",
                    "co_await", "static_assert", "decltype", "noexcept"}
TYPE_KEYWORDS = {"const", "constexpr", "mutable", "static", "inline",
                 "volatile", "unsigned", "signed", "long", "short",
                 "auto", "void", "bool", "char", "int", "float", "double",
                 "struct", "class", "enum", "typename", "extern",
                 "register", "thread_local", "explicit", "virtual",
                 "friend", "using", "typedef"}
POST_SIG_QUALIFIERS = {"const", "noexcept", "override", "final", "&", "&&",
                       "try", "->", "throw"}
ANNOTATION_MACROS = {"RELFAB_REQUIRES", "RELFAB_ACQUIRE", "RELFAB_RELEASE",
                     "RELFAB_EXCLUDES", "RELFAB_GUARDED_BY",
                     "RELFAB_PT_GUARDED_BY", "RELFAB_NO_THREAD_SAFETY_ANALYSIS",
                     "RELFAB_RETURN_CAPABILITY"}


class Token:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text!r}@{self.line}"


def scrub(text):
    """Removes comments and literal bodies; preserves newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c == '"':
            # Raw strings R"( ... )" get the same treatment; delimiter
            # forms R"xx( )xx" are rare in this repo and degrade to a
            # normal scan that still terminates at the quote.
            if i > 0 and text[i - 1] == "R":
                j = text.find(')"', i + 1)
                end = n if j < 0 else j + 2
                out.append('""')
                out.append("".join(ch for ch in text[i:end] if ch == "\n"))
                i = end
                continue
            out.append('""')
            i += 1
            while i < n:
                if text[i] == "\\":
                    i += 2
                    continue
                if text[i] == "\n":
                    out.append("\n")
                if text[i] == '"':
                    i += 1
                    break
                i += 1
        elif c == "'":
            # Char literal vs digit separator (1'000): separator is
            # preceded by an alnum and followed by an alnum.
            if i > 0 and text[i - 1].isalnum() and nxt.isalnum():
                i += 1
                continue
            out.append("''")
            i += 1
            while i < n:
                if text[i] == "\\":
                    i += 2
                    continue
                if text[i] == "'":
                    i += 1
                    break
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(text):
    tokens = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        tokens.append(Token(m.group(0), line))
    return tokens


def match_paren(tokens, i):
    """tokens[i] must be an opener; returns index of its matching closer
    (or len(tokens) if unbalanced)."""
    pairs = {"(": ")", "{": "}", "[": "]"}
    opener = tokens[i].text
    closer = pairs[opener]
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def skip_template_args(tokens, i):
    """If tokens[i] is '<' opening a plausible template argument list,
    returns the index just past the matching '>'; else returns i."""
    if i >= len(tokens) or tokens[i].text != "<":
        return i
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j].text
        if t == "<":
            depth += 1
        elif t in (">", ">>"):
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}"):
            return i  # not a template list (comparison operator)
        j += 1
    return i


def tokens_text(tokens):
    return " ".join(t.text for t in tokens)


# --------------------------------------------------------------------------
# Expressions


def parse_expr(tokens, line=0):
    """Builds Expr facts from a token region."""
    e = Expr(line=line or (tokens[0].line if tokens else 0),
             text=tokens_text(tokens[:40]))
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if IDENT_RE.fullmatch(t) and t not in CONTROL_KEYWORDS \
                and t not in TYPE_KEYWORDS:
            # Assemble the longest a::b.c->d chain starting here.
            chain = [t]
            j = i + 1
            while j + 1 < n and tokens[j].text in ("::", ".", "->") \
                    and IDENT_RE.fullmatch(tokens[j + 1].text):
                chain.append(tokens[j].text)
                chain.append(tokens[j + 1].text)
                j += 2
            # Template args on the tail (Foo<Bar>(...), static_cast<T>(x)).
            j2 = skip_template_args(tokens, j)
            tmpl = tokens[j:j2]
            j = j2
            if j < n and tokens[j].text == "(":
                close = match_paren(tokens, j)
                call = Call(callee=chain[-1],
                            base="".join(chain[:-2]).replace("->", "."),
                            qual="".join(chain) +
                                 ("".join(x.text for x in tmpl) if tmpl else ""),
                            line=tokens[i].line)
                # Split top-level commas into argument Exprs.
                arg = []
                depth = 0
                for k in range(j + 1, close):
                    tk = tokens[k]
                    if tk.text in "([{":
                        depth += 1
                    elif tk.text in ")]}":
                        depth -= 1
                    if tk.text == "," and depth == 0:
                        if arg:
                            call.args.append(parse_expr(arg))
                        arg = []
                    else:
                        arg.append(tk)
                if arg:
                    call.args.append(parse_expr(arg))
                e.calls.append(call)
                # The receiver chain itself is also a read.
                _record_chain(e, chain[:-2])
                i = close + 1
                # Method chaining: .value().foo — continue normally.
                continue
            _record_chain(e, chain)
            i = j
            continue
        i += 1
    return e


def _record_chain(e, chain):
    """Records an identifier chain (tokens incl. separators) as a read."""
    if not chain:
        return
    idents = [c for c in chain if IDENT_RE.fullmatch(c)]
    if not idents:
        return
    if len(idents) == 1:
        e.idents.add(idents[0])
        return
    # a::b stays one qualified ident; a.b / a->b become member chains.
    if "." in chain or "->" in chain:
        e.members.add(".".join(idents))
        e.idents.add(idents[0])
    else:
        e.idents.add(idents[-1])


# --------------------------------------------------------------------------
# Statements


def looks_like_decl(tokens, eq_index):
    """Heuristic: is tokens[:eq_index] `Type name` rather than an lvalue
    chain? True when >= 2 identifier groups separated by more than
    ::/./-> (i.e. a type precedes the final name)."""
    lhs = tokens[:eq_index]
    if not lhs:
        return False
    if any(t.text in TYPE_KEYWORDS for t in lhs):
        return True
    # Count identifiers that are not glued by member/scope separators.
    groups = 0
    prev_sep = True
    prev_ident = False
    i = 0
    while i < len(lhs):
        t = lhs[i].text
        if IDENT_RE.fullmatch(t):
            # Two adjacent identifiers (`MutexLock lock`) can only be
            # `Type name`, so the second starts a new group.
            if prev_sep or prev_ident:
                groups += 1
            prev_sep = False
            prev_ident = True
            i += 1
            continue
        prev_ident = False
        if t in ("::", ".", "->"):
            prev_sep = False
        elif t == "[":
            # Index expression (`rigs_[i] = x`): skip the subscript and
            # keep the chain glued — identifiers inside are not a type.
            # (`Type name[N]` still counts as a decl via its two groups
            # or a type keyword before the bracket.)
            depth = 1
            i += 1
            while i < len(lhs) and depth:
                if lhs[i].text == "[":
                    depth += 1
                elif lhs[i].text == "]":
                    depth -= 1
                i += 1
            prev_sep = False
            continue
        elif t in ("<",):
            j = skip_template_args(lhs, i)
            if j == i:
                prev_sep = True  # comparison operator, not template args
            else:
                # Foo<Bar> name — the next identifier starts a new group.
                i = j - 1
                prev_sep = True
        else:
            prev_sep = True
        i += 1
    return groups >= 2


def lhs_chain_text(tokens):
    """Normalizes an lvalue token region to a dotted chain (`a.b`)."""
    parts = []
    for t in tokens:
        if IDENT_RE.fullmatch(t.text):
            parts.append(t.text)
        elif t.text in (".", "->"):
            parts.append(".")
        elif t.text == "::":
            parts.append("::")
        elif t.text in ("(", ")", "*", "&"):
            continue
        elif t.text == "[":
            break
        else:
            continue
    text = "".join(parts)
    text = re.sub(r"\.+", ".", text).strip(".")
    return text


ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}


def split_top_level_assign(tokens):
    """Finds a top-level assignment operator; returns (index, op) or
    (None, None)."""
    depth = 0
    i = 0
    while i < len(tokens):
        t = tokens[i].text
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        elif t == "<":
            j = skip_template_args(tokens, i)
            if j != i:
                i = j
                continue
        elif depth == 0 and t in ASSIGN_OPS:
            return i, t
        i += 1
    return None, None


def last_decl_name(tokens):
    """Declared name = last identifier in the region (past type and
    template args)."""
    for t in reversed(tokens):
        if IDENT_RE.fullmatch(t.text) and t.text not in TYPE_KEYWORDS:
            return t.text
    return None


def classify_simple_statement(tokens):
    """Classifies a `;`-terminated statement token region -> Statement."""
    if not tokens:
        return Statement(kind="other", line=0, expr=Expr())
    line = tokens[0].line
    first = tokens[0].text

    if first == "return":
        rest = tokens[1:]
        return Statement(kind="return", line=line,
                         expr=parse_expr(rest, line) if rest else None)
    if first in ("break", "continue", "goto", "using", "typedef",
                 "static_assert", "friend", "template", "public",
                 "private", "protected"):
        return Statement(kind="other", line=line, expr=parse_expr(tokens, line))
    if first == "throw":
        return Statement(kind="other", line=line,
                         expr=parse_expr(tokens[1:], line))

    eq, op = split_top_level_assign(tokens)
    if eq is not None:
        lhs, rhs = tokens[:eq], tokens[eq + 1:]
        rhs_expr = parse_expr(rhs, line)
        if op == "=" and looks_like_decl(tokens, eq):
            name = last_decl_name(lhs)
            type_text = tokens_text(lhs[:-1]) if name else tokens_text(lhs)
            return Statement(kind="decl", line=line, target=name,
                             decl_type=type_text, op="=", expr=rhs_expr)
        st = Statement(kind="assign", line=line, target=lhs_chain_text(lhs),
                       op=op, expr=rhs_expr)
        st.expr.idents |= parse_expr(lhs, line).idents  # index reads etc.
        return st

    # Constructor-style declaration: `Type name(args);` / `Type name{..};`
    # Needs a type chain then a fresh identifier then an opener.
    for i, t in enumerate(tokens):
        if t.text in ("(", "{") and i >= 2:
            prev = tokens[i - 1].text
            if IDENT_RE.fullmatch(prev) and prev not in TYPE_KEYWORDS \
                    and tokens[i - 2].text not in ("::", ".", "->") \
                    and looks_like_decl(tokens, i):
                close = match_paren(tokens, i)
                init = parse_expr(tokens[i + 1:close], line)
                return Statement(kind="decl", line=line, target=prev,
                                 decl_type=tokens_text(tokens[:i - 1]),
                                 op="(", expr=init)
            break
        if t.text in (";",):
            break
    # Plain declaration without initializer: `Type name;`
    if tokens[-1].text not in (")",) and looks_like_decl(
            tokens, len(tokens)) and not any(
            t.text == "(" for t in tokens):
        name = last_decl_name(tokens)
        if name:
            return Statement(kind="decl", line=line, target=name,
                             decl_type=tokens_text(tokens[:-1]), expr=None)

    expr = parse_expr(tokens, line)
    kind = "call" if expr.calls else "other"
    return Statement(kind=kind, line=line, expr=expr)


def parse_block(tokens, start, end):
    """Parses tokens[start:end] (inside braces) into a Block; returns it."""
    block = Block()
    i = start
    while i < end:
        t = tokens[i].text
        line = tokens[i].line
        if t == ";":
            i += 1
            continue
        if t == "{":
            close = match_paren(tokens, i)
            inner = parse_block(tokens, i + 1, close)
            block.statements.append(Statement(kind="block", line=line,
                                              body=inner))
            i = close + 1
            continue
        if t == "}":
            i += 1
            continue
        if t in ("if", "while", "switch"):
            j = i + 1
            if j < end and tokens[j].text == "constexpr":
                j += 1
            if j < end and tokens[j].text == "(":
                close = match_paren(tokens, j)
                cond = parse_expr(tokens[j + 1:close], line)
                body, nxt = _parse_controlled(tokens, close + 1, end)
                st = Statement(kind="if" if t == "if" else "loop",
                               line=line, expr=cond, body=body)
                i = nxt
                if t == "if" and i < end and tokens[i].text == "else":
                    ebody, nxt2 = _parse_controlled(tokens, i + 1, end)
                    st.else_body = ebody
                    i = nxt2
                block.statements.append(st)
                continue
        if t == "do":
            body, nxt = _parse_controlled(tokens, i + 1, end)
            block.statements.append(Statement(kind="loop", line=line,
                                              body=body))
            i = nxt
            continue
        if t == "for":
            j = i + 1
            if j < end and tokens[j].text == "(":
                close = match_paren(tokens, j)
                head = tokens[j + 1:close]
                colon = _top_level_colon(head)
                body, nxt = _parse_controlled(tokens, close + 1, end)
                if colon is not None:
                    var = last_decl_name(head[:colon])
                    container = parse_expr(head[colon + 1:], line)
                    st = Statement(kind="rangefor", line=line, target=var,
                                   expr=container, body=body)
                else:
                    st = Statement(kind="loop", line=line,
                                   expr=parse_expr(head, line), body=body)
                block.statements.append(st)
                i = nxt
                continue
        if t in ("try",):
            i += 1
            continue
        if t in ("catch",):
            # skip (decl) then treat body as block
            j = i + 1
            if j < end and tokens[j].text == "(":
                j = match_paren(tokens, j) + 1
            i = j
            continue
        if t == "case":
            while i < end and tokens[i].text != ":":
                i += 1
            i += 1
            continue
        if t in ("default", "else") and i + 1 < end \
                and tokens[i + 1].text == ":":
            i += 2
            continue
        # Lambda introduced as a statement start is rare; fall through.
        # Generic statement: collect to top-level ';'
        j = i
        depth = 0
        while j < end:
            tj = tokens[j].text
            if tj in "([{":
                depth += 1
            elif tj in ")]}":
                depth -= 1
                if depth < 0:
                    break
            elif tj == ";" and depth == 0:
                break
            j += 1
        stmt_tokens = tokens[i:j]
        # Lambdas inside the statement: parse their bodies as nested
        # blocks so their statements are visible (flattened semantics).
        lam_blocks = _extract_lambda_bodies(stmt_tokens)
        st = classify_simple_statement(_without_lambda_bodies(stmt_tokens))
        if lam_blocks:
            inner = Block()
            for lb in lam_blocks:
                inner.statements.extend(lb.statements)
            st.body = inner if st.body is None else st.body
        block.statements.append(st)
        i = j + 1
    return block


def _top_level_colon(tokens):
    depth = 0
    for i, t in enumerate(tokens):
        if t.text in "([{<":
            depth += 1
        elif t.text in ")]}>":
            depth -= 1
        elif t.text == "::":
            continue
        elif t.text == ":" and depth == 0:
            return i
    return None


def _parse_controlled(tokens, i, end):
    """Parses the body of a control statement starting at i: either a
    braced block or a single statement. Returns (Block, next_index)."""
    while i < end and tokens[i].text == ";":
        return Block(), i + 1
    if i < end and tokens[i].text == "{":
        close = match_paren(tokens, i)
        return parse_block(tokens, i + 1, close), close + 1
    # single statement: find its extent (may itself be a control stmt)
    if i < end and tokens[i].text in ("if", "for", "while", "do", "switch"):
        b = Block()
        sub = parse_block(tokens, i, _control_extent(tokens, i, end))
        b.statements.extend(sub.statements)
        return b, _control_extent(tokens, i, end)
    j = i
    depth = 0
    while j < end:
        tj = tokens[j].text
        if tj in "([{":
            depth += 1
        elif tj in ")]}":
            depth -= 1
        elif tj == ";" and depth == 0:
            break
        j += 1
    b = Block()
    st = classify_simple_statement(tokens[i:j])
    b.statements.append(st)
    return b, j + 1


def _control_extent(tokens, i, end):
    """End index (exclusive of trailing token) of a nested control
    statement used as an unbraced body."""
    depth = 0
    j = i
    while j < end:
        tj = tokens[j].text
        if tj in "([{":
            depth += 1
        elif tj in ")]}":
            depth -= 1
        elif tj == ";" and depth == 0:
            # include potential else chain
            if j + 1 < end and tokens[j + 1].text == "else":
                j += 1
                continue
            return j + 1
        j += 1
    return end


LAMBDA_INTRO_RE = re.compile(r"\[[&=,\w\s.*]*\]")


def _lambda_regions(tokens):
    """Finds [capture](params){body} regions; returns list of
    (body_start, body_end) plus the full region span for removal."""
    regions = []
    i = 0
    n = len(tokens)
    while i < n:
        if tokens[i].text == "[":
            close_b = match_paren(tokens, i)
            j = close_b + 1
            if j < n and tokens[j].text == "(":
                j = match_paren(tokens, j) + 1
            while j < n and tokens[j].text in ("mutable", "noexcept", "->"):
                if tokens[j].text == "->":
                    j += 2
                else:
                    j += 1
            if j < n and tokens[j].text == "{":
                close = match_paren(tokens, j)
                regions.append((i, j + 1, close))
                i = close + 1
                continue
        i += 1
    return regions


def _extract_lambda_bodies(tokens):
    return [parse_block(tokens, b, e) for (_, b, e) in
            _lambda_regions(tokens)]


def _without_lambda_bodies(tokens):
    regions = _lambda_regions(tokens)
    if not regions:
        return tokens
    out = []
    skip_until = -1
    spans = [(start, close) for (start, _, close) in regions]
    i = 0
    while i < len(tokens):
        for (s, c) in spans:
            if i == s:
                skip_until = c
                break
        if skip_until >= 0:
            i = skip_until + 1
            skip_until = -1
            continue
        out.append(tokens[i])
        i += 1
    return out


# --------------------------------------------------------------------------
# Top-level structure


GUARDED_RE_TOK = ("RELFAB_GUARDED_BY", "RELFAB_PT_GUARDED_BY")


class StructureParser:
    def __init__(self, rel_path, tokens):
        self.path = rel_path
        self.tokens = tokens
        self.tu = TranslationUnit(path=rel_path)
        # scope stack entries: ("namespace"|"class"|"skip", name, end_index)
        self.scopes = []

    def class_stack(self):
        return [s[1] for s in self.scopes if s[0] == "class"]

    def parse(self):
        tokens = self.tokens
        i = 0
        n = len(tokens)
        while i < n:
            # Pop finished scopes.
            while self.scopes and i >= self.scopes[-1][2]:
                self.scopes.pop()
            t = tokens[i].text
            if t == "namespace":
                j = i + 1
                while j < n and tokens[j].text not in ("{", ";", "="):
                    j += 1
                if j < n and tokens[j].text == "{":
                    close = match_paren(tokens, j)
                    self.scopes.append(("namespace", "", close))
                    i = j + 1
                    continue
                i = j + 1
                continue
            if t == "template":
                j = i + 1
                if j < n and tokens[j].text == "<":
                    j = skip_template_args(tokens, j)
                i = j
                continue
            if t in ("class", "struct"):
                cls, nxt = self._try_class(i)
                if cls is not None:
                    i = nxt
                    continue
                i += 1
                continue
            if t in ("enum", "union"):
                # skip to ; or matching brace
                j = i + 1
                while j < n and tokens[j].text not in ("{", ";"):
                    j += 1
                if j < n and tokens[j].text == "{":
                    j = match_paren(tokens, j) + 1
                i = j + 1
                continue
            if t == "extern" and i + 1 < n and tokens[i + 1].text == '""':
                i += 2
                continue
            fn, nxt = self._try_function(i)
            if fn is not None:
                self.tu.functions.append(fn)
                i = nxt
                continue
            # Inside a class body: member declaration attempt.
            if self.class_stack():
                nxt = self._try_member(i)
                if nxt is not None:
                    i = nxt
                    continue
            i += 1
        return self.tu

    # -- classes ----------------------------------------------------------

    def _try_class(self, i):
        tokens = self.tokens
        n = len(tokens)
        j = i + 1
        # attributes / alignas / RELFAB_CAPABILITY(...)
        name = None
        while j < n:
            t = tokens[j].text
            if IDENT_RE.fullmatch(t):
                if t in ANNOTATION_MACROS or t == "RELFAB_CAPABILITY" \
                        or t == "alignas":
                    j += 1
                    if j < n and tokens[j].text == "(":
                        j = match_paren(tokens, j) + 1
                    continue
                name = t
                j += 1
                j = skip_template_args(tokens, j)
                continue
            break
        if name is None:
            return None, i + 1
        # base-clause then body?
        while j < n and tokens[j].text not in ("{", ";"):
            if tokens[j].text == "<":
                j2 = skip_template_args(tokens, j)
                if j2 != j:
                    j = j2
                    continue
            j += 1
        if j >= n or tokens[j].text == ";":
            return None, j + 1  # forward declaration
        close = match_paren(tokens, j)
        cls = self.tu.classes.get(name)
        if cls is None:
            cls = ClassInfo(name=name, file=self.path, line=tokens[i].line)
            self.tu.classes[name] = cls
        self.scopes.append(("class", name, close))
        return cls, j + 1

    # -- members ----------------------------------------------------------

    def _try_member(self, i):
        """At class scope: tries to consume one member declaration ending
        at ';' with no parens-before-name (functions handled elsewhere).
        Returns next index or None."""
        tokens = self.tokens
        n = len(tokens)
        scope_end = self.scopes[-1][2]
        j = i
        depth = 0
        while j < n and j < scope_end:
            t = tokens[j].text
            if t in "([{":
                depth += 1
            elif t in ")]}":
                depth -= 1
            elif t == "<" and depth == 0:
                j2 = skip_template_args(tokens, j)
                if j2 != j:
                    j = j2
                    continue
            elif t == ";" and depth == 0:
                break
            elif t == "{" and depth == 0:
                return None
            j += 1
        if j >= min(n, scope_end):
            return None
        region = tokens[i:j]
        if not region:
            return j + 1
        # access specifiers
        if region[0].text in ("public", "private", "protected"):
            return i + 2 if i + 1 < n and tokens[i + 1].text == ":" else j + 1
        # Does it look like a function declaration? name followed by '('
        # before any '=' — skip those (prototypes).
        guarded = None
        k = 0
        cleaned = []
        while k < len(region):
            t = region[k].text
            if t in GUARDED_RE_TOK:
                if k + 1 < len(region) and region[k + 1].text == "(":
                    close = match_paren(region, k + 1)
                    inner = [x.text for x in region[k + 2:close]
                             if IDENT_RE.fullmatch(x.text)]
                    guarded = inner[0] if inner else None
                    k = close + 1
                    continue
            cleaned.append(region[k])
            k += 1
        eq, _ = split_top_level_assign(cleaned)
        decl_part = cleaned[:eq] if eq is not None else cleaned
        # function prototype?
        for idx, tok in enumerate(decl_part):
            if tok.text == "(":
                # `Type name(...)` prototype or in-class definition —
                # in-class definitions are caught by _try_function first.
                return j + 1
        name = last_decl_name(decl_part)
        if name is None:
            return j + 1
        cls_name = self.class_stack()[-1]
        cls = self.tu.classes[cls_name]
        if name not in cls.members:
            cls.members[name] = Member(
                name=name,
                type_text=tokens_text(decl_part[:-1]),
                guarded_by=guarded,
                line=region[0].line,
                file=self.path)
        return j + 1

    # -- functions --------------------------------------------------------

    def _try_function(self, i):
        """Tries to recognize a function definition starting at i.
        Returns (Function, next_index) or (None, i)."""
        tokens = self.tokens
        n = len(tokens)
        # Find the parameter list: scan forward within the statement for
        # ident '(' ... ')' [quals] '{'. Abort at ';' or '}' at depth 0.
        j = i
        depth = 0
        name_idx = None
        while j < n:
            t = tokens[j].text
            if t == ";" and depth == 0:
                return None, i
            if t == "}" and depth == 0:
                return None, i
            if t == "=" and depth == 0:
                return None, i
            if t == "<" and depth == 0:
                j2 = skip_template_args(tokens, j)
                if j2 != j:
                    j = j2
                    continue
            if t == "(" and depth == 0:
                prev = tokens[j - 1].text if j > 0 else ""
                prev2 = tokens[j - 2].text if j > 1 else ""
                is_name = (IDENT_RE.fullmatch(prev)
                           and prev not in CONTROL_KEYWORDS
                           and prev not in TYPE_KEYWORDS)
                is_op = (prev2 == "operator"
                         or (j > 1 and tokens[j - 2].text == "operator"))
                if is_name or is_op:
                    close = match_paren(tokens, j)
                    k = close + 1
                    requires = set()
                    body_at = None
                    while k < n:
                        tk = tokens[k].text
                        if tk in ("const", "noexcept", "override", "final",
                                  "mutable", "&", "&&", "try"):
                            k += 1
                            continue
                        if tk == "->":  # trailing return type
                            k += 1
                            while k < n and tokens[k].text not in ("{", ";"):
                                if tokens[k].text == "<":
                                    k = skip_template_args(tokens, k)
                                    continue
                                k += 1
                            continue
                        if tk in ANNOTATION_MACROS:
                            k += 1
                            if k < n and tokens[k].text == "(":
                                cl = match_paren(tokens, k)
                                if tk2_requires(tk):
                                    for x in tokens[k + 1:cl]:
                                        if IDENT_RE.fullmatch(x.text):
                                            requires.add(x.text)
                                k = cl + 1
                            continue
                        if tk == ":" and is_name:  # ctor initializer list
                            k += 1
                            d = 0
                            while k < n:
                                tt = tokens[k].text
                                if tt in "([{":
                                    if tt == "{" and d == 0:
                                        break
                                    d += 1
                                elif tt in ")]}":
                                    d -= 1
                                k += 1
                            continue
                        if tk == "{":
                            body_at = k
                        break
                    if body_at is None:
                        return None, i
                    name_idx = j - 1
                    return self._build_function(i, name_idx, j, close,
                                                body_at, requires)
                depth_adjust = match_paren(tokens, j)
                j = depth_adjust + 1
                continue
            if t in "[{":
                return None, i
            j += 1
        return None, i

    def _build_function(self, stmt_start, name_idx, open_paren, close_paren,
                        body_open, requires):
        tokens = self.tokens
        name = tokens[name_idx].text
        # Qualified chain behind the name: A::B::name
        quals = []
        k = name_idx - 1
        while k - 1 >= 0 and tokens[k].text == "::" \
                and IDENT_RE.fullmatch(tokens[k - 1].text):
            quals.insert(0, tokens[k - 1].text)
            k -= 2
            if k >= 0 and tokens[k].text == ">":
                break
        ret_type = tokens_text(tokens[stmt_start:max(k + 1, stmt_start)])
        cls = None
        if quals:
            cls = quals[-1]
        elif self.class_stack():
            cls = self.class_stack()[-1]
        qual_name = "::".join((quals or ([cls] if cls else [])) + [name]) \
            if (quals or cls) else name
        params = []
        region = tokens[open_paren + 1:close_paren]
        arg = []
        depth = 0
        idx = 0
        while idx < len(region):
            t = region[idx]
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            elif t.text == "<":
                j2 = skip_template_args(region, idx)
                if j2 != idx:
                    arg.extend(region[idx:j2])
                    idx = j2
                    continue
            if t.text == "," and depth == 0:
                _append_param(params, arg)
                arg = []
            else:
                arg.append(t)
            idx += 1
        _append_param(params, arg)

        body_close = match_paren(tokens, body_open)
        body = parse_block(tokens, body_open + 1, body_close)
        is_ctor_dtor = (cls is not None and
                        (name == cls or name == "~" + cls or
                         (name_idx > 0 and tokens[name_idx - 1].text == "~")))
        fn = Function(name=name, qual_name=qual_name, cls=cls,
                      return_type=ret_type, params=params, body=body,
                      requires=requires, line=tokens[name_idx].line,
                      file=self.path, is_ctor_dtor=is_ctor_dtor)
        return fn, body_close + 1


def tk2_requires(macro):
    return macro in ("RELFAB_REQUIRES", "RELFAB_ACQUIRE")


def _append_param(params, arg_tokens):
    arg_tokens = [t for t in arg_tokens if t.text not in ("=",)]
    if not arg_tokens:
        return
    # Default arguments: cut at '='.
    cut = len(arg_tokens)
    for i, t in enumerate(arg_tokens):
        if t.text == "=":
            cut = i
            break
    region = arg_tokens[:cut]
    name = last_decl_name(region)
    if name is None:
        return
    params.append(Param(type_text=tokens_text(region[:-1]), name=name))


def parse_file(abs_path, rel_path):
    """Parses one file into a TranslationUnit (never raises on content)."""
    with open(abs_path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    tokens = tokenize(scrub(text))
    try:
        tu = StructureParser(rel_path, tokens).parse()
    except (RecursionError, IndexError):
        tu = TranslationUnit(path=rel_path)
    tu.frontend = "internal"
    return tu
