#!/usr/bin/env python3
"""Asserts two workload_mixed run reports are bit-identical where the
determinism contract demands it.

Usage: tools/compare_workload_reports.py <a.json> <b.json>

The two reports may come from runs at different host thread counts or
simulator modes; per-session simulated cycles and the entire metrics
snapshot — merged latency digests (`digest.*`, full bucket sketches)
and workload totals — must still match exactly. Host wall time and the
config block (which records the differing thread count) are the only
fields allowed to differ. CI runs this across `--threads 1` vs `4` and
fast-path vs reference reports.
"""

import json
import sys


def cells(report: dict) -> list:
    return sorted(
        (r["series"], r["x"], r["sim_cycles"]) for r in report["results"])


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as f:
        a = json.load(f)
    with open(argv[2], "r", encoding="utf-8") as f:
        b = json.load(f)

    failures = 0
    if cells(a) != cells(b):
        failures += 1
        seen = dict((k[:2], k[2]) for k in cells(b))
        for series, x, cyc in cells(a):
            other = seen.get((series, x))
            if other != cyc:
                print(f"FAIL cell ({series}, {x}): sim_cycles {cyc} "
                      f"vs {other}", file=sys.stderr)
    if a["metrics"] != b["metrics"]:
        failures += 1
        ma, mb = a["metrics"], b["metrics"]
        for kind in sorted(set(ma) | set(mb)):
            for name in sorted(set(ma.get(kind, {})) | set(mb.get(kind, {}))):
                va = ma.get(kind, {}).get(name)
                vb = mb.get(kind, {}).get(name)
                if va != vb:
                    print(f"FAIL metric {kind}/{name}: {va} vs {vb}",
                          file=sys.stderr)
    if failures:
        print(f"FAIL: {argv[1]} and {argv[2]} diverge", file=sys.stderr)
        return 1
    print(f"OK {argv[1]} == {argv[2]} "
          f"({len(cells(a))} cells, metrics snapshot identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
