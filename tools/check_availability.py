#!/usr/bin/env python3
"""Asserts the availability floor of a workload_chaos run report.

Usage: tools/check_availability.py --min-answered F [--max-unavailable F]
                                   <report.json> [...]

Reads the "workload.*" counters a workload_chaos `--json` report embeds
in its metrics snapshot and fails if the answered fraction falls below
the floor (or the unavailable fraction exceeds the ceiling). CI runs
this over several kill-plan seeds: with replicas >= 2 the failure-domain
machinery must keep answering through permanent replica deaths.
"""

import json
import sys


def fraction(counters: dict, name: str) -> float:
    total = counters.get("workload.statements", 0)
    return counters.get(name, 0) / total if total else 0.0


def main(argv: list) -> int:
    min_answered = None
    max_unavailable = None
    paths = []
    it = iter(argv[1:])
    for arg in it:
        if arg == "--min-answered":
            min_answered = float(next(it, "nan"))
        elif arg == "--max-unavailable":
            max_unavailable = float(next(it, "nan"))
        else:
            paths.append(arg)
    if min_answered is None or not paths:
        print(__doc__, file=sys.stderr)
        return 2

    failures = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
        counters = report["metrics"].get("counters", {})
        statements = counters.get("workload.statements", 0)
        answered = fraction(counters, "workload.answered")
        unavailable = fraction(counters, "workload.unavailable")
        degraded = fraction(counters, "workload.degraded")
        deaths = counters.get("workload.deaths", 0)
        print(f"{path}: statements={statements} answered={answered:.4f} "
              f"degraded={degraded:.4f} unavailable={unavailable:.4f} "
              f"deaths={deaths}")
        if statements == 0:
            print(f"FAIL {path}: no statements recorded", file=sys.stderr)
            failures += 1
        if answered < min_answered:
            print(f"FAIL {path}: answered {answered:.4f} < "
                  f"{min_answered:.4f}", file=sys.stderr)
            failures += 1
        if max_unavailable is not None and unavailable > max_unavailable:
            print(f"FAIL {path}: unavailable {unavailable:.4f} > "
                  f"{max_unavailable:.4f}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
