#!/usr/bin/env python3
"""Compares two bench --json run reports for simulated-cycle drift.

Usage: tools/compare_bench_json.py <golden.json> <candidate.json>

Compares the bench name and the full set of (series, x) -> sim_cycles
cells. Host-side fields (host_wall_ms, sim_lines_per_host_sec), config
and the metrics snapshot are ignored: they legitimately vary between
machines, thread counts and fast-path modes, while sim_cycles must not.
Exits 0 when the simulated results are identical, 1 with a cell-by-cell
diff otherwise.
"""

import json
import sys


def load_cells(path: str):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    cells = {}
    for r in doc.get("results", []):
        cells[(r["series"], r["x"])] = r["sim_cycles"]
    return doc.get("bench"), cells


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    golden_path, candidate_path = argv[1], argv[2]
    golden_bench, golden = load_cells(golden_path)
    candidate_bench, candidate = load_cells(candidate_path)

    ok = True
    if golden_bench != candidate_bench:
        print(f"DIFF bench name: golden={golden_bench!r} "
              f"candidate={candidate_bench!r}")
        ok = False
    for key in sorted(golden.keys() - candidate.keys()):
        print(f"DIFF missing cell in candidate: (series={key[0]!r}, "
              f"x={key[1]!r})")
        ok = False
    for key in sorted(candidate.keys() - golden.keys()):
        print(f"DIFF extra cell in candidate: (series={key[0]!r}, "
              f"x={key[1]!r})")
        ok = False
    for key in sorted(golden.keys() & candidate.keys()):
        if golden[key] != candidate[key]:
            series, x = key
            print(f"DIFF (series={series!r}, x={x!r}): "
                  f"golden={golden[key]} candidate={candidate[key]}")
            ok = False
    if not ok:
        print(f"FAIL {candidate_path}: simulated cycles drifted from "
              f"{golden_path}", file=sys.stderr)
        return 1
    print(f"OK   {candidate_path}: {len(golden)} cells bit-identical to "
          f"{golden_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
