#!/usr/bin/env python3
"""Validates and summarizes a structured query log (JSONL).

Usage: tools/analyze_query_log.py [--strict] [--json] <log.jsonl> [...]

Each input line must be one obs::QueryLogRecord as emitted by the
telemetry layer (the shell's `\\qlog <file>`, `bench/workload_mixed
--qlog`, or a live QueryLog sink). The schema checked here mirrors
obs::QueryLog::ValidateRecord — keep the two in sync.

Default output is a human-readable workload summary: per-backend and
per-table statement counts with exact p50/p99 cycle quantiles, shard
pruning totals, degradation/fault/error counts and the slowest
statements. `--json` emits the same summary machine-readably.

`--strict` exits non-zero if any record fails schema validation (CI
gates on this); without it malformed lines are reported and skipped.
"""

import json
import signal
import sys

# Die quietly when the consumer closes the pipe (e.g. `... | head`).
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

STRING_FIELDS = ("session", "sql", "table", "backend", "status",
                 "status_code", "degradation")
NUMBER_FIELDS = ("seq", "cycles", "end_cycles", "rows_scanned",
                 "rows_matched", "shards_total", "shards_scanned",
                 "shards_pruned", "shards_failed_over", "net_bytes",
                 "shards_ship_rows", "shards_ship_aggs", "faults_injected",
                 "fault_retries", "fault_fallbacks")


def validate(record: object) -> str:
    """Returns "" when valid, else the first schema violation."""
    if not isinstance(record, dict):
        return "record must be a JSON object"
    for field in STRING_FIELDS:
        if not isinstance(record.get(field), str):
            return f"field '{field}' must be a string"
    for field in NUMBER_FIELDS:
        value = record.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            return f"field '{field}' must be a non-negative number"
    if not isinstance(record.get("degraded"), bool):
        return "field 'degraded' must be a bool"
    if record["status"] not in ("ok", "error"):
        return "field 'status' must be \"ok\" or \"error\""
    if record["status"] == "error" and not isinstance(
            record.get("error"), str):
        return "error records must carry an 'error' string"
    return ""


def quantile(sorted_values: list, q: float) -> float:
    """Exact nearest-rank quantile of a pre-sorted list (the same
    ceil(q*n) rank convention as obs::Histogram::Quantile)."""
    if not sorted_values:
        return 0.0
    rank = -(-q * len(sorted_values) // 1)  # ceil
    rank = min(len(sorted_values), max(1, int(rank)))
    return float(sorted_values[rank - 1])


def summarize(records: list) -> dict:
    by_backend = {}
    by_table = {}
    for r in records:
        for group, key in ((by_backend, r["backend"]),
                           (by_table, r["table"])):
            group.setdefault(key or "(none)", []).append(r)

    def cycle_stats(rs: list) -> dict:
        cycles = sorted(r["cycles"] for r in rs)
        return {
            "statements": len(rs),
            "cycles_p50": quantile(cycles, 0.50),
            "cycles_p90": quantile(cycles, 0.90),
            "cycles_p99": quantile(cycles, 0.99),
            "cycles_max": float(cycles[-1]) if cycles else 0.0,
        }

    slowest = sorted(records, key=lambda r: (-r["cycles"], r["seq"]))[:5]
    return {
        "statements": len(records),
        "errors": sum(1 for r in records if r["status"] == "error"),
        "degraded": sum(1 for r in records if r["degraded"]),
        "faults_injected": sum(r["faults_injected"] for r in records),
        "fault_retries": sum(r["fault_retries"] for r in records),
        "fault_fallbacks": sum(r["fault_fallbacks"] for r in records),
        "shards_scanned": sum(r["shards_scanned"] for r in records),
        "shards_pruned": sum(r["shards_pruned"] for r in records),
        "shards_failed_over": sum(r["shards_failed_over"] for r in records),
        "net_bytes": sum(r["net_bytes"] for r in records),
        "shards_ship_rows": sum(r["shards_ship_rows"] for r in records),
        "shards_ship_aggs": sum(r["shards_ship_aggs"] for r in records),
        "by_status_code": {
            k: sum(1 for r in records if r["status_code"] == k)
            for k in sorted({r["status_code"] for r in records})},
        "sessions": len({r["session"] for r in records}),
        "total_cycles": sum(r["cycles"] for r in records),
        "by_backend": {k: cycle_stats(v) for k, v in sorted(
            by_backend.items())},
        "by_table": {k: cycle_stats(v) for k, v in sorted(
            by_table.items())},
        "slowest": [{
            "seq": r["seq"], "session": r["session"],
            "cycles": r["cycles"], "sql": r["sql"],
        } for r in slowest],
    }


def print_human(summary: dict) -> None:
    print(f"statements: {summary['statements']} "
          f"(sessions={summary['sessions']}, errors={summary['errors']}, "
          f"degraded={summary['degraded']})")
    print(f"faults: injected={summary['faults_injected']} "
          f"retries={summary['fault_retries']} "
          f"fallbacks={summary['fault_fallbacks']}")
    print(f"shards: scanned={summary['shards_scanned']} "
          f"pruned={summary['shards_pruned']} "
          f"failed_over={summary['shards_failed_over']}")
    print(f"network: bytes={summary['net_bytes']} "
          f"ship_rows={summary['shards_ship_rows']} "
          f"ship_aggs={summary['shards_ship_aggs']}")
    codes = " ".join(f"{k}={v}" for k, v in
                     summary["by_status_code"].items())
    print(f"status codes: {codes}")
    print(f"total simulated cycles: {summary['total_cycles']}")
    for title, group in (("backend", summary["by_backend"]),
                         ("table", summary["by_table"])):
        print(f"by {title}:")
        for key, stats in group.items():
            print(f"  {key:<12} n={stats['statements']:<5} "
                  f"p50={stats['cycles_p50']:<12.0f} "
                  f"p90={stats['cycles_p90']:<12.0f} "
                  f"p99={stats['cycles_p99']:<12.0f} "
                  f"max={stats['cycles_max']:.0f}")
    print("slowest statements:")
    for s in summary["slowest"]:
        print(f"  #{s['seq']} [{s['session']}] {s['cycles']} cycles: "
              f"{s['sql']}")


def main(argv: list) -> int:
    strict = "--strict" in argv
    as_json = "--json" in argv
    paths = [a for a in argv[1:] if a not in ("--strict", "--json")]
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2

    records = []
    invalid = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                lines = f.readlines()
        except OSError as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            return 1
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                error = validate(record)
            except json.JSONDecodeError as e:
                error = f"not valid JSON: {e}"
                record = None
            if error:
                invalid += 1
                print(f"INVALID {path}:{lineno}: {error}", file=sys.stderr)
                continue
            records.append(record)

    if strict and invalid > 0:
        print(f"FAIL: {invalid} invalid record(s)", file=sys.stderr)
        return 1
    if not records:
        print("FAIL: no valid records", file=sys.stderr)
        return 1

    summary = summarize(records)
    summary["invalid_records"] = invalid
    if as_json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print_human(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
