file(REMOVE_RECURSE
  "CMakeFiles/relstorage_test.dir/relstorage_test.cc.o"
  "CMakeFiles/relstorage_test.dir/relstorage_test.cc.o.d"
  "relstorage_test"
  "relstorage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relstorage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
