# Empty dependencies file for relstorage_test.
# This may be replaced when dependencies are built.
