file(REMOVE_RECURSE
  "CMakeFiles/mvcc_test.dir/mvcc_test.cc.o"
  "CMakeFiles/mvcc_test.dir/mvcc_test.cc.o.d"
  "mvcc_test"
  "mvcc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
