# Empty dependencies file for relmem_test.
# This may be replaced when dependencies are built.
