file(REMOVE_RECURSE
  "CMakeFiles/relmem_test.dir/relmem_test.cc.o"
  "CMakeFiles/relmem_test.dir/relmem_test.cc.o.d"
  "relmem_test"
  "relmem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
