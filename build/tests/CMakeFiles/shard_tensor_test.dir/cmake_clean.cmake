file(REMOVE_RECURSE
  "CMakeFiles/shard_tensor_test.dir/shard_tensor_test.cc.o"
  "CMakeFiles/shard_tensor_test.dir/shard_tensor_test.cc.o.d"
  "shard_tensor_test"
  "shard_tensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
