file(REMOVE_RECURSE
  "CMakeFiles/ablation_vector_mode.dir/ablation_vector_mode.cc.o"
  "CMakeFiles/ablation_vector_mode.dir/ablation_vector_mode.cc.o.d"
  "ablation_vector_mode"
  "ablation_vector_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vector_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
