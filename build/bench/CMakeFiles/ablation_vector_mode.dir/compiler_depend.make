# Empty compiler generated dependencies file for ablation_vector_mode.
# This may be replaced when dependencies are built.
