# Empty dependencies file for fig6_heatmap.
# This may be replaced when dependencies are built.
