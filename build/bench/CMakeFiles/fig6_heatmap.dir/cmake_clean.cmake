file(REMOVE_RECURSE
  "CMakeFiles/fig6_heatmap.dir/fig6_heatmap.cc.o"
  "CMakeFiles/fig6_heatmap.dir/fig6_heatmap.cc.o.d"
  "fig6_heatmap"
  "fig6_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
