# Empty compiler generated dependencies file for ablation_tensor.
# This may be replaced when dependencies are built.
