file(REMOVE_RECURSE
  "CMakeFiles/ablation_tensor.dir/ablation_tensor.cc.o"
  "CMakeFiles/ablation_tensor.dir/ablation_tensor.cc.o.d"
  "ablation_tensor"
  "ablation_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
