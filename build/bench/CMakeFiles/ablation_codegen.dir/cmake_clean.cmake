file(REMOVE_RECURSE
  "CMakeFiles/ablation_codegen.dir/ablation_codegen.cc.o"
  "CMakeFiles/ablation_codegen.dir/ablation_codegen.cc.o.d"
  "ablation_codegen"
  "ablation_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
