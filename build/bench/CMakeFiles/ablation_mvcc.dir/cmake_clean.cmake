file(REMOVE_RECURSE
  "CMakeFiles/ablation_mvcc.dir/ablation_mvcc.cc.o"
  "CMakeFiles/ablation_mvcc.dir/ablation_mvcc.cc.o.d"
  "ablation_mvcc"
  "ablation_mvcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mvcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
