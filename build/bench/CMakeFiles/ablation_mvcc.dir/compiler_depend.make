# Empty compiler generated dependencies file for ablation_mvcc.
# This may be replaced when dependencies are built.
