# Empty dependencies file for ablation_relstorage.
# This may be replaced when dependencies are built.
