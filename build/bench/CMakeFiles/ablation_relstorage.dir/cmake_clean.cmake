file(REMOVE_RECURSE
  "CMakeFiles/ablation_relstorage.dir/ablation_relstorage.cc.o"
  "CMakeFiles/ablation_relstorage.dir/ablation_relstorage.cc.o.d"
  "ablation_relstorage"
  "ablation_relstorage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relstorage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
