# Empty compiler generated dependencies file for ablation_rmc.
# This may be replaced when dependencies are built.
