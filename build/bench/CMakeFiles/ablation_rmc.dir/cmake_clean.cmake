file(REMOVE_RECURSE
  "CMakeFiles/ablation_rmc.dir/ablation_rmc.cc.o"
  "CMakeFiles/ablation_rmc.dir/ablation_rmc.cc.o.d"
  "ablation_rmc"
  "ablation_rmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
