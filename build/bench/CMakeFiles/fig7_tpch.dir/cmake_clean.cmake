file(REMOVE_RECURSE
  "CMakeFiles/fig7_tpch.dir/fig7_tpch.cc.o"
  "CMakeFiles/fig7_tpch.dir/fig7_tpch.cc.o.d"
  "fig7_tpch"
  "fig7_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
