# Empty compiler generated dependencies file for fig7_tpch.
# This may be replaced when dependencies are built.
