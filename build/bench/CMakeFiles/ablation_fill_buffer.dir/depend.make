# Empty dependencies file for ablation_fill_buffer.
# This may be replaced when dependencies are built.
