file(REMOVE_RECURSE
  "CMakeFiles/ablation_fill_buffer.dir/ablation_fill_buffer.cc.o"
  "CMakeFiles/ablation_fill_buffer.dir/ablation_fill_buffer.cc.o.d"
  "ablation_fill_buffer"
  "ablation_fill_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fill_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
