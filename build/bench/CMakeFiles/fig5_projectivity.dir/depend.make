# Empty dependencies file for fig5_projectivity.
# This may be replaced when dependencies are built.
