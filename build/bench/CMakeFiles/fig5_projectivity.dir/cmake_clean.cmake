file(REMOVE_RECURSE
  "CMakeFiles/fig5_projectivity.dir/fig5_projectivity.cc.o"
  "CMakeFiles/fig5_projectivity.dir/fig5_projectivity.cc.o.d"
  "fig5_projectivity"
  "fig5_projectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_projectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
