# Empty compiler generated dependencies file for relfab_tensor.
# This may be replaced when dependencies are built.
