file(REMOVE_RECURSE
  "CMakeFiles/relfab_tensor.dir/matrix.cc.o"
  "CMakeFiles/relfab_tensor.dir/matrix.cc.o.d"
  "librelfab_tensor.a"
  "librelfab_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
