file(REMOVE_RECURSE
  "librelfab_tensor.a"
)
