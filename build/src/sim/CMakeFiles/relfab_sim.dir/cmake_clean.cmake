file(REMOVE_RECURSE
  "CMakeFiles/relfab_sim.dir/stats.cc.o"
  "CMakeFiles/relfab_sim.dir/stats.cc.o.d"
  "librelfab_sim.a"
  "librelfab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
