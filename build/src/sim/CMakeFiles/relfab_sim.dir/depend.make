# Empty dependencies file for relfab_sim.
# This may be replaced when dependencies are built.
