file(REMOVE_RECURSE
  "librelfab_sim.a"
)
