file(REMOVE_RECURSE
  "CMakeFiles/relfab_index.dir/btree.cc.o"
  "CMakeFiles/relfab_index.dir/btree.cc.o.d"
  "librelfab_index.a"
  "librelfab_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
