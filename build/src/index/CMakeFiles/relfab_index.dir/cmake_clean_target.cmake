file(REMOVE_RECURSE
  "librelfab_index.a"
)
