# Empty dependencies file for relfab_index.
# This may be replaced when dependencies are built.
