# Empty dependencies file for relfab_mvcc.
# This may be replaced when dependencies are built.
