file(REMOVE_RECURSE
  "librelfab_mvcc.a"
)
