file(REMOVE_RECURSE
  "CMakeFiles/relfab_mvcc.dir/transaction.cc.o"
  "CMakeFiles/relfab_mvcc.dir/transaction.cc.o.d"
  "CMakeFiles/relfab_mvcc.dir/versioned_table.cc.o"
  "CMakeFiles/relfab_mvcc.dir/versioned_table.cc.o.d"
  "librelfab_mvcc.a"
  "librelfab_mvcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_mvcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
