# Empty compiler generated dependencies file for relfab_common.
# This may be replaced when dependencies are built.
