file(REMOVE_RECURSE
  "CMakeFiles/relfab_common.dir/format.cc.o"
  "CMakeFiles/relfab_common.dir/format.cc.o.d"
  "CMakeFiles/relfab_common.dir/status.cc.o"
  "CMakeFiles/relfab_common.dir/status.cc.o.d"
  "librelfab_common.a"
  "librelfab_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
