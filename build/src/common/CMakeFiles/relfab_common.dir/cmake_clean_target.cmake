file(REMOVE_RECURSE
  "librelfab_common.a"
)
