file(REMOVE_RECURSE
  "CMakeFiles/relfab_relmem.dir/ephemeral.cc.o"
  "CMakeFiles/relfab_relmem.dir/ephemeral.cc.o.d"
  "CMakeFiles/relfab_relmem.dir/geometry.cc.o"
  "CMakeFiles/relfab_relmem.dir/geometry.cc.o.d"
  "CMakeFiles/relfab_relmem.dir/rm_engine.cc.o"
  "CMakeFiles/relfab_relmem.dir/rm_engine.cc.o.d"
  "librelfab_relmem.a"
  "librelfab_relmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_relmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
