# Empty compiler generated dependencies file for relfab_relmem.
# This may be replaced when dependencies are built.
