file(REMOVE_RECURSE
  "librelfab_relmem.a"
)
