file(REMOVE_RECURSE
  "librelfab_shard.a"
)
