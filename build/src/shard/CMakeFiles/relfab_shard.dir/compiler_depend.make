# Empty compiler generated dependencies file for relfab_shard.
# This may be replaced when dependencies are built.
