file(REMOVE_RECURSE
  "CMakeFiles/relfab_shard.dir/sharded_table.cc.o"
  "CMakeFiles/relfab_shard.dir/sharded_table.cc.o.d"
  "librelfab_shard.a"
  "librelfab_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
