
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shard/sharded_table.cc" "src/shard/CMakeFiles/relfab_shard.dir/sharded_table.cc.o" "gcc" "src/shard/CMakeFiles/relfab_shard.dir/sharded_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relmem/CMakeFiles/relfab_relmem.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/relfab_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/relfab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/relfab_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
