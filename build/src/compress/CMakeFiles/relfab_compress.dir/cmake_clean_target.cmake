file(REMOVE_RECURSE
  "librelfab_compress.a"
)
