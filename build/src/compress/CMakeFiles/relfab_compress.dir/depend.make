# Empty dependencies file for relfab_compress.
# This may be replaced when dependencies are built.
