
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/codec.cc" "src/compress/CMakeFiles/relfab_compress.dir/codec.cc.o" "gcc" "src/compress/CMakeFiles/relfab_compress.dir/codec.cc.o.d"
  "/root/repo/src/compress/delta.cc" "src/compress/CMakeFiles/relfab_compress.dir/delta.cc.o" "gcc" "src/compress/CMakeFiles/relfab_compress.dir/delta.cc.o.d"
  "/root/repo/src/compress/dictionary.cc" "src/compress/CMakeFiles/relfab_compress.dir/dictionary.cc.o" "gcc" "src/compress/CMakeFiles/relfab_compress.dir/dictionary.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/compress/CMakeFiles/relfab_compress.dir/huffman.cc.o" "gcc" "src/compress/CMakeFiles/relfab_compress.dir/huffman.cc.o.d"
  "/root/repo/src/compress/rle.cc" "src/compress/CMakeFiles/relfab_compress.dir/rle.cc.o" "gcc" "src/compress/CMakeFiles/relfab_compress.dir/rle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/relfab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
