file(REMOVE_RECURSE
  "CMakeFiles/relfab_compress.dir/codec.cc.o"
  "CMakeFiles/relfab_compress.dir/codec.cc.o.d"
  "CMakeFiles/relfab_compress.dir/delta.cc.o"
  "CMakeFiles/relfab_compress.dir/delta.cc.o.d"
  "CMakeFiles/relfab_compress.dir/dictionary.cc.o"
  "CMakeFiles/relfab_compress.dir/dictionary.cc.o.d"
  "CMakeFiles/relfab_compress.dir/huffman.cc.o"
  "CMakeFiles/relfab_compress.dir/huffman.cc.o.d"
  "CMakeFiles/relfab_compress.dir/rle.cc.o"
  "CMakeFiles/relfab_compress.dir/rle.cc.o.d"
  "librelfab_compress.a"
  "librelfab_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
