# Empty dependencies file for relfab_core.
# This may be replaced when dependencies are built.
