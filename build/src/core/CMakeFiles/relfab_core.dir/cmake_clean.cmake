file(REMOVE_RECURSE
  "CMakeFiles/relfab_core.dir/fabric.cc.o"
  "CMakeFiles/relfab_core.dir/fabric.cc.o.d"
  "librelfab_core.a"
  "librelfab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
