file(REMOVE_RECURSE
  "librelfab_core.a"
)
