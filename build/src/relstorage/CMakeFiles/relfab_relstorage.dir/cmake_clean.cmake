file(REMOVE_RECURSE
  "CMakeFiles/relfab_relstorage.dir/rs_engine.cc.o"
  "CMakeFiles/relfab_relstorage.dir/rs_engine.cc.o.d"
  "CMakeFiles/relfab_relstorage.dir/storage_table.cc.o"
  "CMakeFiles/relfab_relstorage.dir/storage_table.cc.o.d"
  "librelfab_relstorage.a"
  "librelfab_relstorage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_relstorage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
