# Empty dependencies file for relfab_relstorage.
# This may be replaced when dependencies are built.
