file(REMOVE_RECURSE
  "librelfab_relstorage.a"
)
