# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("layout")
subdirs("relmem")
subdirs("engine")
subdirs("index")
subdirs("mvcc")
subdirs("compress")
subdirs("relstorage")
subdirs("shard")
subdirs("tensor")
subdirs("query")
subdirs("tpch")
subdirs("core")
