file(REMOVE_RECURSE
  "CMakeFiles/relfab_tpch.dir/dbgen.cc.o"
  "CMakeFiles/relfab_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/relfab_tpch.dir/queries.cc.o"
  "CMakeFiles/relfab_tpch.dir/queries.cc.o.d"
  "librelfab_tpch.a"
  "librelfab_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
