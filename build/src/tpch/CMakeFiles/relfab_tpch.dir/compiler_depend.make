# Empty compiler generated dependencies file for relfab_tpch.
# This may be replaced when dependencies are built.
