file(REMOVE_RECURSE
  "librelfab_tpch.a"
)
