file(REMOVE_RECURSE
  "CMakeFiles/relfab_engine.dir/hybrid.cc.o"
  "CMakeFiles/relfab_engine.dir/hybrid.cc.o.d"
  "CMakeFiles/relfab_engine.dir/query.cc.o"
  "CMakeFiles/relfab_engine.dir/query.cc.o.d"
  "CMakeFiles/relfab_engine.dir/rm_exec.cc.o"
  "CMakeFiles/relfab_engine.dir/rm_exec.cc.o.d"
  "CMakeFiles/relfab_engine.dir/vector_engine.cc.o"
  "CMakeFiles/relfab_engine.dir/vector_engine.cc.o.d"
  "CMakeFiles/relfab_engine.dir/volcano.cc.o"
  "CMakeFiles/relfab_engine.dir/volcano.cc.o.d"
  "librelfab_engine.a"
  "librelfab_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
