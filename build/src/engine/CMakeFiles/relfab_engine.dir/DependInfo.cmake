
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/hybrid.cc" "src/engine/CMakeFiles/relfab_engine.dir/hybrid.cc.o" "gcc" "src/engine/CMakeFiles/relfab_engine.dir/hybrid.cc.o.d"
  "/root/repo/src/engine/query.cc" "src/engine/CMakeFiles/relfab_engine.dir/query.cc.o" "gcc" "src/engine/CMakeFiles/relfab_engine.dir/query.cc.o.d"
  "/root/repo/src/engine/rm_exec.cc" "src/engine/CMakeFiles/relfab_engine.dir/rm_exec.cc.o" "gcc" "src/engine/CMakeFiles/relfab_engine.dir/rm_exec.cc.o.d"
  "/root/repo/src/engine/vector_engine.cc" "src/engine/CMakeFiles/relfab_engine.dir/vector_engine.cc.o" "gcc" "src/engine/CMakeFiles/relfab_engine.dir/vector_engine.cc.o.d"
  "/root/repo/src/engine/volcano.cc" "src/engine/CMakeFiles/relfab_engine.dir/volcano.cc.o" "gcc" "src/engine/CMakeFiles/relfab_engine.dir/volcano.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/relfab_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/relmem/CMakeFiles/relfab_relmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/relfab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/relfab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
