file(REMOVE_RECURSE
  "librelfab_engine.a"
)
