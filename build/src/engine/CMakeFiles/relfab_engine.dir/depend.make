# Empty dependencies file for relfab_engine.
# This may be replaced when dependencies are built.
