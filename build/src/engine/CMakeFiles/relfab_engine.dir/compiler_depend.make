# Empty compiler generated dependencies file for relfab_engine.
# This may be replaced when dependencies are built.
