# Empty compiler generated dependencies file for relfab_query.
# This may be replaced when dependencies are built.
