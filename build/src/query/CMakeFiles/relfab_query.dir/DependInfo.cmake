
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/executor.cc" "src/query/CMakeFiles/relfab_query.dir/executor.cc.o" "gcc" "src/query/CMakeFiles/relfab_query.dir/executor.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/relfab_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/relfab_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/relfab_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/relfab_query.dir/parser.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/query/CMakeFiles/relfab_query.dir/planner.cc.o" "gcc" "src/query/CMakeFiles/relfab_query.dir/planner.cc.o.d"
  "/root/repo/src/query/stats.cc" "src/query/CMakeFiles/relfab_query.dir/stats.cc.o" "gcc" "src/query/CMakeFiles/relfab_query.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/relfab_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/relfab_index.dir/DependInfo.cmake"
  "/root/repo/build/src/relmem/CMakeFiles/relfab_relmem.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/relfab_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/relfab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/relfab_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
