file(REMOVE_RECURSE
  "librelfab_query.a"
)
