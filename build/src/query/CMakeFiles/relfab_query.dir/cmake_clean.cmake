file(REMOVE_RECURSE
  "CMakeFiles/relfab_query.dir/executor.cc.o"
  "CMakeFiles/relfab_query.dir/executor.cc.o.d"
  "CMakeFiles/relfab_query.dir/lexer.cc.o"
  "CMakeFiles/relfab_query.dir/lexer.cc.o.d"
  "CMakeFiles/relfab_query.dir/parser.cc.o"
  "CMakeFiles/relfab_query.dir/parser.cc.o.d"
  "CMakeFiles/relfab_query.dir/planner.cc.o"
  "CMakeFiles/relfab_query.dir/planner.cc.o.d"
  "CMakeFiles/relfab_query.dir/stats.cc.o"
  "CMakeFiles/relfab_query.dir/stats.cc.o.d"
  "librelfab_query.a"
  "librelfab_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
