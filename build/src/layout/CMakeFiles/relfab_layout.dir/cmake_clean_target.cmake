file(REMOVE_RECURSE
  "librelfab_layout.a"
)
