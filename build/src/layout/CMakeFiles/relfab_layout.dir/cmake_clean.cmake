file(REMOVE_RECURSE
  "CMakeFiles/relfab_layout.dir/column_table.cc.o"
  "CMakeFiles/relfab_layout.dir/column_table.cc.o.d"
  "CMakeFiles/relfab_layout.dir/row_table.cc.o"
  "CMakeFiles/relfab_layout.dir/row_table.cc.o.d"
  "CMakeFiles/relfab_layout.dir/schema.cc.o"
  "CMakeFiles/relfab_layout.dir/schema.cc.o.d"
  "librelfab_layout.a"
  "librelfab_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relfab_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
