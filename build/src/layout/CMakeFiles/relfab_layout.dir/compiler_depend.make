# Empty compiler generated dependencies file for relfab_layout.
# This may be replaced when dependencies are built.
