# Empty compiler generated dependencies file for relational_storage_demo.
# This may be replaced when dependencies are built.
