file(REMOVE_RECURSE
  "CMakeFiles/relational_storage_demo.dir/relational_storage_demo.cpp.o"
  "CMakeFiles/relational_storage_demo.dir/relational_storage_demo.cpp.o.d"
  "relational_storage_demo"
  "relational_storage_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_storage_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
