file(REMOVE_RECURSE
  "CMakeFiles/matrix_slice.dir/matrix_slice.cpp.o"
  "CMakeFiles/matrix_slice.dir/matrix_slice.cpp.o.d"
  "matrix_slice"
  "matrix_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
