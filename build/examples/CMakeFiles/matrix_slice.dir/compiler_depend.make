# Empty compiler generated dependencies file for matrix_slice.
# This may be replaced when dependencies are built.
