# Empty dependencies file for htap_mvcc.
# This may be replaced when dependencies are built.
