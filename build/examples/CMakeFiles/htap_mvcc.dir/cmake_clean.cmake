file(REMOVE_RECURSE
  "CMakeFiles/htap_mvcc.dir/htap_mvcc.cpp.o"
  "CMakeFiles/htap_mvcc.dir/htap_mvcc.cpp.o.d"
  "htap_mvcc"
  "htap_mvcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htap_mvcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
