
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compression_scan.cpp" "examples/CMakeFiles/compression_scan.dir/compression_scan.cpp.o" "gcc" "examples/CMakeFiles/compression_scan.dir/compression_scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/relfab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/relfab_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/relfab_index.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/relfab_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/relfab_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/mvcc/CMakeFiles/relfab_mvcc.dir/DependInfo.cmake"
  "/root/repo/build/src/relstorage/CMakeFiles/relfab_relstorage.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/relfab_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/relfab_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/relfab_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/relmem/CMakeFiles/relfab_relmem.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/relfab_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/relfab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/relfab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
