# Empty dependencies file for compression_scan.
# This may be replaced when dependencies are built.
