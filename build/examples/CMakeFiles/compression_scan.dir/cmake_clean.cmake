file(REMOVE_RECURSE
  "CMakeFiles/compression_scan.dir/compression_scan.cpp.o"
  "CMakeFiles/compression_scan.dir/compression_scan.cpp.o.d"
  "compression_scan"
  "compression_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
