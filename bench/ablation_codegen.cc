// Ablation A13 — code-fragment reuse (paper §III-B): a legacy adaptive
// system compiles one fragment per (query, buffered layout) pair, so a
// working set of Q ad-hoc queries occupies Q x L cache slots; with
// Relational Fabric "data layouts are not buffered", one fragment per
// query suffices and previously compiled fragments are reused far more
// aggressively. This bench streams a rotating ad-hoc query mix and
// reports total compilation stalls for both regimes across fragment
// budgets.

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "engine/code_cache.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

/// Per-x fragment hit rates (fabric, legacy), written under a mutex
/// because sweep workers finish cells concurrently.
struct HitRates {
  Mutex mu;
  std::map<std::string, std::pair<double, double>> by_x
      RELFAB_GUARDED_BY(mu);

  void RecordFabric(const std::string& x, double rate) {
    MutexLock lock(&mu);
    by_x[x].first = rate;
  }
  void RecordLegacy(const std::string& x, double rate) {
    MutexLock lock(&mu);
    by_x[x].second = rate;
  }
  std::map<std::string, std::pair<double, double>> Snapshot() {
    MutexLock lock(&mu);
    return by_x;
  }
};

constexpr int kDistinctQueries = 24;
constexpr int kStatements = 2000;
constexpr uint32_t kLegacyLayouts = 3;  // row, column, hybrid variants

engine::QuerySpec MakeQuery(int id) {
  engine::QuerySpec spec;
  spec.aggregates.push_back(
      {engine::AggFunc::kSum,
       spec.exprs.Column(static_cast<uint32_t>(id % 16))});
  spec.predicates.push_back(engine::Predicate::Int(
      static_cast<uint32_t>(id % 7), relmem::CompareOp::kLt, id));
  return spec;
}

/// Streams a Zipf-ish ad-hoc workload through a fragment cache; returns
/// the simulated cycles spent compiling + looking up. Owns its
/// MemorySystem, so every cell simulates from identical state.
uint64_t RunWorkload(uint32_t capacity, uint32_t layouts_per_query,
                     double* hit_rate) {
  sim::MemorySystem memory;
  engine::CodeCache cache(&memory, capacity);
  Random rng(9);
  for (int s = 0; s < kStatements; ++s) {
    // Skewed query popularity: low ids repeat often.
    const int hot = static_cast<int>(rng.Uniform(6));
    const int id = rng.Bernoulli(0.7)
                       ? hot
                       : static_cast<int>(rng.Uniform(kDistinctQueries));
    const engine::QuerySpec spec = MakeQuery(id);
    // Legacy systems pick the fragment for the layout the optimizer
    // chose this time; which variant is needed varies by plan.
    const uint32_t layout =
        layouts_per_query == 1
            ? 0
            : static_cast<uint32_t>(rng.Uniform(layouts_per_query));
    cache.Require(engine::CodeCache::Signature(spec, layout));
  }
  *hit_rate = cache.hit_rate();
  NoteSimLines(memory);
  return memory.ElapsedCycles();
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  ResultTable results(
      "Ablation A13: compilation stalls over " +
      std::to_string(kStatements) + " ad-hoc statements (" +
      std::to_string(kDistinctQueries) + " distinct queries)");
  // Side output filled from concurrent sweep workers.
  HitRates hit_rates;

  for (uint32_t capacity : {8u, 16u, 24u, 48u, 96u}) {
    const std::string x = std::to_string(capacity) + " slots";
    RegisterSimBenchmark("codegen/fabric/" + x, &results, "fabric (1 layout)",
                         x, [&, capacity, x] {
                           double rate = 0;
                           const uint64_t c = RunWorkload(capacity, 1, &rate);
                           hit_rates.RecordFabric(x, rate);
                           return c;
                         });
    RegisterSimBenchmark(
        "codegen/legacy/" + x, &results,
        "legacy (" + std::to_string(kLegacyLayouts) + " layouts)", x,
        [&, capacity, x] {
          double rate = 0;
          const uint64_t c = RunWorkload(capacity, kLegacyLayouts, &rate);
          hit_rates.RecordLegacy(x, rate);
          return c;
        });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("fragment budget");
  std::printf("\nfragment hit rates (fabric vs legacy):\n");
  for (const auto& [x, rates] : hit_rates.Snapshot()) {
    std::printf("%-10s %5.1f%% vs %5.1f%%\n", x.c_str(),
                100 * rates.first, 100 * rates.second);
  }

  std::map<std::string, std::string> config{
      {"statements", std::to_string(kStatements)},
      {"distinct_queries", std::to_string(kDistinctQueries)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_codegen", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
