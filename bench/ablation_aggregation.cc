// Ablation A14 — aggregation pushdown (paper §IV-B): with the reduction
// unit inside the fabric, "the ephemeral variables will contain only
// ... the aggregation result, which will be passed through the memory
// hierarchy ensuring minimal data movement". Compares a k-column SUM
// evaluated (a) by the CPU over an ephemeral group, (b) inside the
// fabric, and (c) by the row engine — sweeping the number of reduced
// columns.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/rm_exec.h"
#include "engine/volcano.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  explicit Rig(uint64_t rows) {
    layout::Schema schema =
        layout::Schema::Uniform(16, layout::ColumnType::kInt32);
    table = std::make_unique<layout::RowTable>(std::move(schema), &memory,
                                               rows);
    layout::RowBuilder b(&table->schema());
    Random rng(1);
    for (uint64_t r = 0; r < rows; ++r) {
      b.Reset();
      for (int c = 0; c < 16; ++c) {
        b.AddInt32(static_cast<int32_t>(rng.Uniform(100)));
      }
      table->AppendRow(b.Finish());
    }
    rm = std::make_unique<relmem::RmEngine>(&memory);
  }

  engine::QuerySpec SumQuery(uint32_t k) const {
    engine::QuerySpec spec;
    for (uint32_t c = 0; c < k; ++c) {
      spec.aggregates.push_back(
          {engine::AggFunc::kSum, spec.exprs.Column(c)});
    }
    return spec;
  }

  uint64_t RunCpu(uint32_t k) {
    memory.ResetState();
    engine::RmExecEngine eng(table.get(), rm.get());
    const uint64_t c = eng.Execute(SumQuery(k))->sim_cycles;
    NoteSimLines(memory);
    return c;
  }
  uint64_t RunFabric(uint32_t k) {
    memory.ResetState();
    relmem::Geometry g = relmem::Geometry::FirstColumns(k);
    std::vector<relmem::RmEngine::FabricAgg> aggs;
    for (uint32_t c = 0; c < k; ++c) {
      aggs.push_back({relmem::RmEngine::FabricAggOp::kSum, c});
    }
    auto result = rm->AggregateInFabric(*table, g, aggs);
    RELFAB_CHECK(result.ok());
    DoNotOptimize(result->values[0]);
    NoteSimLines(memory);
    return memory.ElapsedCycles();
  }
  uint64_t RunRow(uint32_t k) {
    memory.ResetState();
    engine::VolcanoEngine eng(table.get());
    const uint64_t c = eng.Execute(SumQuery(k))->sim_cycles;
    NoteSimLines(memory);
    return c;
  }

  sim::MemorySystem memory;
  std::unique_ptr<layout::RowTable> table;
  std::unique_ptr<relmem::RmEngine> rm;
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 21) : (1ull << 19);
  PerWorker<Rig> rigs([rows] { return std::make_unique<Rig>(rows); });
  ResultTable results(
      "Ablation A14: k-column SUM — CPU over ephemeral group vs in-fabric "
      "reduction vs row scan (" + std::to_string(rows) + " rows)");

  for (uint32_t k : {1u, 2u, 4u, 8u, 12u}) {
    const std::string x = std::to_string(k) + " cols";
    RegisterSimBenchmark("agg/row/" + x, &results, "ROW", x,
                         [&rigs, k] { return rigs.Get().RunRow(k); });
    RegisterSimBenchmark("agg/rm_cpu/" + x, &results, "RM + CPU agg", x,
                         [&rigs, k] { return rigs.Get().RunCpu(k); });
    RegisterSimBenchmark("agg/fabric/" + x, &results, "fabric agg", x,
                         [&rigs, k] { return rigs.Get().RunFabric(k); });
  }

  const int last_worker = RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("reduced columns");
  results.PrintSpeedupVs("reduced columns", "RM + CPU agg");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  obs::Registry registry;
  if (Rig* rig = rigs.ForWorker(last_worker)) {
    rig->memory.ExportTo(&registry);
    rig->rm->ExportTo(&registry);
  }
  MaybeWriteReport(args.json_path, "ablation_aggregation", results, config,
                   &registry);
  return 0;
}
