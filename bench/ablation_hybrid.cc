// Ablation A12 — the hybrid engine (paper §III-B): alternating
// column-at-a-time (ephemeral predicate columns) and row-at-a-time
// (base-row fetch of qualifying tuples) on the same single-copy base
// data. Sweeping selectivity exposes the three-way crossover: hybrid
// wins selective wide queries, pure RM wins unselective ones, and the
// row scan never wins a scan-shaped query.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/hybrid.h"
#include "engine/rm_exec.h"
#include "engine/volcano.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  explicit Rig(uint64_t rows) {
    layout::Schema schema =
        layout::Schema::Uniform(16, layout::ColumnType::kInt64);
    table = std::make_unique<layout::RowTable>(std::move(schema), &memory,
                                               rows);
    layout::RowBuilder b(&table->schema());
    Random rng(1);
    for (uint64_t r = 0; r < rows; ++r) {
      b.Reset();
      for (int c = 0; c < 16; ++c) {
        b.AddInt64(static_cast<int64_t>(rng.Uniform(1000)));
      }
      table->AppendRow(b.Finish());
    }
    rm = std::make_unique<relmem::RmEngine>(&memory);
  }

  engine::QuerySpec Query(int permille) const {
    engine::QuerySpec spec;
    for (uint32_t c = 0; c < 10; ++c) {
      spec.aggregates.push_back(
          {engine::AggFunc::kSum, spec.exprs.Column(c)});
    }
    spec.predicates.push_back(
        engine::Predicate::Int(15, relmem::CompareOp::kLt, permille));
    return spec;
  }

  sim::MemorySystem memory;
  std::unique_ptr<layout::RowTable> table;
  std::unique_ptr<relmem::RmEngine> rm;
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 21) : (1ull << 19);
  PerWorker<Rig> rigs([rows] { return std::make_unique<Rig>(rows); });
  ResultTable results(
      "Ablation A12: hybrid (column-select + row-fetch) vs pure RM vs "
      "row scan — 10-column sum, selectivity sweep (" +
      std::to_string(rows) + " rows)");

  for (int permille : {1, 5, 20, 100, 300, 600, 1000}) {
    const std::string x = std::to_string(permille / 10.0) + "%";
    RegisterSimBenchmark("hybrid/row/" + x, &results, "ROW", x,
                         [&rigs, permille] {
                           Rig& rig = rigs.Get();
                           rig.memory.ResetState();
                           engine::VolcanoEngine eng(rig.table.get());
                           const uint64_t c =
                               eng.Execute(rig.Query(permille))->sim_cycles;
                           NoteSimLines(rig.memory);
                           return c;
                         });
    RegisterSimBenchmark("hybrid/rm/" + x, &results, "RM", x,
                         [&rigs, permille] {
                           Rig& rig = rigs.Get();
                           rig.memory.ResetState();
                           engine::RmExecEngine eng(rig.table.get(),
                                                    rig.rm.get());
                           const uint64_t c =
                               eng.Execute(rig.Query(permille))->sim_cycles;
                           NoteSimLines(rig.memory);
                           return c;
                         });
    RegisterSimBenchmark("hybrid/hybrid/" + x, &results, "HYBRID", x,
                         [&rigs, permille] {
                           Rig& rig = rigs.Get();
                           rig.memory.ResetState();
                           engine::HybridEngine eng(rig.table.get(),
                                                    rig.rm.get());
                           const uint64_t c =
                               eng.Execute(rig.Query(permille))->sim_cycles;
                           NoteSimLines(rig.memory);
                           return c;
                         });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("selectivity");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_hybrid", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
