// Ablation A4 — pushing selection into the fabric (paper §IV-B). With
// the predicate evaluated in hardware, only qualifying rows' column
// groups cross the memory hierarchy and the CPU skips predicate
// evaluation entirely. Note the bottleneck structure: the fabric must
// gather the source rows either way, so when production is the limit
// (narrow outputs, low selectivity) pushdown shows no end-to-end gain —
// its win appears exactly where the CPU-side consume path is the
// bottleneck, and it additionally removes the cache pollution of
// non-qualifying rows.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/rm_exec.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  explicit Rig(uint64_t rows) {
    layout::Schema schema =
        layout::Schema::Uniform(16, layout::ColumnType::kInt32);
    table = std::make_unique<layout::RowTable>(std::move(schema), &memory,
                                               rows);
    layout::RowBuilder b(&table->schema());
    Random rng(1);
    for (uint64_t r = 0; r < rows; ++r) {
      b.Reset();
      for (int c = 0; c < 16; ++c) {
        b.AddInt32(static_cast<int32_t>(rng.Uniform(1000)));
      }
      table->AppendRow(b.Finish());
    }
    rm = std::make_unique<relmem::RmEngine>(&memory);
  }

  sim::MemorySystem memory;
  std::unique_ptr<layout::RowTable> table;
  std::unique_ptr<relmem::RmEngine> rm;
};

// sum of 4 columns where c15 < permille.
engine::QuerySpec Query(int permille) {
  engine::QuerySpec spec;
  for (uint32_t c = 0; c < 4; ++c) {
    spec.aggregates.push_back(
        {engine::AggFunc::kSum, spec.exprs.Column(c)});
  }
  spec.predicates.push_back(
      engine::Predicate::Int(15, relmem::CompareOp::kLt, permille));
  return spec;
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 21) : (1ull << 19);
  PerWorker<Rig> rigs([rows] { return std::make_unique<Rig>(rows); });
  ResultTable results(
      "Ablation A4: selection in software vs pushed into the fabric (" +
      std::to_string(rows) + " rows, 4-column sum)");

  for (int permille : {1, 10, 100, 300, 500, 800, 1000}) {
    const std::string x = std::to_string(permille / 10.0) + "%";
    RegisterSimBenchmark("selection/sw/" + x, &results, "RM software", x,
                         [&rigs, permille] {
                           Rig& rig = rigs.Get();
                           rig.memory.ResetState();
                           engine::RmExecEngine eng(rig.table.get(),
                                                    rig.rm.get());
                           const uint64_t c =
                               eng.Execute(Query(permille))->sim_cycles;
                           NoteSimLines(rig.memory);
                           return c;
                         });
    RegisterSimBenchmark("selection/hw/" + x, &results, "RM pushdown", x,
                         [&rigs, permille] {
                           Rig& rig = rigs.Get();
                           rig.memory.ResetState();
                           engine::RmExecEngine eng(
                               rig.table.get(), rig.rm.get(),
                               engine::CostModel::A53Defaults(),
                               /*pushdown_selection=*/true);
                           const uint64_t c =
                               eng.Execute(Query(permille))->sim_cycles;
                           NoteSimLines(rig.memory);
                           return c;
                         });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("selectivity");
  results.PrintSpeedupVs("selectivity", "RM software");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_selection", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
