// Ablation A4 — pushing selection into the fabric (paper §IV-B). With
// the predicate evaluated in hardware, only qualifying rows' column
// groups cross the memory hierarchy and the CPU skips predicate
// evaluation entirely. Note the bottleneck structure: the fabric must
// gather the source rows either way, so when production is the limit
// (narrow outputs, low selectivity) pushdown shows no end-to-end gain —
// its win appears exactly where the CPU-side consume path is the
// bottleneck, and it additionally removes the cache pollution of
// non-qualifying rows.
//
// This bench doubles as the CI degradation smoke: with $RELFAB_FAULTS
// armed, cells that die on a fabric fault transparently re-run on the
// host row engine, and the JSON report carries per-cell answer gauges
// ("result.<cell>.{sum,rows}") plus summed "faults.*" counters so
// tools/check_degradation.py can assert fallbacks happened without
// changing any answer.

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "engine/rm_exec.h"
#include "engine/volcano.h"
#include "faults/injector.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  explicit Rig(uint64_t rows) {
    layout::Schema schema =
        layout::Schema::Uniform(16, layout::ColumnType::kInt32);
    table = std::make_unique<layout::RowTable>(std::move(schema), &memory,
                                               rows);
    layout::RowBuilder b(&table->schema());
    Random rng(1);
    for (uint64_t r = 0; r < rows; ++r) {
      b.Reset();
      for (int c = 0; c < 16; ++c) {
        b.AddInt32(static_cast<int32_t>(rng.Uniform(1000)));
      }
      table->AppendRow(b.Finish());
    }
    rm = std::make_unique<relmem::RmEngine>(&memory);
    StatusOr<std::unique_ptr<faults::FaultInjector>> env =
        faults::FaultInjector::FromEnv();
    if (!env.ok()) {
      std::fprintf(stderr, "warning: %s (running unarmed)\n",
                   env.status().ToString().c_str());
    } else {
      injector = std::move(*env);
    }
    if (injector != nullptr) rm->set_fault_injector(injector.get());
  }

  /// Call at the head of every cell: cycles must depend only on the cell,
  /// not on which worker ran the previous cells. ResetStreams re-seeds
  /// the per-site PRNGs and re-arming the memory re-draws the ECC
  /// countdown from the fresh stream.
  void ResetForCell() {
    memory.ResetState();
    if (injector != nullptr) {
      injector->ResetStreams();
      memory.set_fault_injector(injector.get());
    }
  }

  sim::MemorySystem memory;
  std::unique_ptr<layout::RowTable> table;
  std::unique_ptr<relmem::RmEngine> rm;
  std::unique_ptr<faults::FaultInjector> injector;
};

// sum of 4 columns where c15 < permille.
engine::QuerySpec Query(int permille) {
  engine::QuerySpec spec;
  for (uint32_t c = 0; c < 4; ++c) {
    spec.aggregates.push_back(
        {engine::AggFunc::kSum, spec.exprs.Column(c)});
  }
  spec.predicates.push_back(
      engine::Predicate::Int(15, relmem::CompareOp::kLt, permille));
  return spec;
}

/// Per-cell answers, keyed by cell name; written under a mutex because
/// workers finish cells concurrently.
struct Answers {
  Mutex mu;
  std::map<std::string, engine::QueryResult> by_cell RELFAB_GUARDED_BY(mu);

  void Record(const std::string& cell, engine::QueryResult result) {
    MutexLock lock(&mu);
    by_cell[cell] = std::move(result);
  }
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 21) : (1ull << 19);
  PerWorker<Rig> rigs([rows] { return std::make_unique<Rig>(rows); });
  ResultTable results(
      "Ablation A4: selection in software vs pushed into the fabric (" +
      std::to_string(rows) + " rows, 4-column sum)");
  Answers answers;

  // Executes the cell's query on the RM path; on a fabric fault (armed
  // runs only) degrades to the host row engine — the answer is the same,
  // the cycles tell the story of the failed attempts plus the rerun.
  const auto run_cell = [&answers](Rig& rig, const std::string& cell,
                                   const engine::QuerySpec& query,
                                   bool pushdown) -> uint64_t {
    rig.ResetForCell();
    engine::RmExecEngine eng(rig.table.get(), rig.rm.get(),
                             engine::CostModel::A53Defaults(), pushdown);
    StatusOr<engine::QueryResult> result = eng.Execute(query);
    if (!result.ok() && faults::IsFabricFault(result.status())) {
      if (rig.injector != nullptr) {
        rig.injector->NoteFallback("bench.selection");
      }
      engine::VolcanoEngine host(rig.table.get());
      result = host.Execute(query);
    }
    RELFAB_CHECK(result.ok()) << cell << ": " << result.status().ToString();
    answers.Record(cell, *result);
    NoteSimLines(rig.memory);
    return rig.memory.ElapsedCycles();
  };

  for (int permille : {1, 10, 100, 300, 500, 800, 1000}) {
    const std::string x = std::to_string(permille / 10.0) + "%";
    const std::string sw_cell = "selection/sw/" + x;
    RegisterSimBenchmark(sw_cell, &results, "RM software", x,
                         [&rigs, &run_cell, sw_cell, permille] {
                           return run_cell(rigs.Get(), sw_cell,
                                           Query(permille),
                                           /*pushdown=*/false);
                         });
    const std::string hw_cell = "selection/hw/" + x;
    RegisterSimBenchmark(hw_cell, &results, "RM pushdown", x,
                         [&rigs, &run_cell, hw_cell, permille] {
                           return run_cell(rigs.Get(), hw_cell,
                                           Query(permille),
                                           /*pushdown=*/true);
                         });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("selectivity");
  results.PrintSpeedupVs("selectivity", "RM software");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);

  // Answer gauges + fault counters for the degradation smoke. Fault
  // counters are summed across worker rigs (each worker owns a private
  // injector with identical per-cell streams).
  obs::Registry registry;
  {
    MutexLock lock(&answers.mu);
    for (const auto& [cell, r] : answers.by_cell) {
      double sum = 0;
      for (double v : r.aggregates) sum += v;
      registry.gauge("result." + cell + ".sum")->Set(sum);
      registry.gauge("result." + cell + ".rows")
          ->Set(static_cast<double>(r.rows_matched));
    }
  }
  uint64_t injected = 0, retries = 0, exhausted = 0, fallbacks = 0;
  bool armed = false;
  for (int slot = 0; slot < 4096; ++slot) {
    Rig* rig = rigs.ForWorker(slot);
    if (rig == nullptr || rig->injector == nullptr) continue;
    armed = true;
    injected += rig->injector->total_injected();
    retries += rig->injector->total_retries();
    exhausted += rig->injector->total_exhausted();
    fallbacks += rig->injector->total_fallbacks();
  }
  registry.gauge("faults.armed")->Set(armed ? 1 : 0);
  registry.counter("faults.injected")->Set(injected);
  registry.counter("faults.retries")->Set(retries);
  registry.counter("faults.exhausted")->Set(exhausted);
  registry.counter("faults.fallbacks.total")->Set(fallbacks);

  MaybeWriteReport(args.json_path, "ablation_selection", results, config,
                   &registry);
  return 0;
}
