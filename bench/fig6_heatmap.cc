// Reproduces Figures 6a and 6b of the paper: heatmaps of RM's speedup
// over ROW (6a) and over COL (6b) for projection-selection queries, with
// the number of projected columns and the number of selection columns
// each swept from 1 to 10.
//
// Expected shape: 6a — RM beats ROW everywhere (~1.3-1.5x), speedup
// mildly decreasing as the query touches more columns. 6b — COL wins in
// the lower-left corner (few total columns, ratio < 1); RM dominates
// once the query touches more than ~4 columns (up to ~2x).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/rm_exec.h"
#include "engine/vector_engine.h"
#include "engine/volcano.h"
#include "layout/column_table.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

// Projected columns come from [0, 10); selection columns from [10, 20) —
// disjoint, as in the paper's grid.
constexpr uint32_t kTableColumns = 20;
constexpr uint32_t kGrid = 10;

layout::RowTable BuildTable(uint64_t rows, sim::MemorySystem* memory) {
  layout::Schema schema =
      layout::Schema::Uniform(kTableColumns, layout::ColumnType::kInt32);
  layout::RowTable table(std::move(schema), memory, rows);
  layout::RowBuilder builder(&table.schema());
  Random rng(7);
  for (uint64_t r = 0; r < rows; ++r) {
    builder.Reset();
    for (uint32_t c = 0; c < kTableColumns; ++c) {
      builder.AddInt32(static_cast<int32_t>(rng.Uniform(100)));
    }
    table.AppendRow(builder.Finish());
  }
  return table;
}

// p projected columns, s selection conjuncts (each ~95% selective, so
// the projection phase keeps meaningful work at every grid point).
engine::QuerySpec GridQuery(uint32_t p, uint32_t s) {
  engine::QuerySpec spec;
  for (uint32_t c = 0; c < p; ++c) spec.projection.push_back(c);
  for (uint32_t c = 0; c < s; ++c) {
    spec.predicates.push_back(engine::Predicate::Int(
        kGrid + c, relmem::CompareOp::kLt, 95));
  }
  return spec;
}

/// One worker's private copy of the base data and engines: cells on
/// different SweepRunner workers never share simulation state.
struct Rig {
  sim::MemorySystem memory;
  layout::RowTable table;
  layout::ColumnTable columns;
  relmem::RmEngine rm;

  explicit Rig(uint64_t rows)
      : table(BuildTable(rows, &memory)),
        columns(table, &memory),
        rm(&memory) {}
};

std::string GridLabel(uint32_t p, uint32_t s) {
  return "p" + std::to_string(p) + "/s" + std::to_string(s);
}

void PrintHeatmap(const ResultTable& results, const char* title,
                  const std::string& num, const std::string& den) {
  std::printf("\n=== %s ===\n", title);
  std::printf("sel\\proj");
  for (uint32_t p = 1; p <= kGrid; ++p) std::printf(" %6u", p);
  std::printf("\n");
  for (uint32_t s = kGrid; s >= 1; --s) {
    std::printf("%8u", s);
    for (uint32_t p = 1; p <= kGrid; ++p) {
      const std::string x = GridLabel(p, s);
      std::printf(" %6.2f", static_cast<double>(results.Get(num, x)) /
                                static_cast<double>(results.Get(den, x)));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 21) : (1ull << 19);
  PerWorker<Rig> rigs([rows] { return std::make_unique<Rig>(rows); });
  ResultTable results("Figure 6 grid");

  for (uint32_t p = 1; p <= kGrid; ++p) {
    for (uint32_t s = 1; s <= kGrid; ++s) {
      const std::string x = GridLabel(p, s);
      RegisterSimBenchmark("fig6/ROW/" + x, &results, "ROW", x, [&, p, s] {
        Rig& rig = rigs.Get();
        rig.memory.ResetState();
        engine::VolcanoEngine eng(&rig.table);
        const uint64_t c = eng.Execute(GridQuery(p, s))->sim_cycles;
        NoteSimLines(rig.memory);
        return c;
      });
      RegisterSimBenchmark("fig6/COL/" + x, &results, "COL", x, [&, p, s] {
        Rig& rig = rigs.Get();
        rig.memory.ResetState();
        engine::VectorEngine eng(&rig.columns);
        const uint64_t c = eng.Execute(GridQuery(p, s))->sim_cycles;
        NoteSimLines(rig.memory);
        return c;
      });
      RegisterSimBenchmark("fig6/RM/" + x, &results, "RM", x, [&, p, s] {
        Rig& rig = rigs.Get();
        rig.memory.ResetState();
        engine::RmExecEngine eng(&rig.table, &rig.rm);
        const uint64_t c = eng.Execute(GridQuery(p, s))->sim_cycles;
        NoteSimLines(rig.memory);
        return c;
      });
    }
  }

  const int last_worker = RunSweep(args);
  if (args.list) return 0;
  PrintHeatmap(results, "Figure 6a: speedup RM vs ROW", "ROW", "RM");
  PrintHeatmap(results, "Figure 6b: speedup RM vs COL", "COL", "RM");

  std::map<std::string, std::string> config{
      {"rows", std::to_string(rows)},
      {"table_columns", std::to_string(kTableColumns)},
      {"grid", std::to_string(kGrid)}};
  AddStandardConfig(&config, args);
  obs::Registry registry;
  if (Rig* rig = rigs.ForWorker(last_worker)) {
    rig->memory.ExportTo(&registry);
    rig->rm.ExportTo(&registry);
  }
  MaybeWriteReport(args.json_path, "fig6_heatmap", results, config,
                   &registry);
  return 0;
}
