// Ablation A8 — columnar execution strategy. The paper's COL baseline
// behaves like a fused multi-cursor scan (all referenced columns advance
// in lockstep), which is what exhausts the prefetcher beyond 4 columns.
// The alternative column-at-a-time strategy evaluates one predicate
// column at a time (single stream each) before a lockstep output pass.
// This bench quantifies when each strategy wins — context for how much
// of COL's Figure 5/6 penalty is engine policy vs hardware limit.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/vector_engine.h"
#include "layout/column_table.h"
#include "layout/row_table.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  explicit Rig(uint64_t rows) {
    layout::Schema schema =
        layout::Schema::Uniform(20, layout::ColumnType::kInt32);
    table = std::make_unique<layout::RowTable>(std::move(schema), &memory,
                                               rows);
    layout::RowBuilder b(&table->schema());
    Random rng(1);
    for (uint64_t r = 0; r < rows; ++r) {
      b.Reset();
      for (int c = 0; c < 20; ++c) {
        b.AddInt32(static_cast<int32_t>(rng.Uniform(1000)));
      }
      table->AppendRow(b.Finish());
    }
    columns = std::make_unique<layout::ColumnTable>(*table, &memory);
  }

  sim::MemorySystem memory;
  std::unique_ptr<layout::RowTable> table;
  std::unique_ptr<layout::ColumnTable> columns;
};

engine::QuerySpec Query(uint32_t preds, int permille) {
  engine::QuerySpec spec;
  spec.aggregates.push_back({engine::AggFunc::kSum, spec.exprs.Column(0)});
  for (uint32_t c = 0; c < preds; ++c) {
    spec.predicates.push_back(
        engine::Predicate::Int(10 + c, relmem::CompareOp::kLt, permille));
  }
  return spec;
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 20) : (1ull << 18);
  PerWorker<Rig> rigs([rows] { return std::make_unique<Rig>(rows); });
  ResultTable results(
      "Ablation A8: fused lockstep vs column-at-a-time (sum of c0, "
      "conjuncts of varying count/selectivity, " + std::to_string(rows) +
      " rows)");

  for (uint32_t preds : {1u, 3u, 6u, 9u}) {
    for (int permille : {100, 900}) {
      const std::string x = std::to_string(preds) + " preds @" +
                            std::to_string(permille / 10) + "%";
      RegisterSimBenchmark(
          "vector_mode/fused/" + x, &results, "fused", x,
          [&rigs, preds, permille] {
            Rig& rig = rigs.Get();
            rig.memory.ResetState();
            engine::VectorEngine eng(rig.columns.get(),
                                     engine::CostModel::A53Defaults(),
                                     engine::VectorMode::kFusedLockstep);
            const uint64_t c =
                eng.Execute(Query(preds, permille))->sim_cycles;
            NoteSimLines(rig.memory);
            return c;
          });
      RegisterSimBenchmark(
          "vector_mode/caat/" + x, &results, "column-at-a-time", x,
          [&rigs, preds, permille] {
            Rig& rig = rigs.Get();
            rig.memory.ResetState();
            engine::VectorEngine eng(rig.columns.get(),
                                     engine::CostModel::A53Defaults(),
                                     engine::VectorMode::kColumnAtATime);
            const uint64_t c =
                eng.Execute(Query(preds, permille))->sim_cycles;
            NoteSimLines(rig.memory);
            return c;
          });
    }
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("conjuncts @ per-conjunct selectivity");
  results.PrintSpeedupVs("conjuncts @ per-conjunct selectivity", "fused");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_vector_mode", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
