// Ablation A9 — indexes vs fabric range access (paper §III-A): "the
// usefulness of indexes is now smaller, since range queries can be
// efficiently evaluated with columnar accesses, so indexes should be
// used for point queries and point updates." This bench runs key-range
// sums of growing width: the B+-tree wins decisively at point/narrow
// ranges; the RM column-group scan takes over as the range widens, and
// the full volcano scan is dominated everywhere.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/rm_exec.h"
#include "engine/volcano.h"
#include "index/btree.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  explicit Rig(uint64_t rows) : num_rows(rows) {
    auto schema = layout::Schema::Create({
        {"key", layout::ColumnType::kInt64, 0},
        {"v0", layout::ColumnType::kInt32, 0},
        {"v1", layout::ColumnType::kInt32, 0},
        {"pad0", layout::ColumnType::kInt64, 0},
        {"pad1", layout::ColumnType::kInt64, 0},
        {"pad2", layout::ColumnType::kInt64, 0},
        {"pad3", layout::ColumnType::kInt64, 0},
        {"pad4", layout::ColumnType::kInt64, 0},
    });
    table = std::make_unique<layout::RowTable>(std::move(*schema), &memory,
                                               rows);
    layout::RowBuilder b(&table->schema());
    Random rng(1);
    for (uint64_t r = 0; r < rows; ++r) {
      b.Reset();
      // Dense unique keys in insertion order (a clustered primary key).
      b.AddInt64(static_cast<int64_t>(r))
          .AddInt32(static_cast<int32_t>(rng.Uniform(100)))
          .AddInt32(static_cast<int32_t>(rng.Uniform(100)))
          .AddInt64(0)
          .AddInt64(0)
          .AddInt64(0)
          .AddInt64(0)
          .AddInt64(0);
      table->AppendRow(b.Finish());
    }
    index = std::make_unique<index::BTreeIndex>(&memory);
    for (uint64_t r = 0; r < rows; ++r) {
      index->Insert(static_cast<int64_t>(r), r);
    }
    rm = std::make_unique<relmem::RmEngine>(&memory);
  }

  engine::QuerySpec RangeQuery(int64_t lo, int64_t hi) const {
    engine::QuerySpec spec;
    spec.aggregates.push_back({engine::AggFunc::kSum, spec.exprs.Column(1)});
    spec.predicates.push_back(
        engine::Predicate::Int(0, relmem::CompareOp::kGe, lo));
    spec.predicates.push_back(
        engine::Predicate::Int(0, relmem::CompareOp::kLe, hi));
    return spec;
  }

  uint64_t RunIndex(int64_t lo, int64_t hi) {
    memory.ResetState();
    const std::vector<uint64_t> rows = index->Range(lo, hi);
    engine::VolcanoEngine eng(table.get());
    const uint64_t c = eng.ExecuteOnRowIds(RangeQuery(lo, hi), rows)->sim_cycles;
    NoteSimLines(memory);
    return c;
  }
  uint64_t RunRm(int64_t lo, int64_t hi) {
    memory.ResetState();
    engine::RmExecEngine eng(table.get(), rm.get(),
                             engine::CostModel::A53Defaults(),
                             /*pushdown_selection=*/true);
    const uint64_t c = eng.Execute(RangeQuery(lo, hi))->sim_cycles;
    NoteSimLines(memory);
    return c;
  }
  uint64_t RunRow(int64_t lo, int64_t hi) {
    memory.ResetState();
    engine::VolcanoEngine eng(table.get());
    const uint64_t c = eng.Execute(RangeQuery(lo, hi))->sim_cycles;
    NoteSimLines(memory);
    return c;
  }

  uint64_t num_rows;
  sim::MemorySystem memory;
  std::unique_ptr<layout::RowTable> table;
  std::unique_ptr<index::BTreeIndex> index;
  std::unique_ptr<relmem::RmEngine> rm;
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 21) : (1ull << 19);
  PerWorker<Rig> rigs([rows] { return std::make_unique<Rig>(rows); });
  ResultTable results(
      "Ablation A9: key-range sum — B+-tree vs RM column access vs row "
      "scan (" + std::to_string(rows) + " rows)");

  const std::vector<uint64_t> widths = {1,     16,       256,  4096,
                                        65536, rows / 4, rows};
  for (uint64_t width : widths) {
    const int64_t lo = static_cast<int64_t>(rows / 3);
    const int64_t hi = lo + static_cast<int64_t>(width) - 1;
    const std::string x = std::to_string(width) + " keys";
    RegisterSimBenchmark("index/btree/" + x, &results, "INDEX", x,
                         [&rigs, lo, hi] { return rigs.Get().RunIndex(lo, hi); });
    RegisterSimBenchmark("index/rm/" + x, &results, "RM", x,
                         [&rigs, lo, hi] { return rigs.Get().RunRm(lo, hi); });
    RegisterSimBenchmark("index/row/" + x, &results, "ROW", x,
                         [&rigs, lo, hi] { return rigs.Get().RunRow(lo, hi); });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("range width");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_index", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
