// Ablation A11 — matrix slicing through the fabric (paper §VII Q1):
// "data transformation has great potential for other data-intensive
// applications over multi-dimensional data (matrix/tensor slicing and
// vectorized operations on matrix/tensor slices)". Summing one column of
// a row-major matrix is the canonical strided worst case; the fabric
// ships the slice densely. The wider the matrix, the larger the win.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"
#include "tensor/matrix.h"

namespace relfab::bench {
namespace {

struct Rig {
  Rig(uint32_t cols, uint64_t rows) {
    auto m = tensor::Matrix::Create(0, cols, &memory);
    RELFAB_CHECK(m.ok());
    matrix = std::make_unique<tensor::Matrix>(std::move(*m));
    std::vector<double> row(cols, 1.0);
    for (uint64_t r = 0; r < rows; ++r) matrix->AppendRow(row.data());
    rm = std::make_unique<relmem::RmEngine>(&memory);
  }

  sim::MemorySystem memory;
  std::unique_ptr<tensor::Matrix> matrix;
  std::unique_ptr<relmem::RmEngine> rm;
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  benchmark::Initialize(&argc, argv);

  const uint64_t total_doubles = FullScale() ? (1ull << 23) : (1ull << 21);
  auto* results = new ResultTable(
      "Ablation A11: column-slice sum of a row-major matrix (constant "
      "total size, growing width)");

  for (uint32_t cols : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const uint64_t rows = total_doubles / cols;
    auto* rig = new Rig(cols, rows);
    const std::string x = std::to_string(rows) + "x" + std::to_string(cols);
    RegisterSimBenchmark("tensor/direct/" + x, results, "strided CPU", x,
                         [=] {
                           rig->memory.ResetState();
                           benchmark::DoNotOptimize(
                               rig->matrix->SumColumnDirect(cols / 2));
                           return rig->memory.ElapsedCycles();
                         });
    RegisterSimBenchmark("tensor/fabric/" + x, results, "fabric slice", x,
                         [=] {
                           rig->memory.ResetState();
                           auto sum = rig->matrix->SumColumnFabric(
                               rig->rm.get(), cols / 2);
                           RELFAB_CHECK(sum.ok());
                           benchmark::DoNotOptimize(*sum);
                           return rig->memory.ElapsedCycles();
                         });
  }

  benchmark::RunSpecifiedBenchmarks();
  results->PrintCycles("matrix shape");
  results->PrintSpeedupVs("matrix shape", "strided CPU");
  return 0;
}
