// Ablation A11 — matrix slicing through the fabric (paper §VII Q1):
// "data transformation has great potential for other data-intensive
// applications over multi-dimensional data (matrix/tensor slicing and
// vectorized operations on matrix/tensor slices)". Summing one column of
// a row-major matrix is the canonical strided worst case; the fabric
// ships the slice densely. The wider the matrix, the larger the win.

#include <memory>

#include "bench/bench_util.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"
#include "tensor/matrix.h"

namespace relfab::bench {
namespace {

struct Rig {
  Rig(uint32_t cols, uint64_t rows) {
    auto m = tensor::Matrix::Create(0, cols, &memory);
    RELFAB_CHECK(m.ok());
    matrix = std::make_unique<tensor::Matrix>(std::move(*m));
    std::vector<double> row(cols, 1.0);
    for (uint64_t r = 0; r < rows; ++r) matrix->AppendRow(row.data());
    rm = std::make_unique<relmem::RmEngine>(&memory);
  }

  sim::MemorySystem memory;
  std::unique_ptr<tensor::Matrix> matrix;
  std::unique_ptr<relmem::RmEngine> rm;
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t total_doubles = FullScale() ? (1ull << 23) : (1ull << 21);
  ResultTable results(
      "Ablation A11: column-slice sum of a row-major matrix (constant "
      "total size, growing width)");

  // One worker-private rig per matrix shape.
  std::vector<std::unique_ptr<PerWorker<Rig>>> rigs;
  for (uint32_t cols : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const uint64_t rows = total_doubles / cols;
    rigs.push_back(std::make_unique<PerWorker<Rig>>(
        [cols, rows] { return std::make_unique<Rig>(cols, rows); }));
    PerWorker<Rig>* rig = rigs.back().get();
    const std::string x = std::to_string(rows) + "x" + std::to_string(cols);
    RegisterSimBenchmark("tensor/direct/" + x, &results, "strided CPU", x,
                         [rig, cols] {
                           Rig& r = rig->Get();
                           r.memory.ResetState();
                           DoNotOptimize(r.matrix->SumColumnDirect(cols / 2));
                           NoteSimLines(r.memory);
                           return r.memory.ElapsedCycles();
                         });
    RegisterSimBenchmark("tensor/fabric/" + x, &results, "fabric slice", x,
                         [rig, cols] {
                           Rig& r = rig->Get();
                           r.memory.ResetState();
                           auto sum = r.matrix->SumColumnFabric(r.rm.get(),
                                                               cols / 2);
                           RELFAB_CHECK(sum.ok());
                           DoNotOptimize(*sum);
                           NoteSimLines(r.memory);
                           return r.memory.ElapsedCycles();
                         });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("matrix shape");
  results.PrintSpeedupVs("matrix shape", "strided CPU");

  std::map<std::string, std::string> config{
      {"total_doubles", std::to_string(total_doubles)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_tensor", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
