// Ablation A1 — fill-buffer size. The paper's RM "supports arbitrary
// data sizes even with a small data memory of 2 MB on the FPGA by
// refilling it whenever it is full" (§V). This bench sweeps the buffer
// size and reports the refill count and the end-to-end cost of an
// RM scan, showing the re-arm overhead amortizing away.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "engine/rm_exec.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

engine::QuerySpec WideProjection() {
  engine::QuerySpec spec;
  for (uint32_t c = 0; c < 8; ++c) spec.projection.push_back(c);
  return spec;
}

// Builds the whole rig inside the cell: every invocation simulates on a
// fresh MemorySystem, so cells are order- and thread-independent.
uint64_t RunWithBuffer(uint64_t buffer_bytes, uint64_t rows,
                       uint64_t* refills) {
  sim::SimParams params;
  params.fabric_buffer_bytes = buffer_bytes;
  sim::MemorySystem memory(params);
  layout::Schema schema =
      layout::Schema::Uniform(16, layout::ColumnType::kInt32);
  layout::RowTable table(std::move(schema), &memory, rows);
  layout::RowBuilder b(&table.schema());
  Random rng(1);
  for (uint64_t r = 0; r < rows; ++r) {
    b.Reset();
    for (int c = 0; c < 16; ++c) {
      b.AddInt32(static_cast<int32_t>(rng.Uniform(100)));
    }
    table.AppendRow(b.Finish());
  }
  relmem::RmEngine rm(&memory);
  memory.ResetState();
  engine::RmExecEngine eng(&table, &rm);
  const uint64_t cycles = eng.Execute(WideProjection())->sim_cycles;
  *refills = memory.stats().fabric_refills;
  NoteSimLines(memory);
  return cycles;
}

/// Per-x refill counts, written under a mutex because sweep workers
/// finish cells concurrently.
struct RefillCounts {
  Mutex mu;
  std::map<std::string, uint64_t> by_x RELFAB_GUARDED_BY(mu);

  void Record(const std::string& x, uint64_t refills) {
    MutexLock lock(&mu);
    by_x[x] = refills;
  }
  std::map<std::string, uint64_t> Snapshot() {
    MutexLock lock(&mu);
    return by_x;
  }
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 21) : (1ull << 19);
  ResultTable results("Ablation A1: fill-buffer size (" +
                      std::to_string(rows) + " rows, 8 of 16 "
                      "columns projected)");
  // Side output filled from concurrent sweep workers.
  RefillCounts refill_counts;

  for (uint64_t kib : {16ull, 64ull, 256ull, 1024ull, 2048ull, 8192ull}) {
    const std::string x = std::to_string(kib) + " KiB";
    RegisterSimBenchmark("fill_buffer/" + x, &results, "RM", x, [&, kib, x] {
      uint64_t refills = 0;
      const uint64_t cycles = RunWithBuffer(kib * 1024, rows, &refills);
      refill_counts.Record(x, refills);
      return cycles;
    });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("buffer size");
  std::printf("\nrefills per scan:\n");
  for (const auto& [x, n] : refill_counts.Snapshot()) {
    std::printf("%-12s %llu\n", x.c_str(),
                static_cast<unsigned long long>(n));
  }

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_fill_buffer", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
