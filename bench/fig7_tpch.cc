// Reproduces Figures 7a and 7b of the paper: TPC-H Q1 and Q6 execution
// time for ROW / COL / RM while varying the data size. As in the paper,
// the x-axis sweeps the *target column* size (the bytes Q1/Q6 actually
// need per row: 26 B and 20 B respectively); the table is ~4-5x larger.
//
// Expected shape: Q1 is compute-bound — all three layouts land close
// together. Q6 is movement-bound — RM and COL clearly beat ROW, with
// RM >= COL, across all data sizes.
//
// Default sizes are scaled down 16x from the paper's 2..128 MB target
// columns; set RELFAB_FULL=1 for paper scale.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "engine/rm_exec.h"
#include "engine/vector_engine.h"
#include "engine/volcano.h"
#include "layout/column_table.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace relfab::bench {
namespace {

struct Dataset {
  std::unique_ptr<layout::RowTable> rows;
  std::unique_ptr<layout::ColumnTable> columns;
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);

  const double scale = FullScale() ? 1.0 : 1.0 / 16.0;
  const std::vector<uint64_t> target_mib = {2, 4, 8, 16, 32, 64, 128};

  auto* memory = new sim::MemorySystem();
  auto* rm = new relmem::RmEngine(memory);
  auto* q1_results = new ResultTable("Figure 7a: TPC-H Q1");
  auto* q6_results = new ResultTable("Figure 7b: TPC-H Q6");

  struct QueryDef {
    const char* name;
    engine::QuerySpec spec;
    uint32_t target_row_bytes;  // bytes per row the query touches
    ResultTable* results;
  };
  auto* defs = new std::vector<QueryDef>;
  defs->push_back({"Q1", tpch::MakeQ1Spec(), 26, q1_results});
  defs->push_back({"Q6", tpch::MakeQ6Spec(), 20, q6_results});

  // Generate the largest dataset once per size (shared by Q1 and Q6:
  // row counts are derived from the Q6 target width so the x-axis labels
  // stay comparable across queries).
  auto* datasets = new std::map<uint64_t, Dataset>;
  for (uint64_t mib : target_mib) {
    const uint64_t rows = static_cast<uint64_t>(
        scale * static_cast<double>(mib) * 1024 * 1024 / 20.0);
    Dataset ds;
    ds.rows = std::make_unique<layout::RowTable>(
        tpch::GenerateLineitem(rows, /*seed=*/mib, memory));
    ds.columns = std::make_unique<layout::ColumnTable>(*ds.rows, memory);
    (*datasets)[mib] = std::move(ds);
  }

  for (const QueryDef& def : *defs) {
    for (uint64_t mib : target_mib) {
      const Dataset& ds = datasets->at(mib);
      const uint64_t table_mib =
          ds.rows->data_bytes() / (1024 * 1024);
      const std::string x = std::to_string(table_mib) + "MiB(" +
                            std::to_string(mib) + ")";
      const std::string base =
          std::string("fig7/") + def.name + "/" + x;
      const engine::QuerySpec* spec = &def.spec;
      ResultTable* results = def.results;
      const layout::RowTable* rows_tbl = ds.rows.get();
      const layout::ColumnTable* cols_tbl = ds.columns.get();
      RegisterSimBenchmark(base + "/ROW", results, "ROW", x, [=] {
        memory->ResetState();
        engine::VolcanoEngine eng(rows_tbl);
        return eng.Execute(*spec)->sim_cycles;
      });
      RegisterSimBenchmark(base + "/COL", results, "COL", x, [=] {
        memory->ResetState();
        engine::VectorEngine eng(cols_tbl);
        return eng.Execute(*spec)->sim_cycles;
      });
      RegisterSimBenchmark(base + "/RM", results, "RM", x, [=] {
        memory->ResetState();
        engine::RmExecEngine eng(rows_tbl, rm);
        return eng.Execute(*spec)->sim_cycles;
      });
    }
  }

  benchmark::RunSpecifiedBenchmarks();
  q1_results->PrintCycles("table size (target col)");
  q1_results->PrintSpeedupVs("table size (target col)", "ROW");
  q6_results->PrintCycles("table size (target col)");
  q6_results->PrintSpeedupVs("table size (target col)", "ROW");

  if (!json_path.empty()) {
    // One report per query figure: "<path>" gets Q1, "<path>.q6.json"
    // gets Q6, each with a registry snapshot after its last point.
    obs::Registry registry;
    memory->ExportTo(&registry);
    rm->ExportTo(&registry);
    const std::map<std::string, std::string> config = {
        {"scale", FullScale() ? "1" : "1/16"},
        {"sizes_mib", "2..128"}};
    MaybeWriteReport(json_path, "fig7_tpch_q1", *q1_results, config,
                     &registry);
    MaybeWriteReport(json_path + ".q6.json", "fig7_tpch_q6", *q6_results,
                     config, &registry);
  }
  return 0;
}
