// Reproduces Figures 7a and 7b of the paper: TPC-H Q1 and Q6 execution
// time for ROW / COL / RM while varying the data size. As in the paper,
// the x-axis sweeps the *target column* size (the bytes Q1/Q6 actually
// need per row: 26 B and 20 B respectively); the table is ~4-5x larger.
//
// Expected shape: Q1 is compute-bound — all three layouts land close
// together. Q6 is movement-bound — RM and COL clearly beat ROW, with
// RM >= COL, across all data sizes.
//
// Default sizes are scaled down 16x from the paper's 2..128 MB target
// columns; set RELFAB_FULL=1 for paper scale.

#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "engine/rm_exec.h"
#include "engine/vector_engine.h"
#include "engine/volcano.h"
#include "layout/column_table.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace relfab::bench {
namespace {

struct Dataset {
  std::unique_ptr<layout::RowTable> rows;
  std::unique_ptr<layout::ColumnTable> columns;
};

/// One worker's private copy of every dataset size plus the memory
/// system and RM engine: workers never share simulation state, so the
/// sweep parallelizes without any locking in the simulator.
struct Rig {
  sim::MemorySystem memory;
  relmem::RmEngine rm{&memory};
  std::map<uint64_t, Dataset> datasets;

  Rig(const std::vector<uint64_t>& target_mib, double scale) {
    for (uint64_t mib : target_mib) {
      const uint64_t rows = static_cast<uint64_t>(
          scale * static_cast<double>(mib) * 1024 * 1024 / 20.0);
      Dataset ds;
      ds.rows = std::make_unique<layout::RowTable>(
          tpch::GenerateLineitem(rows, /*seed=*/mib, &memory));
      ds.columns = std::make_unique<layout::ColumnTable>(*ds.rows, &memory);
      datasets[mib] = std::move(ds);
    }
  }
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const double scale = FullScale() ? 1.0 : 1.0 / 16.0;
  const std::vector<uint64_t> target_mib = {2, 4, 8, 16, 32, 64, 128};

  PerWorker<Rig> rigs(
      [&] { return std::make_unique<Rig>(target_mib, scale); });
  ResultTable q1_results("Figure 7a: TPC-H Q1");
  ResultTable q6_results("Figure 7b: TPC-H Q6");

  struct QueryDef {
    const char* name;
    engine::QuerySpec spec;
    uint32_t target_row_bytes;  // bytes per row the query touches
    ResultTable* results;
  };
  std::vector<QueryDef> defs;
  defs.push_back({"Q1", tpch::MakeQ1Spec(), 26, &q1_results});
  defs.push_back({"Q6", tpch::MakeQ6Spec(), 20, &q6_results});

  // Row counts are derived from the Q6 target width for every size so
  // the x-axis labels stay comparable across queries. The table size
  // label needs a built dataset; build one on the registration thread
  // (slot 0) — workers reuse it or build their own.
  Rig& label_rig = rigs.Get();

  for (const QueryDef& def : defs) {
    for (uint64_t mib : target_mib) {
      const uint64_t table_mib =
          label_rig.datasets.at(mib).rows->data_bytes() / (1024 * 1024);
      const std::string x = std::to_string(table_mib) + "MiB(" +
                            std::to_string(mib) + ")";
      const std::string base =
          std::string("fig7/") + def.name + "/" + x;
      const engine::QuerySpec* spec = &def.spec;
      ResultTable* results = def.results;
      RegisterSimBenchmark(base + "/ROW", results, "ROW", x, [&, spec, mib] {
        Rig& rig = rigs.Get();
        rig.memory.ResetState();
        engine::VolcanoEngine eng(rig.datasets.at(mib).rows.get());
        const uint64_t c = eng.Execute(*spec)->sim_cycles;
        NoteSimLines(rig.memory);
        return c;
      });
      RegisterSimBenchmark(base + "/COL", results, "COL", x, [&, spec, mib] {
        Rig& rig = rigs.Get();
        rig.memory.ResetState();
        engine::VectorEngine eng(rig.datasets.at(mib).columns.get());
        const uint64_t c = eng.Execute(*spec)->sim_cycles;
        NoteSimLines(rig.memory);
        return c;
      });
      RegisterSimBenchmark(base + "/RM", results, "RM", x, [&, spec, mib] {
        Rig& rig = rigs.Get();
        rig.memory.ResetState();
        engine::RmExecEngine eng(rig.datasets.at(mib).rows.get(), &rig.rm);
        const uint64_t c = eng.Execute(*spec)->sim_cycles;
        NoteSimLines(rig.memory);
        return c;
      });
    }
  }

  const int last_worker = RunSweep(args);
  if (args.list) return 0;
  q1_results.PrintCycles("table size (target col)");
  q1_results.PrintSpeedupVs("table size (target col)", "ROW");
  q6_results.PrintCycles("table size (target col)");
  q6_results.PrintSpeedupVs("table size (target col)", "ROW");

  if (!args.json_path.empty()) {
    // One report per query figure: "<path>" gets Q1, "<path>.q6.json"
    // gets Q6, each with a registry snapshot after its last point.
    obs::Registry registry;
    if (Rig* rig = rigs.ForWorker(last_worker)) {
      rig->memory.ExportTo(&registry);
      rig->rm.ExportTo(&registry);
    }
    std::map<std::string, std::string> config = {
        {"scale", FullScale() ? "1" : "1/16"}, {"sizes_mib", "2..128"}};
    AddStandardConfig(&config, args);
    MaybeWriteReport(args.json_path, "fig7_tpch_q1", q1_results, config,
                     &registry);
    MaybeWriteReport(args.json_path + ".q6.json", "fig7_tpch_q6",
                     q6_results, config, &registry);
  }
  return 0;
}
