// Ablation A6 — compression through Relational Fabric (paper §III-D).
// The fabric can project a compressed column out of row data only if the
// encoding is scatter-accessible. This bench models an RM column-group
// scan over an encoded column: the fabric gathers the (smaller) encoded
// bytes and decodes on the fly. Dictionary/delta/Huffman cut gather
// traffic at small decode cost; RLE pays a data-dependent positional
// search per row — the paper's reason it "cannot be used out of the
// box".

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "compress/delta.h"
#include "compress/dictionary.h"
#include "compress/huffman.h"
#include "compress/rle.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

/// Models the fabric streaming a single encoded column of `n` values:
/// gather of the encoded bytes (sequential, bank-parallel) + per-value
/// decode in the fabric + the CPU consuming the decoded dense stream.
/// Builds its own MemorySystem so every cell simulates from identical
/// state (same Allocate base address) at any thread count.
uint64_t ModelScan(uint64_t n, uint64_t encoded_bytes, double decode_cost) {
  sim::MemorySystem memory;
  const sim::SimParams& p = memory.params();
  const uint64_t base = memory.Allocate(encoded_bytes);
  memory.ResetState();
  // Fabric-side gather of the encoded column.
  double gather = 0;
  for (uint64_t addr = base; addr < base + encoded_bytes; addr += 64) {
    bool row_hit = false;
    const double lat = memory.GatherLine(addr, &row_hit);
    gather += p.line_transfer_cycles +
              (row_hit ? 0.0 : lat / p.fabric_gather_parallelism);
  }
  // Decode is fabric work; it pipelines with the gather.
  const double decode = static_cast<double>(n) * decode_cost;
  const double produce = std::max(gather, decode);
  // CPU consumes n decoded 8-byte values as one dense stream.
  const double out_lines = static_cast<double>(n) * 8 / 64;
  const double consume =
      out_lines * p.fabric_read_cycles + static_cast<double>(n) * 2.1;
  memory.Stall(std::max(produce, consume));
  NoteSimLines(memory);
  return memory.ElapsedCycles();
}

std::vector<int64_t> MakeColumn(uint64_t n) {
  Random rng(3);
  std::vector<int64_t> values(n);
  int64_t run_value = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.01)) run_value = static_cast<int64_t>(rng.Uniform(64));
    values[i] = run_value;
  }
  return values;
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  using namespace relfab::compress;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t n = FullScale() ? (1ull << 22) : (1ull << 20);
  const std::vector<int64_t> values = MakeColumn(n);
  ResultTable results(
      "Ablation A6: fabric scan of one encoded column (" +
      std::to_string(n) + " values, low-cardinality run-heavy data)");

  struct Entry {
    const char* name;
    std::shared_ptr<ColumnCodec> codec;
    double decode_cost;
  };
  std::vector<Entry> entries;
  entries.push_back({"raw int64", nullptr, 0.0});
  entries.push_back({"dictionary", std::make_shared<DictionaryCodec>(), 0});
  entries.push_back({"delta", std::make_shared<DeltaCodec>(), 0});
  entries.push_back({"huffman", std::make_shared<HuffmanCodec>(), 0});
  entries.push_back({"rle", std::make_shared<RleCodec>(), 0});
  for (Entry& e : entries) {
    if (e.codec != nullptr) {
      RELFAB_CHECK(e.codec->Encode(values).ok());
      e.decode_cost = e.codec->decode_cost_per_value();
    }
  }

  for (const Entry& e : entries) {
    const uint64_t encoded =
        e.codec == nullptr ? n * 8 : e.codec->encoded_bytes();
    const double decode = e.decode_cost;
    RegisterSimBenchmark(std::string("compression/") + e.name, &results,
                         "fabric scan", e.name,
                         [=] { return ModelScan(n, encoded, decode); });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("codec");
  std::printf("\nencoded sizes:\n");
  for (const Entry& e : entries) {
    const uint64_t encoded =
        e.codec == nullptr ? n * 8 : e.codec->encoded_bytes();
    std::printf("%-12s %12llu B  decode %.1f cycles/value%s\n", e.name,
                static_cast<unsigned long long>(encoded), e.decode_cost,
                e.codec != nullptr && !e.codec->scatter_accessible()
                    ? "  [NOT scatter-accessible]"
                    : "");
  }

  std::map<std::string, std::string> config{{"values", std::to_string(n)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_compression", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
