// Ablation A3 — prefetcher stream capacity. The paper attributes COL's
// degradation beyond 4 columns to the hardware prefetcher supporting
// "up to four parallel sequential accesses" (§V). Sweeping the stream-
// table capacity moves the columnar engine's cliff exactly to that
// capacity, while RM (one dense stream) is insensitive to it.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/rm_exec.h"
#include "engine/vector_engine.h"
#include "layout/column_table.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  explicit Rig(uint32_t streams, uint64_t rows) : memory(MakeParams(streams)) {
    layout::Schema schema =
        layout::Schema::Uniform(16, layout::ColumnType::kInt32);
    table = std::make_unique<layout::RowTable>(std::move(schema), &memory,
                                               rows);
    layout::RowBuilder b(&table->schema());
    Random rng(1);
    for (uint64_t r = 0; r < rows; ++r) {
      b.Reset();
      for (int c = 0; c < 16; ++c) {
        b.AddInt32(static_cast<int32_t>(rng.Uniform(100)));
      }
      table->AppendRow(b.Finish());
    }
    columns = std::make_unique<layout::ColumnTable>(*table, &memory);
    rm = std::make_unique<relmem::RmEngine>(&memory);
  }

  static sim::SimParams MakeParams(uint32_t streams) {
    sim::SimParams p;
    p.prefetch_streams = streams;
    return p;
  }

  sim::MemorySystem memory;
  std::unique_ptr<layout::RowTable> table;
  std::unique_ptr<layout::ColumnTable> columns;
  std::unique_ptr<relmem::RmEngine> rm;
};

engine::QuerySpec Projection(uint32_t k) {
  engine::QuerySpec spec;
  for (uint32_t c = 0; c < k; ++c) spec.projection.push_back(c);
  return spec;
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 20) : (1ull << 18);
  ResultTable results(
      "Ablation A3: COL cycles vs projectivity for different prefetcher "
      "stream capacities (" + std::to_string(rows) + " rows); RM@4 shown "
      "for reference");

  // One worker-private rig per stream-capacity variant: a worker builds
  // only the variants whose cells it happens to run.
  std::vector<std::unique_ptr<PerWorker<Rig>>> rigs;
  for (uint32_t streams : {2u, 4u, 8u}) {
    rigs.push_back(std::make_unique<PerWorker<Rig>>(
        [streams, rows] { return std::make_unique<Rig>(streams, rows); }));
    PerWorker<Rig>* rig = rigs.back().get();
    const std::string series = "COL(pf=" + std::to_string(streams) + ")";
    for (uint32_t k = 1; k <= 12; ++k) {
      const std::string x = std::to_string(k);
      RegisterSimBenchmark("prefetch/" + series + "/k" + x, &results, series,
                           x, [rig, k] {
                             Rig& r = rig->Get();
                             r.memory.ResetState();
                             engine::VectorEngine eng(r.columns.get());
                             const uint64_t c =
                                 eng.Execute(Projection(k))->sim_cycles;
                             NoteSimLines(r.memory);
                             return c;
                           });
    }
  }
  {
    rigs.push_back(std::make_unique<PerWorker<Rig>>(
        [rows] { return std::make_unique<Rig>(4, rows); }));
    PerWorker<Rig>* rig = rigs.back().get();
    for (uint32_t k = 1; k <= 12; ++k) {
      const std::string x = std::to_string(k);
      RegisterSimBenchmark("prefetch/RM/k" + x, &results, "RM(pf=4)", x,
                           [rig, k] {
                             Rig& r = rig->Get();
                             r.memory.ResetState();
                             engine::RmExecEngine eng(r.table.get(),
                                                      r.rm.get());
                             const uint64_t c =
                                 eng.Execute(Projection(k))->sim_cycles;
                             NoteSimLines(r.memory);
                             return c;
                           });
    }
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("projectivity");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_prefetcher", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
