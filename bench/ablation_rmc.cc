// Ablation A10 — Relational Memory Controller (paper §IV-C): moving the
// transformer from external programmable logic (100 MHz, AXI-configured)
// into the memory controller itself (controller clock, first-party bank
// access, ISA-extension configuration). Same queries, same geometry —
// only the placement parameters change. RMC lifts the fabric production
// floor that dominates narrow column groups.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/rm_exec.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  Rig(const sim::SimParams& params, uint64_t rows) : memory(params) {
    layout::Schema schema =
        layout::Schema::Uniform(16, layout::ColumnType::kInt32);
    table = std::make_unique<layout::RowTable>(std::move(schema), &memory,
                                               rows);
    layout::RowBuilder b(&table->schema());
    Random rng(1);
    for (uint64_t r = 0; r < rows; ++r) {
      b.Reset();
      for (int c = 0; c < 16; ++c) {
        b.AddInt32(static_cast<int32_t>(rng.Uniform(100)));
      }
      table->AppendRow(b.Finish());
    }
    rm = std::make_unique<relmem::RmEngine>(&memory);
  }

  uint64_t Run(uint32_t k) {
    memory.ResetState();
    engine::QuerySpec spec;
    for (uint32_t c = 0; c < k; ++c) spec.projection.push_back(c);
    engine::RmExecEngine eng(table.get(), rm.get());
    const uint64_t c = eng.Execute(spec)->sim_cycles;
    NoteSimLines(memory);
    return c;
  }

  sim::MemorySystem memory;
  std::unique_ptr<layout::RowTable> table;
  std::unique_ptr<relmem::RmEngine> rm;
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 21) : (1ull << 19);
  PerWorker<Rig> pl_rigs([rows] {
    return std::make_unique<Rig>(sim::SimParams::ZynqA53Defaults(), rows);
  });
  PerWorker<Rig> rmc_rigs([rows] {
    return std::make_unique<Rig>(
        sim::SimParams::RelationalMemoryControllerDefaults(), rows);
  });
  ResultTable results(
      "Ablation A10: RM in programmable logic vs in the memory controller "
      "(projection sweep, " + std::to_string(rows) + " rows)");

  for (uint32_t k = 1; k <= 11; ++k) {
    const std::string x = std::to_string(k);
    RegisterSimBenchmark("rmc/pl/k" + x, &results, "RM (PL fabric)", x,
                         [&pl_rigs, k] { return pl_rigs.Get().Run(k); });
    RegisterSimBenchmark("rmc/mc/k" + x, &results, "RMC (controller)", x,
                         [&rmc_rigs, k] { return rmc_rigs.Get().Run(k); });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("projectivity");
  results.PrintSpeedupVs("projectivity", "RM (PL fabric)");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_rmc", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
