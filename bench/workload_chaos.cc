// Chaos endurance driver for the failure-domain stack: N simulated
// sessions each replay a deterministic mixed workload against their own
// replicated sharded fabric while a `shard.kill` / `rm.kill` fault plan
// permanently kills components mid-run. The headline output is the
// availability split — what fraction of statements were answered,
// answered degraded (failover / host fallback), or structurally
// unavailable — plus the death schedule each session observed.
//
// Sessions are the sweep cells; each cell builds a private Fabric from
// its session seed and arms a session-seeded kill plan, so the death
// schedule, the per-statement outcomes and the cycles are bit-identical
// no matter which host worker runs the cell or how many workers there
// are (--threads 1 vs 4), and in both simulator modes. CI pins exactly
// that, and asserts an availability floor with replicas >= 2.
//
// Flags beyond the standard harness set:
//   --sessions N         simulated sessions (default 8)
//   --statements M       statements per session (default 40)
//   --replicas R         timing-alias replicas per shard (default 2)
//   --kill-p P           per-attempt shard.kill probability (default 0.004;
//                        rm.kill is armed at P/2)
//   --kill-seed S        base seed for the kill plans (default 1)
//   --deadline-cycles D  per-statement cycle-domain deadline (0 = off)
//   --qlog PATH          write the merged query log as JSONL
//
// `--json <report>` embeds the availability counters in the metrics
// snapshot under "workload.*"; summarize a --qlog file with
// tools/analyze_query_log.py (kill outcomes land in "status_code").

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/relational_fabric.h"

namespace relfab::bench {
namespace {

/// Row content is a pure function of the key so every session holds
/// identical data and fault-free answers are host-checkable.
int32_t TempFor(int64_t ts) { return static_cast<int32_t>((ts * 13 + 7) % 500); }
int32_t AmountFor(int64_t i) {
  return static_cast<int32_t>((i * 31 + 11) % 10000);
}

struct ChaosParams {
  uint64_t rows = 20000;
  int sessions = 8;
  int statements = 40;
  uint32_t replicas = 2;
  double kill_p = 0.004;
  uint64_t kill_seed = 1;
  uint64_t deadline_cycles = 0;
};

/// Everything one session leaves behind for the session-major merge.
struct SessionOut {
  std::vector<obs::QueryLogRecord> records;
  uint64_t total_cycles = 0;
  uint64_t answered = 0;      // status ok (includes degraded answers)
  uint64_t degraded = 0;      // answered but failed over / fell back
  uint64_t unavailable = 0;   // kUnavailable (no live replica / dead rm)
  uint64_t deadline_exceeded = 0;
  uint64_t other_errors = 0;
  uint64_t failovers = 0;     // dead replicas skipped across statements
  uint64_t deaths = 0;        // permanent component deaths drawn
  std::string health;         // final health summary ("rm=dead ...")
};

/// Builds the session's private fabric: `readings` range-sharded 4 ways
/// on ts with R replicas per shard, `events` as a plain row table.
std::unique_ptr<Fabric> BuildSessionFabric(const ChaosParams& params) {
  auto fabric = std::make_unique<Fabric>();
  fabric->shard_scheduler().set_host_threads(1);
  const int64_t rows = static_cast<int64_t>(params.rows);
  {
    auto schema = layout::Schema::Create({
        {"ts", layout::ColumnType::kInt64, 0},
        {"sensor", layout::ColumnType::kInt32, 0},
        {"temp", layout::ColumnType::kInt32, 0},
        {"hum", layout::ColumnType::kInt32, 0},
    });
    auto* table = fabric
                      ->CreateShardedTable(
                          "readings", std::move(*schema), "ts",
                          {.splits = {rows / 4, rows / 2, 3 * rows / 4},
                           .replicas = params.replicas})
                      .value();
    layout::RowBuilder b(&table->schema());
    for (int64_t i = 0; i < rows; ++i) {
      b.Reset();
      b.AddInt64(i)
          .AddInt32(static_cast<int32_t>(i % 64))
          .AddInt32(TempFor(i))
          .AddInt32(static_cast<int32_t>((i * 5 + 3) % 100));
      table->Append(b.Finish());
    }
  }
  {
    auto schema = layout::Schema::Create({
        {"id", layout::ColumnType::kInt64, 0},
        {"kind", layout::ColumnType::kInt32, 0},
        {"amount", layout::ColumnType::kInt32, 0},
    });
    auto* table = fabric->CreateTable("events", std::move(*schema)).value();
    layout::RowBuilder b(&table->schema());
    for (int64_t i = 0; i < rows / 2; ++i) {
      b.Reset();
      b.AddInt64(i)
          .AddInt32(static_cast<int32_t>(i % 8))
          .AddInt32(AmountFor(i));
      table->AppendRow(b.Finish());
    }
  }
  return fabric;
}

/// The session's kill plan: shard replicas die at `kill_p` per serving
/// attempt, the RM transformer at half that. Seeded per session so the
/// sweep exercises many distinct death schedules deterministically.
faults::FaultPlan KillPlanFor(int session, const ChaosParams& params) {
  const uint64_t seed =
      params.kill_seed * 0x9e3779b9u + static_cast<uint64_t>(session) * 7919u;
  const std::string spec =
      "shard.kill:p=" + std::to_string(params.kill_p) +
      ";rm.kill:p=" + std::to_string(params.kill_p / 2) +
      ";seed=" + std::to_string(seed);
  auto plan = faults::FaultPlan::Parse(spec);
  RELFAB_CHECK(plan.ok()) << plan.status().ToString();
  return *plan;
}

/// One statement of the session's mixed stream (same mix as
/// workload_mixed, so fault-free answers match that driver's).
std::string NextStatement(Random* rng, const ChaosParams& params) {
  const int64_t rows = static_cast<int64_t>(params.rows);
  switch (rng->Uniform(10)) {
    case 0:
    case 1:
    case 2:
    case 3: {  // point lookup on the shard key: prunes to one shard
      const int64_t k = static_cast<int64_t>(rng->Uniform(
          static_cast<uint64_t>(rows)));
      return "SELECT COUNT(*), SUM(temp) FROM readings WHERE ts = " +
             std::to_string(k);
    }
    case 4:
    case 5:
    case 6: {  // narrow range analytic: prunes to 1-2 shards
      const int64_t width = rows / 8;
      const int64_t lo = static_cast<int64_t>(
          rng->Uniform(static_cast<uint64_t>(rows - width)));
      return "SELECT AVG(temp), MAX(hum) FROM readings WHERE ts >= " +
             std::to_string(lo) + " AND ts < " + std::to_string(lo + width);
    }
    case 7:
    case 8:  // full fan-out group-by across all shards
      return "SELECT sensor, COUNT(*) FROM readings WHERE hum < 50 "
             "GROUP BY sensor";
    default:  // plain-row analytic on the unsharded table
      return "SELECT kind, SUM(amount) FROM events WHERE amount < 9000 "
             "GROUP BY kind";
  }
}

/// Runs one whole session and fills `out`. Returns total session cycles.
uint64_t RunSession(int session, const ChaosParams& params,
                    SessionOut* out) {
  std::unique_ptr<Fabric> fabric = BuildSessionFabric(params);
  fabric->ArmFaults(KillPlanFor(session, params));
  obs::TelemetryConfig config;
  config.session = "s" + std::to_string(session);
  config.window_cycles = 2'000'000;
  obs::WorkloadTelemetry& telemetry =
      fabric->EnableTelemetry(std::move(config));

  Random rng(0xC0FFEEu + static_cast<uint64_t>(session) * 7919u);
  uint64_t total_cycles = 0;
  for (int s = 0; s < params.statements; ++s) {
    fabric->memory().ResetState();
    const std::string sql = NextStatement(&rng, params);
    exec::QueryOptions options;
    options.max_threads = 4;
    options.deadline_cycles = params.deadline_cycles;
    auto result = fabric->ExecuteSql(sql, options);
    if (result.ok()) {
      ++out->answered;
      total_cycles += result->result.sim_cycles;
    } else if (result.status().code() == StatusCode::kUnavailable) {
      ++out->unavailable;
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      ++out->deadline_exceeded;
    } else {
      // Anything else is a bug in the chaos story, not a failure domain.
      RELFAB_CHECK(false)
          << "session " << session << " statement " << s
          << " failed outside the failure model: "
          << result.status().ToString();
    }
  }

  for (const obs::QueryLogRecord* r : telemetry.query_log().Recent()) {
    out->records.push_back(*r);
    out->failovers += r->shards_failed_over;
    // "Degraded" = answered, but only by failing over to a replica or
    // falling back to a host path (a subset of `answered`).
    if (r->status == "ok" && (r->degraded || r->shards_failed_over > 0)) {
      ++out->degraded;
    }
  }
  out->total_cycles = total_cycles;
  out->deaths = fabric->health().deaths().size();
  out->health = fabric->health().ToString();
  NoteSimLines(fabric->memory());
  return total_cycles;
}

/// Strips `--flag <n>` / `--flag=<n>` style custom flags before
/// ParseBenchArgs (which treats unknown flags as errors).
std::string ConsumeValueFlag(int* argc, char** argv, const char* flag) {
  std::string value;
  const size_t flag_len = std::strlen(flag);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < *argc) {
      value = argv[++i];
    } else if (std::strcmp(argv[i], flag) == 0) {
      std::fprintf(stderr, "%s requires an argument\n", flag);
      std::exit(2);
    } else if (std::strncmp(argv[i], flag, flag_len) == 0 &&
               argv[i][flag_len] == '=') {
      value = argv[i] + flag_len + 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;

  ChaosParams params;
  params.rows = FullScale() ? 100000 : 20000;
  params.sessions = FullScale() ? 16 : 8;
  params.statements = FullScale() ? 80 : 40;
  const std::string sessions_flag =
      ConsumeValueFlag(&argc, argv, "--sessions");
  if (!sessions_flag.empty()) params.sessions = std::stoi(sessions_flag);
  const std::string statements_flag =
      ConsumeValueFlag(&argc, argv, "--statements");
  if (!statements_flag.empty()) {
    params.statements = std::stoi(statements_flag);
  }
  const std::string replicas_flag =
      ConsumeValueFlag(&argc, argv, "--replicas");
  if (!replicas_flag.empty()) {
    params.replicas = static_cast<uint32_t>(std::stoul(replicas_flag));
  }
  const std::string kill_p_flag = ConsumeValueFlag(&argc, argv, "--kill-p");
  if (!kill_p_flag.empty()) params.kill_p = std::stod(kill_p_flag);
  const std::string kill_seed_flag =
      ConsumeValueFlag(&argc, argv, "--kill-seed");
  if (!kill_seed_flag.empty()) {
    params.kill_seed = std::stoull(kill_seed_flag);
  }
  const std::string deadline_flag =
      ConsumeValueFlag(&argc, argv, "--deadline-cycles");
  if (!deadline_flag.empty()) {
    params.deadline_cycles = std::stoull(deadline_flag);
  }
  const std::string qlog_path = ConsumeValueFlag(&argc, argv, "--qlog");
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  ResultTable results(
      "Chaos endurance: " + std::to_string(params.sessions) +
      " sessions x " + std::to_string(params.statements) +
      " statements, replicas=" + std::to_string(params.replicas) +
      " shard.kill p=" + std::to_string(params.kill_p));
  std::vector<SessionOut> sessions(
      static_cast<size_t>(params.sessions));
  for (int i = 0; i < params.sessions; ++i) {
    SessionOut* out = &sessions[static_cast<size_t>(i)];
    RegisterSimBenchmark(
        "workload_chaos/session=" + std::to_string(i), &results, "chaos",
        "s" + std::to_string(i),
        [i, &params, out] { return RunSession(i, params, out); });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("session");

  // --- session-major merge: deterministic at any --threads value ---
  obs::QueryLog merged_log(
      static_cast<size_t>(params.sessions) *
      static_cast<size_t>(params.statements));
  if (!qlog_path.empty()) {
    auto status = merged_log.OpenSink(qlog_path);
    RELFAB_CHECK(status.ok()) << status.ToString();
  }
  uint64_t answered = 0, degraded = 0, unavailable = 0, deadline = 0;
  uint64_t failovers = 0, deaths = 0;
  for (size_t i = 0; i < sessions.size(); ++i) {
    const SessionOut& s = sessions[i];
    for (const obs::QueryLogRecord& r : s.records) merged_log.Append(r);
    answered += s.answered;
    degraded += s.degraded;
    unavailable += s.unavailable;
    deadline += s.deadline_exceeded;
    failovers += s.failovers;
    deaths += s.deaths;
    if (s.deaths > 0) {
      std::printf("s%zu deaths=%llu health: %s\n", i,
                  static_cast<unsigned long long>(s.deaths),
                  s.health.c_str());
    }
  }
  merged_log.CloseSink();

  const uint64_t statements = static_cast<uint64_t>(params.sessions) *
                              static_cast<uint64_t>(params.statements);
  const double denom = statements > 0 ? static_cast<double>(statements) : 1;
  std::printf(
      "\navailability: answered=%llu/%llu (%.4f) degraded=%llu (%.4f) "
      "unavailable=%llu (%.4f) deadline_exceeded=%llu failovers=%llu "
      "deaths=%llu\n",
      static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(statements),
      static_cast<double>(answered) / denom,
      static_cast<unsigned long long>(degraded),
      static_cast<double>(degraded) / denom,
      static_cast<unsigned long long>(unavailable),
      static_cast<double>(unavailable) / denom,
      static_cast<unsigned long long>(deadline),
      static_cast<unsigned long long>(failovers),
      static_cast<unsigned long long>(deaths));
  if (!qlog_path.empty()) {
    std::printf("query log: %llu record(s) -> %s\n",
                static_cast<unsigned long long>(merged_log.total()),
                qlog_path.c_str());
  }

  std::map<std::string, std::string> config{
      {"rows", std::to_string(params.rows)},
      {"sessions", std::to_string(params.sessions)},
      {"statements", std::to_string(params.statements)},
      {"replicas", std::to_string(params.replicas)},
      {"kill_p", std::to_string(params.kill_p)},
      {"kill_seed", std::to_string(params.kill_seed)},
      {"deadline_cycles", std::to_string(params.deadline_cycles)},
  };
  AddStandardConfig(&config, args);
  // The report's metrics snapshot carries the availability split, so CI
  // can assert the floor and diff the whole snapshot across host thread
  // counts and simulator modes (the counters are all cycle-domain).
  obs::Registry metrics;
  metrics.counter("workload.statements")->Set(statements);
  metrics.counter("workload.answered")->Set(answered);
  metrics.counter("workload.degraded")->Set(degraded);
  metrics.counter("workload.unavailable")->Set(unavailable);
  metrics.counter("workload.deadline_exceeded")->Set(deadline);
  metrics.counter("workload.failovers")->Set(failovers);
  metrics.counter("workload.deaths")->Set(deaths);
  MaybeWriteReport(args.json_path, "workload_chaos", results, config,
                   &metrics);
  return 0;
}
