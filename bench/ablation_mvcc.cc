// Ablation A5 — MVCC timestamp filtering in hardware (paper §III-C).
// The versioned base data accumulates dead versions; a snapshot scan
// must skip them. In software the CPU reads both timestamps of every
// version and pays the branchy visibility check; with Relational Fabric
// the comparison happens in the transformer and only live rows' columns
// reach the CPU. The win grows with the dead-version fraction.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "layout/row_table.h"
#include "mvcc/transaction.h"
#include "mvcc/versioned_table.h"
#include "relmem/ephemeral.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

struct Rig {
  /// `updates_per_key` controls the dead-version fraction:
  /// dead/total = updates/(updates+1).
  Rig(uint64_t keys, int updates_per_key) {
    auto schema = layout::Schema::Create(
        {{"id", layout::ColumnType::kInt64, 0},
         {"value", layout::ColumnType::kInt64, 0},
         {"payload", layout::ColumnType::kInt64, 0}});
    auto t = mvcc::VersionedTable::Create(*schema, 0, &memory,
                                          keys * (updates_per_key + 1));
    table = std::make_unique<mvcc::VersionedTable>(std::move(*t));
    tm = std::make_unique<mvcc::TransactionManager>(table.get());
    layout::RowBuilder b(&table->user_schema());
    Random rng(1);
    for (uint64_t k = 0; k < keys; ++k) {
      mvcc::Transaction txn = tm->Begin();
      b.Reset();
      b.AddInt64(static_cast<int64_t>(k))
          .AddInt64(static_cast<int64_t>(rng.Uniform(1000)))
          .AddInt64(0);
      const Status ins = tm->Insert(&txn, b.Finish());
      RELFAB_CHECK(ins.ok()) << "load insert failed: " << ins.ToString();
      const Status commit = tm->Commit(&txn);
      RELFAB_CHECK(commit.ok()) << "load commit failed: "
                                << commit.ToString();
    }
    for (int u = 0; u < updates_per_key; ++u) {
      for (uint64_t k = 0; k < keys; ++k) {
        mvcc::Transaction txn = tm->Begin();
        b.Reset();
        b.AddInt64(static_cast<int64_t>(k))
            .AddInt64(static_cast<int64_t>(rng.Uniform(1000)))
            .AddInt64(u);
        const Status upd = tm->Update(&txn, static_cast<int64_t>(k),
                                      b.Finish());
        RELFAB_CHECK(upd.ok()) << "load update failed: " << upd.ToString();
        const Status commit = tm->Commit(&txn);
        RELFAB_CHECK(commit.ok()) << "load commit failed: "
                                  << commit.ToString();
      }
    }
  }

  /// Snapshot sum(value) with the visibility check in software: the CPU
  /// reads both timestamp fields of every version.
  uint64_t SoftwareScan() {
    memory.ResetState();
    const layout::RowTable& rows = table->rows();
    const uint64_t ts = tm->current_ts();
    int64_t sum = 0;
    for (uint64_t r = 0; r < rows.num_rows(); ++r) {
      memory.Read(rows.FieldAddress(r, table->begin_ts_column()), 8);
      memory.Read(rows.FieldAddress(r, table->end_ts_column()), 8);
      memory.CpuWork(2 * 1.2 + 2 * 2.0);  // two compares, two field loads
      if (table->Visible(r, ts)) {
        memory.Read(rows.FieldAddress(r, 1), 8);
        memory.CpuWork(2.0 + 1.5);  // load + aggregate update
        sum += rows.GetInt(r, 1);
      }
    }
    DoNotOptimize(sum);
    NoteSimLines(memory);
    return memory.ElapsedCycles();
  }

  /// The same snapshot sum through an ephemeral view with the timestamp
  /// comparison in the fabric.
  uint64_t HardwareScan() {
    memory.ResetState();
    relmem::RmEngine rm(&memory);
    relmem::Geometry g;
    g.columns = {1};
    g.visibility = table->SnapshotFilter(tm->current_ts());
    auto view = rm.Configure(table->rows(), g);
    RELFAB_CHECK(view.ok());
    int64_t sum = 0;
    for (relmem::EphemeralView::Cursor cur(&*view); cur.Valid();
         cur.Advance()) {
      memory.CpuWork(2.0 + 1.5);
      sum += cur.GetInt(0);
    }
    DoNotOptimize(sum);
    NoteSimLines(memory);
    return memory.ElapsedCycles();
  }

  sim::MemorySystem memory;
  std::unique_ptr<mvcc::VersionedTable> table;
  std::unique_ptr<mvcc::TransactionManager> tm;
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t keys = FullScale() ? 200000 : 50000;
  ResultTable results(
      "Ablation A5: snapshot scan, software vs in-fabric timestamp "
      "filtering (" + std::to_string(keys) + " live keys)");

  // One worker-private rig per dead-version fraction.
  std::vector<std::unique_ptr<PerWorker<Rig>>> rigs;
  for (int updates : {0, 1, 3, 7}) {
    rigs.push_back(std::make_unique<PerWorker<Rig>>(
        [keys, updates] { return std::make_unique<Rig>(keys, updates); }));
    PerWorker<Rig>* rig = rigs.back().get();
    const std::string x =
        std::to_string(100 * updates / (updates + 1)) + "% dead";
    RegisterSimBenchmark("mvcc/sw/" + x, &results, "software ts check", x,
                         [rig] { return rig->Get().SoftwareScan(); });
    RegisterSimBenchmark("mvcc/hw/" + x, &results, "fabric ts check", x,
                         [rig] { return rig->Get().HardwareScan(); });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("dead-version fraction");
  results.PrintSpeedupVs("dead-version fraction", "software ts check");

  std::map<std::string, std::string> config{{"keys", std::to_string(keys)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_mvcc", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
