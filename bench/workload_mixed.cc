// Multi-session mixed workload driver for the telemetry stack: N
// simulated sessions each replay a deterministic stream of mixed
// point/analytic SQL against their own copy of the sharded demo tables
// (range-sharded `readings`, plain-row `events`), with workload
// telemetry enabled — so every statement feeds the cycle-domain
// time-series, the per-backend/per-shard latency digests, the
// structured query log and the flight recorder.
//
// Sessions are the sweep cells; each cell builds a private Fabric from
// its session seed, so per-session results — answers, cycles, digest
// buckets, log records — are bit-identical no matter which host worker
// runs the cell or how many workers there are (--threads 1 vs 4), and
// in both simulator modes. The post-run merge is session-major, keeping
// the merged digests deterministic too; CI pins exactly that.
//
// Flags beyond the standard harness set:
//   --sessions N     number of simulated sessions (default 8)
//   --statements M   statements per session (default 30)
//   --qlog PATH      write the merged query log as JSONL
//
// `--json <report>` embeds the merged digests in the metrics snapshot
// under "digest.*"; summarize a --qlog file with
// tools/analyze_query_log.py.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/relational_fabric.h"

namespace relfab::bench {
namespace {

/// Row content is a pure function of the key so every session holds
/// identical data and point-query answers are host-checkable.
int32_t TempFor(int64_t ts) { return static_cast<int32_t>((ts * 13 + 7) % 500); }
int32_t AmountFor(int64_t i) {
  return static_cast<int32_t>((i * 31 + 11) % 10000);
}

struct WorkloadParams {
  uint64_t rows = 20000;
  int sessions = 8;
  int statements = 30;
};

/// Everything one session leaves behind for the session-major merge.
struct SessionOut {
  std::unique_ptr<obs::DigestSet> digests;
  std::vector<obs::QueryLogRecord> records;
  uint64_t total_cycles = 0;
  uint64_t degraded = 0;
  uint64_t faults = 0;
  uint64_t flight_dumps = 0;
  uint64_t statements = 0;
};

/// Builds the session's private fabric: `readings` range-sharded 4 ways
/// on ts, `events` as a plain row table.
std::unique_ptr<Fabric> BuildSessionFabric(const WorkloadParams& params) {
  auto fabric = std::make_unique<Fabric>();
  // One host thread per scheduler: the sweep harness supplies the
  // process-level parallelism, and host threads never change answers or
  // cycles anyway (shard_exec_test pins that).
  fabric->shard_scheduler().set_host_threads(1);
  const int64_t rows = static_cast<int64_t>(params.rows);
  {
    auto schema = layout::Schema::Create({
        {"ts", layout::ColumnType::kInt64, 0},
        {"sensor", layout::ColumnType::kInt32, 0},
        {"temp", layout::ColumnType::kInt32, 0},
        {"hum", layout::ColumnType::kInt32, 0},
    });
    auto* table = fabric
                      ->CreateShardedTable(
                          "readings", std::move(*schema), "ts",
                          {.splits = {rows / 4, rows / 2, 3 * rows / 4}})
                      .value();
    layout::RowBuilder b(&table->schema());
    for (int64_t i = 0; i < rows; ++i) {
      b.Reset();
      b.AddInt64(i)
          .AddInt32(static_cast<int32_t>(i % 64))
          .AddInt32(TempFor(i))
          .AddInt32(static_cast<int32_t>((i * 5 + 3) % 100));
      table->Append(b.Finish());
    }
  }
  {
    auto schema = layout::Schema::Create({
        {"id", layout::ColumnType::kInt64, 0},
        {"kind", layout::ColumnType::kInt32, 0},
        {"amount", layout::ColumnType::kInt32, 0},
    });
    auto* table = fabric->CreateTable("events", std::move(*schema)).value();
    layout::RowBuilder b(&table->schema());
    for (int64_t i = 0; i < rows / 2; ++i) {
      b.Reset();
      b.AddInt64(i)
          .AddInt32(static_cast<int32_t>(i % 8))
          .AddInt32(AmountFor(i));
      table->AppendRow(b.Finish());
    }
  }
  return fabric;
}

/// One statement of the session's mixed stream, chosen by the session's
/// private deterministic RNG.
std::string NextStatement(Random* rng, const WorkloadParams& params) {
  const int64_t rows = static_cast<int64_t>(params.rows);
  switch (rng->Uniform(10)) {
    case 0:
    case 1:
    case 2:
    case 3: {  // point lookup on the shard key: prunes to one shard
      const int64_t k = static_cast<int64_t>(rng->Uniform(
          static_cast<uint64_t>(rows)));
      return "SELECT COUNT(*), SUM(temp) FROM readings WHERE ts = " +
             std::to_string(k);
    }
    case 4:
    case 5:
    case 6: {  // narrow range analytic: prunes to 1-2 shards
      const int64_t width = rows / 8;
      const int64_t lo = static_cast<int64_t>(
          rng->Uniform(static_cast<uint64_t>(rows - width)));
      return "SELECT AVG(temp), MAX(hum) FROM readings WHERE ts >= " +
             std::to_string(lo) + " AND ts < " + std::to_string(lo + width);
    }
    case 7:
    case 8:  // full fan-out group-by across all shards
      return "SELECT sensor, COUNT(*) FROM readings WHERE hum < 50 "
             "GROUP BY sensor";
    default:  // plain-row analytic on the unsharded table
      return "SELECT kind, SUM(amount) FROM events WHERE amount < 9000 "
             "GROUP BY kind";
  }
}

/// Runs one whole session and fills `out`. Returns total session cycles.
uint64_t RunSession(int session, const WorkloadParams& params,
                    SessionOut* out) {
  std::unique_ptr<Fabric> fabric = BuildSessionFabric(params);
  obs::TelemetryConfig config;
  config.session = "s" + std::to_string(session);
  config.window_cycles = 2'000'000;
  obs::WorkloadTelemetry& telemetry =
      fabric->EnableTelemetry(std::move(config));

  Random rng(0xC0FFEEu + static_cast<uint64_t>(session) * 7919u);
  uint64_t total_cycles = 0;
  for (int s = 0; s < params.statements; ++s) {
    // Fresh per-statement timing, as an interactive session would see.
    fabric->memory().ResetState();
    const std::string sql = NextStatement(&rng, params);
    auto result = fabric->ExecuteSql(sql, {.max_threads = 4});
    RELFAB_CHECK(result.ok())
        << "session " << session << " statement " << s << " failed: "
        << result.status().ToString();
    total_cycles += result->result.sim_cycles;
  }

  out->digests = std::make_unique<obs::DigestSet>();
  out->digests->MergeFrom(telemetry.digests());
  for (const obs::QueryLogRecord* r : telemetry.query_log().Recent()) {
    out->records.push_back(*r);
  }
  out->total_cycles = total_cycles;
  out->degraded = telemetry.degraded_statements();
  out->faults = telemetry.faults_injected();
  out->flight_dumps = telemetry.flight_recorder().dumps();
  out->statements = telemetry.statements();
  NoteSimLines(fabric->memory());
  return total_cycles;
}

/// Strips `--flag <n>` / `--flag=<n>` style custom flags before
/// ParseBenchArgs (which treats unknown flags as errors).
std::string ConsumeValueFlag(int* argc, char** argv, const char* flag) {
  std::string value;
  const size_t flag_len = std::strlen(flag);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < *argc) {
      value = argv[++i];
    } else if (std::strcmp(argv[i], flag) == 0) {
      std::fprintf(stderr, "%s requires an argument\n", flag);
      std::exit(2);
    } else if (std::strncmp(argv[i], flag, flag_len) == 0 &&
               argv[i][flag_len] == '=') {
      value = argv[i] + flag_len + 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;

  WorkloadParams params;
  params.rows = FullScale() ? 100000 : 20000;
  params.sessions = FullScale() ? 16 : 8;
  params.statements = FullScale() ? 60 : 30;
  const std::string sessions_flag =
      ConsumeValueFlag(&argc, argv, "--sessions");
  if (!sessions_flag.empty()) params.sessions = std::stoi(sessions_flag);
  const std::string statements_flag =
      ConsumeValueFlag(&argc, argv, "--statements");
  if (!statements_flag.empty()) {
    params.statements = std::stoi(statements_flag);
  }
  const std::string qlog_path = ConsumeValueFlag(&argc, argv, "--qlog");
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  ResultTable results("Mixed workload: " +
                      std::to_string(params.sessions) + " sessions x " +
                      std::to_string(params.statements) +
                      " mixed point/analytic statements (" +
                      std::to_string(params.rows) + " rows)");
  std::vector<SessionOut> sessions(
      static_cast<size_t>(params.sessions));
  for (int i = 0; i < params.sessions; ++i) {
    // Each session is one cell writing only its own pre-sized slot, so
    // the sweep's worker pool needs no extra synchronization here.
    SessionOut* out = &sessions[static_cast<size_t>(i)];
    RegisterSimBenchmark(
        "workload_mixed/session=" + std::to_string(i), &results, "mixed",
        "s" + std::to_string(i),
        [i, &params, out] { return RunSession(i, params, out); });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("session");

  // --- session-major merge: deterministic at any --threads value ---
  obs::DigestSet merged;
  obs::QueryLog merged_log(
      static_cast<size_t>(params.sessions) *
      static_cast<size_t>(params.statements));
  if (!qlog_path.empty()) {
    auto status = merged_log.OpenSink(qlog_path);
    RELFAB_CHECK(status.ok()) << status.ToString();
  }
  uint64_t degraded = 0, faults = 0, dumps = 0, statements = 0;
  for (const SessionOut& s : sessions) {
    if (s.digests != nullptr) merged.MergeFrom(*s.digests);
    for (const obs::QueryLogRecord& r : s.records) merged_log.Append(r);
    degraded += s.degraded;
    faults += s.faults;
    dumps += s.flight_dumps;
    statements += s.statements;
  }
  merged_log.CloseSink();
  std::printf("\n%s", merged.ToTable().c_str());
  std::printf(
      "workload: statements=%llu degraded=%llu faults=%llu "
      "flight_dumps=%llu\n",
      static_cast<unsigned long long>(statements),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(faults),
      static_cast<unsigned long long>(dumps));
  if (!qlog_path.empty()) {
    std::printf("query log: %llu record(s) -> %s\n",
                static_cast<unsigned long long>(merged_log.total()),
                qlog_path.c_str());
  }

  std::map<std::string, std::string> config{
      {"rows", std::to_string(params.rows)},
      {"sessions", std::to_string(params.sessions)},
      {"statements", std::to_string(params.statements)},
  };
  AddStandardConfig(&config, args);
  // The report's metrics snapshot carries the merged digests (full
  // sketches under "digest.*") plus the workload totals, so digest
  // bit-identity across host thread counts is diffable from two
  // reports alone.
  obs::Registry metrics;
  merged.ExportTo(&metrics);
  metrics.counter("workload.statements")->Set(statements);
  metrics.counter("workload.degraded")->Set(degraded);
  metrics.counter("workload.faults.injected")->Set(faults);
  metrics.counter("workload.flight.dumps")->Set(dumps);
  MaybeWriteReport(args.json_path, "workload_mixed", results, config,
                   &metrics);
  return 0;
}
