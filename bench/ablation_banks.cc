// Ablation A2 — bank-level parallelism. RM "exploits the inherent
// parallelism of memory cells" (§II): the gather engine drives DRAM
// banks concurrently. Sweeping the gather parallelism shows RM's
// production rate degrading toward serial DRAM latency when the
// parallelism is taken away — the design choice that makes near-data
// gathering viable. Wide 256-byte rows with a scattered 2-column group
// keep the scan gather-bound so the effect is visible end to end.

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/rm_exec.h"
#include "layout/row_table.h"
#include "relmem/rm_engine.h"
#include "sim/memory_system.h"

namespace relfab::bench {
namespace {

// Builds the whole rig inside the cell: every invocation simulates on a
// fresh MemorySystem, so cells are trivially order- and
// thread-independent.
uint64_t RunWithBanks(uint32_t parallelism, uint64_t rows) {
  sim::SimParams params;
  params.fabric_gather_parallelism = parallelism;
  sim::MemorySystem memory(params);
  layout::Schema schema =
      layout::Schema::Uniform(64, layout::ColumnType::kInt32);  // 256 B rows
  layout::RowTable table(std::move(schema), &memory, rows);
  layout::RowBuilder b(&table.schema());
  Random rng(1);
  for (uint64_t r = 0; r < rows; ++r) {
    b.Reset();
    for (int c = 0; c < 64; ++c) {
      b.AddInt32(static_cast<int32_t>(rng.Uniform(100)));
    }
    table.AppendRow(b.Finish());
  }
  relmem::RmEngine rm(&memory);
  memory.ResetState();
  engine::RmExecEngine eng(&table, &rm);
  engine::QuerySpec spec;
  spec.projection = {0, 32};  // two far-apart columns: 2 lines per row
  const uint64_t cycles = eng.Execute(spec)->sim_cycles;
  NoteSimLines(memory);
  return cycles;
}

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? (1ull << 20) : (1ull << 18);
  ResultTable results(
      "Ablation A2: RM gather parallelism (256 B rows, scattered 2-column "
      "group, " + std::to_string(rows) + " rows)");

  for (uint32_t banks : {1u, 2u, 4u, 8u, 16u}) {
    const std::string x = std::to_string(banks) + " banks";
    RegisterSimBenchmark("banks/" + x, &results, "RM", x,
                         [=] { return RunWithBanks(banks, rows); });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("gather parallelism");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_banks", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
