#ifndef RELFAB_BENCH_BENCH_UTIL_H_
#define RELFAB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "obs/registry.h"
#include "obs/report.h"
#include "sim/memory_system.h"

namespace relfab::bench {

/// CPU frequency of the modelled platform; converts simulated cycles to
/// the wall-clock estimates printed next to cycle counts.
inline constexpr double kCpuHz = 1.5e9;

/// True when the RELFAB_FULL environment variable asks for paper-scale
/// data sizes (default: scaled down ~16x so the whole suite runs in
/// minutes on a laptop).
inline bool FullScale() {
  const char* v = std::getenv("RELFAB_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Keeps `value` alive in the eyes of the optimizer (replacement for
/// benchmark::DoNotOptimize now that the harness is self-contained).
template <typename T>
inline void DoNotOptimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile const T* sink = &value;
  (void)sink;
#endif
}

/// Collects (series, x-label) -> measurement and prints a paper-style
/// table after the sweep ran. Cell registration (which fixes row/column
/// order) happens single-threaded before the sweep; Add() is
/// mutex-guarded so SweepRunner workers can fill cells concurrently, and
/// the printed/reported order depends only on registration order — never
/// on worker scheduling.
class ResultTable {
 public:
  /// One filled sweep cell. `host_wall_ms` is the real time the cell's
  /// simulation took on the host; `sim_lines` is the number of cache
  /// lines the simulated run touched (0 when the bench did not note it).
  struct Cell {
    uint64_t sim_cycles = 0;
    double host_wall_ms = 0;
    uint64_t sim_lines = 0;
  };

  explicit ResultTable(std::string title) : title_(std::move(title)) {}

  /// Fixes the position of a (series, x) cell in the output order.
  /// Idempotent; called by SweepRunner::Register before workers start.
  void Reserve(const std::string& series, const std::string& x) {
    MutexLock lock(&mu_);
    if (std::find(x_order_.begin(), x_order_.end(), x) == x_order_.end()) {
      x_order_.push_back(x);
    }
    if (std::find(series_order_.begin(), series_order_.end(), series) ==
        series_order_.end()) {
      series_order_.push_back(series);
    }
  }

  void Add(const std::string& series, const std::string& x, uint64_t cycles,
           double host_wall_ms = 0, uint64_t sim_lines = 0) {
    Reserve(series, x);
    MutexLock lock(&mu_);
    cells_[series][x] = Cell{cycles, host_wall_ms, sim_lines};
  }

  uint64_t Get(const std::string& series, const std::string& x) const {
    return GetCell(series, x).sim_cycles;
  }

  Cell GetCell(const std::string& series, const std::string& x) const {
    MutexLock lock(&mu_);
    auto sit = cells_.find(series);
    RELFAB_CHECK(sit != cells_.end() && sit->second.count(x) > 0)
        << "ResultTable '" << title_ << "' has no cell (series='" << series
        << "', x='" << x << "')";
    return sit->second.at(x);
  }

  bool Has(const std::string& series, const std::string& x) const {
    MutexLock lock(&mu_);
    auto it = cells_.find(series);
    return it != cells_.end() && it->second.count(x) > 0;
  }

  /// Prints absolute simulated cycles per series.
  void PrintCycles(const char* x_name) const {
    const std::vector<std::string> series = series_order();
    const std::vector<std::string> xs = x_order();
    std::printf("\n=== %s ===\n%-28s", title_.c_str(), x_name);
    for (const std::string& s : series) {
      std::printf(" %14s", s.c_str());
    }
    std::printf("\n");
    for (const std::string& x : xs) {
      std::printf("%-28s", x.c_str());
      for (const std::string& s : series) {
        if (Has(s, x)) {
          std::printf(" %14llu",
                      static_cast<unsigned long long>(Get(s, x)));
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
  }

  /// Prints series_cycles / base_cycles (the paper's "normalized
  /// execution time" view; base shows as 1.00).
  void PrintNormalized(const char* x_name, const std::string& base) const {
    const std::vector<std::string> series = series_order();
    const std::vector<std::string> xs = x_order();
    std::printf("\n=== %s — normalized to %s ===\n%-28s", title_.c_str(),
                base.c_str(), x_name);
    for (const std::string& s : series) {
      std::printf(" %14s", s.c_str());
    }
    std::printf("\n");
    for (const std::string& x : xs) {
      std::printf("%-28s", x.c_str());
      for (const std::string& s : series) {
        if (Has(s, x) && Has(base, x)) {
          std::printf(" %14.3f", static_cast<double>(Get(s, x)) /
                                     static_cast<double>(Get(base, x)));
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
  }

  /// Prints each series normalized to `base_series` (the paper's
  /// "speedup vs X" view): base_cycles / series_cycles.
  void PrintSpeedupVs(const char* x_name, const std::string& base) const {
    const std::vector<std::string> series = series_order();
    const std::vector<std::string> xs = x_order();
    std::printf("\n=== %s — speedup vs %s ===\n%-28s", title_.c_str(),
                base.c_str(), x_name);
    for (const std::string& s : series) {
      if (s == base) continue;
      std::printf(" %14s", s.c_str());
    }
    std::printf("\n");
    for (const std::string& x : xs) {
      std::printf("%-28s", x.c_str());
      for (const std::string& s : series) {
        if (s == base) continue;
        if (Has(s, x) && Has(base, x)) {
          std::printf(" %14.2f", static_cast<double>(Get(base, x)) /
                                     static_cast<double>(Get(s, x)));
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
  }

  /// Snapshots (by value: the orders are tiny and callers iterate them
  /// while other accessors re-acquire mu_).
  std::vector<std::string> series_order() const {
    MutexLock lock(&mu_);
    return series_order_;
  }
  std::vector<std::string> x_order() const {
    MutexLock lock(&mu_);
    return x_order_;
  }

 private:
  std::string title_;
  mutable Mutex mu_;
  std::vector<std::string> series_order_ RELFAB_GUARDED_BY(mu_);
  std::vector<std::string> x_order_ RELFAB_GUARDED_BY(mu_);
  std::map<std::string, std::map<std::string, Cell>> cells_
      RELFAB_GUARDED_BY(mu_);
};

/// Parsed harness command line. The sweep harness owns its (tiny) flag
/// surface now that google-benchmark is gone:
///   --threads N       worker threads (default: hardware concurrency)
///   --filter REGEX    run only cells whose name matches (partial match)
///   --list            print registered cell names and exit
///   --json PATH       write the machine-readable run report to PATH
struct BenchArgs {
  int threads = 0;  // 0: pick hardware concurrency at run time
  std::string filter;
  std::string json_path;
  bool list = false;
};

/// Extracts `--json <path>` / `--json=<path>` from argv. Returns the
/// path, or "" when the flag is absent. Paths starting with '-' are
/// rejected: they are almost always a misplaced flag (e.g. `--json
/// --threads`), and silently creating a file literally named "-foo"
/// loses the report.
inline std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      std::fprintf(stderr, "--json requires a path argument\n");
      std::exit(2);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (!path.empty() && path[0] == '-') {
    std::fprintf(stderr,
                 "--json path '%s' starts with '-': looks like a misplaced "
                 "flag, refusing to treat it as a file name\n",
                 path.c_str());
    std::exit(2);
  }
  return path;
}

/// Parses the full harness flag surface (including --json via
/// ConsumeJsonFlag). Unknown flags are an error so typos fail loudly.
inline BenchArgs ParseBenchArgs(int* argc, char** argv) {
  BenchArgs args;
  args.json_path = ConsumeJsonFlag(argc, argv);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* flag, const char* inline_prefix,
                     std::string* dst) -> bool {
      if (std::strcmp(a, flag) == 0) {
        if (i + 1 >= *argc) {
          std::fprintf(stderr, "%s requires an argument\n", flag);
          std::exit(2);
        }
        *dst = argv[++i];
        return true;
      }
      const size_t n = std::strlen(inline_prefix);
      if (std::strncmp(a, inline_prefix, n) == 0) {
        *dst = a + n;
        return true;
      }
      return false;
    };
    std::string v;
    if (value("--threads", "--threads=", &v)) {
      args.threads = std::atoi(v.c_str());
      if (args.threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1, got '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (value("--filter", "--filter=", &args.filter)) {
    } else if (std::strcmp(a, "--list") == 0) {
      args.list = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", a);
      std::exit(2);
    }
    (void)out;
  }
  *argc = 1;
  return args;
}

namespace internal {
/// Worker slot of the thread executing the current sweep cell
/// (0 when outside a sweep, so single-threaded code paths — including
/// cell registration and everything before RunSweep — share slot 0).
inline thread_local int g_worker_slot = 0;
}  // namespace internal

/// Lazily builds one `T` per SweepRunner worker. Cells running on
/// different workers therefore never share simulation state — each
/// worker owns a private MemorySystem, tables and engines — which is
/// what makes the sweep embarrassingly parallel without any locking in
/// the simulation itself. Combined with MemorySystem::ResetState()'s
/// guarantee that a cell's cycles do not depend on what ran before it on
/// the same rig, every cell reports the same cycles at any thread count.
template <typename T>
class PerWorker {
 public:
  explicit PerWorker(std::function<std::unique_ptr<T>()> factory)
      : factory_(std::move(factory)) {}

  /// The calling worker's instance (built on first use).
  T& Get() {
    const int slot = internal::g_worker_slot;
    MutexLock lock(&mu_);
    if (static_cast<size_t>(slot) >= instances_.size()) {
      instances_.resize(slot + 1);
    }
    if (!instances_[slot]) instances_[slot] = factory_();
    return *instances_[slot];
  }

  /// The instance of an explicit worker slot, or nullptr if that worker
  /// never built one. Used after the sweep to snapshot metrics from the
  /// rig that ran a particular cell.
  T* ForWorker(int slot) {
    MutexLock lock(&mu_);
    if (slot < 0 || static_cast<size_t>(slot) >= instances_.size()) {
      return nullptr;
    }
    return instances_[slot].get();
  }

 private:
  std::function<std::unique_ptr<T>()> factory_;
  Mutex mu_;
  /// The unique_ptr slots are guarded; the built T instances themselves
  /// are worker-private by construction (one slot per worker).
  std::vector<std::unique_ptr<T>> instances_ RELFAB_GUARDED_BY(mu_);
};

/// Deterministic parallel sweep executor. Cells are registered
/// single-threaded (fixing their ResultTable position), then executed by
/// a pool of workers pulling from an atomic queue in registration order.
/// Because every cell simulates on worker-private state (see PerWorker)
/// and MemorySystem cells are order-independent after ResetState(), the
/// simulated cycles of every cell are bit-identical at any --threads
/// value; only host_wall_ms varies.
class SweepRunner {
 public:
  struct CellSpec {
    std::string name;
    ResultTable* table;
    std::string series;
    std::string x;
    std::function<uint64_t()> run;
  };

  void Register(std::string name, ResultTable* table, std::string series,
                std::string x, std::function<uint64_t()> run) {
    table->Reserve(series, x);
    cells_.push_back(CellSpec{std::move(name), table, std::move(series),
                              std::move(x), std::move(run)});
  }

  /// Runs all registered cells honoring `args` (filter/threads/list).
  /// Returns the worker slot that executed the last registered cell (the
  /// traditional source of the post-run metrics snapshot), or -1 if no
  /// cell ran.
  int Run(const BenchArgs& args) {
    std::vector<size_t> selected;
    if (args.filter.empty()) {
      for (size_t i = 0; i < cells_.size(); ++i) selected.push_back(i);
    } else {
      const std::regex re(args.filter);
      for (size_t i = 0; i < cells_.size(); ++i) {
        if (std::regex_search(cells_[i].name, re)) selected.push_back(i);
      }
    }
    if (args.list) {
      for (size_t i : selected) std::printf("%s\n", cells_[i].name.c_str());
      return -1;
    }
    if (selected.empty()) {
      std::fprintf(stderr, "no cells match filter '%s'\n",
                   args.filter.c_str());
      return -1;
    }
    int threads = args.threads;
    if (threads < 1) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads < 1) threads = 1;
    }
    if (static_cast<size_t>(threads) > selected.size()) {
      threads = static_cast<int>(selected.size());
    }

    {
      MutexLock lock(&mu_);
      last_cell_worker_ = -1;
    }
    const size_t last_index = selected.back();
    std::atomic<size_t> next{0};
    auto worker = [&](int slot) {
      internal::g_worker_slot = slot;
      for (;;) {
        const size_t pick = next.fetch_add(1);
        if (pick >= selected.size()) break;
        CellSpec& cell = cells_[selected[pick]];
        // relfab-lint: allow(wall-clock) host_wall_ms measures real host time around the cell; it never feeds simulated cycles
        const auto t0 = std::chrono::steady_clock::now();
        last_cell_lines() = 0;
        const uint64_t cycles = cell.run();
        const uint64_t lines = last_cell_lines();
        const double host_ms =
            std::chrono::duration<double, std::milli>(
                // relfab-lint: allow(wall-clock) host-domain wall time for the report's host_wall_ms field only
                std::chrono::steady_clock::now() - t0)
                .count();
        cell.table->Add(cell.series, cell.x, cycles, host_ms, lines);
        if (selected[pick] == last_index) {
          MutexLock lock(&mu_);
          last_cell_worker_ = slot;
        }
      }
      internal::g_worker_slot = 0;
    };
    if (threads == 1) {
      // Run on the caller's thread: benches stay trivially debuggable
      // under --threads 1 and single-threaded sanitizer runs see no
      // thread machinery at all.
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
      for (std::thread& t : pool) t.join();
    }
    MutexLock lock(&mu_);
    return last_cell_worker_;
  }

  size_t num_registered() const { return cells_.size(); }

  /// Thread-local count of simulated cache lines the current cell
  /// touched; set by NoteSimLines inside the cell body.
  static uint64_t& last_cell_lines() {
    static thread_local uint64_t lines = 0;
    return lines;
  }

 private:
  std::vector<CellSpec> cells_;
  Mutex mu_;
  int last_cell_worker_ RELFAB_GUARDED_BY(mu_) = -1;
};

/// Process-wide runner used by RegisterSimBenchmark / RunSweep so bench
/// mains keep the one-liner registration style.
inline SweepRunner& Runner() {
  static SweepRunner runner;
  return runner;
}

/// Records how many cache lines the simulation behind the current cell
/// touched (demand + gather), feeding the report's
/// sim_lines_per_host_sec throughput figure. Call just before returning
/// from a cell body, after the workload ran.
inline void NoteSimLines(const sim::MemorySystem& memory) {
  const sim::MemStats s = memory.stats();
  SweepRunner::last_cell_lines() =
      s.l1_hits + s.l1_misses + s.dram_lines_gather;
}

/// Registers one deterministic simulation point: the lambda runs the
/// simulated workload once and returns simulated cycles, which become
/// the table cell. The harness measures the host wall time around the
/// call and stores it alongside.
inline void RegisterSimBenchmark(const std::string& name, ResultTable* table,
                                 const std::string& series,
                                 const std::string& x,
                                 std::function<uint64_t()> run) {
  Runner().Register(name, table, series, x, std::move(run));
}

/// Executes every registered benchmark cell. Returns the worker slot of
/// the last registered cell (for post-run metrics snapshots via
/// PerWorker::ForWorker), or -1 when nothing ran (e.g. --list).
inline int RunSweep(const BenchArgs& args) { return Runner().Run(args); }

/// Emits the machine-readable run report (one JSON doc: config + every
/// (series, x) cell + a metrics-registry snapshot) when `path` is
/// non-empty. `metrics` may be null when the bench has no registry.
/// Every report records the sweep's thread count and fast-path mode so a
/// result can always be traced back to how it was produced.
inline void MaybeWriteReport(
    const std::string& path, const std::string& bench_name,
    const ResultTable& table,
    const std::map<std::string, std::string>& config,
    const obs::Registry* metrics) {
  if (path.empty()) return;
  obs::RunReport report(bench_name);
  for (const auto& [key, value] : config) report.SetConfig(key, value);
  for (const std::string& series : table.series_order()) {
    for (const std::string& x : table.x_order()) {
      if (table.Has(series, x)) {
        const ResultTable::Cell cell = table.GetCell(series, x);
        report.AddResult(series, x, cell.sim_cycles, cell.host_wall_ms,
                         cell.sim_lines);
      }
    }
  }
  if (metrics != nullptr) report.SetMetrics(*metrics);
  const Status status = report.WriteTo(path);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\nwrote run report to %s\n", path.c_str());
}

/// Standard config entries every bench report should carry.
inline void AddStandardConfig(std::map<std::string, std::string>* config,
                              const BenchArgs& args) {
  (*config)["threads"] = std::to_string(
      args.threads < 1
          ? static_cast<int>(std::thread::hardware_concurrency())
          : args.threads);
  const char* fp = std::getenv("RELFAB_SIM_FAST_PATH");
  (*config)["fast_path"] =
      (fp == nullptr || fp[0] == '\0' || fp[0] != '0') ? "1" : "0";
  (*config)["full_scale"] = FullScale() ? "1" : "0";
}

}  // namespace relfab::bench

#endif  // RELFAB_BENCH_BENCH_UTIL_H_
