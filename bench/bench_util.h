#ifndef RELFAB_BENCH_BENCH_UTIL_H_
#define RELFAB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/registry.h"
#include "obs/report.h"

namespace relfab::bench {

/// CPU frequency of the modelled platform; converts simulated cycles to
/// the manual time reported to google-benchmark.
inline constexpr double kCpuHz = 1.5e9;

/// True when the RELFAB_FULL environment variable asks for paper-scale
/// data sizes (default: scaled down ~16x so the whole suite runs in
/// minutes on a laptop).
inline bool FullScale() {
  const char* v = std::getenv("RELFAB_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Collects (series, x-label) -> simulated cycles and prints a
/// paper-style table after the benchmarks ran.
class ResultTable {
 public:
  explicit ResultTable(std::string title) : title_(std::move(title)) {}

  void Add(const std::string& series, const std::string& x, uint64_t cycles) {
    if (std::find(x_order_.begin(), x_order_.end(), x) == x_order_.end()) {
      x_order_.push_back(x);
    }
    if (std::find(series_order_.begin(), series_order_.end(), series) ==
        series_order_.end()) {
      series_order_.push_back(series);
    }
    cells_[series][x] = cycles;
  }

  uint64_t Get(const std::string& series, const std::string& x) const {
    return cells_.at(series).at(x);
  }
  bool Has(const std::string& series, const std::string& x) const {
    auto it = cells_.find(series);
    return it != cells_.end() && it->second.count(x) > 0;
  }

  /// Prints absolute simulated cycles per series.
  void PrintCycles(const char* x_name) const {
    std::printf("\n=== %s ===\n%-28s", title_.c_str(), x_name);
    for (const std::string& s : series_order_) {
      std::printf(" %14s", s.c_str());
    }
    std::printf("\n");
    for (const std::string& x : x_order_) {
      std::printf("%-28s", x.c_str());
      for (const std::string& s : series_order_) {
        if (Has(s, x)) {
          std::printf(" %14llu",
                      static_cast<unsigned long long>(Get(s, x)));
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
  }

  /// Prints series_cycles / base_cycles (the paper's "normalized
  /// execution time" view; base shows as 1.00).
  void PrintNormalized(const char* x_name, const std::string& base) const {
    std::printf("\n=== %s — normalized to %s ===\n%-28s", title_.c_str(),
                base.c_str(), x_name);
    for (const std::string& s : series_order_) {
      std::printf(" %14s", s.c_str());
    }
    std::printf("\n");
    for (const std::string& x : x_order_) {
      std::printf("%-28s", x.c_str());
      for (const std::string& s : series_order_) {
        if (Has(s, x) && Has(base, x)) {
          std::printf(" %14.3f", static_cast<double>(Get(s, x)) /
                                     static_cast<double>(Get(base, x)));
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
  }

  /// Prints each series normalized to `base_series` (the paper's
  /// "speedup vs X" view): base_cycles / series_cycles.
  void PrintSpeedupVs(const char* x_name, const std::string& base) const {
    std::printf("\n=== %s — speedup vs %s ===\n%-28s", title_.c_str(),
                base.c_str(), x_name);
    for (const std::string& s : series_order_) {
      if (s == base) continue;
      std::printf(" %14s", s.c_str());
    }
    std::printf("\n");
    for (const std::string& x : x_order_) {
      std::printf("%-28s", x.c_str());
      for (const std::string& s : series_order_) {
        if (s == base) continue;
        if (Has(s, x) && Has(base, x)) {
          std::printf(" %14.2f", static_cast<double>(Get(base, x)) /
                                     static_cast<double>(Get(s, x)));
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
  }

  const std::vector<std::string>& series_order() const {
    return series_order_;
  }
  const std::vector<std::string>& x_order() const { return x_order_; }

 private:
  std::string title_;
  std::vector<std::string> series_order_;
  std::vector<std::string> x_order_;
  std::map<std::string, std::map<std::string, uint64_t>> cells_;
};

/// Extracts `--json <path>` / `--json=<path>` from argv before
/// benchmark::Initialize sees it (google-benchmark rejects unknown
/// flags). Returns the path, or "" when the flag is absent.
inline std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc &&
        argv[i + 1][0] != '-') {
      path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      std::fprintf(stderr, "--json requires a path argument\n");
      std::exit(2);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Emits the machine-readable run report (one JSON doc: config + every
/// (series, x) cell + a metrics-registry snapshot) when `path` is
/// non-empty. `metrics` may be null when the bench has no registry.
inline void MaybeWriteReport(
    const std::string& path, const std::string& bench_name,
    const ResultTable& table,
    const std::map<std::string, std::string>& config,
    const obs::Registry* metrics) {
  if (path.empty()) return;
  obs::RunReport report(bench_name);
  for (const auto& [key, value] : config) report.SetConfig(key, value);
  for (const std::string& series : table.series_order()) {
    for (const std::string& x : table.x_order()) {
      if (table.Has(series, x)) {
        report.AddResult(series, x, table.Get(series, x));
      }
    }
  }
  if (metrics != nullptr) report.SetMetrics(*metrics);
  const Status status = report.WriteTo(path);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\nwrote run report to %s\n", path.c_str());
}

/// Registers a deterministic simulation point as a google-benchmark
/// benchmark: the lambda runs the simulated workload once and returns
/// simulated cycles, which become both the reported manual time and the
/// table cell.
inline void RegisterSimBenchmark(const std::string& name, ResultTable* table,
                                 const std::string& series,
                                 const std::string& x,
                                 std::function<uint64_t()> run) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [table, series, x, run](benchmark::State& state) {
        for (auto _ : state) {
          const uint64_t cycles = run();
          state.SetIterationTime(static_cast<double>(cycles) / kCpuHz);
          state.counters["sim_cycles"] = static_cast<double>(cycles);
          table->Add(series, x, cycles);
        }
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace relfab::bench

#endif  // RELFAB_BENCH_BENCH_UTIL_H_
