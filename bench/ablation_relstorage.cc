// Ablation A7 — Relational Storage (paper §IV-D): near-storage
// projection vs shipping whole pages to the host, swept over
// projectivity. The crossover logic differs from Relational Memory:
// here the scarce resource is the external host interface, so RS wins
// whenever the projected fraction is small and converges to the host
// path as the query touches the whole row.

#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "layout/schema.h"
#include "relstorage/rs_engine.h"

namespace relfab::bench {
namespace {

relstorage::StorageTable BuildTable(uint64_t rows) {
  layout::Schema schema =
      layout::Schema::Uniform(16, layout::ColumnType::kInt32);
  std::vector<uint8_t> data(rows * schema.row_bytes());
  Random rng(4);
  for (uint64_t i = 0; i < data.size(); i += 4) {
    const int32_t v = static_cast<int32_t>(rng.Uniform(1000));
    std::memcpy(data.data() + i, &v, 4);
  }
  return relstorage::StorageTable(std::move(schema), std::move(data), rows,
                                  4096);
}

/// Worker-private storage stack (table + SSD model + engine) so sweep
/// workers never share device state.
struct Rig {
  relstorage::StorageTable table;
  relstorage::SsdModel ssd;
  relstorage::RsEngine rs{&ssd};

  explicit Rig(uint64_t rows) : table(BuildTable(rows)) {}
};

}  // namespace
}  // namespace relfab::bench

int main(int argc, char** argv) {
  using namespace relfab;
  using namespace relfab::bench;
  const BenchArgs args = ParseBenchArgs(&argc, argv);

  const uint64_t rows = FullScale() ? 2000000 : 500000;
  PerWorker<Rig> rigs([rows] { return std::make_unique<Rig>(rows); });
  ResultTable results(
      "Ablation A7: near-storage projection vs host scan (" +
      std::to_string(rows) + " rows of 16 columns)");

  for (uint32_t k : {1u, 2u, 4u, 8u, 12u, 16u}) {
    relmem::Geometry g;
    for (uint32_t c = 0; c < k; ++c) g.columns.push_back(c);
    const std::string x = std::to_string(k) + " cols";
    RegisterSimBenchmark("relstorage/host/" + x, &results, "host scan", x,
                         [&rigs, g] {
                           Rig& rig = rigs.Get();
                           auto r = rig.rs.HostScan(rig.table, g);
                           RELFAB_CHECK(r.ok());
                           return static_cast<uint64_t>(r->cycles);
                         });
    RegisterSimBenchmark("relstorage/rs/" + x, &results, "RS scan", x,
                         [&rigs, g] {
                           Rig& rig = rigs.Get();
                           auto r = rig.rs.NearStorageScan(rig.table, g);
                           RELFAB_CHECK(r.ok());
                           return static_cast<uint64_t>(r->cycles);
                         });
  }

  RunSweep(args);
  if (args.list) return 0;
  results.PrintCycles("projected columns");
  results.PrintSpeedupVs("projected columns", "host scan");

  std::map<std::string, std::string> config{{"rows", std::to_string(rows)}};
  AddStandardConfig(&config, args);
  MaybeWriteReport(args.json_path, "ablation_relstorage", results, config,
                   /*metrics=*/nullptr);
  return 0;
}
